#!/usr/bin/env bash
# The full offline verification gate: build, tests, lints, formatting.
# The workspace has zero external dependencies, so everything here must
# succeed with the crates.io registry unreachable (--offline enforces it).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --workspace --release --offline

echo "==> cargo test (offline)"
cargo test --workspace --release --offline -q

echo "==> failover regression tests (offline)"
cargo test --release --offline -q --test fault_tolerance

echo "==> durability regression tests (offline)"
cargo test --release --offline -q --test durability
cargo test --release --offline -q -p velox-storage --test wal_crash

echo "==> velox-net loopback cluster tests (offline)"
cargo test --release --offline -q -p velox-net --test log_shipping
cargo test --release --offline -q -p velox-net --test frame_fuzz

echo "==> network chaos tests: drop/dup/partition/reset on both transports (offline)"
cargo test --release --offline -q -p velox-net --test chaos_net

echo "==> elastic membership tests: join/migrate/fail-over/WrongEpoch (offline)"
cargo test --release --offline -q -p velox-net --test rebalance

echo "==> migration abort/rollback property tests (offline)"
cargo test --release --offline -q -p velox-cluster --test abort_rollback

echo "==> velox-net tracing tests (offline)"
cargo test --release --offline -q -p velox-net --test tracing
cargo test --release --offline -q -p velox-rest --test trace_endpoints

echo "==> serving tier tests: batching, manager swap, bit-identity, REST surface (offline)"
cargo test --release --offline -q -p velox-serve
cargo test --release --offline -q -p velox-net --test predict_batch
cargo test --release --offline -q -p velox-rest --test serve_api

echo "==> net serving latency smoke (offline)"
cargo run --release --offline -q -p velox-bench --bin abl_net -- --smoke > /dev/null

echo "==> tracing overhead smoke (traced delta <1.2/1.6 µs, offline)"
cargo run --release --offline -q -p velox-bench --bin trace_overhead -- --smoke > /dev/null

echo "==> chaos availability smoke (offline)"
cargo run --release --offline -q -p velox-bench --bin abl_chaos -- --smoke > /dev/null

echo "==> network chaos availability + zero-acked-loss smoke (offline)"
cargo run --release --offline -q -p velox-bench --bin abl_chaos_net -- --smoke > /dev/null

echo "==> rebalance availability + zero-acked-loss smoke, both transports (offline)"
cargo run --release --offline -q -p velox-bench --bin abl_rebalance -- --smoke > /dev/null

echo "==> chaos-rebalance smoke: aborted/resumed migrations under fire, both transports (offline)"
cargo run --release --offline -q -p velox-bench --bin abl_chaos_rebalance -- --smoke > /dev/null

echo "==> recovery durability smoke (offline)"
cargo run --release --offline -q -p velox-bench --bin abl_recovery -- --smoke > /dev/null

echo "==> adaptive-batching serving smoke: >=2x throughput, <1% SLO violations (offline)"
cargo run --release --offline -q -p velox-bench --bin abl_serve -- --smoke > /dev/null

echo "==> cargo clippy -D warnings (offline)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "verify: all gates passed"
