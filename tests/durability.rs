//! End-to-end durability tests over the public facade: acknowledged
//! observations survive process death (simulated by dropping the deployment
//! and rebooting from the same directory), recovery is idempotent, torn WAL
//! tails are handled at every byte offset, and a corrupt checkpoint falls
//! back to an older one whose WAL coverage is still intact.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use velox::prelude::*;

const ITEMS: u64 = 16;

fn durable_config(dir: &Path) -> VeloxConfig {
    VeloxConfig {
        durability: Some(DurabilityConfig::new(dir.to_path_buf())),
        ..VeloxConfig::single_node()
    }
}

/// Boots (or recovers) a deployment from `config.durability.dir`. The same
/// call a fresh process makes after a crash.
fn boot_with(config: VeloxConfig) -> (Velox, RecoveryReport) {
    Velox::deploy_durable(
        |_| Ok(Arc::new(IdentityModel::new("dur", 2, 0.5)) as Arc<dyn VeloxModel>),
        HashMap::new(),
        config,
    )
    .expect("durable deploy")
}

fn boot(dir: &Path) -> (Velox, RecoveryReport) {
    boot_with(durable_config(dir))
}

fn register(velox: &Velox) {
    for item in 0..ITEMS {
        velox.register_item(item, vec![(item as f64 * 0.3).sin(), (item as f64 * 0.3).cos()]);
    }
}

/// Observes records `from..from + n` with a deterministic pattern so every
/// boot cycle can extend the exact same sequence.
fn observe_n(velox: &Velox, from: u64, n: u64) {
    for i in from..from + n {
        velox.observe(i % 5, &Item::Id(i % ITEMS), (i as f64 * 0.17).sin()).expect("observe");
    }
}

fn scores(velox: &Velox) -> Vec<f64> {
    (0..5u64).map(|uid| velox.predict(uid, &Item::Id(uid % ITEMS)).unwrap().score).collect()
}

/// Path of the single WAL segment file under `dir` (asserts there is one).
fn only_wal_segment(dir: &Path) -> PathBuf {
    let wal_dir = dir.join("wal");
    let mut files: Vec<PathBuf> = fs::read_dir(&wal_dir)
        .expect("wal dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().map(|e| e == "log").unwrap_or(false))
        .collect();
    files.sort();
    assert_eq!(files.len(), 1, "expected one segment: {files:?}");
    files.remove(0)
}

/// (1) The core claim: checkpoint restore plus WAL-tail replay brings back
/// every acknowledged observation — count, durability stats, recovery
/// metrics, lifecycle event — and the deployment keeps serving.
#[test]
fn acknowledged_observations_survive_crash_and_reboot() {
    let scratch = ScratchDir::new("dur-e2e");
    let state = scratch.join("state");

    let (velox, report) = boot(&state);
    assert_eq!(report.checkpoint_seq, None, "fresh directory has nothing to recover");
    assert_eq!(report.replayed, 0);
    register(&velox);
    observe_n(&velox, 0, 10);
    let ckpt = velox.checkpoint().expect("checkpoint");
    assert_eq!(ckpt.seq, 1);
    assert_eq!(ckpt.wal_offset, 10);
    observe_n(&velox, 10, 15); // the WAL tail a crash would strand
    assert_eq!(velox.stats().observations, 25);
    drop(velox); // "crash": the process dies, only the disk survives

    let (revived, report) = boot(&state);
    assert_eq!(report.checkpoint_seq, Some(1));
    assert_eq!(report.checkpoint_wal_offset, 10);
    assert_eq!(report.replayed, 15, "exactly the post-checkpoint tail replays");
    assert_eq!(report.apply_failures, 0, "the checkpointed catalog makes every record appliable");
    assert!(!report.torn);
    assert_eq!(report.wal_quarantined, 0);

    // No re-registration: the catalog must come back from the checkpoint,
    // and the recovered deployment must serve. (Weights are restored as a
    // ridge prior — the paper's warm-start semantic — so scores are
    // deterministic per recovery but not bit-identical to the live
    // pre-crash state; determinism is asserted in the idempotence test.)
    for s in scores(&revived) {
        assert!(s.is_finite(), "recovered model serves finite scores");
    }

    let stats = revived.stats();
    assert_eq!(stats.observations, 25);
    assert!(stats.durability.enabled);
    assert_eq!(stats.durability.recovery_replayed, 15);
    assert_eq!(stats.durability.last_checkpoint_seq, 1);
    assert!(
        revived
            .registry()
            .recent_events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Recovery { replayed: 15, torn: 0 })),
        "recovery emits a lifecycle event"
    );

    // The revived deployment keeps serving and keeps logging durably.
    observe_n(&revived, 25, 3);
    assert_eq!(revived.stats().observations, 28);
}

/// (2) Recovery is idempotent: recovering twice from the same disk state
/// yields the same observation count and the same scores — nothing is
/// double-applied, nothing is lost.
#[test]
fn double_recovery_is_idempotent() {
    let scratch = ScratchDir::new("dur-idem");
    let state = scratch.join("state");

    let (velox, _) = boot(&state);
    register(&velox);
    observe_n(&velox, 0, 8);
    velox.checkpoint().expect("checkpoint");
    observe_n(&velox, 8, 5);
    drop(velox);

    let (first, r1) = boot(&state);
    let first_scores = scores(&first);
    let first_obs = first.stats().observations;
    // Release the WAL file handle before the second recovery takes over.
    drop(first);

    let (second, r2) = boot(&state);
    assert_eq!(r1.replayed, 5);
    assert_eq!(r2.replayed, 5, "the second recovery replays the same tail, not more");
    assert_eq!(first_obs, 13);
    assert_eq!(second.stats().observations, 13, "no duplicated observations");
    assert_eq!(first_scores, scores(&second), "both recoveries land on identical state");
}

/// (3) Torn-tail sweep through the whole stack: cut the WAL segment at
/// every byte offset, reboot the deployment, and check that exactly the
/// fully-persisted records come back — and that the deployment still
/// accepts new observations afterwards. Recovery must never panic.
#[test]
fn reboot_handles_a_torn_wal_tail_at_every_cut_point() {
    const N: u64 = 6;
    const HEADER_LEN: usize = 16;
    const RECORD_LEN: usize = 40;

    let build = ScratchDir::new("dur-torn-build");
    let state = build.join("state");
    let (velox, _) = boot(&state);
    register(&velox);
    observe_n(&velox, 0, N);
    drop(velox);
    let segment = only_wal_segment(&state);
    let name = segment.file_name().unwrap().to_string_lossy().into_owned();
    let full = fs::read(&segment).expect("segment bytes");
    assert_eq!(full.len(), HEADER_LEN + N as usize * RECORD_LEN);

    for cut in 0..=full.len() {
        let scratch = ScratchDir::new("dur-torn-cut");
        let dir = scratch.join("state");
        fs::create_dir_all(dir.join("wal")).expect("mkdir");
        fs::write(dir.join("wal").join(&name), &full[..cut]).expect("plant prefix");

        let (revived, report) = boot(&dir);
        let expected = cut.saturating_sub(HEADER_LEN) / RECORD_LEN;
        assert_eq!(report.replayed as usize, expected, "cut at byte {cut}");
        assert_eq!(revived.stats().observations as usize, expected, "cut at byte {cut}");

        // Still a working deployment: the next observation is accepted and
        // extends the recovered sequence.
        revived.register_item(0, vec![1.0, 0.0]);
        revived.observe(1, &Item::Id(0), 0.5).expect("observe after torn recovery");
        assert_eq!(revived.stats().observations as usize, expected + 1, "cut {cut}");
    }
}

/// (4) A corrupt newest checkpoint falls back to the previous one, and the
/// retention policy guarantees the WAL still covers everything from the
/// older checkpoint forward — even after segment truncation reclaimed the
/// fully-covered prefix.
#[test]
fn corrupt_newest_checkpoint_falls_back_with_full_wal_coverage() {
    let scratch = ScratchDir::new("dur-ckpt-fallback");
    let state = scratch.join("state");
    // Tiny segments (2 records each) so checkpoint-driven truncation
    // actually removes files; retention keeps 2 checkpoints.
    let mut durability = DurabilityConfig::new(state.clone());
    durability.wal_segment_bytes = (16 + 2 * 40) as u64;
    let config = VeloxConfig { durability: Some(durability), ..VeloxConfig::single_node() };

    let (velox, _) = boot_with(config.clone());
    register(&velox);
    observe_n(&velox, 0, 6);
    assert_eq!(velox.checkpoint().expect("first checkpoint").seq, 1);
    observe_n(&velox, 6, 6);
    let second = velox.checkpoint().expect("second checkpoint");
    assert_eq!(second.seq, 2);
    assert!(
        second.wal_segments_removed > 0,
        "small segments must let the checkpoint reclaim WAL files"
    );
    observe_n(&velox, 12, 3);
    drop(velox);

    // Flip a byte inside the newest checkpoint's payload: its CRC check
    // must fail and recovery must fall back to checkpoint 1.
    let newest = state.join("checkpoints").join("ckpt-0000000002.ckpt");
    let mut bytes = fs::read(&newest).expect("checkpoint bytes");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    fs::write(&newest, &bytes).expect("corrupt checkpoint");

    let (revived, report) = boot_with(config.clone());
    assert_eq!(report.checkpoint_seq, Some(1), "fell back past the corrupt checkpoint");
    assert_eq!(report.checkpoint_wal_offset, 6);
    assert_eq!(
        report.replayed, 9,
        "records 6..15 must still be in the WAL because truncation never \
         passes the oldest retained checkpoint"
    );
    assert_eq!(report.apply_failures, 0);
    assert_eq!(revived.stats().observations, 15);
    let first_scores = scores(&revived);
    drop(revived);

    // The fallback path is stable: a second recovery from the same damaged
    // disk lands on the identical state.
    let (again, report) = boot_with(config);
    assert_eq!(report.checkpoint_seq, Some(1));
    assert_eq!(report.replayed, 9);
    assert_eq!(again.stats().observations, 15);
    assert_eq!(first_scores, scores(&again), "fallback recovery is deterministic");
}

/// (5) `checkpoint_every` drives automatic checkpoints from the observe
/// path — no external scheduler involved.
#[test]
fn auto_checkpoint_triggers_on_observation_count() {
    let scratch = ScratchDir::new("dur-auto");
    let mut durability = DurabilityConfig::new(scratch.join("state"));
    durability.checkpoint_every = 5;
    let config = VeloxConfig { durability: Some(durability), ..VeloxConfig::single_node() };

    let (velox, _) = boot_with(config);
    register(&velox);
    observe_n(&velox, 0, 4);
    assert_eq!(velox.stats().durability.checkpoints, 0, "below the threshold");
    observe_n(&velox, 4, 1);
    let stats = velox.stats();
    assert_eq!(stats.durability.checkpoints, 1, "fifth observation crosses the threshold");
    assert_eq!(stats.durability.last_checkpoint_seq, 1);
    assert_eq!(stats.durability.last_checkpoint_wal_offset, 5);

    observe_n(&velox, 5, 5);
    assert_eq!(velox.stats().durability.checkpoints, 2, "the counter keeps advancing");
    assert!(
        velox
            .registry()
            .recent_events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Checkpoint { seq: 2, .. })),
        "automatic checkpoints emit lifecycle events"
    );
}

/// (6) Fsync policy plumbs through `DurabilityConfig` into the attached
/// WAL: per-record syncs once per observation, `Off` never syncs, and both
/// policies recover every record after a clean shutdown.
#[test]
fn fsync_policy_is_honored_and_counted() {
    for (policy, expect_fsyncs) in [(FsyncPolicy::PerRecord, true), (FsyncPolicy::Off, false)] {
        let scratch = ScratchDir::new("dur-fsync");
        let state = scratch.join("state");
        let mut durability = DurabilityConfig::new(state.clone());
        durability.fsync = policy;
        let config =
            VeloxConfig { durability: Some(durability.clone()), ..VeloxConfig::single_node() };

        let (velox, _) = boot_with(config.clone());
        register(&velox);
        observe_n(&velox, 0, 12);
        let stats = velox.stats();
        assert_eq!(stats.durability.wal_appends, 12);
        if expect_fsyncs {
            assert_eq!(stats.durability.wal_fsyncs, 12, "{policy:?}: one sync per append");
        } else {
            assert_eq!(stats.durability.wal_fsyncs, 0, "{policy:?}: no explicit syncs");
        }
        drop(velox);

        // A clean close flushes either way; everything comes back.
        let (_revived, report) = boot_with(config);
        assert_eq!(report.replayed, 12, "{policy:?}");
    }
}
