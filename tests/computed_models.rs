//! Full-lifecycle integration tests for *computational* feature functions
//! (random Fourier, SVM ensemble, MLP): deploy → serve → observe → retrain
//! → rollback, through the same Velox machinery the materialized
//! matrix-factorization model uses.

use std::collections::HashMap;
use std::sync::Arc;

use velox::prelude::*;
use velox_linalg::Vector;

const INPUT_DIM: usize = 5;
const N_ITEMS: u64 = 60;

fn item_attrs(item: u64) -> Vec<f64> {
    (0..INPUT_DIM).map(|k| ((item as f64 + 1.0) * (k as f64 + 0.9) * 0.47).sin()).collect()
}

/// A nonlinear ground-truth preference for one user (so linear-in-input
/// models underfit but basis expansions can fit).
fn truth(item: u64) -> f64 {
    let a = item_attrs(item);
    (a[0] * a[1]).tanh() + 0.5 * a[2] - 0.3 * (a[3] * std::f64::consts::PI).sin()
}

fn deploy(model: Arc<dyn VeloxModel>) -> Arc<Velox> {
    let mut config = VeloxConfig::single_node();
    config.lambda = 0.3;
    let velox = Arc::new(Velox::deploy(model, HashMap::new(), config));
    for item in 0..N_ITEMS {
        velox.register_item(item, item_attrs(item));
    }
    velox
}

fn train_and_eval(velox: &Velox) -> (f64, f64) {
    // Train on items 0..40, evaluate on held-out items 40..60.
    let mut before = 0.0;
    for item in 40..N_ITEMS {
        let p = velox.predict(1, &Item::Id(item)).unwrap().score;
        before += (p - truth(item)).powi(2);
    }
    for pass in 0..3 {
        for item in 0..40u64 {
            velox.observe(1, &Item::Id(item), truth(item)).unwrap();
        }
        let _ = pass;
    }
    let mut after = 0.0;
    for item in 40..N_ITEMS {
        let p = velox.predict(1, &Item::Id(item)).unwrap().score;
        after += (p - truth(item)).powi(2);
    }
    ((before / 20.0f64).sqrt(), (after / 20.0f64).sqrt())
}

#[test]
fn rff_model_learns_nonlinear_preferences() {
    let model = RandomFourierModel::new("rff", INPUT_DIM, 128, 1.0, 0.3, 11);
    let velox = deploy(Arc::new(model));
    let (before, after) = train_and_eval(&velox);
    assert!(
        after < before * 0.5,
        "RFF should generalize to held-out items: {before:.4} -> {after:.4}"
    );
}

#[test]
fn mlp_model_learns_nonlinear_preferences() {
    let model = MlpFeatureModel::new("mlp", INPUT_DIM, &[64, 32], 0.3, 13);
    let velox = deploy(Arc::new(model));
    let (before, after) = train_and_eval(&velox);
    assert!(after < before * 0.75, "MLP features should generalize: {before:.4} -> {after:.4}");
}

#[test]
fn svm_ensemble_serves_and_learns() {
    let model = SvmEnsembleModel::random("svm", INPUT_DIM, 64, 0.3, 17);
    let velox = deploy(Arc::new(model));
    let (before, after) = train_and_eval(&velox);
    assert!(after < before, "SVM-basis model must at least improve: {before:.4} -> {after:.4}");
}

#[test]
fn computed_model_full_lifecycle_retrain_and_rollback() {
    let model = RandomFourierModel::new("rff-life", INPUT_DIM, 64, 1.0, 0.3, 19);
    let velox = deploy(Arc::new(model));

    // Several users observe.
    for uid in 0..8u64 {
        for item in 0..30u64 {
            velox.observe(uid, &Item::Id(item), truth(item) + (uid as f64) * 0.01).unwrap();
        }
    }
    let probe_v1 = velox.predict(3, &Item::Id(50)).unwrap().score;

    // Retrain: per-user ridge refit over the full history.
    let v2 = velox.retrain_offline().unwrap();
    assert_eq!(v2, 2);
    let probe_v2 = velox.predict(3, &Item::Id(50)).unwrap().score;
    assert!(probe_v2.is_finite());

    // Rollback to v1's end-of-reign state.
    let v3 = velox.rollback(1).unwrap();
    assert_eq!(v3, 3);
    let probe_rolled = velox.predict(3, &Item::Id(50)).unwrap().score;
    assert!(
        (probe_rolled - probe_v1).abs() < 1e-9,
        "rollback must restore: {probe_v1} vs {probe_rolled}"
    );
}

#[test]
fn computed_model_catalog_topk_is_exact() {
    let model = MlpFeatureModel::new("mlp-topk", INPUT_DIM, &[32, 16], 0.3, 23);
    let velox = deploy(Arc::new(model));
    for item in 0..20u64 {
        velox.observe(2, &Item::Id(item), truth(item)).unwrap();
    }
    let top = velox.top_k_catalog(2, 5).unwrap();
    assert_eq!(top.len(), 5);
    // Matches brute force over point predictions.
    let mut all: Vec<(u64, f64)> =
        (0..N_ITEMS).map(|item| (item, velox.predict(2, &Item::Id(item)).unwrap().score)).collect();
    all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (got, want) in top.iter().zip(all.iter().take(5)) {
        assert!((got.1 - want.1).abs() < 1e-9, "{got:?} vs {want:?}");
    }
}

#[test]
fn raw_and_catalog_items_are_interchangeable() {
    let model = RandomFourierModel::new("rff-raw", INPUT_DIM, 32, 1.0, 0.3, 29);
    let velox = deploy(Arc::new(model));
    velox.observe(1, &Item::Id(7), 1.5).unwrap();
    // Serving the same item by id and by raw payload gives the same score.
    let by_id = velox.predict(1, &Item::Id(7)).unwrap().score;
    let by_raw = velox.predict(1, &Item::Raw(Vector::from_vec(item_attrs(7)))).unwrap().score;
    assert!((by_id - by_raw).abs() < 1e-12);
}
