//! Randomized tests of the serving core, driven by the in-tree seeded
//! generator (`VeloxRng`): under arbitrary interleavings of predict /
//! observe / topK / retrain, the system never serves a stale cached score,
//! version numbers only move forward, and observation counts are conserved.

use std::collections::HashMap;
use std::sync::Arc;

use velox::prelude::*;
use velox_linalg::Vector;

const N_USERS: u64 = 6;
const N_ITEMS: u64 = 12;
const DIM: usize = 3;
const CASES: usize = 48;

#[derive(Debug, Clone)]
enum Op {
    Predict { uid: u64, item: u64 },
    Observe { uid: u64, item: u64, y: f64 },
    TopK { uid: u64, start: u64, len: usize },
    Retrain,
}

/// Weighted op mix: predict 4, observe 4, topK 2, retrain 1 (out of 11).
fn random_op(rng: &mut VeloxRng) -> Op {
    match rng.below(11) {
        0..=3 => Op::Predict { uid: rng.below(N_USERS), item: rng.below(N_ITEMS) },
        4..=7 => Op::Observe {
            uid: rng.below(N_USERS),
            item: rng.below(N_ITEMS),
            y: rng.range(-2.0, 2.0),
        },
        8 | 9 => Op::TopK {
            uid: rng.below(N_USERS),
            start: rng.below(N_ITEMS - 3),
            len: 1 + rng.below(3) as usize,
        },
        _ => Op::Retrain,
    }
}

fn item_attrs(item: u64) -> Vec<f64> {
    (0..DIM).map(|k| ((item as f64 + 1.0) * (k as f64 + 0.8) * 0.53).sin()).collect()
}

fn fresh_velox() -> Arc<Velox> {
    let model = IdentityModel::new("prop", DIM, 0.5);
    let mut config = VeloxConfig::single_node();
    config.lambda = 0.5; // must match the reference model's ridge constant
    let velox = Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), config));
    for item in 0..N_ITEMS {
        velox.register_item(item, item_attrs(item));
    }
    velox
}

/// Ground-truth reference: an independent per-user ridge with the same λ,
/// update rule, *and* mean-weight bootstrap semantics — unknown users are
/// served (and new online state is seeded with) the mean of the observing
/// users' latest weights, exactly §5's heuristic.
struct Reference {
    states: HashMap<u64, velox_online::UserOnlineModel>,
    latest_weights: HashMap<u64, Vector>,
}

impl Reference {
    fn new() -> Self {
        Reference { states: HashMap::new(), latest_weights: HashMap::new() }
    }
    fn bootstrap_mean(&self) -> Vector {
        let n = self.latest_weights.len();
        if n == 0 {
            return Vector::zeros(DIM);
        }
        let mut mean = Vector::zeros(DIM);
        for w in self.latest_weights.values() {
            mean.axpy(1.0, w).unwrap();
        }
        mean.scale(1.0 / n as f64);
        mean
    }
    fn predict(&mut self, uid: u64, item: u64) -> f64 {
        let x = Vector::from_vec(item_attrs(item));
        match self.states.get(&uid) {
            Some(state) => state.predict(&x).unwrap(),
            None => self.bootstrap_mean().dot(&x).unwrap(),
        }
    }
    fn observe(&mut self, uid: u64, item: u64, y: f64) {
        let x = Vector::from_vec(item_attrs(item));
        if !self.states.contains_key(&uid) {
            let prior = self.bootstrap_mean();
            self.states.insert(
                uid,
                velox_online::UserOnlineModel::from_prior(
                    &prior,
                    0.5,
                    UpdateStrategy::ShermanMorrison,
                ),
            );
        }
        let state = self.states.get_mut(&uid).expect("just ensured");
        state.observe(&x, y).unwrap();
        self.latest_weights.insert(uid, state.weights().clone());
    }
}

/// Cached or not, every served score equals the reference computation;
/// retrains reset user weights to a retrained model but the *cache
/// never serves across a version boundary*.
#[test]
fn serving_is_always_fresh() {
    let mut rng = VeloxRng::seed_from(0xc0_7e);
    for case in 0..CASES {
        let n_ops = 1 + rng.below(59) as usize;
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();

        let velox = fresh_velox();
        let mut reference = Reference::new();
        let mut observations: u64 = 0;
        let mut last_version = velox.model_version();
        // After a retrain the reference diverges (ALS-free identity model
        // refit); we stop checking exact scores but keep checking cache
        // consistency (predict twice must agree).
        let mut reference_valid = true;

        for op in ops {
            match op {
                Op::Predict { uid, item } => {
                    let a = velox.predict(uid, &Item::Id(item)).unwrap();
                    let b = velox.predict(uid, &Item::Id(item)).unwrap();
                    assert_eq!(a.score, b.score, "case {case}: double predict must agree");
                    // Bootstrap-mean serves are deliberately uncacheable
                    // (the mean moves with any user's update); everything
                    // else must hit on the identical repeat.
                    if !a.bootstrapped {
                        assert!(b.cached, "case {case}: second identical predict must be cached");
                    } else {
                        assert!(!b.cached, "case {case}: bootstrapped scores must never be cached");
                    }
                    if reference_valid {
                        let want = reference.predict(uid, item);
                        assert!(
                            (a.score - want).abs() < 1e-9,
                            "case {case}: stale serve: got {}, want {}",
                            a.score,
                            want
                        );
                    }
                }
                Op::Observe { uid, item, y } => {
                    velox.observe(uid, &Item::Id(item), y).unwrap();
                    if reference_valid {
                        reference.observe(uid, item, y);
                    }
                    observations += 1;
                }
                Op::TopK { uid, start, len } => {
                    let items: Vec<Item> = (start..start + len as u64).map(Item::Id).collect();
                    let resp = velox.top_k(uid, &items).unwrap();
                    assert_eq!(resp.ranked.len(), items.len());
                    // Ranked scores agree with point predictions.
                    for &(idx, score) in &resp.ranked {
                        let point = velox.predict(uid, &items[idx]).unwrap().score;
                        assert!((point - score).abs() < 1e-9);
                    }
                    assert!(resp.served < items.len());
                }
                Op::Retrain => match velox.retrain_offline() {
                    Ok(v) => {
                        assert!(v > last_version, "case {case}: versions move forward");
                        last_version = v;
                        reference_valid = false;
                    }
                    Err(VeloxError::RetrainFailed(_)) => {
                        // No data yet — acceptable.
                    }
                    Err(e) => panic!("case {case}: retrain: {e}"),
                },
            }
            assert_eq!(velox.model_version(), last_version);
        }
        assert_eq!(velox.stats().observations, observations, "case {case}: no observation lost");
    }
}
