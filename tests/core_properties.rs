//! Property-based tests of the serving core: under arbitrary interleavings
//! of predict / observe / topK / retrain, the system never serves a stale
//! cached score, version numbers only move forward, and observation counts
//! are conserved.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use velox::prelude::*;
use velox_linalg::Vector;

const N_USERS: u64 = 6;
const N_ITEMS: u64 = 12;
const DIM: usize = 3;

#[derive(Debug, Clone)]
enum Op {
    Predict { uid: u64, item: u64 },
    Observe { uid: u64, item: u64, y: f64 },
    TopK { uid: u64, start: u64, len: usize },
    Retrain,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..N_USERS, 0..N_ITEMS).prop_map(|(uid, item)| Op::Predict { uid, item }),
        4 => (0..N_USERS, 0..N_ITEMS, -2.0f64..2.0)
            .prop_map(|(uid, item, y)| Op::Observe { uid, item, y }),
        2 => (0..N_USERS, 0..N_ITEMS - 3, 1usize..4)
            .prop_map(|(uid, start, len)| Op::TopK { uid, start, len }),
        1 => Just(Op::Retrain),
    ]
}

fn item_attrs(item: u64) -> Vec<f64> {
    (0..DIM).map(|k| ((item as f64 + 1.0) * (k as f64 + 0.8) * 0.53).sin()).collect()
}

fn fresh_velox() -> Arc<Velox> {
    let model = IdentityModel::new("prop", DIM, 0.5);
    let mut config = VeloxConfig::single_node();
    config.lambda = 0.5; // must match the reference model's ridge constant
    let velox = Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), config));
    for item in 0..N_ITEMS {
        velox.register_item(item, item_attrs(item));
    }
    velox
}

/// Ground-truth reference: an independent per-user ridge with the same λ,
/// update rule, *and* mean-weight bootstrap semantics — unknown users are
/// served (and new online state is seeded with) the mean of the observing
/// users' latest weights, exactly §5's heuristic.
struct Reference {
    states: HashMap<u64, velox_online::UserOnlineModel>,
    latest_weights: HashMap<u64, Vector>,
}

impl Reference {
    fn new() -> Self {
        Reference { states: HashMap::new(), latest_weights: HashMap::new() }
    }
    fn bootstrap_mean(&self) -> Vector {
        let n = self.latest_weights.len();
        if n == 0 {
            return Vector::zeros(DIM);
        }
        let mut mean = Vector::zeros(DIM);
        for w in self.latest_weights.values() {
            mean.axpy(1.0, w).unwrap();
        }
        mean.scale(1.0 / n as f64);
        mean
    }
    fn predict(&mut self, uid: u64, item: u64) -> f64 {
        let x = Vector::from_vec(item_attrs(item));
        match self.states.get(&uid) {
            Some(state) => state.predict(&x).unwrap(),
            None => self.bootstrap_mean().dot(&x).unwrap(),
        }
    }
    fn observe(&mut self, uid: u64, item: u64, y: f64) {
        let x = Vector::from_vec(item_attrs(item));
        if !self.states.contains_key(&uid) {
            let prior = self.bootstrap_mean();
            self.states.insert(
                uid,
                velox_online::UserOnlineModel::from_prior(
                    &prior,
                    0.5,
                    UpdateStrategy::ShermanMorrison,
                ),
            );
        }
        let state = self.states.get_mut(&uid).expect("just ensured");
        state.observe(&x, y).unwrap();
        self.latest_weights.insert(uid, state.weights().clone());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cached or not, every served score equals the reference computation;
    /// retrains reset user weights to a retrained model but the *cache
    /// never serves across a version boundary*.
    #[test]
    fn serving_is_always_fresh(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let velox = fresh_velox();
        let mut reference = Reference::new();
        let mut observations: u64 = 0;
        let mut last_version = velox.model_version();
        // After a retrain the reference diverges (ALS-free identity model
        // refit); we stop checking exact scores but keep checking cache
        // consistency (predict twice must agree).
        let mut reference_valid = true;

        for op in ops {
            match op {
                Op::Predict { uid, item } => {
                    let a = velox.predict(uid, &Item::Id(item)).unwrap();
                    let b = velox.predict(uid, &Item::Id(item)).unwrap();
                    prop_assert_eq!(a.score, b.score, "double predict must agree");
                    // Bootstrap-mean serves are deliberately uncacheable
                    // (the mean moves with any user's update); everything
                    // else must hit on the identical repeat.
                    if !a.bootstrapped {
                        prop_assert!(b.cached, "second identical predict must be cached");
                    } else {
                        prop_assert!(!b.cached, "bootstrapped scores must never be cached");
                    }
                    if reference_valid {
                        let want = reference.predict(uid, item);
                        prop_assert!(
                            (a.score - want).abs() < 1e-9,
                            "stale serve: got {}, want {}", a.score, want
                        );
                    }
                }
                Op::Observe { uid, item, y } => {
                    velox.observe(uid, &Item::Id(item), y).unwrap();
                    if reference_valid {
                        reference.observe(uid, item, y);
                    }
                    observations += 1;
                }
                Op::TopK { uid, start, len } => {
                    let items: Vec<Item> =
                        (start..start + len as u64).map(Item::Id).collect();
                    let resp = velox.top_k(uid, &items).unwrap();
                    prop_assert_eq!(resp.ranked.len(), items.len());
                    // Ranked scores agree with point predictions.
                    for &(idx, score) in &resp.ranked {
                        let point = velox.predict(uid, &items[idx]).unwrap().score;
                        prop_assert!((point - score).abs() < 1e-9);
                    }
                    prop_assert!(resp.served < items.len());
                }
                Op::Retrain => {
                    match velox.retrain_offline() {
                        Ok(v) => {
                            prop_assert!(v > last_version, "versions move forward");
                            last_version = v;
                            reference_valid = false;
                        }
                        Err(VeloxError::RetrainFailed(_)) => {
                            // No data yet — acceptable.
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("retrain: {e}"))),
                    }
                }
            }
            prop_assert_eq!(velox.model_version(), last_version);
        }
        prop_assert_eq!(velox.stats().observations, observations, "no observation lost");
    }
}
