//! Integration tests for the observability layer: every counter the
//! registry exposes reconciles exactly with the operations the test issued,
//! and the lifecycle event log records retrains, swaps, and rollbacks.

use std::collections::HashMap;
use std::sync::Arc;

use velox::prelude::*;

const DIM: usize = 3;
const N_ITEMS: u64 = 16;

fn item_attrs(item: u64) -> Vec<f64> {
    (0..DIM).map(|k| ((item as f64 + 1.0) * (k as f64 + 0.7) * 0.41).cos()).collect()
}

fn fresh_velox() -> Arc<Velox> {
    let model = IdentityModel::new("obs-test", DIM, 0.5);
    let velox =
        Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), VeloxConfig::single_node()));
    for item in 0..N_ITEMS {
        velox.register_item(item, item_attrs(item));
    }
    velox
}

/// Every predict() increments exactly one of {hits, misses}; every
/// observe() records exactly one sample in the observe histogram and one
/// observation counter tick. Nothing is dropped, nothing double-counted.
#[test]
fn counters_reconcile_with_operations() {
    let velox = fresh_velox();
    let mut predict_calls = 0u64;
    let mut observe_calls = 0u64;

    // A deliberate mix: bootstrapped serves (uncacheable), trained users
    // (miss then hit), and repeats.
    for round in 0..4u64 {
        for item in 0..N_ITEMS {
            velox.predict(round, &Item::Id(item)).unwrap();
            predict_calls += 1;
        }
        for item in 0..N_ITEMS / 2 {
            velox.observe(round, &Item::Id(item), (item as f64 * 0.3).sin()).unwrap();
            observe_calls += 1;
        }
        // The user now has online state, so these populate the cache...
        for item in 0..N_ITEMS {
            velox.predict(round, &Item::Id(item)).unwrap();
            predict_calls += 1;
        }
        // ...and identical repeats (no intervening observe) must hit it.
        for item in 0..N_ITEMS {
            velox.predict(round, &Item::Id(item)).unwrap();
            predict_calls += 1;
        }
    }

    let snap = velox.registry().snapshot();
    let hits = snap.counter("velox_prediction_cache_hits_total");
    let misses = snap.counter("velox_prediction_cache_misses_total");
    assert_eq!(
        hits + misses,
        predict_calls,
        "every predict increments exactly one of hits ({hits}) / misses ({misses})"
    );
    assert!(hits > 0, "repeated predictions must produce some hits");
    assert!(misses > 0, "first-time predictions must produce some misses");

    let predict_hist = snap.histogram("velox_predict_latency_ns").expect("predict histogram");
    assert_eq!(predict_hist.count, predict_calls, "one latency sample per predict");

    let observe_hist = snap.histogram("velox_observe_latency_ns").expect("observe histogram");
    assert_eq!(observe_hist.count, observe_calls, "one latency sample per observe");
    assert_eq!(snap.counter("velox_observations_total"), observe_calls);
    assert_eq!(velox.stats().observations, observe_calls, "stats() sources the same registry");

    let update_hist =
        snap.histogram("velox_online_update_latency_ns").expect("online update histogram");
    assert_eq!(update_hist.count, observe_calls, "one online update per observe");
}

/// top_k scores candidates through the prediction cache: each candidate
/// contributes exactly one hit-or-miss tick, so the counters still
/// reconcile when batch scoring is in play.
#[test]
fn topk_candidates_count_as_cache_lookups() {
    let velox = fresh_velox();
    velox.observe(1, &Item::Id(0), 1.0).unwrap();

    let before = velox.registry().snapshot();
    let base = before.counter("velox_prediction_cache_hits_total")
        + before.counter("velox_prediction_cache_misses_total");

    let items: Vec<Item> = (0..8u64).map(Item::Id).collect();
    velox.top_k(1, &items).unwrap();
    velox.top_k(1, &items).unwrap();

    let after = velox.registry().snapshot();
    let total = after.counter("velox_prediction_cache_hits_total")
        + after.counter("velox_prediction_cache_misses_total");
    assert_eq!(total - base, 16, "8 candidates x 2 calls, one tick each");
    assert!(
        after.counter("velox_prediction_cache_hits_total")
            > before.counter("velox_prediction_cache_hits_total"),
        "second top_k over identical candidates must hit"
    );
}

/// Retrain emits RetrainStart, then VersionSwap (the new model going
/// live), then RetrainFinish (the whole operation, swap included); the
/// version in the swap matches what retrain returned.
#[test]
fn lifecycle_events_record_retrain_and_swap() {
    let velox = fresh_velox();
    for item in 0..N_ITEMS {
        velox.observe(0, &Item::Id(item), 0.5).unwrap();
    }
    let new_version = velox.retrain_offline().unwrap();

    let events = velox.registry().recent_events();
    let kinds: Vec<&'static str> = events.iter().map(|e| e.kind.name()).collect();
    let start = kinds.iter().position(|k| *k == "retrain_start").expect("retrain_start");
    let finish = kinds.iter().position(|k| *k == "retrain_finish").expect("retrain_finish");
    let swap = kinds.iter().position(|k| *k == "version_swap").expect("version_swap");
    assert!(start < swap && swap < finish, "order: start < swap < finish, got {kinds:?}");

    match events[swap].kind {
        EventKind::VersionSwap { to, .. } => assert_eq!(to, new_version),
        _ => unreachable!("position() found version_swap"),
    }
    assert_eq!(velox.registry().snapshot().counter("velox_retrains_total"), 1);

    // Sequence numbers are strictly increasing.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
}
