//! Concurrency tests: the serving and management paths are exercised from
//! many threads at once. The paper's design premise — per-user updates are
//! "lightweight [and] conflict free" because user weights are independent —
//! must hold as actual thread-safety here.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use velox::prelude::*;

fn deploy() -> Arc<Velox> {
    let ds = RatingsDataset::generate(SyntheticConfig {
        n_users: 32,
        n_items: 64,
        rank: 4,
        ratings_per_user: 10,
        seed: 77,
        ..Default::default()
    });
    let executor = JobExecutor::new(4);
    let als = AlsModel::train(
        &ds.ratings,
        32,
        64,
        AlsConfig { rank: 4, lambda: 0.05, iterations: 4, seed: 5 },
        &executor,
    );
    let (model, weights) = MatrixFactorizationModel::from_als("mt", &als);
    let config = VeloxConfig {
        cluster: ClusterConfig { n_nodes: 4, ..Default::default() },
        ..Default::default()
    };
    Arc::new(Velox::deploy(Arc::new(model), weights, config))
}

#[test]
fn concurrent_predicts_are_consistent() {
    let velox = deploy();
    // Pre-compute expected scores single-threaded.
    let mut expected = HashMap::new();
    for uid in 0..32u64 {
        for item in 0..16u64 {
            expected.insert((uid, item), velox.predict(uid, &Item::Id(item)).unwrap().score);
        }
    }
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let velox = Arc::clone(&velox);
        let expected = expected.clone();
        handles.push(thread::spawn(move || {
            for i in 0..2000u64 {
                let uid = (t * 7 + i) % 32;
                let item = (t * 13 + i) % 16;
                let score = velox.predict(uid, &Item::Id(item)).unwrap().score;
                assert_eq!(score, expected[&(uid, item)], "read-only serving must be stable");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_observes_on_disjoint_users_all_land() {
    let velox = deploy();
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let velox = Arc::clone(&velox);
        handles.push(thread::spawn(move || {
            // Threads own disjoint user ranges: t*4..(t+1)*4.
            for i in 0..250u64 {
                let uid = t * 4 + (i % 4);
                let item = i % 64;
                velox.observe(uid, &Item::Id(item), 1.0).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = velox.stats();
    assert_eq!(stats.observations, 2000, "no observation lost");
}

#[test]
fn concurrent_observes_on_same_user_serialize_correctly() {
    let velox = deploy();
    // All threads hammer user 0 with the same strong signal; the final
    // prediction must reflect all updates (per-user lock serializes them).
    let mut handles = Vec::new();
    for _ in 0..4 {
        let velox = Arc::clone(&velox);
        handles.push(thread::spawn(move || {
            for _ in 0..100 {
                velox.observe(0, &Item::Id(1), 10.0).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(velox.stats().observations, 400);
    let pred = velox.predict(0, &Item::Id(1)).unwrap().score;
    assert!(pred > 5.0, "400 observations of 10.0 must dominate: {pred}");
}

#[test]
fn serving_continues_during_retrain() {
    let velox = deploy();
    // Build up history so a retrain has data.
    for uid in 0..32u64 {
        for item in 0..8u64 {
            velox.observe(uid, &Item::Id(item), 2.0).unwrap();
        }
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let velox = Arc::clone(&velox);
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            let mut served = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let uid = (t + served) % 32;
                let item = served % 64;
                // Either version may serve during the swap; both are valid.
                velox.predict(uid, &Item::Id(item)).unwrap();
                served += 1;
            }
            served
        }));
    }
    // A couple of retrains while serving hammers on.
    for _ in 0..2 {
        velox.retrain_offline().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "serving threads made progress during retrains");
    assert_eq!(velox.stats().retrains, 2);
    assert_eq!(velox.stats().model_version, 3);
}

#[test]
fn mixed_workload_stress() {
    let velox = deploy();
    let mut handles = Vec::new();
    // Writers.
    for t in 0..4u64 {
        let velox = Arc::clone(&velox);
        handles.push(thread::spawn(move || {
            for i in 0..300u64 {
                let uid = (t * 8 + i) % 32;
                velox.observe(uid, &Item::Id(i % 64), (i % 5) as f64).unwrap();
            }
        }));
    }
    // Readers (point + topK).
    for t in 0..4u64 {
        let velox = Arc::clone(&velox);
        handles.push(thread::spawn(move || {
            let items: Vec<Item> = (0..20).map(Item::Id).collect();
            for i in 0..300u64 {
                let uid = (t * 5 + i) % 32;
                if i % 3 == 0 {
                    let resp = velox.top_k(uid, &items).unwrap();
                    assert_eq!(resp.ranked.len(), 20);
                } else {
                    assert!(velox.predict(uid, &Item::Id(i % 64)).unwrap().score.is_finite());
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = velox.stats();
    assert_eq!(stats.observations, 1200);
    assert!(stats.mean_loss.is_finite());
}
