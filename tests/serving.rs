//! End-to-end serving tests: deploy a trained matrix-factorization model
//! and exercise the predict/topK API of Listing 1 — caching, routing,
//! bootstrapping, ranking.

use std::sync::Arc;

use velox::prelude::*;

fn deploy(n_nodes: usize) -> (Arc<Velox>, RatingsDataset) {
    let ds = RatingsDataset::generate(SyntheticConfig {
        n_users: 60,
        n_items: 120,
        rank: 8,
        ratings_per_user: 20,
        noise_std: 0.3,
        seed: 2025,
        ..Default::default()
    });
    let executor = JobExecutor::new(4);
    let als = AlsModel::train(
        &ds.ratings,
        60,
        120,
        AlsConfig { rank: 8, lambda: 0.05, iterations: 6, seed: 7 },
        &executor,
    );
    let (model, weights) = MatrixFactorizationModel::from_als("songs", &als);
    let config = VeloxConfig {
        cluster: ClusterConfig { n_nodes, ..Default::default() },
        ..Default::default()
    };
    (Arc::new(Velox::deploy(Arc::new(model), weights, config)), ds)
}

#[test]
fn predictions_match_manual_dot_products() {
    let (velox, ds) = deploy(1);
    let executor = JobExecutor::new(4);
    let als = AlsModel::train(
        &ds.ratings,
        60,
        120,
        AlsConfig { rank: 8, lambda: 0.05, iterations: 6, seed: 7 },
        &executor,
    );
    for r in ds.ratings.iter().take(40) {
        let resp = velox.predict(r.uid, &Item::Id(r.item_id)).unwrap();
        // Velox serves wᵤᵀxᵢ (the μ offset lives in the model object; the
        // latent-factor table holds centered scores).
        let manual = als.predict(r.uid, r.item_id) - als.global_mean;
        assert!(
            (resp.score - manual).abs() < 1e-9,
            "serving score {} vs manual {}",
            resp.score,
            manual
        );
        assert!(!resp.bootstrapped);
    }
}

#[test]
fn repeat_prediction_hits_cache() {
    let (velox, _) = deploy(1);
    let cold = velox.predict(3, &Item::Id(10)).unwrap();
    assert!(!cold.cached);
    let warm = velox.predict(3, &Item::Id(10)).unwrap();
    assert!(warm.cached, "identical request must be served from cache");
    assert_eq!(warm.score, cold.score);
    assert_eq!(warm.virtual_cost_us, 0.0, "cache hits cost no storage reads");
    let stats = velox.stats();
    assert!(stats.prediction_cache.0 >= 1);
}

#[test]
fn observe_invalidates_users_cached_predictions() {
    let (velox, _) = deploy(1);
    let before = velox.predict(5, &Item::Id(20)).unwrap();
    assert!(velox.predict(5, &Item::Id(20)).unwrap().cached);
    // Feedback changes user 5's weights → next prediction must recompute.
    velox.observe(5, &Item::Id(20), 5.0).unwrap();
    let after = velox.predict(5, &Item::Id(20)).unwrap();
    assert!(!after.cached, "user update must version the cache key");
    assert_ne!(before.score, after.score, "feedback must change the score");
    // Another user's cached entries survive.
    velox.predict(6, &Item::Id(20)).unwrap();
    assert!(velox.predict(6, &Item::Id(20)).unwrap().cached);
}

#[test]
fn unknown_user_gets_bootstrap_prediction() {
    let (velox, _) = deploy(1);
    let resp = velox.predict(9999, &Item::Id(10)).unwrap();
    assert!(resp.bootstrapped);
    assert!(resp.score.is_finite());
    // The bootstrap score is the mean-user score, so it should be within
    // the range of individual user scores for the same item.
    let all: Vec<f64> = (0..60).map(|u| velox.predict(u, &Item::Id(10)).unwrap().score).collect();
    let (lo, hi) =
        all.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &s| (l.min(s), h.max(s)));
    assert!(resp.score >= lo - 1e-9 && resp.score <= hi + 1e-9);
}

#[test]
fn unknown_item_is_an_error() {
    let (velox, _) = deploy(1);
    let err = velox.predict(1, &Item::Id(999_999)).unwrap_err();
    assert!(matches!(err, VeloxError::Model(velox_models::ModelError::UnknownItem(_))));
}

#[test]
fn topk_ranks_by_score_descending() {
    let (velox, _) = deploy(1);
    let items: Vec<Item> = (0..30).map(Item::Id).collect();
    let resp = velox.top_k(7, &items).unwrap();
    assert_eq!(resp.ranked.len(), 30);
    for w in resp.ranked.windows(2) {
        assert!(w[0].1 >= w[1].1, "ranking must be descending");
    }
    // Scores agree with point predictions.
    for &(idx, score) in resp.ranked.iter().take(5) {
        let point = velox.predict(7, &items[idx]).unwrap();
        assert!((point.score - score).abs() < 1e-9);
    }
    assert!(resp.served < items.len());
}

#[test]
fn topk_rejects_empty_candidates() {
    let (velox, _) = deploy(1);
    assert!(matches!(velox.top_k(1, &[]), Err(VeloxError::EmptyCandidateSet)));
}

#[test]
fn topk_second_call_is_mostly_cached() {
    let (velox, _) = deploy(1);
    let items: Vec<Item> = (0..50).map(Item::Id).collect();
    let first = velox.top_k(2, &items).unwrap();
    assert_eq!(first.cached_fraction, 0.0);
    let second = velox.top_k(2, &items).unwrap();
    assert!(
        second.cached_fraction > 0.95,
        "overlapping itemset should be cache-served: {}",
        second.cached_fraction
    );
    assert!(second.virtual_cost_us < first.virtual_cost_us);
}

#[test]
fn multinode_serving_keeps_user_reads_local() {
    let (velox, ds) = deploy(8);
    for r in ds.ratings.iter().take(400) {
        velox.predict(r.uid, &Item::Id(r.item_id)).unwrap();
    }
    let stats = velox.stats();
    // User-weight reads are all local under ByUser routing; item reads may
    // be remote but get cached. Overall locality should be high.
    assert!(
        stats.cluster.local_fraction() > 0.5,
        "local fraction {}",
        stats.cluster.local_fraction()
    );
    // Requests spread across nodes.
    let served: Vec<u64> = stats.cluster.nodes.iter().map(|n| n.requests_served).collect();
    assert!(served.iter().filter(|&&s| s > 0).count() >= 6, "{served:?}");
}

#[test]
fn system_stats_reflect_activity() {
    let (velox, _) = deploy(2);
    velox.predict(1, &Item::Id(1)).unwrap();
    velox.observe(1, &Item::Id(1), 4.0).unwrap();
    velox.observe(2, &Item::Id(5), 2.0).unwrap();
    let stats = velox.stats();
    assert_eq!(stats.model_version, 1);
    assert_eq!(stats.retrains, 0);
    assert_eq!(stats.observations, 2);
    assert_eq!(stats.online_users, 2, "online state is created lazily per observing user");
    assert!(stats.mean_loss >= 0.0);
}

#[test]
fn catalog_topk_matches_brute_force() {
    let (velox, _) = deploy(1);
    let k = 10;
    let top = velox.top_k_catalog(7, k).unwrap();
    assert_eq!(top.len(), k);
    // Brute force via point predictions over the whole catalog.
    let mut all: Vec<(u64, f64)> =
        (0..120u64).map(|item| (item, velox.predict(7, &Item::Id(item)).unwrap().score)).collect();
    all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (got, want) in top.iter().zip(all.iter().take(k)) {
        assert!((got.1 - want.1).abs() < 1e-12, "{got:?} vs {want:?}");
    }
    // Scores strictly descending.
    for w in top.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
}

#[test]
fn catalog_topk_index_rebuilds_after_retrain() {
    let (velox, ds) = deploy(1);
    let before = velox.top_k_catalog(3, 5).unwrap();
    for r in ds.ratings.iter().take(500) {
        velox.observe(r.uid, &Item::Id(r.item_id), r.value - 3.0).unwrap();
    }
    velox.retrain_offline().unwrap();
    let after = velox.top_k_catalog(3, 5).unwrap();
    // New θ → (almost surely) different scores; and the result must match
    // a fresh brute force under the new model.
    let mut all: Vec<(u64, f64)> =
        (0..120u64).map(|item| (item, velox.predict(3, &Item::Id(item)).unwrap().score)).collect();
    all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (got, want) in after.iter().zip(all.iter().take(5)) {
        assert!((got.1 - want.1).abs() < 1e-12);
    }
    assert_ne!(before, after, "index must not serve the old model version");
}
