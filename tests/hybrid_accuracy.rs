//! Miniature of the §4.2 accuracy experiment (TAB-ACC in DESIGN.md).
//!
//! Protocol from the paper: initialize the feature parameters θ offline on
//! half the data; per user, estimate weights from their offline ratings;
//! stream 70% of the remainder through online updates; measure held-out
//! error. Expected shape: static < online-only < full-retrain in accuracy,
//! with online recovering a majority of the full-retrain gain (the paper
//! reports 1.6% of 2.3% ≈ 70%).
//!
//! The regime matters and matches the paper's: MovieLens has hundreds of
//! ratings per item, so θ is well-estimated offline and most of what a full
//! retrain adds is better *user* weights — which online updates also
//! capture. The generator is configured item-dense accordingly.
//!
//! The full-scale version runs in the bench harness (`acc_hybrid_online`);
//! this test pins the *ordering* and a conservative ratio at CI scale.

use std::collections::HashMap;
use std::sync::Arc;

use velox::prelude::*;
use velox_data::three_way_split;

#[test]
fn online_recovers_most_of_full_retrain_gain() {
    let ds = RatingsDataset::generate(SyntheticConfig {
        n_users: 1500,
        n_items: 100,
        rank: 8,
        ratings_per_user: 30,
        noise_std: 0.3,
        seed: 4242,
        ..Default::default()
    });
    let split = three_way_split(&ds, 0.5, 0.7);
    let executor = JobExecutor::new(8);
    let als_cfg = AlsConfig { rank: 8, lambda: 0.05, iterations: 8, seed: 11 };
    let als = AlsModel::train(
        &split.offline,
        ds.config.n_users,
        ds.config.n_items,
        als_cfg.clone(),
        &executor,
    );
    let mu = als.global_mean;

    let heldout_rmse = |velox: &Velox, mu: f64| -> f64 {
        let mut sse = 0.0;
        for r in &split.heldout {
            let p = velox.predict(r.uid, &Item::Id(r.item_id)).unwrap().score + mu;
            sse += (p - r.value) * (p - r.value);
        }
        (sse / split.heldout.len() as f64).sqrt()
    };
    let history: Vec<TrainingExample> = split
        .offline
        .iter()
        .map(|r| TrainingExample { uid: r.uid, item: Item::Id(r.item_id), y: r.value - mu })
        .collect();
    let deploy = || {
        let (model, _) = MatrixFactorizationModel::from_als("hybrid", &als);
        let v = Velox::deploy(Arc::new(model), HashMap::new(), VeloxConfig::single_node());
        v.ingest_history(&history).unwrap();
        v
    };

    // Strategy A: static — θ and per-user weights from the offline data
    // only (Eq. 2 over each user's offline history), never updated.
    let velox_static = deploy();
    let rmse_static = heldout_rmse(&velox_static, mu);

    // Strategy B: Velox hybrid — same initialization, then incremental
    // online updates over the online stream.
    let velox_online = deploy();
    for r in &split.online {
        velox_online.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
    }
    let rmse_online = heldout_rmse(&velox_online, mu);

    // Strategy C: full offline retrain on offline + online data (new θ and
    // new user weights).
    let mut full_train = split.offline.clone();
    full_train.extend(split.online.iter().cloned());
    let als_full =
        AlsModel::train(&full_train, ds.config.n_users, ds.config.n_items, als_cfg, &executor);
    let (model_c, weights_c) = MatrixFactorizationModel::from_als("full", &als_full);
    let velox_full = Velox::deploy(Arc::new(model_c), weights_c, VeloxConfig::single_node());
    let rmse_full = heldout_rmse(&velox_full, als_full.global_mean);

    assert!(
        rmse_online < rmse_static,
        "online updates must improve on static: static {rmse_static}, online {rmse_online}"
    );
    assert!(
        rmse_full <= rmse_online,
        "full retrain should be at least as good: full {rmse_full}, online {rmse_online}"
    );

    // The paper's headline: online recovers a majority of the full gain
    // (1.6/2.3 ≈ 70%). Require at least half at this scale.
    let online_gain = rmse_static - rmse_online;
    let full_gain = rmse_static - rmse_full;
    assert!(
        online_gain > 0.5 * full_gain,
        "online should recover most of the retrain gain: online {online_gain:.4}, full {full_gain:.4}"
    );
}
