//! Model-lifecycle tests (§4.3, §6): online updates improve accuracy,
//! staleness detection triggers retraining, retrains swap versions and
//! repopulate caches, rollback restores prior behaviour.

use std::sync::Arc;

use velox::prelude::*;
use velox_data::three_way_split;

fn make_dataset(seed: u64) -> RatingsDataset {
    RatingsDataset::generate(SyntheticConfig {
        n_users: 50,
        n_items: 100,
        rank: 6,
        ratings_per_user: 24,
        noise_std: 0.3,
        seed,
        ..Default::default()
    })
}

fn deploy_from(ds: &RatingsDataset, train: &[Rating], config: VeloxConfig) -> Arc<Velox> {
    let executor = JobExecutor::new(4);
    let als = AlsModel::train(
        train,
        ds.config.n_users,
        ds.config.n_items,
        AlsConfig { rank: 6, lambda: 0.05, iterations: 6, seed: 3 },
        &executor,
    );
    let (model, weights) = MatrixFactorizationModel::from_als("m", &als);
    Arc::new(Velox::deploy(Arc::new(model), weights, config))
}

fn heldout_rmse(velox: &Velox, heldout: &[Rating], mu: f64) -> f64 {
    let mut sse = 0.0;
    for r in heldout {
        let p = velox.predict(r.uid, &Item::Id(r.item_id)).unwrap().score + mu;
        sse += (p - r.value) * (p - r.value);
    }
    (sse / heldout.len() as f64).sqrt()
}

fn mean_rating(ratings: &[Rating]) -> f64 {
    ratings.iter().map(|r| r.value).sum::<f64>() / ratings.len() as f64
}

#[test]
fn online_updates_reduce_heldout_error() {
    let ds = make_dataset(41);
    let split = three_way_split(&ds, 0.5, 0.7);
    let velox = deploy_from(&ds, &split.offline, VeloxConfig::single_node());
    let mu = mean_rating(&split.offline);

    let before = heldout_rmse(&velox, &split.heldout, mu);
    for r in &split.online {
        velox.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
    }
    let after = heldout_rmse(&velox, &split.heldout, mu);
    assert!(after < before, "online updates must improve held-out RMSE: {before} -> {after}");
}

#[test]
fn observe_outcome_reports_prequential_loss() {
    let ds = make_dataset(42);
    let split = three_way_split(&ds, 0.5, 0.7);
    let velox = deploy_from(&ds, &split.offline, VeloxConfig::single_node());
    let mu = mean_rating(&split.offline);

    let r = &split.online[0];
    let pred = velox.predict(r.uid, &Item::Id(r.item_id)).unwrap().score;
    let outcome = velox.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
    assert!((outcome.predicted_before - pred).abs() < 1e-9);
    let expected_loss = (r.value - mu - pred) * (r.value - mu - pred);
    assert!((outcome.loss - expected_loss).abs() < 1e-9);
    assert!(outcome.trained);
}

#[test]
fn crossval_holdout_skips_training() {
    let ds = make_dataset(43);
    let split = three_way_split(&ds, 0.5, 0.7);
    let mut config = VeloxConfig::single_node();
    config.crossval_holdout_every = 3;
    let velox = deploy_from(&ds, &split.offline, config);
    let mu = mean_rating(&split.offline);

    let mut trained = 0;
    let mut held = 0;
    for r in split.online.iter().take(99) {
        let outcome = velox.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
        if outcome.trained {
            trained += 1;
        } else {
            held += 1;
        }
    }
    assert_eq!(held, 33, "every third observation held out");
    assert_eq!(trained, 66);
    assert!(velox.stats().generalization_loss.is_some());
}

#[test]
fn manual_retrain_bumps_version_and_uses_new_data() {
    let ds = make_dataset(44);
    let split = three_way_split(&ds, 0.5, 0.7);
    let velox = deploy_from(&ds, &split.offline, VeloxConfig::single_node());
    let mu = mean_rating(&split.offline);

    assert!(
        matches!(velox.retrain_offline(), Err(VeloxError::RetrainFailed(_))),
        "retrain without any observations must fail loudly"
    );

    for r in &split.online {
        velox.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
    }
    let before = heldout_rmse(&velox, &split.heldout, mu);
    let v = velox.retrain_offline().unwrap();
    assert_eq!(v, 2);
    assert_eq!(velox.stats().model_version, 2);
    assert_eq!(velox.stats().retrains, 1);
    let after = heldout_rmse(&velox, &split.heldout, mu);
    assert!(
        after < before * 1.1,
        "retraining on strictly more data should not regress: {before} -> {after}"
    );
}

#[test]
fn retrain_repopulates_hot_cache_entries() {
    let ds = make_dataset(45);
    let split = three_way_split(&ds, 0.5, 0.7);
    let velox = deploy_from(&ds, &split.offline, VeloxConfig::single_node());
    let mu = mean_rating(&split.offline);

    // Warm the cache with hot pairs, then feed data and retrain.
    for uid in 0..10u64 {
        velox.predict(uid, &Item::Id(3)).unwrap();
    }
    for r in split.online.iter().take(200) {
        velox.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
    }
    velox.retrain_offline().unwrap();
    // The previously-hot pair should be warm again under the new version
    // (for users whose weights survived the retrain).
    let resp = velox.predict(0, &Item::Id(3)).unwrap();
    assert!(resp.cached, "hot pair must be repopulated at swap time");
}

#[test]
fn staleness_auto_triggers_retrain_on_drift() {
    let ds = make_dataset(46);
    let split = three_way_split(&ds, 0.5, 0.7);
    let mut config = VeloxConfig::single_node();
    config.auto_retrain = true;
    // Squared-error loss streams are bursty; the threshold must tolerate
    // natural fluctuation and fire only on the genuine regime change below.
    config.staleness_threshold = 2.0;
    config.staleness_warmup = 200;
    let velox = deploy_from(&ds, &split.offline, config);
    let mu = mean_rating(&split.offline);

    // Settle into a stable-loss regime.
    for r in &split.online {
        velox.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
    }
    assert_eq!(velox.stats().retrains, 0, "no drift yet");

    // World shift: labels invert (a Top-40 churn at catalog scale).
    let mut retrained = false;
    for _ in 0..5 {
        for r in &split.online {
            let shifted = -(r.value - mu) * 2.0;
            let outcome = velox.observe(r.uid, &Item::Id(r.item_id), shifted).unwrap();
            if outcome.retrained {
                retrained = true;
                break;
            }
        }
        if retrained {
            break;
        }
    }
    assert!(retrained, "sustained loss increase must auto-trigger a retrain");
    assert!(velox.stats().retrains >= 1);
    assert!(!velox.is_stale(), "retrain resets the staleness flag");
}

#[test]
fn rollback_restores_prior_predictions() {
    let ds = make_dataset(47);
    let split = three_way_split(&ds, 0.5, 0.7);
    let velox = deploy_from(&ds, &split.offline, VeloxConfig::single_node());
    let mu = mean_rating(&split.offline);

    for r in &split.online {
        velox.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
    }
    // Rollback restores a version's end-of-reign state (the weights as they
    // stood when the version was retired, online updates included).
    let probe_score_v1 = velox.predict(1, &Item::Id(2)).unwrap().score;
    velox.retrain_offline().unwrap(); // → v2
    let probe_score_v2 = velox.predict(1, &Item::Id(2)).unwrap().score;
    assert_eq!(velox.rollback_versions(), vec![1]);
    let v = velox.rollback(1).unwrap();
    assert_eq!(v, 3, "rollback serves under a fresh version number");
    let probe_rolled_back = velox.predict(1, &Item::Id(2)).unwrap().score;
    assert!(
        (probe_rolled_back - probe_score_v1).abs() < 1e-9,
        "rollback must restore v1 behaviour: {probe_score_v1} vs {probe_rolled_back}"
    );
    let _ = probe_score_v2;
    // The pre-rollback version is itself recoverable.
    assert!(velox.rollback_versions().contains(&2));
    assert!(matches!(velox.rollback(99), Err(VeloxError::VersionNotFound(99))));
}

#[test]
fn underperforming_users_surface_in_diagnostics() {
    let ds = make_dataset(48);
    let split = three_way_split(&ds, 0.5, 0.7);
    let velox = deploy_from(&ds, &split.offline, VeloxConfig::single_node());
    let mu = mean_rating(&split.offline);

    // Most users behave; user 0 gets adversarial labels.
    for r in &split.online {
        let y = if r.uid == 0 { 25.0 } else { r.value - mu };
        velox.observe(r.uid, &Item::Id(r.item_id), y).unwrap();
    }
    let bad = velox.underperforming_users(3.0, 3);
    assert!(bad.contains(&0), "user 0 must be flagged: {bad:?}");
    assert!(bad.len() < 5, "only genuine outliers flagged: {bad:?}");
}

#[test]
fn async_retrain_swaps_in_background_and_rejects_concurrency() {
    let ds = make_dataset(49);
    let split = three_way_split(&ds, 0.5, 0.7);
    let velox = deploy_from(&ds, &split.offline, VeloxConfig::single_node());
    let mu = mean_rating(&split.offline);
    for r in &split.online {
        velox.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
    }

    let handle = velox.retrain_offline_async().unwrap();
    // Serving continues while the retrain runs; a second retrain request
    // (sync or async) is rejected rather than queued.
    let mut rejected = false;
    loop {
        velox.predict(1, &Item::Id(1)).unwrap();
        match velox.retrain_offline() {
            Err(VeloxError::RetrainInProgress) => {
                rejected = true;
            }
            _ => break, // first retrain finished; this one ran (or failed differently)
        }
        if handle.is_finished() {
            break;
        }
    }
    let version = handle.join().unwrap().unwrap();
    assert!(version >= 2);
    assert!(rejected || velox.stats().retrains >= 1);
    // After the async retrain completes, another one is permitted.
    let again = velox.retrain_offline().unwrap();
    assert!(again > version);
}

#[test]
fn observations_during_async_retrain_are_not_lost() {
    let ds = make_dataset(50);
    let split = three_way_split(&ds, 0.5, 0.7);
    let velox = deploy_from(&ds, &split.offline, VeloxConfig::single_node());
    let mu = mean_rating(&split.offline);
    for r in &split.online {
        velox.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
    }

    // Launch a retrain in the background and hammer user 7 with a strong
    // signal while it runs; the post-swap replay must carry those
    // observations onto the new version's online state.
    let handle = velox.retrain_offline_async().unwrap();
    let mut mid_retrain = 0u64;
    while !handle.is_finished() {
        velox.observe(7, &Item::Id(3), 10.0).unwrap();
        mid_retrain += 1;
    }
    handle.join().unwrap().unwrap();
    assert_eq!(velox.stats().model_version, 2);

    if mid_retrain > 0 {
        // The strong mid-retrain signal must be visible post-swap: the new
        // version's prediction for (7, 3) reflects the replayed updates
        // rather than only the batch model (which may or may not have seen
        // them depending on snapshot timing).
        let pred = velox.predict(7, &Item::Id(3)).unwrap().score;
        assert!(
            pred > 1.0,
            "{mid_retrain} mid-retrain observations of y=10 must survive the swap: {pred}"
        );
    }
}
