//! Multi-model server tests: several deployments side by side (the §2
//! ad-campaigns scenario), computed-feature models over the item catalog,
//! bandit serving, and validation-pool collection.

use std::collections::HashMap;
use std::sync::Arc;

use velox::prelude::*;
use velox_core::config::BanditChoice;
use velox_core::server::ModelSchema;
use velox_linalg::Vector;

/// Deploys an identity-feature model over a synthetic catalog where user
/// u's true preference vector is planted; observations follow y = wᵤ*ᵀx.
fn deploy_identity(name: &str, dim: usize, bandit: BanditChoice) -> Arc<Velox> {
    let model = IdentityModel::new(name, dim, 0.1);
    let mut config = VeloxConfig::single_node();
    config.bandit = bandit;
    config.validation_fraction = 0.0;
    let velox = Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), config));
    // Catalog: 40 items with deterministic attributes.
    for item in 0..40u64 {
        let attrs: Vec<f64> =
            (0..dim).map(|k| ((item as f64 + 1.0) * (k as f64 + 1.0) * 0.37).sin()).collect();
        velox.register_item(item, attrs);
    }
    velox
}

#[test]
fn server_dispatches_by_schema() {
    let server = VeloxServer::new();
    server.install("ads", deploy_identity("ads", 4, BanditChoice::Greedy));
    server.install("songs", deploy_identity("songs", 6, BanditChoice::Greedy));

    let ads = ModelSchema::named("ads");
    let songs = ModelSchema::named("songs");
    let missing = ModelSchema::named("nope");

    assert!(server.predict(&ads, 1, &Item::Id(3)).is_ok());
    assert!(server.predict(&songs, 1, &Item::Id(3)).is_ok());
    assert!(matches!(server.predict(&missing, 1, &Item::Id(3)), Err(VeloxError::ModelNotFound(_))));

    let mut names = server.deployment_names();
    names.sort();
    assert_eq!(names, vec!["ads", "songs"]);
    assert!(server.uninstall("ads"));
    assert!(server.predict(&ads, 1, &Item::Id(3)).is_err());
}

#[test]
fn deployments_are_isolated() {
    let server = VeloxServer::new();
    server.install("a", deploy_identity("a", 4, BanditChoice::Greedy));
    server.install("b", deploy_identity("b", 4, BanditChoice::Greedy));
    let a = ModelSchema::named("a");
    let b = ModelSchema::named("b");

    // Feedback to model a must not move model b's predictions.
    let before_b = server.predict(&b, 7, &Item::Id(5)).unwrap().score;
    for _ in 0..20 {
        server.observe(&a, 7, &Item::Id(5), 10.0).unwrap();
    }
    let after_a = server.predict(&a, 7, &Item::Id(5)).unwrap().score;
    let after_b = server.predict(&b, 7, &Item::Id(5)).unwrap().score;
    assert!(after_a > 1.0, "model a learned the strong signal: {after_a}");
    assert_eq!(before_b, after_b, "model b untouched");
}

#[test]
fn computed_model_learns_user_preferences_online() {
    let velox = deploy_identity("ident", 4, BanditChoice::Greedy);
    // Planted preference for user 3.
    let w_true = Vector::from_vec(vec![1.0, -0.5, 0.25, 2.0]);
    // Feed observations over catalog items.
    for round in 0..5 {
        for item in 0..40u64 {
            let attrs: Vec<f64> =
                (0..4).map(|k| ((item as f64 + 1.0) * (k as f64 + 1.0) * 0.37).sin()).collect();
            let y = w_true.dot(&Vector::from_vec(attrs)).unwrap();
            velox.observe(3, &Item::Id(item), y).unwrap();
        }
        let _ = round;
    }
    // Predictions should now track the planted preference closely.
    for item in 0..10u64 {
        let attrs: Vec<f64> =
            (0..4).map(|k| ((item as f64 + 1.0) * (k as f64 + 1.0) * 0.37).sin()).collect();
        let truth = w_true.dot(&Vector::from_vec(attrs)).unwrap();
        let pred = velox.predict(3, &Item::Id(item)).unwrap().score;
        assert!((pred - truth).abs() < 0.05, "item {item}: {pred} vs {truth}");
    }
}

#[test]
fn computed_features_are_cached_by_item() {
    let velox = deploy_identity("ident", 4, BanditChoice::Greedy);
    velox.predict(1, &Item::Id(7)).unwrap();
    velox.predict(2, &Item::Id(7)).unwrap(); // same item, different user
    let stats = velox.stats();
    let (hits, misses, _) = stats.feature_cache;
    assert!(hits >= 1, "second featurization of item 7 must hit: {hits}/{misses}");
}

#[test]
fn raw_items_serve_without_catalog() {
    let velox = deploy_identity("ident", 4, BanditChoice::Greedy);
    velox.observe(1, &Item::Raw(Vector::from_vec(vec![1.0, 0.0, 0.0, 0.0])), 5.0).unwrap();
    let resp = velox.predict(1, &Item::Raw(Vector::from_vec(vec![1.0, 0.0, 0.0, 0.0]))).unwrap();
    assert!(resp.score > 1.0, "learned from raw-item feedback: {}", resp.score);
    assert!(!resp.cached, "raw items are uncacheable");
}

#[test]
fn bandit_topk_explores_validation_pool_collects() {
    let model = IdentityModel::new("v", 3, 0.1);
    let mut config = VeloxConfig::single_node();
    config.bandit = BanditChoice::LinUcb(2.0);
    config.validation_fraction = 0.3;
    config.seed = 99;
    let velox = Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), config));
    for item in 0..20u64 {
        velox.register_item(item, vec![(item as f64).sin(), (item as f64).cos(), 1.0]);
    }
    let items: Vec<Item> = (0..20).map(Item::Id).collect();

    let mut randomized = 0;
    for round in 0..200u64 {
        let uid = round % 5;
        let resp = velox.top_k(uid, &items).unwrap();
        let served_item = &items[resp.served];
        let y = (resp.served as f64) * 0.1; // arbitrary but consistent labels
        if resp.randomized {
            randomized += 1;
            velox.observe_randomized(uid, served_item, y).unwrap();
        } else {
            velox.observe(uid, served_item, y).unwrap();
        }
    }
    let rate = randomized as f64 / 200.0;
    assert!((rate - 0.3).abs() < 0.12, "validation randomization rate {rate}");
    assert!(velox.validation_rmse().is_some(), "pool must be populated");
    let (vrand, vtotal) = velox.stats().validation_decisions;
    assert_eq!(vtotal, 200);
    assert_eq!(vrand, randomized);
}

#[test]
fn greedy_and_linucb_serve_different_items_under_uncertainty() {
    // Same deployment twice, differing only in policy; after sparse
    // feedback the greedy instance repeats its argmax while LinUCB spreads
    // serves across uncertain candidates.
    let serve_counts = |bandit: BanditChoice| -> usize {
        let velox = deploy_identity("p", 4, bandit);
        let items: Vec<Item> = (0..30).map(Item::Id).collect();
        // One observation so scores are non-trivial.
        velox.observe(1, &Item::Id(0), 1.0).unwrap();
        let mut served = std::collections::HashSet::new();
        for _ in 0..60 {
            let resp = velox.top_k(1, &items).unwrap();
            served.insert(resp.served);
            // No feedback → greedy never changes its mind.
        }
        served.len()
    };
    let greedy_distinct = serve_counts(BanditChoice::Greedy);
    let linucb_distinct = serve_counts(BanditChoice::LinUcb(2.0));
    assert_eq!(greedy_distinct, 1, "greedy repeats its argmax");
    // LinUCB without feedback also repeats (uncertainty doesn't change
    // without observations) — but must pick the *most uncertain-adjusted*
    // item, which may differ from greedy's. The real exploration contrast
    // with feedback is covered in the bandit crate and ABL-BANDIT bench;
    // here we just pin that policies plug in and serve valid indices.
    assert!(linucb_distinct >= 1);
}
