//! Fault-tolerance integration tests: replica failover, graceful
//! degradation accounting, and outage buffering with redo-once semantics.
//! All failure injection is driven by seeded RNGs and explicit kill/recover
//! calls, so every run is deterministic.

use std::collections::HashMap;
use std::sync::Arc;

use velox::prelude::*;

/// A deployment on `n_nodes` with both item features and user weights
/// replicated `replication` ways.
fn deploy(n_nodes: usize, replication: usize) -> Arc<Velox> {
    let mut table = HashMap::new();
    for item in 0..40u64 {
        table.insert(
            item,
            Vector::from_vec(vec![(item as f64 * 0.3).sin(), (item as f64 * 0.7).cos()]),
        );
    }
    let model = MatrixFactorizationModel::from_table(
        "ft",
        table,
        3.0,
        AlsConfig { rank: 2, ..Default::default() },
    )
    .unwrap();
    let mut weights = HashMap::new();
    for uid in 0..20u64 {
        weights.insert(uid, Vector::from_vec(vec![0.1 * uid as f64, -0.05 * uid as f64]));
    }
    let config = VeloxConfig {
        cluster: ClusterConfig {
            n_nodes,
            item_replication: replication,
            user_replication: replication,
            ..Default::default()
        },
        ..Default::default()
    };
    Arc::new(Velox::deploy(Arc::new(model), weights, config))
}

/// (4a) With replication ≥ 2, killing any single node leaves every read
/// answerable: all predicts succeed, none have to fall past the Replica
/// degradation level, and the scores survive the failover bit-exactly.
#[test]
fn reads_survive_any_single_node_loss_at_replication_two() {
    for victim in 0..4usize {
        let velox = deploy(4, 2);
        let baseline: Vec<f64> =
            (0..20u64).map(|uid| velox.predict(uid, &Item::Id(uid % 40)).unwrap().score).collect();

        velox.kill_node(victim);

        for uid in 0..20u64 {
            let resp = velox
                .predict(uid, &Item::Id(uid % 40))
                .unwrap_or_else(|e| panic!("victim {victim} uid {uid}: {e}"));
            assert!(
                matches!(resp.degradation, DegradationLevel::Full | DegradationLevel::Replica),
                "victim {victim} uid {uid}: degraded to {:?}",
                resp.degradation
            );
            assert!(
                (resp.score - baseline[uid as usize]).abs() < 1e-12,
                "victim {victim} uid {uid}: failover changed the score"
            );
        }
        let stats = velox.stats();
        assert_eq!(stats.cluster.unavailable_reads, 0, "victim {victim}");
    }
}

/// (4b) Every predict and topK is counted at exactly one degradation
/// level: the ladder counters reconcile with the request count even
/// across a kill/recover cycle.
#[test]
fn degradation_counters_reconcile_with_request_counts() {
    let velox = deploy(4, 2);
    let mut requests = 0u64;
    let candidates: Vec<Item> = (0..8u64).map(Item::Id).collect();

    for uid in 0..20u64 {
        velox.predict(uid, &Item::Id(uid % 40)).unwrap();
        requests += 1;
    }
    velox.kill_node(1);
    for uid in 0..20u64 {
        velox.predict(uid, &Item::Id((uid + 3) % 40)).unwrap();
        velox.top_k(uid, &candidates).unwrap();
        requests += 2;
    }
    velox.recover_node(1);
    for uid in 0..20u64 {
        velox.predict(uid, &Item::Id((uid + 7) % 40)).unwrap();
        requests += 1;
    }

    let stats = velox.stats();
    assert_eq!(
        stats.degraded.total(),
        requests,
        "every request must land on exactly one ladder level: {:?}",
        stats.degraded
    );
    assert!(stats.degraded.full > 0, "healthy phases serve at full fidelity");
}

/// (4c) Observations that arrive while a user's partition has no live
/// replica are buffered and drained exactly once on recovery: the drained
/// count matches the buffered count, a second recovery drains nothing,
/// and the deferred update is actually applied to the user's weights.
#[test]
fn redo_queue_drains_exactly_once_on_recovery() {
    // User weights unreplicated (killing the home node orphans that
    // partition) but item features replicated, so the catch-up and the
    // redo apply still have features to read.
    let mut table = HashMap::new();
    for item in 0..40u64 {
        table.insert(
            item,
            Vector::from_vec(vec![(item as f64 * 0.3).sin(), (item as f64 * 0.7).cos()]),
        );
    }
    let model = MatrixFactorizationModel::from_table(
        "ft",
        table,
        3.0,
        AlsConfig { rank: 2, ..Default::default() },
    )
    .unwrap();
    let mut weights = HashMap::new();
    for uid in 0..20u64 {
        weights.insert(uid, Vector::from_vec(vec![0.1 * uid as f64, -0.05 * uid as f64]));
    }
    let config = VeloxConfig {
        cluster: ClusterConfig {
            n_nodes: 4,
            item_replication: 2,
            user_replication: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let velox = Velox::deploy(Arc::new(model), weights, config);
    let uid = 5u64;
    let home = velox.cluster().replica_nodes_of_user(uid)[0];
    let before = velox.predict(uid, &Item::Id(3)).unwrap().score;

    velox.kill_node(home);
    let outcome = velox.observe(uid, &Item::Id(3), 4.0).unwrap();
    assert!(outcome.deferred, "no live replica: the observation must be buffered");
    assert!(!outcome.trained);
    let outcome2 = velox.observe(uid, &Item::Id(4), 2.0).unwrap();
    assert!(outcome2.deferred);

    let stats = velox.stats();
    assert_eq!(stats.redo.buffered, 2);
    assert_eq!(stats.redo.drained, 0);
    assert_eq!(stats.redo.pending, 2);

    velox.recover_node(home);
    let stats = velox.stats();
    assert_eq!(stats.redo.drained, 2, "recovery drains every buffered observation");
    assert_eq!(stats.redo.pending, 0);
    assert_eq!(stats.redo.shed, 0);

    // Drained exactly once: a second recovery (and an explicit drain)
    // finds nothing left to apply.
    velox.kill_node(home);
    velox.recover_node(home);
    assert_eq!(velox.stats().redo.drained, 2);
    assert_eq!(velox.drain_redo_queue().unwrap(), 0);

    // The deferred feedback reached the online state: the prediction for
    // the trained (uid, item) pair moved.
    let after = velox.predict(uid, &Item::Id(3)).unwrap().score;
    assert!(
        (after - before).abs() > 1e-9,
        "deferred observation was never applied: {before} vs {after}"
    );
}

/// The redo queue is bounded: observations past capacity are shed with a
/// clean `Unavailable` error and counted, never silently dropped.
#[test]
fn redo_queue_sheds_when_full() {
    let mut table = HashMap::new();
    for item in 0..10u64 {
        table.insert(item, Vector::from_vec(vec![1.0, item as f64]));
    }
    let model = MatrixFactorizationModel::from_table(
        "shed",
        table,
        3.0,
        AlsConfig { rank: 2, ..Default::default() },
    )
    .unwrap();
    let config = VeloxConfig {
        cluster: ClusterConfig { n_nodes: 2, ..Default::default() },
        redo_queue_capacity: 2,
        ..Default::default()
    };
    let velox = Velox::deploy(Arc::new(model), HashMap::new(), config);
    let uid = 0u64;
    let home = velox.cluster().replica_nodes_of_user(uid)[0];
    velox.kill_node(home);

    assert!(velox.observe(uid, &Item::Id(0), 1.0).unwrap().deferred);
    assert!(velox.observe(uid, &Item::Id(1), 1.0).unwrap().deferred);
    match velox.observe(uid, &Item::Id(2), 1.0) {
        Err(VeloxError::Unavailable(why)) => assert!(why.contains("shed"), "{why}"),
        other => panic!("expected shed error, got {other:?}"),
    }
    let stats = velox.stats();
    assert_eq!(stats.redo.buffered, 2);
    assert_eq!(stats.redo.shed, 1);
}

/// Scheduled faults drive kill/recover off the request clock, and the
/// whole trajectory — availability, degradation mix, injected failures —
/// is identical for identical seeds.
#[test]
fn scripted_outage_is_deterministic() {
    let run = || {
        let velox = deploy(4, 2);
        velox.install_fault_plan(FaultPlan {
            events: vec![
                FaultEvent { at_request: 20, node: 2, action: FaultAction::Kill },
                FaultEvent { at_request: 60, node: 2, action: FaultAction::Recover },
            ],
            read_failure_prob: 0.1,
            latency_spike_prob: 0.05,
            latency_spike_us: 2_000.0,
            seed: 0xFA_17,
        });
        let mut answered = 0u64;
        for i in 0..200u64 {
            if velox.predict(i % 20, &Item::Id(i % 37)).is_ok() {
                answered += 1;
            }
        }
        let s = velox.stats();
        (
            answered,
            s.degraded.full,
            s.degraded.replica,
            s.cluster.injected_read_failures,
            s.cluster.injected_latency_spikes,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give an identical trajectory");
    assert!(a.0 >= 198, "availability must stay ≥ 99%: {}/200", a.0);
    assert!(a.3 > 0, "read-failure injection must have fired");
    assert!(a.4 > 0, "latency-spike injection must have fired");
}
