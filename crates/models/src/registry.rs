//! The model registry: uploaded `VeloxModel`s by name, with versions.
//!
//! Velox is multi-model ("an advertising service may run a series of ad
//! campaigns, each with separate models", §2). The registry stores each
//! named model behind an `Arc`, assigns a monotonically increasing version
//! on every upload or retrain-swap, and retains superseded versions for
//! rollback — the manager's "version histories, enabling ... simple
//! rollbacks" requirement.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::RwLock;

use crate::VeloxModel;

/// Why a registry operation was refused. Every variant is a caller
/// mistake — a name collision or a dangling reference — so the REST layer
/// maps these to `400`, never a `500` (the same discipline
/// `MembershipError` established for the membership plane).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// `register` was asked to create a name that already exists (use
    /// `upload` to swap a new version in instead).
    DuplicateModel(String),
    /// The named model is not registered.
    UnknownModel(String),
    /// The named model exists but the requested version is not retained
    /// (never existed, or aged out of the bounded history).
    VersionNotRetained {
        /// The model name.
        name: String,
        /// The version that was requested.
        version: u64,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::DuplicateModel(name) => {
                write!(f, "model {name:?} is already registered")
            }
            RegistryError::UnknownModel(name) => write!(f, "model {name:?} is not registered"),
            RegistryError::VersionNotRetained { name, version } => {
                write!(f, "model {name:?} has no retained version {version}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A registered model with its version.
#[derive(Clone)]
pub struct RegisteredModel {
    /// The model object.
    pub model: Arc<dyn VeloxModel>,
    /// System-assigned version, starting at 1 and bumped on every swap.
    pub version: u64,
}

impl std::fmt::Debug for RegisteredModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisteredModel")
            .field("model", &self.model.name())
            .field("version", &self.version)
            .finish()
    }
}

/// How many superseded versions of each model are retained.
const HISTORY_PER_MODEL: usize = 4;

struct ModelSlot {
    current: RegisteredModel,
    history: Vec<RegisteredModel>,
    next_version: u64,
}

/// Thread-safe registry of named models.
#[derive(Default)]
pub struct ModelRegistry {
    slots: RwLock<HashMap<String, ModelSlot>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Uploads a model under its own name. If the name exists, the model is
    /// swapped in as a new version (the previous version goes to history).
    /// Returns the assigned version.
    pub fn upload(&self, model: Arc<dyn VeloxModel>) -> u64 {
        let name = model.name().to_string();
        let mut slots = self.slots.write().unwrap();
        match slots.get_mut(&name) {
            Some(slot) => {
                let version = slot.next_version;
                slot.next_version += 1;
                let old = std::mem::replace(&mut slot.current, RegisteredModel { model, version });
                slot.history.push(old);
                if slot.history.len() > HISTORY_PER_MODEL {
                    slot.history.remove(0);
                }
                version
            }
            None => {
                slots.insert(
                    name,
                    ModelSlot {
                        current: RegisteredModel { model, version: 1 },
                        history: Vec::new(),
                        next_version: 2,
                    },
                );
                1
            }
        }
    }

    /// Registers a model under a *new* name. Unlike [`ModelRegistry::upload`]
    /// — which silently swaps a new version in over an existing name — this
    /// refuses a collision with a typed error, for callers that mean
    /// "create", not "create or replace". Returns the assigned version (1).
    pub fn register(&self, model: Arc<dyn VeloxModel>) -> Result<u64, RegistryError> {
        let name = model.name().to_string();
        let mut slots = self.slots.write().unwrap();
        if slots.contains_key(&name) {
            return Err(RegistryError::DuplicateModel(name));
        }
        slots.insert(
            name,
            ModelSlot {
                current: RegisteredModel { model, version: 1 },
                history: Vec::new(),
                next_version: 2,
            },
        );
        Ok(1)
    }

    /// The current version of a named model.
    pub fn get(&self, name: &str) -> Option<RegisteredModel> {
        self.slots.read().unwrap().get(name).map(|s| s.current.clone())
    }

    /// The current version of a named model, with a typed error for an
    /// unknown name (what the REST layer surfaces as a 400/404).
    pub fn get_required(&self, name: &str) -> Result<RegisteredModel, RegistryError> {
        self.get(name).ok_or_else(|| RegistryError::UnknownModel(name.to_string()))
    }

    /// Rolls a model back to a retained prior `version`; the restored model
    /// is re-published under a fresh version number. Returns the new
    /// `RegisteredModel`; an unknown name or unretained version comes back
    /// as a typed [`RegistryError`], not an `Option` the caller must guess
    /// the meaning of.
    pub fn rollback(&self, name: &str, version: u64) -> Result<RegisteredModel, RegistryError> {
        let mut slots = self.slots.write().unwrap();
        let slot =
            slots.get_mut(name).ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        let pos =
            slot.history.iter().position(|m| m.version == version).ok_or_else(|| {
                RegistryError::VersionNotRetained { name: name.to_string(), version }
            })?;
        let restored = slot.history.remove(pos);
        let new_version = slot.next_version;
        slot.next_version += 1;
        let old = std::mem::replace(
            &mut slot.current,
            RegisteredModel { model: restored.model, version: new_version },
        );
        slot.history.push(old);
        if slot.history.len() > HISTORY_PER_MODEL {
            slot.history.remove(0);
        }
        Ok(slot.current.clone())
    }

    /// Versions available for rollback of a model, oldest first.
    pub fn history_versions(&self, name: &str) -> Vec<u64> {
        self.slots
            .read()
            .unwrap()
            .get(name)
            .map(|s| s.history.iter().map(|m| m.version).collect())
            .unwrap_or_default()
    }

    /// Names of all registered models, unordered.
    pub fn model_names(&self) -> Vec<String> {
        self.slots.read().unwrap().keys().cloned().collect()
    }

    /// Removes a model and its history. Returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.slots.write().unwrap().remove(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::IdentityModel;

    fn model(name: &str, dim: usize) -> Arc<dyn VeloxModel> {
        Arc::new(IdentityModel::new(name, dim, 0.1))
    }

    #[test]
    fn upload_and_get() {
        let reg = ModelRegistry::new();
        assert!(reg.get("m").is_none());
        let v = reg.upload(model("m", 3));
        assert_eq!(v, 1);
        let got = reg.get("m").unwrap();
        assert_eq!(got.version, 1);
        assert_eq!(got.model.dim(), 3);
    }

    #[test]
    fn reupload_bumps_version_and_keeps_history() {
        let reg = ModelRegistry::new();
        reg.upload(model("m", 3));
        let v2 = reg.upload(model("m", 4));
        assert_eq!(v2, 2);
        assert_eq!(reg.get("m").unwrap().model.dim(), 4);
        assert_eq!(reg.history_versions("m"), vec![1]);
    }

    #[test]
    fn rollback_restores_old_model_under_new_version() {
        let reg = ModelRegistry::new();
        reg.upload(model("m", 3)); // v1
        reg.upload(model("m", 4)); // v2
        let restored = reg.rollback("m", 1).unwrap();
        assert_eq!(restored.version, 3, "rollback publishes a fresh version");
        assert_eq!(restored.model.dim(), 3, "old parameters restored");
        // v2 is now in history and can itself be rolled back to.
        assert!(reg.history_versions("m").contains(&2));
        assert_eq!(
            reg.rollback("m", 99).unwrap_err(),
            RegistryError::VersionNotRetained { name: "m".into(), version: 99 }
        );
        assert_eq!(
            reg.rollback("nope", 1).unwrap_err(),
            RegistryError::UnknownModel("nope".into())
        );
    }

    #[test]
    fn register_refuses_duplicates_with_typed_error() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.register(model("m", 3)).unwrap(), 1);
        assert_eq!(
            reg.register(model("m", 4)).unwrap_err(),
            RegistryError::DuplicateModel("m".into())
        );
        assert_eq!(reg.get("m").unwrap().model.dim(), 3, "duplicate register must not swap");
        // upload remains the create-or-replace path.
        assert_eq!(reg.upload(model("m", 4)), 2);
        assert_eq!(reg.get_required("m").unwrap().model.dim(), 4);
        assert_eq!(
            reg.get_required("ghost").unwrap_err(),
            RegistryError::UnknownModel("ghost".into())
        );
        assert!(reg.get_required("ghost").unwrap_err().to_string().contains("ghost"));
    }

    #[test]
    fn history_is_bounded() {
        let reg = ModelRegistry::new();
        for i in 0..10 {
            reg.upload(model("m", i + 1));
        }
        assert!(reg.history_versions("m").len() <= HISTORY_PER_MODEL);
        assert_eq!(reg.get("m").unwrap().version, 10);
    }

    #[test]
    fn multiple_models_coexist() {
        let reg = ModelRegistry::new();
        reg.upload(model("ads", 5));
        reg.upload(model("songs", 7));
        let mut names = reg.model_names();
        names.sort();
        assert_eq!(names, vec!["ads", "songs"]);
        assert_eq!(reg.get("ads").unwrap().model.dim(), 5);
        assert_eq!(reg.get("songs").unwrap().model.dim(), 7);
        assert!(reg.remove("ads"));
        assert!(reg.get("ads").is_none());
        assert!(!reg.remove("ads"));
    }
}
