//! # velox-models
//!
//! The `VeloxModel` interface (paper §6, Listing 2) and its built-in
//! implementations.
//!
//! Velox serves one family of models — personalized generalized linear
//! models `prediction(u, x) = wᵤᵀ f(x, θ)` — but the feature function `f`
//! is pluggable. A data scientist adds a model by implementing the
//! [`VeloxModel`] trait: how to featurize items ([`VeloxModel::features`]),
//! how to retrain offline ([`VeloxModel::retrain`]), and how to score
//! quality ([`VeloxModel::loss`]). Feature functions come in two kinds the
//! paper distinguishes explicitly:
//!
//! - **materialized** — `f` is a table lookup (e.g. the latent item factors
//!   of a matrix-factorization model). Implemented by
//!   [`mf::MatrixFactorizationModel`].
//! - **computational** — `f` evaluates basis functions on raw input data
//!   (e.g. "a set of SVMs with different parameters" or random Fourier
//!   bases approximating an RBF kernel). Implemented by
//!   [`basis::SvmEnsembleModel`], [`basis::RandomFourierModel`], and the
//!   trivial [`basis::IdentityModel`].
//!
//! The [`registry::ModelRegistry`] stores uploaded models by name with a
//! monotonically increasing version, mirroring the paper's "incrementing
//! the version and transparently upgrading incoming prediction requests".

#![warn(missing_docs)]

pub mod basis;
pub mod mf;
pub mod registry;

pub use basis::{IdentityModel, MlpFeatureModel, RandomFourierModel, SvmEnsembleModel};
pub use mf::MatrixFactorizationModel;
pub use registry::{ModelRegistry, RegistryError};

use std::collections::HashMap;
use velox_batch::JobExecutor;
use velox_linalg::Vector;

/// Input data for a feature function — the paper's opaque `Data` type.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A reference to a catalog item, resolved through a materialized
    /// feature table.
    Id(u64),
    /// A raw feature payload for computational feature functions (e.g. the
    /// content features of a fresh item never seen by training).
    Raw(Vector),
}

impl Item {
    /// The item id, when this is a catalog reference.
    pub fn id(&self) -> Option<u64> {
        match self {
            Item::Id(id) => Some(*id),
            Item::Raw(_) => None,
        }
    }
}

/// One supervised example for offline retraining: `(uid, item, label)`.
#[derive(Debug, Clone)]
pub struct TrainingExample {
    /// The user who produced the label.
    pub uid: u64,
    /// The item the label refers to.
    pub item: Item,
    /// The label (rating, click, ...).
    pub y: f64,
}

/// The output of an offline retrain: a fresh model (new `θ`) plus the
/// recomputed user-weight table — the paper's
/// `((Data) => Vector, Table[String, Vector])` return of `retrain`.
pub struct RetrainResult {
    /// The retrained model (same name, new parameters).
    pub model: Box<dyn VeloxModel>,
    /// Recomputed per-user weights.
    pub user_weights: HashMap<u64, Vector>,
}

/// Errors surfaced by model implementations.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A materialized lookup missed (unknown item id).
    UnknownItem(u64),
    /// The item payload kind doesn't match the feature function (e.g. a
    /// raw payload passed to a purely materialized model, or vice versa).
    WrongItemKind {
        /// What the model needed.
        expected: &'static str,
    },
    /// A payload had the wrong dimensionality.
    DimensionMismatch {
        /// Expected input dimension.
        expected: usize,
        /// Dimension supplied.
        actual: usize,
    },
    /// Offline training failed (degenerate data, solver failure).
    TrainingFailed(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnknownItem(id) => write!(f, "unknown item {id}"),
            ModelError::WrongItemKind { expected } => {
                write!(f, "wrong item kind: this model expects {expected}")
            }
            ModelError::DimensionMismatch { expected, actual } => {
                write!(f, "feature input dimension mismatch: expected {expected}, got {actual}")
            }
            ModelError::TrainingFailed(why) => write!(f, "training failed: {why}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// The model interface of Listing 2.
///
/// Implementations are immutable once constructed: retraining returns a
/// *new* model rather than mutating in place, which is what makes version
/// swap/rollback in the manager trivially safe.
pub trait VeloxModel: Send + Sync {
    /// User-provided model name.
    fn name(&self) -> &str;

    /// Feature dimension `d` (the length of every `wᵤ` and of `features`
    /// output).
    fn dim(&self) -> usize;

    /// Whether `features` is a materialized table lookup (`true`) or a
    /// computation over raw input (`false`) — the `materialized` flag of
    /// Listing 2.
    fn is_materialized(&self) -> bool;

    /// The feature transformation `f(x, θ)`.
    fn features(&self, item: &Item) -> Result<Vector, ModelError>;

    /// Offline retraining from the full observation history. The current
    /// user weights are passed in because "the training procedure ...
    /// depends on the current user weights" (§4.2, warm start).
    fn retrain(
        &self,
        data: &[TrainingExample],
        user_weights: &HashMap<u64, Vector>,
        executor: &JobExecutor,
    ) -> Result<RetrainResult, ModelError>;

    /// Pointwise quality loss; default is squared error, the paper's choice
    /// for the initial prototype.
    fn loss(&self, y: f64, y_pred: f64, _item: &Item, _uid: u64) -> f64 {
        let e = y - y_pred;
        e * e
    }

    /// The materialized feature table for cluster placement — `(item id,
    /// features)` pairs. Empty for computational models (their `θ` lives in
    /// the model object itself).
    fn materialized_table(&self) -> Vec<(u64, Vec<f64>)> {
        Vec::new()
    }
}

/// Shared retraining helper for computational-feature models: the basis is
/// fixed, so retraining reduces to an independent ridge solve per user over
/// their full history — parallelized across the executor.
pub(crate) fn refit_user_weights(
    model: &dyn VeloxModel,
    data: &[TrainingExample],
    lambda: f64,
    executor: &JobExecutor,
) -> Result<HashMap<u64, Vector>, ModelError> {
    use velox_linalg::RidgeProblem;
    let mut by_user: HashMap<u64, Vec<&TrainingExample>> = HashMap::new();
    for ex in data {
        by_user.entry(ex.uid).or_default().push(ex);
    }
    let users: Vec<(u64, Vec<&TrainingExample>)> = by_user.into_iter().collect();
    let solved: Vec<Result<(u64, Vector), ModelError>> =
        executor.execute(users, |_, (uid, examples)| {
            let mut prob = RidgeProblem::new(model.dim(), lambda);
            for ex in examples {
                let f = model.features(&ex.item)?;
                prob.observe(&f, ex.y).map_err(|e| ModelError::TrainingFailed(e.to_string()))?;
            }
            let w = prob.solve().map_err(|e| ModelError::TrainingFailed(e.to_string()))?;
            Ok((*uid, w))
        });
    solved.into_iter().collect()
}
