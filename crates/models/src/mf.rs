//! The matrix-factorization model — the paper's running example and its
//! canonical *materialized* feature function.
//!
//! `f(i, θ)` is a lookup of item `i`'s latent factor in the table `θ`
//! learned offline by ALS; user weights `wᵤ` are the user's latent factors.
//! `prediction(u, i) = μ + wᵤᵀ xᵢ` (the global mean rides along as model
//! state so ratings-scale data round-trips).

use std::collections::HashMap;

use velox_batch::{AlsConfig, AlsModel, JobExecutor};
use velox_data::Rating;
use velox_linalg::Vector;

use crate::{Item, ModelError, RetrainResult, TrainingExample, VeloxModel};

/// A materialized latent-factor model over a fixed item catalog.
#[derive(Debug, Clone)]
pub struct MatrixFactorizationModel {
    name: String,
    /// Latent item factors — the materialized feature table θ.
    item_factors: HashMap<u64, Vector>,
    /// Global rating mean μ.
    global_mean: f64,
    /// Latent rank d.
    rank: usize,
    /// ALS hyper-parameters used at (re)train time.
    als: AlsConfig,
}

impl MatrixFactorizationModel {
    /// Wraps an already-trained ALS model (the initial offline training of
    /// §4.2). Returns the Velox model plus the user-weight table extracted
    /// from the ALS solution.
    pub fn from_als(name: impl Into<String>, als_model: &AlsModel) -> (Self, HashMap<u64, Vector>) {
        let item_factors: HashMap<u64, Vector> =
            als_model.item_factors.iter().enumerate().map(|(i, x)| (i as u64, x.clone())).collect();
        let user_weights: HashMap<u64, Vector> =
            als_model.user_factors.iter().enumerate().map(|(u, w)| (u as u64, w.clone())).collect();
        let model = MatrixFactorizationModel {
            name: name.into(),
            item_factors,
            global_mean: als_model.global_mean,
            rank: als_model.config.rank,
            als: als_model.config.clone(),
        };
        (model, user_weights)
    }

    /// Builds a model from an explicit factor table (e.g. restored from a
    /// storage snapshot). All factors must share the rank.
    pub fn from_table(
        name: impl Into<String>,
        item_factors: HashMap<u64, Vector>,
        global_mean: f64,
        als: AlsConfig,
    ) -> Result<Self, ModelError> {
        let rank = als.rank;
        for factors in item_factors.values() {
            if factors.len() != rank {
                return Err(ModelError::DimensionMismatch {
                    expected: rank,
                    actual: factors.len(),
                });
            }
        }
        Ok(MatrixFactorizationModel { name: name.into(), item_factors, global_mean, rank, als })
    }

    /// Global mean μ added to every prediction.
    pub fn global_mean(&self) -> f64 {
        self.global_mean
    }

    /// Number of items in the materialized table.
    pub fn n_items(&self) -> usize {
        self.item_factors.len()
    }
}

impl VeloxModel for MatrixFactorizationModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn dim(&self) -> usize {
        self.rank
    }

    fn is_materialized(&self) -> bool {
        true
    }

    fn features(&self, item: &Item) -> Result<Vector, ModelError> {
        match item {
            Item::Id(id) => self.item_factors.get(id).cloned().ok_or(ModelError::UnknownItem(*id)),
            Item::Raw(_) => Err(ModelError::WrongItemKind { expected: "catalog item id" }),
        }
    }

    /// Full offline retrain: warm-started ALS over the entire observation
    /// history, producing a new θ table *and* new user weights — exactly
    /// the two outputs of Listing 2's `retrain`.
    fn retrain(
        &self,
        data: &[TrainingExample],
        user_weights: &HashMap<u64, Vector>,
        executor: &JobExecutor,
    ) -> Result<RetrainResult, ModelError> {
        // Convert examples to dense-id ratings; MF only trains on catalog
        // references.
        let mut max_user = 0u64;
        let mut max_item = self.item_factors.keys().copied().max().unwrap_or(0);
        let mut ratings = Vec::with_capacity(data.len());
        for (ts, ex) in data.iter().enumerate() {
            let item_id =
                ex.item.id().ok_or(ModelError::WrongItemKind { expected: "catalog item id" })?;
            max_user = max_user.max(ex.uid);
            max_item = max_item.max(item_id);
            ratings.push(Rating { uid: ex.uid, item_id, value: ex.y, timestamp: ts as u64 });
        }
        if ratings.is_empty() {
            return Err(ModelError::TrainingFailed("no training data".into()));
        }
        let n_users = max_user as usize + 1;
        let n_items = max_item as usize + 1;

        // Warm-start from the current model where factors exist.
        let user_init: Vec<Vector> = (0..n_users as u64)
            .map(|u| user_weights.get(&u).cloned().unwrap_or_else(|| Vector::zeros(self.rank)))
            .collect();
        let item_init: Vec<Vector> = (0..n_items as u64)
            .map(|i| self.item_factors.get(&i).cloned().unwrap_or_else(|| Vector::zeros(self.rank)))
            .collect();

        let als_model =
            AlsModel::train_warm_start(&ratings, user_init, item_init, self.als.clone(), executor);
        let (model, new_weights) =
            MatrixFactorizationModel::from_als(self.name.clone(), &als_model);
        Ok(RetrainResult { model: Box::new(model), user_weights: new_weights })
    }

    fn materialized_table(&self) -> Vec<(u64, Vec<f64>)> {
        self.item_factors.iter().map(|(id, f)| (*id, f.as_slice().to_vec())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velox_data::{RatingsDataset, SyntheticConfig};

    fn trained() -> (MatrixFactorizationModel, HashMap<u64, Vector>, RatingsDataset) {
        let ds = RatingsDataset::generate(SyntheticConfig {
            n_users: 40,
            n_items: 60,
            rank: 4,
            ratings_per_user: 15,
            noise_std: 0.2,
            seed: 13,
            ..Default::default()
        });
        let ex = JobExecutor::new(4);
        let als = AlsModel::train(
            &ds.ratings,
            40,
            60,
            AlsConfig { rank: 4, lambda: 0.05, iterations: 6, seed: 2 },
            &ex,
        );
        let (model, weights) = MatrixFactorizationModel::from_als("mf", &als);
        (model, weights, ds)
    }

    #[test]
    fn features_are_item_factor_lookups() {
        let (model, _, _) = trained();
        assert!(model.is_materialized());
        assert_eq!(model.dim(), 4);
        let f = model.features(&Item::Id(5)).unwrap();
        assert_eq!(f.len(), 4);
        assert!(matches!(model.features(&Item::Id(9999)), Err(ModelError::UnknownItem(9999))));
        assert!(matches!(
            model.features(&Item::Raw(Vector::zeros(4))),
            Err(ModelError::WrongItemKind { .. })
        ));
    }

    #[test]
    fn predictions_match_als() {
        let (model, weights, ds) = trained();
        let ex = JobExecutor::new(2);
        let als = AlsModel::train(
            &ds.ratings,
            40,
            60,
            AlsConfig { rank: 4, lambda: 0.05, iterations: 6, seed: 2 },
            &ex,
        );
        for r in ds.ratings.iter().take(50) {
            let f = model.features(&Item::Id(r.item_id)).unwrap();
            let pred = model.global_mean() + weights[&r.uid].dot(&f).unwrap();
            assert!((pred - als.predict(r.uid, r.item_id)).abs() < 1e-12);
        }
    }

    #[test]
    fn materialized_table_round_trips() {
        let (model, _, _) = trained();
        let table = model.materialized_table();
        assert_eq!(table.len(), 60);
        let map: HashMap<u64, Vector> =
            table.into_iter().map(|(id, v)| (id, Vector::from_vec(v))).collect();
        let rebuilt = MatrixFactorizationModel::from_table(
            "mf2",
            map,
            model.global_mean(),
            model.als.clone(),
        )
        .unwrap();
        let f1 = model.features(&Item::Id(3)).unwrap();
        let f2 = rebuilt.features(&Item::Id(3)).unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    fn from_table_rejects_ragged_rank() {
        let mut table = HashMap::new();
        table.insert(0u64, Vector::zeros(4));
        table.insert(1u64, Vector::zeros(3));
        let result = MatrixFactorizationModel::from_table(
            "bad",
            table,
            0.0,
            AlsConfig { rank: 4, ..Default::default() },
        );
        assert!(matches!(result, Err(ModelError::DimensionMismatch { .. })));
    }

    #[test]
    fn retrain_improves_or_holds_fit() {
        let (model, weights, ds) = trained();
        let ex = JobExecutor::new(4);
        let data: Vec<TrainingExample> = ds
            .ratings
            .iter()
            .map(|r| TrainingExample { uid: r.uid, item: Item::Id(r.item_id), y: r.value })
            .collect();
        let rmse_before = {
            let preds: Vec<f64> = ds
                .ratings
                .iter()
                .map(|r| {
                    model.global_mean()
                        + weights[&r.uid]
                            .dot(&model.features(&Item::Id(r.item_id)).unwrap())
                            .unwrap()
                })
                .collect();
            let targets: Vec<f64> = ds.ratings.iter().map(|r| r.value).collect();
            velox_linalg::stats::rmse(&preds, &targets).unwrap()
        };
        let result = model.retrain(&data, &weights, &ex).unwrap();
        let new_model = result.model;
        let rmse_after = {
            let preds: Vec<f64> = ds
                .ratings
                .iter()
                .map(|r| {
                    // Global mean is internal to the new model; recompute
                    // via its table.
                    let f = new_model.features(&Item::Id(r.item_id)).unwrap();
                    result.user_weights[&r.uid].dot(&f).unwrap()
                })
                .collect();
            // Compare against mean-centered targets since we dropped μ here.
            let mu: f64 = ds.ratings.iter().map(|r| r.value).sum::<f64>() / ds.len() as f64;
            let targets: Vec<f64> = ds.ratings.iter().map(|r| r.value - mu).collect();
            velox_linalg::stats::rmse(&preds, &targets).unwrap()
        };
        assert!(
            rmse_after <= rmse_before * 1.05,
            "retrain regressed badly: {rmse_before} -> {rmse_after}"
        );
    }

    #[test]
    fn retrain_rejects_raw_items_and_empty_data() {
        let (model, weights, _) = trained();
        let ex = JobExecutor::new(1);
        let raw_data = vec![TrainingExample { uid: 0, item: Item::Raw(Vector::zeros(4)), y: 1.0 }];
        assert!(matches!(
            model.retrain(&raw_data, &weights, &ex),
            Err(ModelError::WrongItemKind { .. })
        ));
        assert!(matches!(model.retrain(&[], &weights, &ex), Err(ModelError::TrainingFailed(_))));
    }
}
