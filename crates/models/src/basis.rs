//! Computational feature functions: fixed basis expansions over raw input.
//!
//! These are the paper's "computational feature function" examples: the
//! feature transformation computes a set of basis functions on the input —
//! an ensemble of pre-trained SVMs (§6's running example) or random Fourier
//! features (the standard kernel-approximation basis for deep-ish
//! nonlinearity without a neural network). In both cases the basis
//! parameters are the model's global state `θ`: learned or sampled offline,
//! immutable between retrains, shared across all users.

use std::collections::HashMap;

use velox_batch::JobExecutor;
use velox_linalg::Vector;

use crate::{refit_user_weights, Item, ModelError, RetrainResult, TrainingExample, VeloxModel};

/// Deterministic pseudo-random stream used for basis initialization
/// (splitmix64 → uniform / Gaussian via Box–Muller pairs).
struct BasisRng {
    state: u64,
}

impl BasisRng {
    fn new(seed: u64) -> Self {
        BasisRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }
    fn next_u64(&mut self) -> u64 {
        let mut z = self.state;
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn gaussian(&mut self) -> f64 {
        // Box–Muller; fresh pair each call (throughput is irrelevant here,
        // this runs once at model construction).
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

fn expect_raw(item: &Item, input_dim: usize) -> Result<&Vector, ModelError> {
    match item {
        Item::Raw(x) => {
            if x.len() != input_dim {
                return Err(ModelError::DimensionMismatch { expected: input_dim, actual: x.len() });
            }
            Ok(x)
        }
        Item::Id(_) => Err(ModelError::WrongItemKind { expected: "raw feature payload" }),
    }
}

/// The identity feature function: `f(x) = x`.
///
/// Turns Velox into plain per-user ridge regression over raw item features
/// — the simplest model and the quickstart example.
#[derive(Debug, Clone)]
pub struct IdentityModel {
    name: String,
    dim: usize,
    lambda: f64,
}

impl IdentityModel {
    /// Creates an identity model of input (= output) dimension `dim`, with
    /// ridge constant `lambda` used at offline retrain time.
    pub fn new(name: impl Into<String>, dim: usize, lambda: f64) -> Self {
        assert!(dim > 0 && lambda > 0.0);
        IdentityModel { name: name.into(), dim, lambda }
    }
}

impl VeloxModel for IdentityModel {
    fn name(&self) -> &str {
        &self.name
    }
    fn dim(&self) -> usize {
        self.dim
    }
    fn is_materialized(&self) -> bool {
        false
    }
    fn features(&self, item: &Item) -> Result<Vector, ModelError> {
        Ok(expect_raw(item, self.dim)?.clone())
    }
    fn retrain(
        &self,
        data: &[TrainingExample],
        _user_weights: &HashMap<u64, Vector>,
        executor: &JobExecutor,
    ) -> Result<RetrainResult, ModelError> {
        let user_weights = refit_user_weights(self, data, self.lambda, executor)?;
        Ok(RetrainResult { model: Box::new(self.clone()), user_weights })
    }
}

/// Random Fourier features approximating an RBF kernel:
/// `f_k(x) = √(2/d) · cos(ω_kᵀ x + b_k)`, `ω_k ~ N(0, γ²I)`, `b_k ~ U[0, 2π)`.
///
/// The paper's stand-in for an expensive nonlinear feature function (its
/// text uses deep networks as the example); what the serving experiments
/// need is that computation, not lookup, dominates — which holds here, and
/// the cost scales with `d` exactly as Figure 4 assumes.
#[derive(Debug, Clone)]
pub struct RandomFourierModel {
    name: String,
    input_dim: usize,
    /// ω matrix, row k = ω_k (d × input_dim), flattened row-major.
    omega: Vec<f64>,
    /// Phase offsets b (length d).
    phase: Vec<f64>,
    lambda: f64,
}

impl RandomFourierModel {
    /// Samples a basis: `dim` features over `input_dim`-dimensional input,
    /// kernel bandwidth `gamma`, deterministic in `seed`.
    pub fn new(
        name: impl Into<String>,
        input_dim: usize,
        dim: usize,
        gamma: f64,
        lambda: f64,
        seed: u64,
    ) -> Self {
        assert!(input_dim > 0 && dim > 0 && gamma > 0.0 && lambda > 0.0);
        let mut rng = BasisRng::new(seed);
        let omega: Vec<f64> = (0..dim * input_dim).map(|_| rng.gaussian() * gamma).collect();
        let phase: Vec<f64> = (0..dim).map(|_| rng.uniform() * std::f64::consts::TAU).collect();
        RandomFourierModel { name: name.into(), input_dim, omega, phase, lambda }
    }

    /// Input dimension expected in `Item::Raw` payloads.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }
}

impl VeloxModel for RandomFourierModel {
    fn name(&self) -> &str {
        &self.name
    }
    fn dim(&self) -> usize {
        self.phase.len()
    }
    fn is_materialized(&self) -> bool {
        false
    }
    fn features(&self, item: &Item) -> Result<Vector, ModelError> {
        let x = expect_raw(item, self.input_dim)?;
        let d = self.dim();
        let scale = (2.0 / d as f64).sqrt();
        let mut out = Vec::with_capacity(d);
        for k in 0..d {
            let row = &self.omega[k * self.input_dim..(k + 1) * self.input_dim];
            let proj = velox_linalg::vector::dot_slices(row, x.as_slice());
            out.push(scale * (proj + self.phase[k]).cos());
        }
        Ok(Vector::from_vec(out))
    }
    fn retrain(
        &self,
        data: &[TrainingExample],
        _user_weights: &HashMap<u64, Vector>,
        executor: &JobExecutor,
    ) -> Result<RetrainResult, ModelError> {
        let user_weights = refit_user_weights(self, data, self.lambda, executor)?;
        Ok(RetrainResult { model: Box::new(self.clone()), user_weights })
    }
}

/// An ensemble of `d` pre-trained linear SVMs used as a feature
/// transformation — §6's worked example: "features would evaluate a set of
/// SVMs with different parameters (stored in the member state) passed in on
/// instance construction". Feature `k` is the tanh-squashed margin of SVM
/// `k`.
#[derive(Debug, Clone)]
pub struct SvmEnsembleModel {
    name: String,
    input_dim: usize,
    /// SVM weight vectors, row k = v_k (d × input_dim), row-major.
    weights: Vec<f64>,
    /// SVM intercepts (length d).
    intercepts: Vec<f64>,
    lambda: f64,
}

impl SvmEnsembleModel {
    /// Creates an ensemble from explicit SVM parameters (`svms[k] =
    /// (weight vector, intercept)`), as uploaded by a data scientist.
    pub fn from_svms(
        name: impl Into<String>,
        svms: Vec<(Vec<f64>, f64)>,
        lambda: f64,
    ) -> Result<Self, ModelError> {
        if svms.is_empty() {
            return Err(ModelError::TrainingFailed("empty SVM ensemble".into()));
        }
        let input_dim = svms[0].0.len();
        if input_dim == 0 {
            return Err(ModelError::TrainingFailed("zero-dimensional SVMs".into()));
        }
        let mut weights = Vec::with_capacity(svms.len() * input_dim);
        let mut intercepts = Vec::with_capacity(svms.len());
        for (v, c) in &svms {
            if v.len() != input_dim {
                return Err(ModelError::DimensionMismatch { expected: input_dim, actual: v.len() });
            }
            weights.extend_from_slice(v);
            intercepts.push(*c);
        }
        Ok(SvmEnsembleModel { name: name.into(), input_dim, weights, intercepts, lambda })
    }

    /// Samples a random ensemble of `dim` SVMs over `input_dim` inputs —
    /// handy for tests and benchmarks where the SVMs' provenance is
    /// irrelevant.
    pub fn random(
        name: impl Into<String>,
        input_dim: usize,
        dim: usize,
        lambda: f64,
        seed: u64,
    ) -> Self {
        assert!(input_dim > 0 && dim > 0 && lambda > 0.0);
        let mut rng = BasisRng::new(seed);
        let weights: Vec<f64> = (0..dim * input_dim).map(|_| rng.gaussian()).collect();
        let intercepts: Vec<f64> = (0..dim).map(|_| rng.gaussian() * 0.1).collect();
        SvmEnsembleModel { name: name.into(), input_dim, weights, intercepts, lambda }
    }

    /// Input dimension expected in `Item::Raw` payloads.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }
}

impl VeloxModel for SvmEnsembleModel {
    fn name(&self) -> &str {
        &self.name
    }
    fn dim(&self) -> usize {
        self.intercepts.len()
    }
    fn is_materialized(&self) -> bool {
        false
    }
    fn features(&self, item: &Item) -> Result<Vector, ModelError> {
        let x = expect_raw(item, self.input_dim)?;
        let d = self.dim();
        let mut out = Vec::with_capacity(d);
        for k in 0..d {
            let row = &self.weights[k * self.input_dim..(k + 1) * self.input_dim];
            let margin = velox_linalg::vector::dot_slices(row, x.as_slice()) + self.intercepts[k];
            out.push(margin.tanh());
        }
        Ok(Vector::from_vec(out))
    }
    fn retrain(
        &self,
        data: &[TrainingExample],
        _user_weights: &HashMap<u64, Vector>,
        executor: &JobExecutor,
    ) -> Result<RetrainResult, ModelError> {
        let user_weights = refit_user_weights(self, data, self.lambda, executor)?;
        Ok(RetrainResult { model: Box::new(self.clone()), user_weights })
    }
}

/// A fixed multi-layer perceptron used as a feature transformation — the
/// paper's other computational example ("deep neural networks", §3's Eq. 1
/// discussion). The network's weights are the global state `θ`: sampled (or
/// learned offline) once, immutable between retrains; the *last layer* is
/// per-user, which is exactly Velox's model family — `wᵤᵀ f(x, θ)` with
/// `f` the network's penultimate activations.
///
/// Layers are dense with tanh activations, He-style scaled initialization,
/// all deterministic in the seed.
#[derive(Debug, Clone)]
pub struct MlpFeatureModel {
    name: String,
    input_dim: usize,
    /// Per-layer (weights row-major `out×in`, biases `out`).
    layers: Vec<(Vec<f64>, Vec<f64>)>,
    lambda: f64,
}

impl MlpFeatureModel {
    /// Creates a network with the given layer widths, e.g.
    /// `new("mlp", 16, &[64, 32], ...)` maps 16 → 64 → 32 features.
    ///
    /// # Panics
    /// Panics on empty `hidden` or zero dimensions.
    pub fn new(
        name: impl Into<String>,
        input_dim: usize,
        hidden: &[usize],
        lambda: f64,
        seed: u64,
    ) -> Self {
        assert!(input_dim > 0 && !hidden.is_empty() && lambda > 0.0);
        assert!(hidden.iter().all(|&h| h > 0));
        let mut rng = BasisRng::new(seed);
        let mut layers = Vec::with_capacity(hidden.len());
        let mut fan_in = input_dim;
        for &width in hidden {
            let scale = (2.0 / fan_in as f64).sqrt();
            let weights: Vec<f64> = (0..width * fan_in).map(|_| rng.gaussian() * scale).collect();
            let biases: Vec<f64> = (0..width).map(|_| rng.gaussian() * 0.01).collect();
            layers.push((weights, biases));
            fan_in = width;
        }
        MlpFeatureModel { name: name.into(), input_dim, layers, lambda }
    }

    /// Input dimension expected in `Item::Raw` payloads.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl VeloxModel for MlpFeatureModel {
    fn name(&self) -> &str {
        &self.name
    }
    fn dim(&self) -> usize {
        self.layers.last().expect("non-empty network").1.len()
    }
    fn is_materialized(&self) -> bool {
        false
    }
    fn features(&self, item: &Item) -> Result<Vector, ModelError> {
        let x = expect_raw(item, self.input_dim)?;
        let mut activations: Vec<f64> = x.as_slice().to_vec();
        for (weights, biases) in &self.layers {
            let fan_in = activations.len();
            let mut next = Vec::with_capacity(biases.len());
            for (k, &b) in biases.iter().enumerate() {
                let row = &weights[k * fan_in..(k + 1) * fan_in];
                let z = velox_linalg::vector::dot_slices(row, &activations) + b;
                next.push(z.tanh());
            }
            activations = next;
        }
        Ok(Vector::from_vec(activations))
    }
    fn retrain(
        &self,
        data: &[TrainingExample],
        _user_weights: &HashMap<u64, Vector>,
        executor: &JobExecutor,
    ) -> Result<RetrainResult, ModelError> {
        let user_weights = refit_user_weights(self, data, self.lambda, executor)?;
        Ok(RetrainResult { model: Box::new(self.clone()), user_weights })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velox_batch::JobExecutor;

    fn raw(v: Vec<f64>) -> Item {
        Item::Raw(Vector::from_vec(v))
    }

    #[test]
    fn identity_passes_through() {
        let m = IdentityModel::new("id", 3, 0.1);
        let f = m.features(&raw(vec![1.0, 2.0, 3.0])).unwrap();
        assert_eq!(f.as_slice(), &[1.0, 2.0, 3.0]);
        assert!(!m.is_materialized());
        assert_eq!(m.dim(), 3);
    }

    #[test]
    fn identity_rejects_wrong_inputs() {
        let m = IdentityModel::new("id", 3, 0.1);
        assert!(matches!(
            m.features(&raw(vec![1.0])),
            Err(ModelError::DimensionMismatch { expected: 3, actual: 1 })
        ));
        assert!(matches!(m.features(&Item::Id(5)), Err(ModelError::WrongItemKind { .. })));
    }

    #[test]
    fn rff_is_deterministic_and_bounded() {
        let m1 = RandomFourierModel::new("rff", 4, 64, 1.0, 0.1, 9);
        let m2 = RandomFourierModel::new("rff", 4, 64, 1.0, 0.1, 9);
        let x = raw(vec![0.5, -0.5, 1.0, 0.0]);
        let f1 = m1.features(&x).unwrap();
        let f2 = m2.features(&x).unwrap();
        assert_eq!(f1, f2);
        let bound = (2.0 / 64.0f64).sqrt() + 1e-12;
        assert!(f1.iter().all(|&v| v.abs() <= bound));
        assert_eq!(f1.len(), 64);
        // Different seed → different basis.
        let m3 = RandomFourierModel::new("rff", 4, 64, 1.0, 0.1, 10);
        assert_ne!(m3.features(&x).unwrap(), f1);
    }

    #[test]
    fn rff_kernel_approximation() {
        // E[f(x)·f(y)] ≈ exp(-γ²||x−y||²/2) for the RBF kernel; with d=4096
        // features the approximation should be decent.
        let m = RandomFourierModel::new("rff", 2, 4096, 1.0, 0.1, 3);
        let x = Vector::from_vec(vec![0.3, -0.2]);
        let y = Vector::from_vec(vec![-0.1, 0.4]);
        let fx = m.features(&Item::Raw(x.clone())).unwrap();
        let fy = m.features(&Item::Raw(y.clone())).unwrap();
        let approx = fx.dot(&fy).unwrap();
        let exact = (-x.sub(&y).unwrap().norm2_squared() / 2.0).exp();
        assert!((approx - exact).abs() < 0.05, "kernel approx {approx} vs exact {exact}");
    }

    #[test]
    fn svm_ensemble_from_explicit_parameters() {
        let svms = vec![(vec![1.0, 0.0], 0.0), (vec![0.0, -1.0], 0.5)];
        let m = SvmEnsembleModel::from_svms("svm", svms, 0.1).unwrap();
        assert_eq!(m.dim(), 2);
        let f = m.features(&raw(vec![2.0, 1.0])).unwrap();
        assert!((f[0] - 2.0f64.tanh()).abs() < 1e-12);
        assert!((f[1] - (-0.5f64).tanh()).abs() < 1e-12);
    }

    #[test]
    fn svm_ensemble_validates_construction() {
        assert!(SvmEnsembleModel::from_svms("e", vec![], 0.1).is_err());
        let ragged = vec![(vec![1.0, 2.0], 0.0), (vec![1.0], 0.0)];
        assert!(matches!(
            SvmEnsembleModel::from_svms("e", ragged, 0.1),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn svm_features_bounded_by_tanh() {
        let m = SvmEnsembleModel::random("svm", 5, 32, 0.1, 1);
        let f = m.features(&raw(vec![10.0, -10.0, 5.0, 0.0, 1.0])).unwrap();
        assert!(f.iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn retrain_recovers_linear_user_preferences() {
        // Planted: user 0 has weights [2, -1] over identity features.
        let m = IdentityModel::new("id", 2, 1e-6);
        let w_true = [2.0, -1.0];
        let mut data = Vec::new();
        for i in 0..20 {
            let x = vec![(i as f64 * 0.37).sin(), (i as f64 * 0.73).cos()];
            let y = w_true[0] * x[0] + w_true[1] * x[1];
            data.push(TrainingExample { uid: 0, item: raw(x), y });
        }
        let ex = JobExecutor::new(2);
        let result = m.retrain(&data, &HashMap::new(), &ex).unwrap();
        let w = &result.user_weights[&0];
        assert!((w[0] - 2.0).abs() < 1e-3 && (w[1] + 1.0).abs() < 1e-3, "{w:?}");
    }

    #[test]
    fn retrain_handles_multiple_users_in_parallel() {
        let m = IdentityModel::new("id", 1, 1e-6);
        let mut data = Vec::new();
        for uid in 0..50u64 {
            for i in 0..5 {
                let x = 1.0 + i as f64;
                data.push(TrainingExample { uid, item: raw(vec![x]), y: (uid as f64) * x });
            }
        }
        let ex = JobExecutor::new(8);
        let result = m.retrain(&data, &HashMap::new(), &ex).unwrap();
        assert_eq!(result.user_weights.len(), 50);
        for uid in 0..50u64 {
            assert!((result.user_weights[&uid][0] - uid as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn mlp_shapes_and_determinism() {
        let m = MlpFeatureModel::new("mlp", 4, &[16, 8], 0.1, 7);
        assert_eq!(m.dim(), 8);
        assert_eq!(m.depth(), 2);
        assert_eq!(m.input_dim(), 4);
        assert!(!m.is_materialized());
        let x = raw(vec![0.5, -0.25, 1.0, 0.0]);
        let f1 = m.features(&x).unwrap();
        let f2 = MlpFeatureModel::new("mlp", 4, &[16, 8], 0.1, 7).features(&x).unwrap();
        assert_eq!(f1, f2, "deterministic in seed");
        assert_eq!(f1.len(), 8);
        assert!(f1.iter().all(|&v| v.abs() <= 1.0), "tanh-bounded");
        // Different seed gives a different network.
        let f3 = MlpFeatureModel::new("mlp", 4, &[16, 8], 0.1, 8).features(&x).unwrap();
        assert_ne!(f3, f1);
    }

    #[test]
    fn mlp_is_nonlinear_in_input() {
        // f(2x) != 2 f(x): the featurizer is genuinely nonlinear.
        let m = MlpFeatureModel::new("mlp", 2, &[8], 0.1, 3);
        let f1 = m.features(&raw(vec![0.3, -0.2])).unwrap();
        let f2 = m.features(&raw(vec![0.6, -0.4])).unwrap();
        let mut doubled = f1.clone();
        doubled.scale(2.0);
        assert!(f2.sub(&doubled).unwrap().norm2() > 1e-3);
    }

    #[test]
    fn mlp_rejects_wrong_inputs() {
        let m = MlpFeatureModel::new("mlp", 3, &[4], 0.1, 1);
        assert!(matches!(m.features(&raw(vec![1.0])), Err(ModelError::DimensionMismatch { .. })));
        assert!(matches!(m.features(&Item::Id(1)), Err(ModelError::WrongItemKind { .. })));
    }

    #[test]
    fn mlp_retrain_fits_users_on_network_features() {
        // Plant a user preference in *feature space*; the per-user ridge
        // over MLP features must recover predictions on training points.
        let m = MlpFeatureModel::new("mlp", 2, &[12, 6], 1e-6, 5);
        let w_true = Vector::from_vec(vec![1.0, -0.5, 0.25, 0.75, -1.0, 0.5]);
        let mut data = Vec::new();
        let mut inputs = Vec::new();
        for i in 0..30 {
            let x = vec![(i as f64 * 0.41).sin(), (i as f64 * 0.29).cos()];
            let f = m.features(&raw(x.clone())).unwrap();
            let y = w_true.dot(&f).unwrap();
            inputs.push((x.clone(), y));
            data.push(TrainingExample { uid: 0, item: raw(x), y });
        }
        let ex = JobExecutor::new(2);
        let result = m.retrain(&data, &HashMap::new(), &ex).unwrap();
        let w = &result.user_weights[&0];
        for (x, y) in inputs.iter().take(5) {
            let f = m.features(&raw(x.clone())).unwrap();
            let pred = w.dot(&f).unwrap();
            assert!((pred - y).abs() < 1e-4, "pred {pred} vs {y}");
        }
    }

    #[test]
    fn default_loss_is_squared_error() {
        let m = IdentityModel::new("id", 1, 0.1);
        assert_eq!(m.loss(3.0, 1.0, &raw(vec![0.0]), 0), 4.0);
    }

    #[test]
    fn computational_models_have_empty_materialized_table() {
        let m = RandomFourierModel::new("rff", 2, 8, 1.0, 0.1, 1);
        assert!(m.materialized_table().is_empty());
    }
}
