//! Model-independent validation data collection (§4.3).
//!
//! "When the topK prediction API is used, Velox employs bandit algorithms
//! to collect a pool of validation data that is not influenced by the
//! model." Concretely: a configurable fraction of topK requests are served
//! a *uniformly random* candidate instead of the policy's choice; the
//! resulting observations form an unbiased sample of user–item outcomes,
//! usable to estimate true model quality (a model cannot grade its own
//! homework on data it selected).

use velox_data::VeloxRng;

/// One validation observation gathered from an exploration-served request.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationObservation {
    /// The user.
    pub uid: u64,
    /// The randomly served item.
    pub item_id: u64,
    /// The model's predicted score at serve time.
    pub predicted: f64,
    /// The observed label.
    pub actual: f64,
}

/// Collects an unbiased validation pool by randomizing a fraction of serves.
#[derive(Debug)]
pub struct ValidationPool {
    fraction: f64,
    rng: VeloxRng,
    pool: Vec<ValidationObservation>,
    capacity: usize,
    /// Serves randomized so far (including ones whose label never arrived).
    explorations: u64,
    /// Total serve decisions consulted.
    decisions: u64,
}

impl ValidationPool {
    /// Creates a pool. `fraction ∈ [0, 1]` of serve decisions are
    /// randomized; at most `capacity` labelled observations are retained
    /// (oldest evicted first).
    pub fn new(fraction: f64, capacity: usize, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        assert!(capacity > 0);
        ValidationPool {
            fraction,
            rng: VeloxRng::seed_from(seed),
            pool: Vec::new(),
            capacity,
            explorations: 0,
            decisions: 0,
        }
    }

    /// Consulted once per topK serve: returns `Some(index)` into the
    /// candidate list when this serve should be randomized, `None` when the
    /// policy's choice should stand.
    pub fn maybe_randomize(&mut self, n_candidates: usize) -> Option<usize> {
        self.decisions += 1;
        if n_candidates == 0 {
            return None;
        }
        if self.rng.uniform() < self.fraction {
            self.explorations += 1;
            Some(self.rng.below(n_candidates as u64) as usize)
        } else {
            None
        }
    }

    /// Records the label for a randomized serve.
    pub fn record(&mut self, obs: ValidationObservation) {
        if self.pool.len() == self.capacity {
            self.pool.remove(0);
        }
        self.pool.push(obs);
    }

    /// The current pool contents, oldest first.
    pub fn observations(&self) -> &[ValidationObservation] {
        &self.pool
    }

    /// Unbiased RMSE of the model on exploration-served data; `None` when
    /// the pool is empty.
    pub fn rmse(&self) -> Option<f64> {
        if self.pool.is_empty() {
            return None;
        }
        let sse: f64 =
            self.pool.iter().map(|o| (o.predicted - o.actual) * (o.predicted - o.actual)).sum();
        Some((sse / self.pool.len() as f64).sqrt())
    }

    /// `(randomized, total)` serve-decision counts.
    pub fn decision_counts(&self) -> (u64, u64) {
        (self.explorations, self.decisions)
    }

    /// Drops all pooled observations (after a retrain, old validation data
    /// graded the old model).
    pub fn clear(&mut self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(uid: u64, pred: f64, actual: f64) -> ValidationObservation {
        ValidationObservation { uid, item_id: uid * 10, predicted: pred, actual }
    }

    #[test]
    fn randomization_rate_matches_fraction() {
        let mut pool = ValidationPool::new(0.1, 100, 3);
        let n = 20_000;
        let randomized = (0..n).filter(|_| pool.maybe_randomize(50).is_some()).count();
        let rate = randomized as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
        let (expl, dec) = pool.decision_counts();
        assert_eq!(dec, n as u64);
        assert_eq!(expl, randomized as u64);
    }

    #[test]
    fn randomized_index_in_range() {
        let mut pool = ValidationPool::new(1.0, 10, 5);
        for _ in 0..500 {
            let idx = pool.maybe_randomize(7).expect("fraction 1.0 always randomizes");
            assert!(idx < 7);
        }
        assert!(pool.maybe_randomize(0).is_none(), "empty candidate set");
    }

    #[test]
    fn zero_fraction_never_randomizes() {
        let mut pool = ValidationPool::new(0.0, 10, 5);
        for _ in 0..100 {
            assert!(pool.maybe_randomize(10).is_none());
        }
    }

    #[test]
    fn pool_is_bounded_fifo() {
        let mut pool = ValidationPool::new(0.5, 3, 1);
        for i in 0..5 {
            pool.record(obs(i, 0.0, 0.0));
        }
        let uids: Vec<u64> = pool.observations().iter().map(|o| o.uid).collect();
        assert_eq!(uids, vec![2, 3, 4], "oldest evicted first");
    }

    #[test]
    fn rmse_over_pool() {
        let mut pool = ValidationPool::new(0.5, 10, 1);
        assert!(pool.rmse().is_none());
        pool.record(obs(1, 3.0, 5.0)); // err 2
        pool.record(obs(2, 1.0, 1.0)); // err 0
        let rmse = pool.rmse().unwrap();
        assert!((rmse - 2.0f64.sqrt()).abs() < 1e-12);
        pool.clear();
        assert!(pool.rmse().is_none());
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = ValidationPool::new(0.3, 10, 9);
        let mut b = ValidationPool::new(0.3, 10, 9);
        for _ in 0..200 {
            assert_eq!(a.maybe_randomize(5), b.maybe_randomize(5));
        }
    }
}
