//! Selection policies over scored, uncertainty-tagged candidates.
//!
//! The predictor scores a candidate set (`topK`); a [`BanditPolicy`] decides
//! which candidate to *serve*. Policies see only `(score, variance)` pairs —
//! they are decoupled from the model family, which is what lets Velox swap
//! exploration strategies per §8's future work without touching the serving
//! path.

use velox_data::VeloxRng;

/// One scored candidate, as produced by the predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Predicted score `wᵤᵀ f(x, θ)`.
    pub score: f64,
    /// Posterior variance proxy `f(x,θ)ᵀ A⁻¹ f(x,θ)` (≥ 0).
    pub variance: f64,
}

/// A serving-selection policy.
///
/// `select` returns the index of the candidate to serve. Policies may be
/// stateful (RNG streams); one policy instance serves one stream of
/// requests and is deterministic in its seed.
pub trait BanditPolicy: Send {
    /// Short diagnostic name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Chooses the candidate to serve. `candidates` is non-empty.
    fn select(&mut self, candidates: &[Candidate]) -> usize;

    /// Whether this policy reads [`Candidate::variance`]. Exploitation-only
    /// policies return `false` so the predictor can skip the O(d²)
    /// per-candidate uncertainty computation entirely.
    fn wants_uncertainty(&self) -> bool {
        true
    }
}

fn argmax_by<F: Fn(&Candidate) -> f64>(candidates: &[Candidate], key: F) -> usize {
    let mut best = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    for (i, c) in candidates.iter().enumerate() {
        let v = key(c);
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Pure exploitation: always the highest predicted score. The baseline that
/// exhibits the paper's feedback-loop pathology.
#[derive(Debug, Default)]
pub struct GreedyPolicy;

impl BanditPolicy for GreedyPolicy {
    fn name(&self) -> &'static str {
        "greedy"
    }
    fn select(&mut self, candidates: &[Candidate]) -> usize {
        argmax_by(candidates, |c| c.score)
    }
    fn wants_uncertainty(&self) -> bool {
        false
    }
}

/// With probability ε serve a uniformly random candidate, otherwise the
/// greedy choice. The simplest exploration baseline.
#[derive(Debug)]
pub struct EpsilonGreedyPolicy {
    epsilon: f64,
    rng: VeloxRng,
}

impl EpsilonGreedyPolicy {
    /// Creates a policy with exploration rate `epsilon ∈ [0, 1]`.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon));
        EpsilonGreedyPolicy { epsilon, rng: VeloxRng::seed_from(seed) }
    }
}

impl BanditPolicy for EpsilonGreedyPolicy {
    fn name(&self) -> &'static str {
        "epsilon-greedy"
    }
    fn select(&mut self, candidates: &[Candidate]) -> usize {
        if self.rng.uniform() < self.epsilon {
            self.rng.below(candidates.len() as u64) as usize
        } else {
            argmax_by(candidates, |c| c.score)
        }
    }
    fn wants_uncertainty(&self) -> bool {
        false
    }
}

/// LinUCB [Li et al., WWW'10] — the paper's named technique: serve the
/// candidate with "the best potential prediction score (i.e., the item with
/// max sum of score and uncertainty)". The uncertainty bonus is
/// `α·√variance`.
#[derive(Debug)]
pub struct LinUcbPolicy {
    alpha: f64,
}

impl LinUcbPolicy {
    /// Creates a policy with exploration width `alpha > 0` (1.0–2.0 is the
    /// usual range).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0);
        LinUcbPolicy { alpha }
    }

    /// The exploration width.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl BanditPolicy for LinUcbPolicy {
    fn name(&self) -> &'static str {
        "linucb"
    }
    fn select(&mut self, candidates: &[Candidate]) -> usize {
        argmax_by(candidates, |c| c.score + self.alpha * c.variance.max(0.0).sqrt())
    }
}

/// Thompson sampling on the Gaussian score marginal: draw
/// `score + z·√variance` per candidate, serve the argmax. Randomized
/// exploration proportional to posterior uncertainty.
#[derive(Debug)]
pub struct ThompsonPolicy {
    rng: VeloxRng,
    /// Scale on the sampled noise (1.0 = the posterior itself).
    scale: f64,
}

impl ThompsonPolicy {
    /// Creates a policy; `scale` widens (>1) or narrows (<1) the sampling
    /// distribution relative to the posterior.
    pub fn new(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0);
        ThompsonPolicy { rng: VeloxRng::seed_from(seed), scale }
    }
}

impl BanditPolicy for ThompsonPolicy {
    fn name(&self) -> &'static str {
        "thompson"
    }
    fn select(&mut self, candidates: &[Candidate]) -> usize {
        let mut best = 0usize;
        let mut best_v = f64::NEG_INFINITY;
        for (i, c) in candidates.iter().enumerate() {
            let draw = c.score + self.scale * c.variance.max(0.0).sqrt() * self.rng.gaussian();
            if draw > best_v {
                best_v = draw;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(pairs: &[(f64, f64)]) -> Vec<Candidate> {
        pairs.iter().map(|&(score, variance)| Candidate { score, variance }).collect()
    }

    #[test]
    fn greedy_takes_max_score() {
        let mut p = GreedyPolicy;
        let c = cands(&[(1.0, 9.0), (3.0, 0.0), (2.0, 9.0)]);
        assert_eq!(p.select(&c), 1);
        assert_eq!(p.name(), "greedy");
    }

    #[test]
    fn greedy_ties_break_to_first() {
        let mut p = GreedyPolicy;
        let c = cands(&[(2.0, 0.0), (2.0, 0.0)]);
        assert_eq!(p.select(&c), 0);
    }

    #[test]
    fn linucb_prefers_uncertain_when_bonus_dominates() {
        let mut p = LinUcbPolicy::new(2.0);
        // score 1.0 + 2·√4 = 5 beats score 3.0 + 0.
        let c = cands(&[(3.0, 0.0), (1.0, 4.0)]);
        assert_eq!(p.select(&c), 1);
        // With tiny alpha, exploitation wins.
        let mut narrow = LinUcbPolicy::new(0.01);
        assert_eq!(narrow.select(&c), 0);
    }

    #[test]
    fn linucb_handles_negative_variance_gracefully() {
        // Round-off can push a variance epsilon-negative; must not NaN.
        let mut p = LinUcbPolicy::new(1.0);
        let c = cands(&[(1.0, -1e-15), (0.5, 0.0)]);
        assert_eq!(p.select(&c), 0);
    }

    #[test]
    fn epsilon_zero_is_greedy_epsilon_one_is_uniform() {
        let c = cands(&[(0.0, 0.0), (5.0, 0.0), (1.0, 0.0)]);
        let mut never = EpsilonGreedyPolicy::new(0.0, 1);
        for _ in 0..50 {
            assert_eq!(never.select(&c), 1);
        }
        let mut always = EpsilonGreedyPolicy::new(1.0, 1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[always.select(&c)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform exploration must hit every arm");
    }

    #[test]
    fn epsilon_rate_is_respected() {
        let c = cands(&[(0.0, 0.0), (5.0, 0.0)]);
        let mut p = EpsilonGreedyPolicy::new(0.2, 7);
        let n = 10_000;
        let explored = (0..n).filter(|_| p.select(&c) == 0).count();
        // Arm 0 is only chosen by exploration (half of the ε draws).
        let rate = explored as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "explore-to-arm-0 rate {rate}");
    }

    #[test]
    fn thompson_with_zero_variance_is_greedy() {
        let c = cands(&[(1.0, 0.0), (2.0, 0.0)]);
        let mut p = ThompsonPolicy::new(1.0, 3);
        for _ in 0..50 {
            assert_eq!(p.select(&c), 1);
        }
    }

    #[test]
    fn thompson_explores_proportionally_to_variance() {
        // Arm 0: lower mean but huge variance → must be tried sometimes.
        let c = cands(&[(0.0, 4.0), (1.0, 0.0)]);
        let mut p = ThompsonPolicy::new(1.0, 5);
        let n = 2000;
        let tried0 = (0..n).filter(|_| p.select(&c) == 0).count();
        // P(N(0,2) > 1) ≈ 0.31.
        let rate = tried0 as f64 / n as f64;
        assert!(rate > 0.2 && rate < 0.45, "exploration rate {rate}");
    }

    #[test]
    fn policies_are_deterministic_in_seed() {
        let c = cands(&[(0.0, 1.0), (0.5, 1.0), (1.0, 1.0)]);
        let mut a = ThompsonPolicy::new(1.0, 11);
        let mut b = ThompsonPolicy::new(1.0, 11);
        for _ in 0..100 {
            assert_eq!(a.select(&c), b.select(&c));
        }
        let mut e1 = EpsilonGreedyPolicy::new(0.5, 13);
        let mut e2 = EpsilonGreedyPolicy::new(0.5, 13);
        for _ in 0..100 {
            assert_eq!(e1.select(&c), e2.select(&c));
        }
    }

    /// End-to-end sanity: the paper's feedback-loop pathology. With
    /// orthogonal arm features (observing one arm teaches nothing about the
    /// others — "a service that only recommends sports articles never
    /// learns about politics"), greedy locks onto the first arm that looks
    /// positive, while LinUCB's uncertainty bonus forces it to try every
    /// arm and find the best one. This is the in-crate miniature of the
    /// ABL-BANDIT experiment.
    #[test]
    fn linucb_beats_greedy_on_orthogonal_arms() {
        use velox_linalg::{IncrementalRidge, Vector};

        let n_arms = 10;
        let rounds = 600;
        // Arm k has feature e_k; true reward of arm k is k/10 + 0.1, so arm
        // 9 is best (1.0) but arm 0 already yields positive reward (0.1) —
        // the greedy trap.
        let arms: Vec<Vector> = (0..n_arms).map(|k| Vector::basis(n_arms, k).unwrap()).collect();
        let rewards: Vec<f64> = (0..n_arms).map(|k| 0.1 + k as f64 / 10.0).collect();
        let best = rewards[n_arms - 1];

        let run = |policy: &mut dyn BanditPolicy, noise_seed: u64| -> f64 {
            let mut model = IncrementalRidge::new(n_arms, 1.0);
            let mut nstate = noise_seed | 1;
            let mut noise = move || {
                nstate ^= nstate << 13;
                nstate ^= nstate >> 7;
                nstate ^= nstate << 17;
                (nstate as f64 / u64::MAX as f64 - 0.5) * 0.2
            };
            let mut regret = 0.0;
            for _ in 0..rounds {
                let cands: Vec<Candidate> = arms
                    .iter()
                    .map(|a| Candidate {
                        score: model.predict(a).unwrap(),
                        variance: model.variance(a).unwrap(),
                    })
                    .collect();
                let pick = policy.select(&cands);
                regret += best - rewards[pick];
                model.observe(&arms[pick], rewards[pick] + noise()).unwrap();
            }
            regret
        };

        let mut greedy = GreedyPolicy;
        let mut linucb = LinUcbPolicy::new(1.5);
        let greedy_regret = run(&mut greedy, 101);
        let linucb_regret = run(&mut linucb, 101);
        assert!(
            linucb_regret < greedy_regret * 0.5,
            "LinUCB regret {linucb_regret} should clearly beat greedy {greedy_regret}"
        );
        // And LinUCB's regret must be sublinear: the second half of the run
        // should add much less regret than the first half.
        let mut linucb2 = LinUcbPolicy::new(1.5);
        let mut model = IncrementalRidge::new(n_arms, 1.0);
        let mut first_half = 0.0;
        let mut second_half = 0.0;
        for round in 0..rounds {
            let cands: Vec<Candidate> = arms
                .iter()
                .map(|a| Candidate {
                    score: model.predict(a).unwrap(),
                    variance: model.variance(a).unwrap(),
                })
                .collect();
            let pick = linucb2.select(&cands);
            let r = best - rewards[pick];
            if round < rounds / 2 {
                first_half += r;
            } else {
                second_half += r;
            }
            model.observe(&arms[pick], rewards[pick]).unwrap();
        }
        assert!(
            second_half < first_half * 0.5,
            "regret should flatten: first {first_half}, second {second_half}"
        );
    }
}
