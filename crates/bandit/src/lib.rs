//! # velox-bandit
//!
//! Contextual-bandit serving policies (paper §5, "Bandits and Multiple
//! Models").
//!
//! A model that always serves its argmax prediction creates a feedback
//! loop: "a music recommendation service that only plays the current Top40
//! songs will never receive feedback from users indicating that other songs
//! are preferable." Velox breaks the loop with contextual-bandit techniques
//! [Li et al., WWW'10]: every candidate gets an *uncertainty* score in
//! addition to its predicted score, and the served item maximizes the
//! *potential* score — prediction plus uncertainty — so observations flow
//! toward the directions the user model knows least about.
//!
//! The uncertainty is exactly the ridge-posterior variance
//! `xᵀ(FᵀF + λI)⁻¹x` that the Sherman–Morrison online learner already
//! maintains (`velox-online`), so bandit serving costs one extra O(d²)
//! quadratic form per candidate and no extra state.
//!
//! Provided policies: [`GreedyPolicy`] (the feedback-loop baseline),
//! [`EpsilonGreedyPolicy`], [`LinUcbPolicy`] (the paper's choice), and
//! [`ThompsonPolicy`]. [`ValidationPool`] implements §4.3's "pool of
//! validation data that is not influenced by the model".

#![warn(missing_docs)]

pub mod policy;
pub mod validation;

pub use policy::{
    BanditPolicy, Candidate, EpsilonGreedyPolicy, GreedyPolicy, LinUcbPolicy, ThompsonPolicy,
};
pub use validation::ValidationPool;
