//! Abort/rollback invariants for chunked partition migration (simulator).
//!
//! The property under test: **whatever aborts a migration** — operator
//! cancel, deadline, source death, destination death, or a partitioned
//! checkpoint link — the rollback leaves the cluster bit-identical to a
//! twin that never attempted it:
//!
//! - the map epoch did not move (no dual-write or cutover install);
//! - the source is still the partition's owner (authoritative);
//! - the exported weight table matches the twin's exactly after both
//!   replay the same post-abort workload;
//! - the ledger records `Aborted{reason}` with phase `aborted`.
//!
//! A racing-cancel test covers the mid-stream case where the outcome is
//! timing-dependent: the invariants must hold for *whichever* terminal
//! state the migration reached.

use std::sync::Arc;
use std::time::Duration;

use velox_cluster::{
    lms_update, Cluster, ClusterConfig, LinkChaos, LinkFaultPlan, MembershipError,
    MigrationOutcome, NodeId,
};

const DIM: usize = 4;
const LR: f64 = 0.05;
const USERS: u64 = 40;

fn features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 13 + d as u64 * 5) % 7) as f64 / 6.0).collect()
}

fn build() -> Cluster {
    Cluster::new(ClusterConfig {
        n_nodes: 3,
        max_nodes: 4,
        user_replication: 2,
        // Small chunks so a real migration takes several boundary checks.
        checkpoint_chunk_users: 4,
        ..Default::default()
    })
}

/// Applies a deterministic workload slice identically to any cluster.
fn apply(cluster: &Cluster, offset: u64, n: u64) {
    for i in offset..offset + n {
        let (uid, item) = (i % USERS, i % 16);
        let y = if (i * i) % 3 == 0 { 1.0 } else { 0.0 };
        let at = cluster.route_request(uid);
        cluster.update_user_weights(at, uid, Vec::new, |w| {
            lms_update(w, &features(item), y, LR);
        });
    }
}

fn sorted_weights(cluster: &Cluster) -> Vec<(u64, Vec<f64>)> {
    let mut w = cluster.export_user_weights();
    w.sort_by_key(|(uid, _)| *uid);
    w
}

/// First partition owned by `node` under the current map.
fn partition_owned_by(cluster: &Cluster, node: NodeId) -> u32 {
    let map = cluster.map();
    (0..map.n_partitions())
        .find(|&p| map.owner_of_partition(p) == node)
        .expect("every founding member owns at least one partition")
}

/// Runs one abort scenario against a twin pair: both clusters see the
/// same workload and the same environment mutations (`mirror`), but only
/// `a` attempts the migration, which `trigger` must doom. Asserts the
/// full rollback property.
fn assert_abort_indistinguishable(
    expect_reason: &str,
    mirror: impl Fn(&Cluster),
    trigger: impl Fn(&Cluster, u32, NodeId),
) {
    let (a, b) = (build(), build());
    apply(&a, 0, 300);
    apply(&b, 0, 300);
    assert_eq!(a.join_node().expect("join a"), 3);
    assert_eq!(b.join_node().expect("join b"), 3);
    let p = partition_owned_by(&a, 0);
    let src = 0;
    mirror(&a);
    mirror(&b);
    trigger(&a, p, src);

    let epoch_before = a.map_epoch();
    let err = a.migrate_partition(p, 3).expect_err("trigger must abort the migration");
    match &err {
        MembershipError::Aborted(reason) => assert!(
            reason.contains(expect_reason),
            "abort reason {reason:?} should mention {expect_reason:?}"
        ),
        other => panic!("expected Aborted, got {other:?}"),
    }

    // No epoch moved, the source still owns the partition.
    assert_eq!(a.map_epoch(), epoch_before, "abort must not bump the epoch");
    assert_eq!(a.map().owner_of_partition(p), src, "source stays authoritative");

    // The ledger names the terminal outcome.
    let ledger = a.migrations();
    let last = ledger.last().expect("abort is recorded in the ledger");
    assert_eq!(last.phase, "aborted");
    assert_eq!(last.epoch_end, 0, "an aborted migration never reaches an end epoch");
    match &last.outcome {
        MigrationOutcome::Aborted(reason) => assert!(reason.contains(expect_reason)),
        other => panic!("ledger outcome should be Aborted, got {other:?}"),
    }

    // Replays are bit-identical to the twin that never tried.
    apply(&a, 5000, 200);
    apply(&b, 5000, 200);
    assert_eq!(a.map_epoch(), b.map_epoch(), "twin epochs diverge after abort");
    assert_eq!(sorted_weights(&a), sorted_weights(&b), "twin weights diverge after abort");
}

#[test]
fn operator_cancel_aborts_and_rolls_back() {
    assert_abort_indistinguishable(
        "operator cancel",
        |_| {},
        |a, _p, _src| {
            // Pre-armed cancel: consumed at the migration's first boundary.
            assert!(!a.request_migration_cancel(), "no migration is running yet");
        },
    );
}

#[test]
fn deadline_abort_rolls_back() {
    assert_abort_indistinguishable(
        "deadline exceeded",
        |_| {},
        |a, _p, _src| a.set_migration_deadline(Some(Duration::ZERO)),
    );
}

#[test]
fn source_death_aborts_and_rolls_back() {
    assert_abort_indistinguishable(
        "source death",
        // Both twins lose the source node; only `a` tries to migrate.
        |c| c.kill_node(0),
        |_a, _p, _src| {},
    );
}

#[test]
fn destination_death_aborts_and_rolls_back() {
    assert_abort_indistinguishable("destination death", |c| c.kill_node(3), |_a, _p, _src| {});
}

#[test]
fn partitioned_checkpoint_link_aborts_and_rolls_back() {
    assert_abort_indistinguishable(
        "checkpoint link partitioned",
        |_| {},
        |a, _p, src| {
            let chaos = Arc::new(LinkChaos::new(LinkFaultPlan::scripted(Vec::new())));
            chaos.partition_both(src as u32, 3);
            a.set_migration_link_chaos(chaos);
        },
    );
}

/// Mid-stream cancel race: the cancel lands at an unknown chunk boundary
/// (or after commit). Whichever way it resolves, the cluster must end in
/// one of the two legal states — bit-identical to a twin that never
/// migrated, or bit-identical to a twin that committed the same
/// migration — never anything in between.
#[test]
fn racing_cancel_leaves_only_legal_states() {
    let a = Arc::new(build());
    apply(&a, 0, 300);
    a.join_node().expect("join");
    let p = partition_owned_by(&a, 0);
    let epoch_before = a.map_epoch();

    let a2 = Arc::clone(&a);
    let migrator = std::thread::spawn(move || a2.migrate_partition(p, 3));
    // Keep requesting cancel until the migration is observed in flight
    // or it already finished.
    while !a.request_migration_cancel() && !migrator.is_finished() {
        std::hint::spin_loop();
    }
    let result = migrator.join().expect("migration thread");

    let twin = build();
    apply(&twin, 0, 300);
    twin.join_node().expect("join twin");
    match result {
        Err(MembershipError::Aborted(_)) => {
            assert_eq!(a.map_epoch(), epoch_before, "abort must not bump the epoch");
            assert_eq!(a.map().owner_of_partition(p), 0, "source stays authoritative");
        }
        Ok(_) => {
            assert_eq!(a.map_epoch(), epoch_before + 2, "commit bumps dual-write + cutover");
            twin.migrate_partition(p, 3).expect("twin migration");
        }
        Err(other) => panic!("unexpected migration error: {other:?}"),
    }
    apply(&a, 5000, 200);
    apply(&twin, 5000, 200);
    assert_eq!(a.map_epoch(), twin.map_epoch());
    assert_eq!(sorted_weights(&a), sorted_weights(&twin), "illegal intermediate state");
}

#[test]
fn membership_errors_are_typed_not_panics() {
    let c = build();
    // Unknown slot ids: join-rebalance and fail-over both refuse.
    assert!(matches!(
        c.rebalance_join(99),
        Err(MembershipError::UnknownNode { node: 99, capacity: 4 })
    ));
    assert!(matches!(
        c.fail_over_dead(99),
        Err(MembershipError::UnknownNode { node: 99, capacity: 4 })
    ));
    // Failing over a live member is refused.
    assert!(matches!(c.fail_over_dead(0), Err(MembershipError::NotDown(0))));
    // Migrating to a provisioned-but-unjoined slot is refused.
    assert!(matches!(c.migrate_partition(0, 3), Err(MembershipError::NotAMember(3))));
    // The kill switch refuses migrations until re-enabled.
    c.set_rebalance_enabled(false);
    assert!(matches!(c.migrate_partition(0, 1), Err(MembershipError::RebalanceDisabled)));
    assert!(matches!(c.rebalance_join(1), Err(MembershipError::RebalanceDisabled)));
    c.set_rebalance_enabled(true);
    let joined = c.join_node().expect("join");
    let moved = c.rebalance_join(joined).expect("rebalance after re-enable");
    assert!(!moved.is_empty());
}
