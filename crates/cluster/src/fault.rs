//! Fault injection: health states, kill/recover schedules, and noise.
//!
//! Real clusters lose nodes; the paper's answer (§3, §8) is uid-hash
//! partitioning *plus replication* so a lost node degrades locality, not
//! availability. This module supplies the deterministic adversary for
//! exercising that claim: a [`FaultPlan`] scripts per-node kill/recover
//! points against the cluster's request clock and layers probabilistic
//! transient read failures and latency spikes on top, all driven by a
//! seeded RNG so every chaos run is reproducible.

use crate::partition::NodeId;

/// Health of a simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Serving normally.
    Up,
    /// Back from the dead, re-populating its shards from surviving
    /// replicas; not yet serving reads.
    Recovering,
    /// Dead: shards wiped, unreachable for reads and writes.
    Down,
}

impl NodeHealth {
    /// Stable snake_case label (for metrics and logs).
    pub fn label(&self) -> &'static str {
        match self {
            NodeHealth::Up => "up",
            NodeHealth::Recovering => "recovering",
            NodeHealth::Down => "down",
        }
    }

    /// Compact encoding for lock-free storage in an `AtomicU8` (used by
    /// both the simulated cluster and the TCP runtime in `velox-net`).
    pub fn encode(self) -> u8 {
        match self {
            NodeHealth::Up => 0,
            NodeHealth::Recovering => 1,
            NodeHealth::Down => 2,
        }
    }

    /// Inverse of [`NodeHealth::encode`]; unknown values decode to `Up`.
    pub fn decode(v: u8) -> NodeHealth {
        match v {
            1 => NodeHealth::Recovering,
            2 => NodeHealth::Down,
            _ => NodeHealth::Up,
        }
    }
}

/// What a scheduled fault event does to its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash the node: wipe its shards and caches, mark it `Down`.
    Kill,
    /// Bring the node back: re-populate from surviving replicas.
    Recover,
}

/// One scheduled fault: when the cluster's request clock reaches
/// `at_request`, apply `action` to `node`.
#[derive(Debug, Clone, Copy)]
pub struct FaultEvent {
    /// Request-clock tick (1-based count of routed requests) at which the
    /// event fires.
    pub at_request: u64,
    /// Target node.
    pub node: NodeId,
    /// Kill or recover.
    pub action: FaultAction,
}

/// A deterministic fault-injection plan.
///
/// Scheduled kill/recover events fire against the cluster's request clock
/// (advanced by every routed request), so a plan replays identically for
/// identical workloads. The probabilistic knobs model grey failures:
/// `read_failure_prob` makes a live node transiently unreachable for one
/// shard read (forcing a failover), and `latency_spike_prob` /
/// `latency_spike_us` add tail latency to reads without failing them.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Scheduled kill/recover events (any order; the cluster sorts them).
    pub events: Vec<FaultEvent>,
    /// Probability that any single shard read at a live node transiently
    /// fails (0 disables).
    pub read_failure_prob: f64,
    /// Probability that a read picks up a latency spike (0 disables).
    pub latency_spike_prob: f64,
    /// Extra virtual microseconds added by one latency spike.
    pub latency_spike_us: f64,
    /// Seed for the plan's RNG (transient failures and spikes).
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            events: Vec::new(),
            read_failure_prob: 0.0,
            latency_spike_prob: 0.0,
            latency_spike_us: 5_000.0,
            seed: 0xFA_17,
        }
    }
}

impl FaultPlan {
    /// A plan with only scripted kill/recover events (no random noise).
    pub fn scripted(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events, ..Default::default() }
    }
}

/// One health transition the cluster went through, journaled for the
/// serving layer to turn into lifecycle events (the cluster crate does not
/// depend on any particular registry).
#[derive(Debug, Clone, Copy)]
pub struct HealthTransition {
    /// The node that changed state.
    pub node: NodeId,
    /// The state it entered.
    pub health: NodeHealth,
    /// Entries re-populated from surviving replicas (set on transitions to
    /// `Up` that completed a recovery; 0 otherwise).
    pub caught_up: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(NodeHealth::Up.label(), "up");
        assert_eq!(NodeHealth::Recovering.label(), "recovering");
        assert_eq!(NodeHealth::Down.label(), "down");
    }

    #[test]
    fn scripted_plan_has_no_noise() {
        let plan = FaultPlan::scripted(vec![FaultEvent {
            at_request: 10,
            node: 1,
            action: FaultAction::Kill,
        }]);
        assert_eq!(plan.events.len(), 1);
        assert_eq!(plan.read_failure_prob, 0.0);
        assert_eq!(plan.latency_spike_prob, 0.0);
    }
}
