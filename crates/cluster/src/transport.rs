//! Backend-agnostic serving transport.
//!
//! The paper's cluster (§3) is reachable two ways in this repo: the
//! in-process simulator ([`Cluster`]) that models locality and cost in
//! virtual time, and the real loopback TCP runtime in `velox-net`. The
//! [`Transport`] trait is the seam between them: a driver written against
//! it — the chaos harness, the REST layer, the NET-LAT bench — runs
//! unchanged over either backend, which is what lets us check that the
//! socket path computes *bit-identical* scores to the simulator
//! (`velox-net`'s backends-agree test).
//!
//! The model served over the transport is the paper's online user model: a
//! per-user weight vector `wᵤ` over fixed item features `x`, scored as
//! `wᵤ·x` and updated online with least-mean-squares ([`lms_update`]).
//! Both backends share the exact update routine so floating-point op order
//! cannot diverge between them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cluster::Cluster;
use crate::fault::NodeHealth;
use crate::partition::NodeId;

/// Why a transport request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No live replica could serve the request (every candidate node was
    /// down or the key's data is gone).
    Unavailable,
    /// The transport itself failed: socket error, corrupt frame, timeout.
    /// The in-process backend never returns this.
    Failed(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Unavailable => write!(f, "no live replica available"),
            TransportError::Failed(msg) => write!(f, "transport failed: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Outcome of a predict served over a transport.
#[derive(Debug, Clone)]
pub struct TransportPredict {
    /// The score `wᵤ·x`.
    pub score: f64,
    /// Node that computed the score.
    pub node: NodeId,
    /// True when the request was served by a node other than the user's
    /// home partition (forwarded over the wire, or failed over).
    pub routed: bool,
    /// True when no weight vector existed for the user and the score came
    /// from the all-zeros bootstrap prior.
    pub cold_start: bool,
}

/// Outcome of an acknowledged observe.
#[derive(Debug, Clone)]
pub struct TransportObserve {
    /// Node that owns the user's partition and applied the update.
    pub node: NodeId,
    /// Logical timestamp assigned to the observation by the owning node.
    /// Monotone per owner; replicas replay in `ts` order during recovery.
    pub ts: u64,
    /// Replicas the acknowledged record was shipped to (0 when
    /// replication is off or no replica is live).
    pub shipped_to: usize,
}

/// A serving-path connection to a Velox cluster, real or simulated.
///
/// An `Ok` from [`Transport::observe`] is an *acknowledgement*: the update
/// is applied at the owner and durable per the backend's policy (WAL +
/// shipped log for the TCP runtime). The log-shipping tests hold every
/// backend to that contract.
pub trait Transport {
    /// Number of nodes in the cluster (fixed at construction).
    fn n_nodes(&self) -> usize;

    /// Current health of `node`.
    fn node_health(&self, node: NodeId) -> NodeHealth;

    /// Scores item `item_id` for user `uid`: routes to the node holding
    /// `wᵤ`, computes `wᵤ·x`, and reports how the request was served.
    fn predict(&self, uid: u64, item_id: u64) -> Result<TransportPredict, TransportError>;

    /// Applies one online observation `(uid, item_id, y)` at the owning
    /// node via [`lms_update`] and acknowledges it.
    fn observe(&self, uid: u64, item_id: u64, y: f64) -> Result<TransportObserve, TransportError>;

    /// Fetches the current weight vector for `uid` (`None` when the user
    /// has never been observed). Management-plane read.
    fn fetch_weights(&self, uid: u64) -> Result<Option<Vec<f64>>, TransportError>;
}

/// Dot product in index order — the one accumulation order both backends
/// use, so scores agree bit-for-bit across transports.
pub fn dot(w: &[f64], x: &[f64]) -> f64 {
    w.iter().zip(x).map(|(wi, xi)| wi * xi).sum()
}

/// One least-mean-squares step: `w += lr·(y − w·x)·x`, growing `w` with
/// zeros to `x`'s length first. Shared by every transport backend so the
/// floating-point op order is identical everywhere.
pub fn lms_update(w: &mut Vec<f64>, x: &[f64], y: f64, lr: f64) {
    if w.len() < x.len() {
        w.resize(x.len(), 0.0);
    }
    let err = y - dot(w, x);
    for (wi, xi) in w.iter_mut().zip(x) {
        *wi += lr * err * xi;
    }
}

/// The in-process backend: [`Transport`] over the simulated [`Cluster`].
///
/// Routing, replication, failover, and fault injection all come from the
/// simulator; this adapter adds only the model math (scoring and
/// [`lms_update`]) and a monotone observation clock, mirroring what
/// `velox-net`'s node servers do on real sockets.
pub struct SimTransport {
    cluster: Arc<Cluster>,
    lr: f64,
    ts: AtomicU64,
}

impl SimTransport {
    /// Wraps `cluster`, applying observes with learning rate `lr`.
    pub fn new(cluster: Arc<Cluster>, lr: f64) -> Self {
        SimTransport { cluster, lr, ts: AtomicU64::new(0) }
    }

    /// The wrapped simulator (for fault plans, stats, and seeding).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }
}

impl Transport for SimTransport {
    fn n_nodes(&self) -> usize {
        self.cluster.n_nodes()
    }

    fn node_health(&self, node: NodeId) -> NodeHealth {
        self.cluster.node_health(node)
    }

    fn predict(&self, uid: u64, item_id: u64) -> Result<TransportPredict, TransportError> {
        let at = self.cluster.route_request(uid);
        let x = match self.cluster.read_item_features(at, item_id) {
            read if read.unavailable => return Err(TransportError::Unavailable),
            read => read.value.ok_or(TransportError::Unavailable)?,
        };
        let w_read = self.cluster.read_user_weights(at, uid);
        if w_read.unavailable {
            return Err(TransportError::Unavailable);
        }
        let cold_start = w_read.value.is_none();
        let w = w_read.value.unwrap_or_default();
        Ok(TransportPredict {
            score: dot(&w, &x),
            node: at,
            routed: at != self.cluster.home_of_user(uid),
            cold_start,
        })
    }

    fn observe(&self, uid: u64, item_id: u64, y: f64) -> Result<TransportObserve, TransportError> {
        let at = self.cluster.route_request(uid);
        let read = self.cluster.read_item_features(at, item_id);
        if read.unavailable {
            return Err(TransportError::Unavailable);
        }
        let x = read.value.ok_or(TransportError::Unavailable)?;
        let lr = self.lr;
        self.cluster
            .try_update_user_weights(at, uid, Vec::new, |w| lms_update(w, &x, y, lr))
            .ok_or(TransportError::Unavailable)?;
        let ts = self.ts.fetch_add(1, Ordering::Relaxed) + 1;
        let shipped_to = self.cluster.live_user_replicas(uid).len().saturating_sub(1);
        Ok(TransportObserve { node: at, ts, shipped_to })
    }

    fn fetch_weights(&self, uid: u64) -> Result<Option<Vec<f64>>, TransportError> {
        Ok(self.cluster.peek_user_weights(uid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::fault::NodeHealth;

    fn transport(n_nodes: usize, user_replication: usize) -> SimTransport {
        let cluster = Arc::new(Cluster::new(ClusterConfig {
            n_nodes,
            user_replication,
            item_replication: n_nodes,
            ..Default::default()
        }));
        for item in 0..16u64 {
            cluster.put_item_features(item, vec![1.0, (item % 4) as f64, 0.5]);
        }
        SimTransport::new(cluster, 0.1)
    }

    #[test]
    fn observe_then_predict_moves_score_toward_label() {
        let t = transport(3, 1);
        let before = t.predict(7, 3).unwrap();
        assert_eq!(before.score, 0.0);
        assert!(before.cold_start);
        for _ in 0..50 {
            t.observe(7, 3, 1.0).unwrap();
        }
        let after = t.predict(7, 3).unwrap();
        assert!((after.score - 1.0).abs() < 0.05, "score {} should approach 1.0", after.score);
        assert!(!after.cold_start);
    }

    #[test]
    fn observe_acknowledges_with_monotone_ts() {
        let t = transport(3, 2);
        let a = t.observe(1, 0, 1.0).unwrap();
        let b = t.observe(1, 1, 0.0).unwrap();
        assert!(b.ts > a.ts);
        assert_eq!(a.shipped_to, 1);
    }

    #[test]
    fn predict_survives_home_node_kill_with_replication() {
        let t = transport(3, 2);
        t.observe(42, 1, 1.0).unwrap();
        let home = t.cluster().home_of_user(42);
        t.cluster().kill_node(home);
        let read = t.predict(42, 1).unwrap();
        assert!(read.routed, "request should fail over off the dead home");
        assert_eq!(t.node_health(home), NodeHealth::Down);
    }

    #[test]
    fn unreplicated_user_is_unavailable_after_kill() {
        let t = transport(3, 1);
        t.observe(42, 1, 1.0).unwrap();
        let home = t.cluster().home_of_user(42);
        t.cluster().kill_node(home);
        assert_eq!(t.predict(42, 1).unwrap_err(), TransportError::Unavailable);
    }

    #[test]
    fn lms_update_grows_and_converges() {
        let mut w = Vec::new();
        let x = [1.0, 2.0];
        for _ in 0..200 {
            lms_update(&mut w, &x, 1.0, 0.05);
        }
        assert_eq!(w.len(), 2);
        assert!((dot(&w, &x) - 1.0).abs() < 1e-3);
    }
}
