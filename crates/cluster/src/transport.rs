//! Backend-agnostic serving transport.
//!
//! The paper's cluster (§3) is reachable two ways in this repo: the
//! in-process simulator ([`Cluster`]) that models locality and cost in
//! virtual time, and the real loopback TCP runtime in `velox-net`. The
//! [`Transport`] trait is the seam between them: a driver written against
//! it — the chaos harness, the REST layer, the NET-LAT bench — runs
//! unchanged over either backend, which is what lets us check that the
//! socket path computes *bit-identical* scores to the simulator
//! (`velox-net`'s backends-agree test).
//!
//! The model served over the transport is the paper's online user model: a
//! per-user weight vector `wᵤ` over fixed item features `x`, scored as
//! `wᵤ·x` and updated online with least-mean-squares ([`lms_update`]).
//! Both backends share the exact update routine so floating-point op order
//! cannot diverge between them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use velox_data::VeloxRng;
use velox_obs::{
    ActiveSpan, RootSpan, SpanKind, SpanStatus, TraceConfig, TraceContext, Tracer, FRONT_NODE,
};

use crate::cluster::Cluster;
use crate::detector::{PeerLiveness, PeerState};
use crate::fault::NodeHealth;
use crate::netfault::{ChaosControl, LinkChaos, FRONT_PEER};
use crate::partition::{MembershipView, NodeId, PartitionMap};
use crate::retry::{obs_id_nonce, ObsDedupe, RetryPolicy};

/// Why a transport request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No live replica could serve the request (every candidate node was
    /// down or the key's data is gone).
    Unavailable,
    /// The transport itself failed: socket error, corrupt frame, timeout.
    /// The in-process backend never returns this.
    Failed(String),
    /// The request was well-formed but refused — bad membership argument,
    /// kill switch, or a migration that aborted and rolled back. Maps to
    /// a 4xx at the REST layer, never a 5xx.
    Rejected(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Unavailable => write!(f, "no live replica available"),
            TransportError::Failed(msg) => write!(f, "transport failed: {msg}"),
            TransportError::Rejected(msg) => write!(f, "request rejected: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Outcome of a predict served over a transport.
#[derive(Debug, Clone)]
pub struct TransportPredict {
    /// The score `wᵤ·x`.
    pub score: f64,
    /// Node that computed the score.
    pub node: NodeId,
    /// True when the request was served by a node other than the user's
    /// home partition (forwarded over the wire, or failed over).
    pub routed: bool,
    /// True when no weight vector existed for the user and the score came
    /// from the all-zeros bootstrap prior.
    pub cold_start: bool,
    /// Trace id recorded for this request, when it was sampled — the key
    /// for `GET /trace/<id>` span-tree reassembly.
    pub trace_id: Option<u64>,
}

/// Outcome of an acknowledged observe.
#[derive(Debug, Clone)]
pub struct TransportObserve {
    /// Node that owns the user's partition and applied the update.
    pub node: NodeId,
    /// Logical timestamp assigned to the observation by the owning node.
    /// Monotone per owner; replicas replay in `ts` order during recovery.
    pub ts: u64,
    /// Replicas the acknowledged record was shipped to (0 when
    /// replication is off or no replica is live).
    pub shipped_to: usize,
    /// Trace id recorded for this request, when it was sampled.
    pub trace_id: Option<u64>,
}

/// A serving-path connection to a Velox cluster, real or simulated.
///
/// An `Ok` from [`Transport::observe`] is an *acknowledgement*: the update
/// is applied at the owner and durable per the backend's policy (WAL +
/// shipped log for the TCP runtime). The log-shipping tests hold every
/// backend to that contract.
pub trait Transport {
    /// Number of nodes in the cluster (fixed at construction).
    fn n_nodes(&self) -> usize;

    /// Current health of `node`.
    fn node_health(&self, node: NodeId) -> NodeHealth;

    /// Scores item `item_id` for user `uid`: routes to the node holding
    /// `wᵤ`, computes `wᵤ·x`, and reports how the request was served.
    fn predict(&self, uid: u64, item_id: u64) -> Result<TransportPredict, TransportError>;

    /// Scores many `(uid, item_id)` pairs, answered in request order.
    /// The default serves each pair through [`Transport::predict`];
    /// batch-capable backends override it to amortize the per-request
    /// round trip (one RPC per owning node instead of one per pair). An
    /// override MUST return scores bit-identical to the sequential path
    /// — batching amortizes overhead, it never changes the math.
    fn predict_many(&self, pairs: &[(u64, u64)]) -> Vec<Result<TransportPredict, TransportError>> {
        pairs.iter().map(|&(uid, item_id)| self.predict(uid, item_id)).collect()
    }

    /// Applies one online observation `(uid, item_id, y)` at the owning
    /// node via [`lms_update`] and acknowledges it.
    fn observe(&self, uid: u64, item_id: u64, y: f64) -> Result<TransportObserve, TransportError>;

    /// Fetches the current weight vector for `uid` (`None` when the user
    /// has never been observed). Management-plane read.
    fn fetch_weights(&self, uid: u64) -> Result<Option<Vec<f64>>, TransportError>;

    /// [`Transport::predict`] under an optional caller trace context
    /// (e.g. the REST ingress root span). The default ignores the context
    /// — a backend without tracing keeps working; trace-aware backends
    /// override this, record per-hop spans, and mint their own root when
    /// `ctx` is `None`.
    fn predict_traced(
        &self,
        uid: u64,
        item_id: u64,
        ctx: Option<&TraceContext>,
    ) -> Result<TransportPredict, TransportError> {
        let _ = ctx;
        self.predict(uid, item_id)
    }

    /// [`Transport::observe`] under an optional caller trace context.
    fn observe_traced(
        &self,
        uid: u64,
        item_id: u64,
        y: f64,
        ctx: Option<&TraceContext>,
    ) -> Result<TransportObserve, TransportError> {
        let _ = ctx;
        self.observe(uid, item_id, y)
    }

    /// The backend's tracer, when it has one ([`Tracer::disabled`]
    /// otherwise). REST uses this to serve `GET /trace/<id>`.
    fn tracer(&self) -> Arc<Tracer> {
        Tracer::disabled()
    }

    /// Per-peer liveness as seen by the backend's failure detector,
    /// served by `GET /cluster/health`. The default derives a coarse
    /// verdict from [`Transport::node_health`] with no probe statistics;
    /// backends with a real detector override it.
    fn liveness(&self) -> Vec<PeerLiveness> {
        (0..self.n_nodes())
            .map(|i| PeerLiveness {
                node: i as u32,
                state: match self.node_health(i) {
                    NodeHealth::Up => PeerState::Alive,
                    NodeHealth::Recovering => PeerState::Suspect,
                    NodeHealth::Down => PeerState::Dead,
                },
                misses: 0,
                last_rtt_us: 0,
                probes: 0,
                failures: 0,
            })
            .collect()
    }

    /// Membership and migration state (map epoch, members, migration
    /// ledger, wrong-epoch rejections), served by `GET /cluster/health`.
    /// `None` for backends without elastic membership.
    fn membership(&self) -> Option<MembershipView> {
        None
    }

    /// Requests that the in-flight migration (if any) abort at its next
    /// chunk boundary, rolling back to the pre-migration state. Returns
    /// whether a migration was running when the cancel landed. The
    /// default (no migration machinery) reports `false`.
    fn cancel_migration(&self) -> bool {
        false
    }

    /// Flips the auto-rebalance/migration kill switch. A no-op on
    /// backends without membership machinery.
    fn set_auto_rebalance(&self, on: bool) {
        let _ = on;
    }

    /// Current state of the auto-rebalance kill switch (`false` on
    /// backends without membership machinery).
    fn auto_rebalance_enabled(&self) -> bool {
        false
    }

    /// Operator-initiated planned handoff: migrates the planned partition
    /// set onto `node`. Bad arguments (unknown slot, non-member) come
    /// back as [`TransportError::Rejected`], not a panic.
    fn rebalance_join_node(&self, node: NodeId) -> Result<Vec<u32>, TransportError> {
        let _ = node;
        Err(TransportError::Rejected("backend has no membership machinery".into()))
    }

    /// Operator-initiated fail-over of a down member: removes it from the
    /// map and backfills depleted replica sets. Returns the entries
    /// copied during backfill.
    fn fail_over_node(&self, node: NodeId) -> Result<u64, TransportError> {
        let _ = node;
        Err(TransportError::Rejected("backend has no membership machinery".into()))
    }
}

/// Folds a typed membership failure into a transport error: every
/// [`MembershipError`] is an operator-input problem (4xx), not a backend
/// fault.
pub fn membership_rejection(e: crate::partition::MembershipError) -> TransportError {
    TransportError::Rejected(e.to_string())
}

/// Dot product in index order — the one accumulation order both backends
/// use, so scores agree bit-for-bit across transports.
pub fn dot(w: &[f64], x: &[f64]) -> f64 {
    w.iter().zip(x).map(|(wi, xi)| wi * xi).sum()
}

/// One least-mean-squares step: `w += lr·(y − w·x)·x`, growing `w` with
/// zeros to `x`'s length first. Shared by every transport backend so the
/// floating-point op order is identical everywhere.
pub fn lms_update(w: &mut Vec<f64>, x: &[f64], y: f64, lr: f64) {
    if w.len() < x.len() {
        w.resize(x.len(), 0.0);
    }
    let err = y - dot(w, x);
    for (wi, xi) in w.iter_mut().zip(x) {
        *wi += lr * err * xi;
    }
}

/// The in-process backend: [`Transport`] over the simulated [`Cluster`].
///
/// Routing, replication, failover, and fault injection all come from the
/// simulator; this adapter adds only the model math (scoring and
/// [`lms_update`]) and a monotone observation clock, mirroring what
/// `velox-net`'s node servers do on real sockets.
pub struct SimTransport {
    cluster: Arc<Cluster>,
    lr: f64,
    ts: AtomicU64,
    tracer: Arc<Tracer>,
    // Network-fault mirror: the same link chaos engine, retry budget, and
    // observation dedupe the TCP runtime uses, so the CHAOS-NET suite
    // runs unchanged over the simulator. All inert by default — with no
    // installed plan the serving path is byte-for-byte the old one.
    chaos: Arc<LinkChaos>,
    retry: RetryPolicy,
    retry_rng: Mutex<VeloxRng>,
    obs_dedupe: Mutex<ObsDedupe<(NodeId, u64, usize)>>,
    obs_nonce: u64,
    obs_seq: AtomicU64,
    dedupe_hits: AtomicU64,
    chaos_retries: AtomicU64,
    // Client-side partition-map cache: every request presents this map's
    // epoch to the cluster exactly like a TCP client stamps its frames.
    // A WrongEpoch rejection refreshes the cache and retries — the same
    // stale-client protocol the socket backend runs.
    map: Mutex<Arc<PartitionMap>>,
    map_refreshes: AtomicU64,
}

impl SimTransport {
    /// Wraps `cluster`, applying observes with learning rate `lr`.
    /// Tracing is off; use [`SimTransport::with_trace`] to record spans.
    pub fn new(cluster: Arc<Cluster>, lr: f64) -> Self {
        Self::build(cluster, lr, Tracer::disabled())
    }

    /// Like [`SimTransport::new`] but with request tracing per `trace`.
    /// The simulator emits the same span chain as the TCP runtime —
    /// route, failover, RPC, server receive, node work, log shipping —
    /// so span trees are structurally comparable across backends.
    pub fn with_trace(cluster: Arc<Cluster>, lr: f64, trace: TraceConfig) -> Self {
        let tracer = Tracer::new(cluster.n_nodes(), trace);
        Self::build(cluster, lr, tracer)
    }

    fn build(cluster: Arc<Cluster>, lr: f64, tracer: Arc<Tracer>) -> Self {
        let map = Mutex::new(cluster.map());
        let chaos = Arc::new(LinkChaos::default());
        // The migration path consults the same link-fault engine the
        // serving path does, so a partition cut by the chaos harness also
        // aborts an in-flight checkpoint transfer.
        cluster.set_migration_link_chaos(Arc::clone(&chaos));
        SimTransport {
            cluster,
            lr,
            ts: AtomicU64::new(0),
            tracer,
            chaos,
            retry: RetryPolicy::default(),
            retry_rng: Mutex::new(VeloxRng::seed_from(0x51A1_7E57)),
            obs_dedupe: Mutex::new(ObsDedupe::new(65_536)),
            obs_nonce: obs_id_nonce(),
            obs_seq: AtomicU64::new(0),
            dedupe_hits: AtomicU64::new(0),
            chaos_retries: AtomicU64::new(0),
            map,
            map_refreshes: AtomicU64::new(0),
        }
    }

    /// Replaces the retry policy (builder-style, before sharing).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The wrapped simulator (for fault plans, stats, and seeding).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Observes suppressed by the exactly-once dedupe window (duplicate
    /// deliveries plus ack-lost replays).
    pub fn dedupe_hit_count(&self) -> u64 {
        self.dedupe_hits.load(Ordering::Relaxed)
    }

    /// RPC attempts retried because of injected link faults.
    pub fn chaos_retry_count(&self) -> u64 {
        self.chaos_retries.load(Ordering::Relaxed)
    }

    /// Map refreshes forced by `WrongEpoch` rejections (each one is a
    /// stale client catching up to a membership change).
    pub fn map_refresh_count(&self) -> u64 {
        self.map_refreshes.load(Ordering::Relaxed)
    }

    /// Presents the cached map epoch to the cluster before a request, as a
    /// TCP client stamps its frames. A `WrongEpoch` rejection refreshes
    /// the cache from the cluster and re-presents — bounded because the
    /// refreshed epoch is the one the rejection reported (or newer).
    fn admit_with_refresh(&self) {
        loop {
            let epoch = self.map.lock().unwrap().epoch();
            match self.cluster.admit_epoch(epoch) {
                Ok(()) => return,
                Err(_) => {
                    *self.map.lock().unwrap() = self.cluster.map();
                    self.map_refreshes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Mints a process-unique observation id.
    fn next_obs_id(&self) -> u64 {
        let id = self.obs_nonce.wrapping_add(self.obs_seq.fetch_add(1, Ordering::Relaxed) + 1);
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Marks one chaos-failed attempt: a `Retry` span marker plus
    /// jittered backoff when budget remains.
    fn note_chaos_retry(&self, entry_ctx: Option<&TraceContext>, attempt: u32, budget: u32) {
        self.chaos_retries.fetch_add(1, Ordering::Relaxed);
        let marker = self.tracer.child(entry_ctx, SpanKind::Retry, FRONT_NODE);
        self.tracer.finish_status(marker, SpanStatus::Error);
        if attempt + 1 < budget {
            let pause = {
                let mut rng = self.retry_rng.lock().unwrap();
                self.retry.backoff(attempt, &mut rng)
            };
            // Simulated time, real sleeps: chaos plans keep backoff small.
            std::thread::sleep(pause);
        }
    }

    /// Entry span for one request: a child when the caller propagated a
    /// context (REST ingress), a fresh root otherwise.
    fn entry(
        &self,
        kind: SpanKind,
        ctx: Option<&TraceContext>,
    ) -> (Option<RootSpan>, Option<ActiveSpan>) {
        if ctx.is_some() {
            (None, self.tracer.child(ctx, kind, FRONT_NODE))
        } else {
            (self.tracer.ingress(kind, FRONT_NODE), None)
        }
    }

    /// Closes the entry span (and roots' keep decision) after the work.
    fn close_entry(&self, root: Option<RootSpan>, child: Option<ActiveSpan>, status: SpanStatus) {
        self.tracer.finish_status(child, status);
        if let Some(r) = root {
            self.tracer.end_root(r);
        }
    }
}

impl Transport for SimTransport {
    fn n_nodes(&self) -> usize {
        self.cluster.n_nodes()
    }

    fn node_health(&self, node: NodeId) -> NodeHealth {
        self.cluster.node_health(node)
    }

    fn predict(&self, uid: u64, item_id: u64) -> Result<TransportPredict, TransportError> {
        self.predict_traced(uid, item_id, None)
    }

    fn observe(&self, uid: u64, item_id: u64, y: f64) -> Result<TransportObserve, TransportError> {
        self.observe_traced(uid, item_id, y, None)
    }

    fn predict_traced(
        &self,
        uid: u64,
        item_id: u64,
        ctx: Option<&TraceContext>,
    ) -> Result<TransportPredict, TransportError> {
        let tracer = &self.tracer;
        let (root, entry_child) = self.entry(SpanKind::ClusterPredict, ctx);
        let entry_ctx =
            root.as_ref().map(|r| r.ctx()).or_else(|| entry_child.as_ref().map(|c| c.ctx()));

        self.admit_with_refresh();
        let route_span = tracer.child(entry_ctx.as_ref(), SpanKind::Route, FRONT_NODE);
        let at = self.cluster.route_request(uid);
        let home = self.cluster.home_of_user(uid);
        tracer.finish(route_span);

        // Chaos failover order: the routed target first, then the user's
        // other live replicas. With no link faults installed, attempt 0
        // on `at` is the only attempt and the path is exactly the
        // chaos-free one.
        let mut candidates = vec![at];
        for r in self.cluster.live_user_replicas(uid) {
            if r != at {
                candidates.push(r);
            }
        }

        let budget = self.retry.max_attempts.max(1);
        let mut served_at = at;
        let mut outcome: Result<(f64, bool), TransportError> =
            Err(TransportError::Failed("chaos: retry budget exhausted".into()));
        for attempt in 0..budget {
            let target = candidates[attempt as usize % candidates.len()];
            let v = self.chaos.verdict(FRONT_PEER, target as u32);
            if v.delay_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(v.delay_us));
            }
            if v.partitioned_request || v.partitioned_response || v.drop || v.corrupt || v.reset {
                // Predicts are idempotent: any lost request or lost
                // response is safe to retry on the next candidate.
                self.note_chaos_retry(entry_ctx.as_ref(), attempt, budget);
                continue;
            }
            if target != home {
                let fo = tracer.child(entry_ctx.as_ref(), SpanKind::Failover, FRONT_NODE);
                tracer.finish(fo);
            }

            // The simulator has no wire hop; the RPC → recv → work nesting
            // is emitted anyway so both backends produce the same tree
            // shape.
            let rpc_span = tracer.child(entry_ctx.as_ref(), SpanKind::RpcCall, FRONT_NODE);
            let rpc_ctx = rpc_span.as_ref().map(|s| s.ctx());
            let recv_span = tracer.child(rpc_ctx.as_ref(), SpanKind::ServerRecv, target as u32);
            let recv_ctx = recv_span.as_ref().map(|s| s.ctx());
            let work_span = tracer.child(recv_ctx.as_ref(), SpanKind::NodePredict, target as u32);

            let result = (|| {
                let x = match self.cluster.read_item_features(target, item_id) {
                    read if read.unavailable => return Err(TransportError::Unavailable),
                    read => read.value.ok_or(TransportError::Unavailable)?,
                };
                let w_read = self.cluster.read_user_weights(target, uid);
                if w_read.unavailable {
                    return Err(TransportError::Unavailable);
                }
                let cold_start = w_read.value.is_none();
                let w = w_read.value.unwrap_or_default();
                Ok((dot(&w, &x), cold_start))
            })();

            let status = if result.is_ok() { SpanStatus::Ok } else { SpanStatus::Error };
            tracer.finish_status(work_span, status);
            tracer.finish_status(recv_span, status);
            tracer.finish_status(rpc_span, status);
            served_at = target;
            outcome = result;
            // Cluster-level errors (node down, data gone) keep their
            // original single-shot semantics; only link faults retry.
            break;
        }

        let status = if outcome.is_ok() { SpanStatus::Ok } else { SpanStatus::Error };
        let trace_id = entry_ctx.map(|c| c.trace_id);
        self.close_entry(root, entry_child, status);

        outcome.map(|(score, cold_start)| TransportPredict {
            score,
            node: served_at,
            routed: served_at != home,
            cold_start,
            trace_id,
        })
    }

    fn observe_traced(
        &self,
        uid: u64,
        item_id: u64,
        y: f64,
        ctx: Option<&TraceContext>,
    ) -> Result<TransportObserve, TransportError> {
        let tracer = &self.tracer;
        let (root, entry_child) = self.entry(SpanKind::ClusterObserve, ctx);
        let entry_ctx =
            root.as_ref().map(|r| r.ctx()).or_else(|| entry_child.as_ref().map(|c| c.ctx()));

        // One observation id for the whole logical call: every attempt
        // (including ack-lost replays) carries the same id, so the dedupe
        // window makes the operation exactly-once no matter how the link
        // misbehaves.
        let obs_id = self.next_obs_id();
        self.admit_with_refresh();
        let home = self.cluster.home_of_user(uid);
        let budget = self.retry.max_attempts.max(1);
        let mut outcome: Result<(NodeId, u64, usize), TransportError> =
            Err(TransportError::Failed("chaos: retry budget exhausted".into()));
        for attempt in 0..budget {
            let route_span = if attempt == 0 {
                tracer.child(entry_ctx.as_ref(), SpanKind::Route, FRONT_NODE)
            } else {
                None
            };
            let at = self.cluster.route_request(uid);
            tracer.finish(route_span);

            let v = self.chaos.verdict(FRONT_PEER, at as u32);
            if v.delay_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(v.delay_us));
            }
            // Faults that lose the request *before* the node sees it (or
            // sever the connection before dispatch) are guaranteed
            // not-applied: replaying them is unconditionally safe.
            if v.partitioned_request || v.drop || v.corrupt || v.reset {
                self.note_chaos_retry(entry_ctx.as_ref(), attempt, budget);
                continue;
            }
            if at != home {
                let fo = tracer.child(entry_ctx.as_ref(), SpanKind::Failover, FRONT_NODE);
                tracer.finish(fo);
            }

            let rpc_span = tracer.child(entry_ctx.as_ref(), SpanKind::RpcCall, FRONT_NODE);
            let rpc_ctx = rpc_span.as_ref().map(|s| s.ctx());
            let recv_span = tracer.child(rpc_ctx.as_ref(), SpanKind::ServerRecv, at as u32);
            let recv_ctx = recv_span.as_ref().map(|s| s.ctx());
            let work_span = tracer.child(recv_ctx.as_ref(), SpanKind::NodeObserve, at as u32);
            let work_ctx = work_span.as_ref().map(|s| s.ctx());

            // Replayed id: the node already applied this observation on a
            // previous attempt whose ack was lost — return the original
            // ack instead of a second LMS step.
            let replayed = self.obs_dedupe.lock().unwrap().hit(obs_id);
            let result = if let Some(ack) = replayed {
                self.dedupe_hits.fetch_add(1, Ordering::Relaxed);
                Ok(ack)
            } else {
                let fresh = (|| {
                    let read = self.cluster.read_item_features(at, item_id);
                    if read.unavailable {
                        return Err(TransportError::Unavailable);
                    }
                    let x = read.value.ok_or(TransportError::Unavailable)?;
                    let lr = self.lr;
                    self.cluster
                        .try_update_user_weights(at, uid, Vec::new, |w| lms_update(w, &x, y, lr))
                        .ok_or(TransportError::Unavailable)?;
                    Ok(self.ts.fetch_add(1, Ordering::Relaxed) + 1)
                })();

                match fresh {
                    Err(e) => Err(e),
                    Ok(ts) => {
                        // Mirror the TCP runtime's log shipping: one
                        // replica hop per live replica (owner excluded),
                        // applied synchronously.
                        let mut shipped_to = 0;
                        for replica in self.cluster.live_user_replicas(uid) {
                            if replica == at {
                                continue;
                            }
                            let ship =
                                tracer.child(work_ctx.as_ref(), SpanKind::ShipReplica, at as u32);
                            let ship_ctx = ship.as_ref().map(|s| s.ctx());
                            let rrecv = tracer.child(
                                ship_ctx.as_ref(),
                                SpanKind::ServerRecv,
                                replica as u32,
                            );
                            let rrecv_ctx = rrecv.as_ref().map(|s| s.ctx());
                            let apply = tracer.child(
                                rrecv_ctx.as_ref(),
                                SpanKind::ShipApply,
                                replica as u32,
                            );
                            tracer.finish(apply);
                            tracer.finish(rrecv);
                            tracer.finish(ship);
                            shipped_to += 1;
                        }
                        self.obs_dedupe.lock().unwrap().put(obs_id, (at, ts, shipped_to));
                        if v.duplicate {
                            // The frame was delivered twice: the second
                            // delivery lands in the dedupe window and is
                            // suppressed instead of re-applied.
                            if self.obs_dedupe.lock().unwrap().hit(obs_id).is_some() {
                                self.dedupe_hits.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok((at, ts, shipped_to))
                    }
                }
            };

            let status = if result.is_ok() { SpanStatus::Ok } else { SpanStatus::Error };
            tracer.finish_status(work_span, status);
            tracer.finish_status(recv_span, status);
            tracer.finish_status(rpc_span, status);

            if result.is_ok() && v.partitioned_response {
                // Applied (and recorded under obs_id), but the ack is
                // lost on the way back. Replay with the same id: if the
                // reverse path stays cut for the whole budget the caller
                // gets an error and never counts the observe acked.
                self.note_chaos_retry(entry_ctx.as_ref(), attempt, budget);
                continue;
            }
            outcome = result;
            break;
        }

        let status = if outcome.is_ok() { SpanStatus::Ok } else { SpanStatus::Error };
        let trace_id = entry_ctx.map(|c| c.trace_id);
        self.close_entry(root, entry_child, status);

        outcome.map(|(node, ts, shipped_to)| TransportObserve { node, ts, shipped_to, trace_id })
    }

    fn fetch_weights(&self, uid: u64) -> Result<Option<Vec<f64>>, TransportError> {
        Ok(self.cluster.peek_user_weights(uid))
    }

    fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.tracer)
    }

    fn membership(&self) -> Option<MembershipView> {
        let map = self.cluster.map();
        Some(MembershipView {
            epoch: map.epoch(),
            members: map.members().to_vec(),
            n_partitions: map.n_partitions(),
            replication: map.replication(),
            migrations: self.cluster.migrations(),
            wrong_epoch: self.cluster.wrong_epoch_count(),
            map_refreshes: self.map_refresh_count(),
            auto_rebalance: self.cluster.rebalance_enabled(),
        })
    }

    fn cancel_migration(&self) -> bool {
        self.cluster.request_migration_cancel()
    }

    fn set_auto_rebalance(&self, on: bool) {
        self.cluster.set_rebalance_enabled(on);
    }

    fn auto_rebalance_enabled(&self) -> bool {
        self.cluster.rebalance_enabled()
    }

    fn rebalance_join_node(&self, node: NodeId) -> Result<Vec<u32>, TransportError> {
        self.cluster.rebalance_join(node).map_err(membership_rejection)
    }

    fn fail_over_node(&self, node: NodeId) -> Result<u64, TransportError> {
        self.cluster.fail_over_dead(node).map_err(membership_rejection)
    }
}

impl ChaosControl for SimTransport {
    fn link_chaos(&self) -> &Arc<LinkChaos> {
        &self.chaos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::fault::NodeHealth;

    fn transport(n_nodes: usize, user_replication: usize) -> SimTransport {
        let cluster = Arc::new(Cluster::new(ClusterConfig {
            n_nodes,
            user_replication,
            item_replication: n_nodes,
            ..Default::default()
        }));
        for item in 0..16u64 {
            cluster.put_item_features(item, vec![1.0, (item % 4) as f64, 0.5]);
        }
        SimTransport::new(cluster, 0.1)
    }

    #[test]
    fn observe_then_predict_moves_score_toward_label() {
        let t = transport(3, 1);
        let before = t.predict(7, 3).unwrap();
        assert_eq!(before.score, 0.0);
        assert!(before.cold_start);
        for _ in 0..50 {
            t.observe(7, 3, 1.0).unwrap();
        }
        let after = t.predict(7, 3).unwrap();
        assert!((after.score - 1.0).abs() < 0.05, "score {} should approach 1.0", after.score);
        assert!(!after.cold_start);
    }

    #[test]
    fn observe_acknowledges_with_monotone_ts() {
        let t = transport(3, 2);
        let a = t.observe(1, 0, 1.0).unwrap();
        let b = t.observe(1, 1, 0.0).unwrap();
        assert!(b.ts > a.ts);
        assert_eq!(a.shipped_to, 1);
    }

    #[test]
    fn predict_survives_home_node_kill_with_replication() {
        let t = transport(3, 2);
        t.observe(42, 1, 1.0).unwrap();
        let home = t.cluster().home_of_user(42);
        t.cluster().kill_node(home);
        let read = t.predict(42, 1).unwrap();
        assert!(read.routed, "request should fail over off the dead home");
        assert_eq!(t.node_health(home), NodeHealth::Down);
    }

    #[test]
    fn unreplicated_user_is_unavailable_after_kill() {
        let t = transport(3, 1);
        t.observe(42, 1, 1.0).unwrap();
        let home = t.cluster().home_of_user(42);
        t.cluster().kill_node(home);
        assert_eq!(t.predict(42, 1).unwrap_err(), TransportError::Unavailable);
    }

    #[test]
    fn stale_client_refreshes_map_and_serves_through_rebalance() {
        let cluster = Arc::new(Cluster::new(ClusterConfig {
            n_nodes: 3,
            user_replication: 2,
            item_replication: 3,
            max_nodes: 4,
            ..Default::default()
        }));
        for item in 0..16u64 {
            cluster.put_item_features(item, vec![1.0, (item % 4) as f64, 0.5]);
        }
        let t = SimTransport::new(Arc::clone(&cluster), 0.1);
        for uid in 0..64u64 {
            t.observe(uid, uid % 16, 1.0).unwrap();
        }
        // Membership changes behind the client's back: join + rebalance.
        let new = cluster.join_node().unwrap();
        cluster.rebalance_join(new).unwrap();
        assert_eq!(t.map_refresh_count(), 0, "client still holds the stale map");
        // The next request is rejected as WrongEpoch, refreshes, retries,
        // and serves — no user-visible error.
        for uid in 0..64u64 {
            let read = t.predict(uid, uid % 16).unwrap();
            assert!(!read.cold_start, "weights must survive the rebalance (uid {uid})");
        }
        assert_eq!(t.map_refresh_count(), 1, "one refresh catches the client up");
        assert!(cluster.wrong_epoch_count() >= 1);
        let view = t.membership().expect("sim backend reports membership");
        assert_eq!(view.epoch, cluster.map_epoch());
        assert!(view.members.contains(&new));
        assert!(!view.migrations.is_empty());
        assert!(view.migrations.iter().all(|m| m.phase == "done"));
    }

    #[test]
    fn lms_update_grows_and_converges() {
        let mut w = Vec::new();
        let x = [1.0, 2.0];
        for _ in 0..200 {
            lms_update(&mut w, &x, 1.0, 0.05);
        }
        assert_eq!(w.len(), 2);
        assert!((dot(&w, &x) - 1.0).abs() < 1e-3);
    }
}
