//! Heartbeat-driven failure detection with suspect/dead thresholds.
//!
//! Per-request timeouts discover a dead peer over and over, one blown
//! deadline at a time. A [`FailureDetector`] amortizes that discovery:
//! a probe loop (plus piggybacked data-plane outcomes) feeds per-peer
//! consecutive-miss counts, and routing consults the resulting
//! [`PeerState`] so failover happens on *suspicion* — before a request
//! has to burn its deadline finding out. Thresholds are deliberately
//! two-stage: a `Suspect` peer is deprioritized but still reachable
//! (one miss may be a lost probe, not a dead peer); a `Dead` peer is
//! skipped outright until it proves itself again.
//!
//! The detector is transport-agnostic: `velox-net` drives it from a
//! heartbeat thread over real sockets, and `SimTransport` feeds it from
//! simulated attempt outcomes, so `/cluster/health` reports the same
//! shape on both backends.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use velox_obs::{Gauge, Registry};

/// Liveness verdict for one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Responding to probes.
    Alive,
    /// Missed `suspect_after` consecutive probes: deprioritized for
    /// routing but still tried as a fallback.
    Suspect,
    /// Missed `dead_after` consecutive probes: skipped by routing until
    /// a probe succeeds again.
    Dead,
}

impl PeerState {
    /// Stable snake_case label (for metrics and `/cluster/health`).
    pub fn label(&self) -> &'static str {
        match self {
            PeerState::Alive => "alive",
            PeerState::Suspect => "suspect",
            PeerState::Dead => "dead",
        }
    }

    /// Compact encoding for lock-free storage in an `AtomicU8`.
    pub fn encode(self) -> u8 {
        match self {
            PeerState::Alive => 0,
            PeerState::Suspect => 1,
            PeerState::Dead => 2,
        }
    }

    /// Inverse of [`PeerState::encode`]; unknown values decode to `Alive`.
    pub fn decode(v: u8) -> PeerState {
        match v {
            1 => PeerState::Suspect,
            2 => PeerState::Dead,
            _ => PeerState::Alive,
        }
    }
}

/// Consecutive-miss thresholds for the two-stage verdict.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Consecutive misses before a peer turns `Suspect`.
    pub suspect_after: u32,
    /// Consecutive misses before a peer turns `Dead`.
    pub dead_after: u32,
    /// Consecutive *successes* required before a `Suspect`/`Dead` peer is
    /// promoted back to `Alive` — flap damping, so a marginal link that
    /// alternates hit/miss cannot oscillate routing on every probe. One
    /// intervening failure resets the streak.
    pub revive_after: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { suspect_after: 2, dead_after: 5, revive_after: 3 }
    }
}

/// One peer's liveness, as reported by `/cluster/health`.
#[derive(Debug, Clone, Copy)]
pub struct PeerLiveness {
    /// Peer id.
    pub node: u32,
    /// Current verdict.
    pub state: PeerState,
    /// Consecutive probe misses.
    pub misses: u32,
    /// Round-trip time of the last successful probe, in microseconds.
    pub last_rtt_us: u64,
    /// Total probe outcomes recorded (successes + failures).
    pub probes: u64,
    /// Total probe failures recorded.
    pub failures: u64,
}

#[derive(Default)]
struct ProbeRuns {
    /// Consecutive failed probes (reset by any success).
    misses: u32,
    /// Consecutive successful probes (reset by any failure).
    streak: u32,
}

struct Slot {
    // State math runs under the mutex (run counts + transition decision);
    // the atomics mirror the results for lock-free readers on the
    // serving path.
    core: Mutex<ProbeRuns>,
    state: AtomicU8,
    last_rtt_us: AtomicU64,
    probes: AtomicU64,
    failures: AtomicU64,
}

/// Per-peer liveness from consecutive probe outcomes.
pub struct FailureDetector {
    config: DetectorConfig,
    slots: Vec<Slot>,
    exports: Mutex<Vec<Arc<Gauge>>>,
}

impl std::fmt::Debug for FailureDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureDetector")
            .field("peers", &self.slots.len())
            .field("config", &self.config)
            .finish()
    }
}

impl FailureDetector {
    /// A detector tracking `n_peers` peers.
    pub fn new(n_peers: usize, config: DetectorConfig) -> Self {
        let slots = (0..n_peers)
            .map(|_| Slot {
                core: Mutex::new(ProbeRuns::default()),
                state: AtomicU8::new(PeerState::Alive.encode()),
                last_rtt_us: AtomicU64::new(0),
                probes: AtomicU64::new(0),
                failures: AtomicU64::new(0),
            })
            .collect();
        FailureDetector { config, slots, exports: Mutex::new(Vec::new()) }
    }

    /// Number of peers tracked.
    pub fn n_peers(&self) -> usize {
        self.slots.len()
    }

    /// Current verdict for `peer` (lock-free).
    pub fn state(&self, peer: u32) -> PeerState {
        PeerState::decode(self.slots[peer as usize].state.load(Ordering::Acquire))
    }

    /// Records a successful probe (or data-plane call) to `peer` with the
    /// observed round trip. A `Suspect`/`Dead` peer is only promoted back
    /// to `Alive` after `revive_after` *consecutive* successes (flap
    /// damping). Returns the previous state when this outcome revived the
    /// peer — the caller's cue to run heal work (e.g. drain a ship
    /// backlog).
    pub fn record_success(&self, peer: u32, rtt_us: u64) -> Option<PeerState> {
        let slot = &self.slots[peer as usize];
        slot.probes.fetch_add(1, Ordering::Relaxed);
        slot.last_rtt_us.store(rtt_us, Ordering::Relaxed);
        // Fast path: already alive — zero the miss run, skip transitions.
        if slot.state.load(Ordering::Acquire) == PeerState::Alive.encode() {
            let mut runs = slot.core.lock().unwrap();
            runs.misses = 0;
            runs.streak = runs.streak.saturating_add(1);
            return None;
        }
        let mut runs = slot.core.lock().unwrap();
        runs.misses = 0;
        runs.streak = runs.streak.saturating_add(1);
        if runs.streak < self.config.revive_after.max(1) {
            return None; // not enough consecutive successes yet
        }
        let old = PeerState::decode(slot.state.swap(PeerState::Alive.encode(), Ordering::AcqRel));
        if old == PeerState::Alive {
            None
        } else {
            Some(old)
        }
    }

    /// Records a missed probe (or failed data-plane call) to `peer`.
    /// Failures only escalate the verdict (`Alive → Suspect → Dead`);
    /// de-escalation happens solely through the success streak in
    /// [`FailureDetector::record_success`]. Returns the new state when
    /// the verdict changed.
    pub fn record_failure(&self, peer: u32) -> Option<PeerState> {
        let slot = &self.slots[peer as usize];
        slot.probes.fetch_add(1, Ordering::Relaxed);
        slot.failures.fetch_add(1, Ordering::Relaxed);
        let mut runs = slot.core.lock().unwrap();
        runs.streak = 0;
        runs.misses = runs.misses.saturating_add(1);
        let candidate = if runs.misses >= self.config.dead_after {
            PeerState::Dead
        } else if runs.misses >= self.config.suspect_after {
            PeerState::Suspect
        } else {
            PeerState::Alive
        };
        let cur = PeerState::decode(slot.state.load(Ordering::Acquire));
        // A failure must never *improve* the verdict (a short miss run
        // after a partial revival does not mean the peer is alive).
        let new = if candidate.encode() >= cur.encode() { candidate } else { cur };
        let old = PeerState::decode(slot.state.swap(new.encode(), Ordering::AcqRel));
        if old == new {
            None
        } else {
            Some(new)
        }
    }

    /// Forces `peer` to `state` (used when the runtime *knows* — e.g. it
    /// just killed or recovered the node — rather than waiting for the
    /// probe loop to find out). Bypasses revival hysteresis.
    pub fn force(&self, peer: u32, state: PeerState) {
        let slot = &self.slots[peer as usize];
        let mut runs = slot.core.lock().unwrap();
        runs.misses = match state {
            PeerState::Alive => 0,
            PeerState::Suspect => self.config.suspect_after,
            PeerState::Dead => self.config.dead_after,
        };
        runs.streak = 0;
        slot.state.store(state.encode(), Ordering::Release);
    }

    /// Snapshot of every peer's liveness.
    pub fn snapshot(&self) -> Vec<PeerLiveness> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| PeerLiveness {
                node: i as u32,
                state: PeerState::decode(s.state.load(Ordering::Acquire)),
                misses: s.core.lock().unwrap().misses,
                last_rtt_us: s.last_rtt_us.load(Ordering::Relaxed),
                probes: s.probes.load(Ordering::Relaxed),
                failures: s.failures.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Registers per-peer state gauges (`velox_detector_state`, encoded
    /// 0=alive 1=suspect 2=dead) and RTT gauges with `registry`. Call
    /// [`FailureDetector::export`] to refresh the gauges.
    pub fn register_metrics(&self, registry: &Registry) {
        let mut exports = self.exports.lock().unwrap();
        exports.clear();
        for i in 0..self.slots.len() {
            let label = i.to_string();
            let g = registry.gauge_with("velox_detector_state", &[("node", &label)]);
            exports.push(g);
            let rtt = registry.gauge_with("velox_detector_last_rtt_us", &[("node", &label)]);
            exports.push(rtt);
        }
        self.export();
    }

    /// Pushes current per-peer state into the registered gauges.
    pub fn export(&self) {
        let exports = self.exports.lock().unwrap();
        if exports.is_empty() {
            return;
        }
        for (i, s) in self.slots.iter().enumerate() {
            exports[i * 2].set(s.state.load(Ordering::Acquire) as i64);
            exports[i * 2 + 1].set(s.last_rtt_us.load(Ordering::Relaxed) as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_drive_two_stage_verdict() {
        let d = FailureDetector::new(
            2,
            DetectorConfig { suspect_after: 2, dead_after: 4, revive_after: 1 },
        );
        assert_eq!(d.state(0), PeerState::Alive);
        assert_eq!(d.record_failure(0), None); // 1 miss: still alive
        assert_eq!(d.record_failure(0), Some(PeerState::Suspect)); // 2
        assert_eq!(d.record_failure(0), None); // 3: still suspect
        assert_eq!(d.record_failure(0), Some(PeerState::Dead)); // 4
        assert_eq!(d.record_failure(0), None); // stays dead
        assert_eq!(d.state(0), PeerState::Dead);
        assert_eq!(d.state(1), PeerState::Alive, "peers are independent");
    }

    #[test]
    fn success_revives_and_reports_previous_state() {
        let d = FailureDetector::new(
            1,
            DetectorConfig { suspect_after: 1, dead_after: 2, revive_after: 1 },
        );
        d.record_failure(0);
        d.record_failure(0);
        assert_eq!(d.state(0), PeerState::Dead);
        assert_eq!(d.record_success(0, 120), Some(PeerState::Dead));
        assert_eq!(d.state(0), PeerState::Alive);
        assert_eq!(d.record_success(0, 80), None, "already alive: no transition");
        let snap = d.snapshot();
        assert_eq!(snap[0].last_rtt_us, 80);
        assert_eq!(snap[0].failures, 2);
        assert_eq!(snap[0].probes, 4);
    }

    #[test]
    fn revival_requires_consecutive_success_streak() {
        let d = FailureDetector::new(
            1,
            DetectorConfig { suspect_after: 1, dead_after: 3, revive_after: 3 },
        );
        d.record_failure(0);
        assert_eq!(d.state(0), PeerState::Suspect);
        // Two successes are not enough.
        assert_eq!(d.record_success(0, 10), None);
        assert_eq!(d.record_success(0, 10), None);
        assert_eq!(d.state(0), PeerState::Suspect, "still damped");
        // The third consecutive success revives and reports the old state.
        assert_eq!(d.record_success(0, 10), Some(PeerState::Suspect));
        assert_eq!(d.state(0), PeerState::Alive);
    }

    #[test]
    fn flapping_link_cannot_oscillate_routing() {
        // hit/miss alternation: the success streak never reaches
        // revive_after, so once suspect the peer stays suspect (and
        // eventually the misses alone would have flapped it alive before
        // this change).
        let d = FailureDetector::new(
            1,
            DetectorConfig { suspect_after: 2, dead_after: 100, revive_after: 2 },
        );
        d.record_failure(0);
        d.record_failure(0);
        assert_eq!(d.state(0), PeerState::Suspect);
        for _ in 0..10 {
            d.record_success(0, 10);
            assert_eq!(d.state(0), PeerState::Suspect, "single success must not revive");
            d.record_failure(0);
            assert_eq!(d.state(0), PeerState::Suspect, "single miss must not demote to alive");
        }
        // A clean streak finally revives it.
        assert_eq!(d.record_success(0, 10), None);
        assert_eq!(d.record_success(0, 10), Some(PeerState::Suspect));
        assert_eq!(d.state(0), PeerState::Alive);
    }

    #[test]
    fn force_overrides_probe_history() {
        let d = FailureDetector::new(1, DetectorConfig::default());
        d.force(0, PeerState::Dead);
        assert_eq!(d.state(0), PeerState::Dead);
        d.force(0, PeerState::Alive);
        assert_eq!(d.state(0), PeerState::Alive);
        // A forced-alive peer starts from zero misses.
        assert_eq!(d.record_failure(0), None);
    }

    #[test]
    fn labels_and_encoding_are_stable() {
        for s in [PeerState::Alive, PeerState::Suspect, PeerState::Dead] {
            assert_eq!(PeerState::decode(s.encode()), s);
        }
        assert_eq!(PeerState::Alive.label(), "alive");
        assert_eq!(PeerState::Suspect.label(), "suspect");
        assert_eq!(PeerState::Dead.label(), "dead");
    }
}
