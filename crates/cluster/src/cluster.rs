//! The simulated cluster: nodes, placed tables, caches, and cost accounting.
//!
//! A [`Cluster`] owns `n_nodes` simulated nodes. Two tables are placed
//! across them by salted hash partitioning:
//!
//! - `W` (user weights): owned by the user's home node; reads and writes
//!   performed at that node are local.
//! - item features (`θ` when materialized): owned by the item's home node;
//!   a read from another node is a *remote* read unless the reading node's
//!   LRU item cache holds it.
//!
//! Costs are virtual time: each access adds `local_read_us` or
//! `remote_read_us` to the caller's [`AccessKind`]-tagged accounting and to
//! per-node counters. Nothing sleeps; experiments convert virtual
//! microseconds into reported latency. This keeps the ABL-PART / ABL-CACHE /
//! FIG4 experiments deterministic and fast while preserving the paper's
//! locality arguments exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use velox_obs::{Counter, Registry};
use velox_storage::{LruCache, Namespace};

use crate::partition::{HashPartitioner, NodeId, Router, RoutingPolicy};

/// Cluster topology and cost-model configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated nodes.
    pub n_nodes: usize,
    /// Virtual cost of a node-local read (microseconds).
    pub local_read_us: f64,
    /// Virtual cost of a remote read (microseconds) — dominated by the
    /// network round-trip in the real system.
    pub remote_read_us: f64,
    /// Capacity of each node's LRU item-feature cache (entries).
    pub item_cache_capacity: usize,
    /// How requests are routed to serving nodes.
    pub routing: RoutingPolicy,
    /// Copies of each item's features across the cluster (≥ 1; clamped to
    /// the node count). The paper pairs partitioning with *replication* of
    /// the materialized feature tables (§3, §8): replicas turn remote item
    /// reads into local ones at the cost of `r×` memory and write fan-out
    /// during (infrequent) retrain publishes.
    pub item_replication: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_nodes: 4,
            local_read_us: 1.0,
            // Intra-datacenter RTT ≈ a few hundred µs; the ratio to local
            // memory access is what matters for the experiments.
            remote_read_us: 300.0,
            item_cache_capacity: 1024,
            routing: RoutingPolicy::ByUser,
            item_replication: 1,
        }
    }
}

/// How an access was satisfied (for accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Satisfied from the serving node's own shard.
    Local,
    /// Satisfied from the serving node's item cache.
    CacheHit,
    /// Required a (virtual) network fetch from the owning node.
    Remote,
}

/// One node: its shard of each table, its item cache, and counters.
struct Node {
    user_weights: Namespace<Vec<f64>>,
    item_features: Namespace<Vec<f64>>,
    item_cache: Mutex<LruCache<u64, Vec<f64>>>,
    requests_served: Arc<Counter>,
    local_reads: Arc<Counter>,
    remote_reads: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
}

/// Per-node counter snapshot.
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// Requests routed to this node.
    pub requests_served: u64,
    /// Reads satisfied locally (shard or cache).
    pub local_reads: u64,
    /// Reads that went over the simulated network.
    pub remote_reads: u64,
    /// Item-cache hit/miss/eviction counters.
    pub cache: (u64, u64, u64),
    /// Entries in this node's user-weight shard.
    pub users_owned: usize,
    /// Entries in this node's item-feature shard.
    pub items_owned: usize,
}

/// Cluster-wide aggregate statistics.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Per-node snapshots, index = node id.
    pub nodes: Vec<NodeStats>,
    /// Total virtual microseconds spent on reads since creation/reset.
    pub virtual_read_us: f64,
}

impl ClusterStats {
    /// Fraction of all reads that were local (shard or cache). 1.0 when no
    /// reads happened.
    pub fn local_fraction(&self) -> f64 {
        let local: u64 = self.nodes.iter().map(|n| n.local_reads).sum();
        let remote: u64 = self.nodes.iter().map(|n| n.remote_reads).sum();
        if local + remote == 0 {
            1.0
        } else {
            local as f64 / (local + remote) as f64
        }
    }

    /// Load imbalance: max over mean of per-node requests served (1.0 =
    /// perfectly balanced). 1.0 when no requests were served.
    pub fn load_imbalance(&self) -> f64 {
        let loads: Vec<f64> = self.nodes.iter().map(|n| n.requests_served as f64).collect();
        let total: f64 = loads.iter().sum();
        if total == 0.0 {
            return 1.0;
        }
        let mean = total / loads.len() as f64;
        loads.iter().fold(0.0f64, |m, &l| m.max(l)) / mean
    }

    /// Aggregate item-cache hit rate across nodes (0.0 with no accesses).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.nodes.iter().map(|n| n.cache.0).sum();
        let misses: u64 = self.nodes.iter().map(|n| n.cache.1).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

/// The simulated cluster.
pub struct Cluster {
    config: ClusterConfig,
    nodes: Vec<Node>,
    user_part: HashPartitioner,
    item_part: HashPartitioner,
    router: Router,
    /// Virtual microseconds accumulated by all reads (scaled ×1000 to keep
    /// three decimal places in an atomic integer).
    virtual_read_nanos: AtomicU64,
}

impl Cluster {
    /// Builds a cluster from `config`.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.n_nodes > 0);
        assert!(config.remote_read_us >= config.local_read_us);
        let nodes = (0..config.n_nodes)
            .map(|i| Node {
                user_weights: Namespace::new(format!("user_weights@{i}")),
                item_features: Namespace::new(format!("item_features@{i}")),
                item_cache: Mutex::new(LruCache::new(config.item_cache_capacity)),
                requests_served: Arc::new(Counter::new()),
                local_reads: Arc::new(Counter::new()),
                remote_reads: Arc::new(Counter::new()),
                cache_hits: Arc::new(Counter::new()),
                cache_misses: Arc::new(Counter::new()),
            })
            .collect();
        let user_part = HashPartitioner::new(config.n_nodes, 0x5EED_0001);
        let item_part = HashPartitioner::new(config.n_nodes, 0x5EED_0002);
        let router = Router::new(config.routing, user_part.clone());
        Cluster {
            config,
            nodes,
            user_part,
            item_part,
            router,
            virtual_read_nanos: AtomicU64::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.config.n_nodes
    }

    /// Home node of a user.
    pub fn home_of_user(&self, uid: u64) -> NodeId {
        self.user_part.node_for(uid)
    }

    /// Home (primary) node of an item.
    pub fn home_of_item(&self, item_id: u64) -> NodeId {
        self.item_part.node_for(item_id)
    }

    /// All nodes holding a copy of an item's features: the primary plus
    /// `item_replication − 1` successors on the node ring.
    pub fn replica_nodes_of_item(&self, item_id: u64) -> Vec<NodeId> {
        let primary = self.home_of_item(item_id);
        let r = self.config.item_replication.clamp(1, self.config.n_nodes);
        (0..r).map(|k| (primary + k) % self.config.n_nodes).collect()
    }

    /// Picks the serving node for a request from `uid` under the configured
    /// routing policy, counting it against that node's load.
    pub fn route_request(&self, uid: u64) -> NodeId {
        let node = self.router.route(uid);
        self.nodes[node].requests_served.inc();
        node
    }

    fn charge(&self, at: NodeId, kind: AccessKind) {
        let us = match kind {
            AccessKind::Local | AccessKind::CacheHit => {
                self.nodes[at].local_reads.inc();
                self.config.local_read_us
            }
            AccessKind::Remote => {
                self.nodes[at].remote_reads.inc();
                self.config.remote_read_us
            }
        };
        self.virtual_read_nanos.fetch_add((us * 1000.0) as u64, Ordering::Relaxed);
    }

    /// Stores a user's weight vector at its home node (placement is not a
    /// serving-path cost; no charge).
    pub fn put_user_weights(&self, uid: u64, w: Vec<f64>) {
        let home = self.home_of_user(uid);
        self.nodes[home].user_weights.put(uid, w);
    }

    /// Reads a user's weights from serving node `at`. Local when `at` is
    /// the user's home (always true under `ByUser` routing), remote
    /// otherwise. Returns the weights, how the access was satisfied, and
    /// the virtual cost in microseconds.
    pub fn get_user_weights(&self, at: NodeId, uid: u64) -> (Option<Vec<f64>>, AccessKind, f64) {
        let home = self.home_of_user(uid);
        let kind = if home == at { AccessKind::Local } else { AccessKind::Remote };
        self.charge(at, kind);
        let cost = match kind {
            AccessKind::Remote => self.config.remote_read_us,
            _ => self.config.local_read_us,
        };
        (self.nodes[home].user_weights.get(uid), kind, cost)
    }

    /// Applies an in-place update to a user's weights at their home node
    /// (upserting via `default` when absent). Under `ByUser` routing this
    /// is the paper's "all writes are local" property; when `at` differs
    /// from the home node the write is charged as remote.
    pub fn update_user_weights<F, D>(&self, at: NodeId, uid: u64, default: D, f: F) -> f64
    where
        F: FnOnce(&mut Vec<f64>),
        D: FnOnce() -> Vec<f64>,
    {
        let home = self.home_of_user(uid);
        let kind = if home == at { AccessKind::Local } else { AccessKind::Remote };
        self.charge(at, kind);
        self.nodes[home].user_weights.update_with(uid, default, f);
        match kind {
            AccessKind::Remote => self.config.remote_read_us,
            _ => self.config.local_read_us,
        }
    }

    /// Bulk-publishes a new user-weight table (offline retrain output):
    /// contents are re-partitioned and each node's shard swaps atomically.
    pub fn publish_user_weights(&self, entries: Vec<(u64, Vec<f64>)>) {
        let mut per_node: Vec<Vec<(u64, Vec<f64>)>> =
            (0..self.config.n_nodes).map(|_| Vec::new()).collect();
        for (uid, w) in entries {
            per_node[self.home_of_user(uid)].push((uid, w));
        }
        for (node, shard) in self.nodes.iter().zip(per_node) {
            node.user_weights.publish_version(shard);
        }
    }

    /// Management-plane read of a user's weights at their home node — no
    /// routing, no cost accounting. Serving paths use
    /// [`Cluster::get_user_weights`] instead.
    pub fn peek_user_weights(&self, uid: u64) -> Option<Vec<f64>> {
        let home = self.home_of_user(uid);
        self.nodes[home].user_weights.get(uid)
    }

    /// Exports the entire user-weight table across all shards — the
    /// management-plane snapshot offline retraining warm-starts from.
    pub fn export_user_weights(&self) -> Vec<(u64, Vec<f64>)> {
        let mut out = Vec::new();
        for node in &self.nodes {
            out.extend(node.user_weights.snapshot_entries());
        }
        out
    }

    /// Stores an item's feature vector at every replica node.
    pub fn put_item_features(&self, item_id: u64, features: Vec<f64>) {
        for node in self.replica_nodes_of_item(item_id) {
            self.nodes[node].item_features.put(item_id, features.clone());
        }
    }

    /// Bulk-publishes a new item-feature table (offline retrain output):
    /// contents are re-partitioned, each node's shard swaps atomically, and
    /// every node's item cache is invalidated (§4.2: retraining
    /// "invalidates both prediction and feature caches").
    pub fn publish_item_features(&self, entries: Vec<(u64, Vec<f64>)>) {
        let mut per_node: Vec<Vec<(u64, Vec<f64>)>> =
            (0..self.config.n_nodes).map(|_| Vec::new()).collect();
        for (item, feat) in entries {
            for node in self.replica_nodes_of_item(item) {
                per_node[node].push((item, feat.clone()));
            }
        }
        for (node, shard) in self.nodes.iter().zip(per_node) {
            node.item_features.publish_version(shard);
            node.item_cache.lock().unwrap().clear();
        }
    }

    /// Reads an item's features from serving node `at`:
    /// local replica → cache → remote fetch (which populates the cache).
    /// Returns the features, the access kind, and the virtual cost (µs).
    pub fn get_item_features(
        &self,
        at: NodeId,
        item_id: u64,
    ) -> (Option<Vec<f64>>, AccessKind, f64) {
        let home = self.home_of_item(item_id);
        if self.replica_nodes_of_item(item_id).contains(&at) {
            self.charge(at, AccessKind::Local);
            return (
                self.nodes[at].item_features.get(item_id),
                AccessKind::Local,
                self.config.local_read_us,
            );
        }
        // Try the serving node's cache.
        {
            let mut cache = self.nodes[at].item_cache.lock().unwrap();
            if let Some(hit) = cache.get(&item_id) {
                let value = hit.clone();
                drop(cache);
                self.nodes[at].cache_hits.inc();
                self.charge(at, AccessKind::CacheHit);
                return (Some(value), AccessKind::CacheHit, self.config.local_read_us);
            }
        }
        self.nodes[at].cache_misses.inc();
        // Remote fetch from the home shard; populate the cache on success —
        // but only if no publish invalidated the table mid-fetch, otherwise
        // a pre-publish value could be re-inserted into a freshly cleared
        // cache and served stale until the next publish.
        self.charge(at, AccessKind::Remote);
        let version_before = self.nodes[home].item_features.version();
        let fetched = self.nodes[home].item_features.get(item_id);
        if let Some(ref features) = fetched {
            if self.nodes[home].item_features.version() == version_before {
                self.nodes[at].item_cache.lock().unwrap().put(item_id, features.clone());
            }
        }
        (fetched, AccessKind::Remote, self.config.remote_read_us)
    }

    /// Invalidates every node's item cache (manual cache flush).
    pub fn invalidate_item_caches(&self) {
        for node in &self.nodes {
            node.item_cache.lock().unwrap().clear();
        }
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> ClusterStats {
        let nodes = self
            .nodes
            .iter()
            .map(|n| NodeStats {
                requests_served: n.requests_served.get(),
                local_reads: n.local_reads.get(),
                remote_reads: n.remote_reads.get(),
                cache: n.item_cache.lock().unwrap().stats(),
                users_owned: n.user_weights.len(),
                items_owned: n.item_features.len(),
            })
            .collect();
        ClusterStats {
            nodes,
            virtual_read_us: self.virtual_read_nanos.load(Ordering::Relaxed) as f64 / 1000.0,
        }
    }

    /// Resets all access counters (placements and cache contents stay).
    pub fn reset_stats(&self) {
        for n in &self.nodes {
            n.requests_served.reset();
            n.local_reads.reset();
            n.remote_reads.reset();
            n.cache_hits.reset();
            n.cache_misses.reset();
            n.item_cache.lock().unwrap().reset_stats();
        }
        self.virtual_read_nanos.store(0, Ordering::Relaxed);
    }

    /// Registers every node's counters with a metrics registry, labelled by
    /// node id: routed requests, local/remote read accounting, item-cache
    /// hits and misses, and the shard tables' raw KV read/write counters.
    /// The registry exposes the same atomics the serving path increments.
    pub fn register_metrics(&self, registry: &Registry) {
        for (i, node) in self.nodes.iter().enumerate() {
            let id = i.to_string();
            let labels: [(&str, &str); 1] = [("node", id.as_str())];
            registry.register_counter(
                "velox_cluster_requests_total",
                &labels,
                Arc::clone(&node.requests_served),
            );
            registry.register_counter(
                "velox_cluster_local_reads_total",
                &labels,
                Arc::clone(&node.local_reads),
            );
            registry.register_counter(
                "velox_cluster_remote_reads_total",
                &labels,
                Arc::clone(&node.remote_reads),
            );
            registry.register_counter(
                "velox_cluster_item_cache_hits_total",
                &labels,
                Arc::clone(&node.cache_hits),
            );
            registry.register_counter(
                "velox_cluster_item_cache_misses_total",
                &labels,
                Arc::clone(&node.cache_misses),
            );
            for ns in [&node.user_weights, &node.item_features] {
                let table_labels: [(&str, &str); 2] = [("node", id.as_str()), ("table", ns.name())];
                registry.register_counter(
                    "velox_kv_reads_total",
                    &table_labels,
                    ns.reads_counter(),
                );
                registry.register_counter(
                    "velox_kv_writes_total",
                    &table_labels,
                    ns.writes_counter(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, routing: RoutingPolicy) -> Cluster {
        Cluster::new(ClusterConfig {
            n_nodes: n,
            routing,
            item_cache_capacity: 8,
            ..Default::default()
        })
    }

    #[test]
    fn user_weights_round_trip_locally_under_by_user_routing() {
        let c = cluster(4, RoutingPolicy::ByUser);
        for uid in 0..100u64 {
            c.put_user_weights(uid, vec![uid as f64]);
        }
        for uid in 0..100u64 {
            let node = c.route_request(uid);
            let (w, kind, cost) = c.get_user_weights(node, uid);
            assert_eq!(w.unwrap(), vec![uid as f64]);
            assert_eq!(kind, AccessKind::Local, "ByUser routing must make W reads local");
            assert_eq!(cost, c.config().local_read_us);
        }
        assert_eq!(c.stats().local_fraction(), 1.0);
    }

    #[test]
    fn round_robin_routing_causes_remote_user_reads() {
        let c = cluster(4, RoutingPolicy::RoundRobin);
        for uid in 0..200u64 {
            c.put_user_weights(uid, vec![1.0]);
        }
        for uid in 0..200u64 {
            let node = c.route_request(uid);
            let _ = c.get_user_weights(node, uid);
        }
        let frac = c.stats().local_fraction();
        // With 4 nodes, ~25% of random routes land on the home node.
        assert!(frac < 0.5, "round-robin should be mostly remote, got {frac}");
        assert!(frac > 0.05);
    }

    #[test]
    fn item_reads_local_on_home_node() {
        let c = cluster(2, RoutingPolicy::ByUser);
        c.put_item_features(7, vec![7.0]);
        let home = c.home_of_item(7);
        let (f, kind, _) = c.get_item_features(home, 7);
        assert_eq!(f.unwrap(), vec![7.0]);
        assert_eq!(kind, AccessKind::Local);
    }

    #[test]
    fn remote_item_read_populates_cache() {
        let c = cluster(2, RoutingPolicy::ByUser);
        c.put_item_features(7, vec![7.0]);
        let other = 1 - c.home_of_item(7);
        let (_, kind1, cost1) = c.get_item_features(other, 7);
        assert_eq!(kind1, AccessKind::Remote);
        assert_eq!(cost1, c.config().remote_read_us);
        let (f2, kind2, cost2) = c.get_item_features(other, 7);
        assert_eq!(kind2, AccessKind::CacheHit);
        assert_eq!(f2.unwrap(), vec![7.0]);
        assert!(cost2 < cost1);
    }

    #[test]
    fn missing_item_is_remote_miss_without_cache_pollution() {
        let c = cluster(2, RoutingPolicy::ByUser);
        let other = 1 - c.home_of_item(99);
        let (f, kind, _) = c.get_item_features(other, 99);
        assert!(f.is_none());
        assert_eq!(kind, AccessKind::Remote);
        // Still a miss next time (absence is not cached).
        let (_, kind2, _) = c.get_item_features(other, 99);
        assert_eq!(kind2, AccessKind::Remote);
    }

    #[test]
    fn publish_invalidates_caches_and_swaps_contents() {
        let c = cluster(2, RoutingPolicy::ByUser);
        c.put_item_features(1, vec![1.0]);
        let other = 1 - c.home_of_item(1);
        let _ = c.get_item_features(other, 1); // cache it remotely
        c.publish_item_features(vec![(1, vec![2.0])]);
        let (f, kind, _) = c.get_item_features(other, 1);
        assert_eq!(f.unwrap(), vec![2.0], "stale cache served after publish");
        assert_eq!(kind, AccessKind::Remote, "cache must have been invalidated");
    }

    #[test]
    fn update_user_weights_is_local_at_home() {
        let c = cluster(4, RoutingPolicy::ByUser);
        let uid = 5;
        let home = c.home_of_user(uid);
        c.update_user_weights(home, uid, || vec![0.0], |w| w[0] += 1.0);
        c.update_user_weights(home, uid, || vec![0.0], |w| w[0] += 1.0);
        let (w, _, _) = c.get_user_weights(home, uid);
        assert_eq!(w.unwrap(), vec![2.0]);
        let stats = c.stats();
        assert_eq!(stats.nodes.iter().map(|n| n.remote_reads).sum::<u64>(), 0);
    }

    #[test]
    fn load_imbalance_detects_hotspots() {
        let c = cluster(4, RoutingPolicy::ByUser);
        // All requests from one user → one node takes everything.
        for _ in 0..100 {
            c.route_request(7);
        }
        let imb = c.stats().load_imbalance();
        assert!((imb - 4.0).abs() < 1e-9, "one of four nodes has all load: {imb}");

        c.reset_stats();
        for uid in 0..10_000u64 {
            c.route_request(uid);
        }
        let imb = c.stats().load_imbalance();
        assert!(imb < 1.1, "hash routing should balance: {imb}");
    }

    #[test]
    fn replication_makes_item_reads_local_everywhere() {
        let c = Cluster::new(ClusterConfig {
            n_nodes: 4,
            item_replication: 4, // full replication
            ..Default::default()
        });
        for item in 0..50u64 {
            c.put_item_features(item, vec![item as f64]);
        }
        for node in 0..4 {
            for item in 0..50u64 {
                let (f, kind, _) = c.get_item_features(node, item);
                assert_eq!(f.unwrap(), vec![item as f64]);
                assert_eq!(kind, AccessKind::Local, "full replication: always local");
            }
        }
        assert_eq!(c.stats().local_fraction(), 1.0);
    }

    #[test]
    fn partial_replication_covers_replica_set_only() {
        let c =
            Cluster::new(ClusterConfig { n_nodes: 4, item_replication: 2, ..Default::default() });
        c.put_item_features(9, vec![9.0]);
        let replicas = c.replica_nodes_of_item(9);
        assert_eq!(replicas.len(), 2);
        for node in 0..4usize {
            let (f, kind, _) = c.get_item_features(node, 9);
            assert_eq!(f.unwrap(), vec![9.0]);
            if replicas.contains(&node) {
                assert_eq!(kind, AccessKind::Local, "replica node {node}");
            } else {
                assert_eq!(kind, AccessKind::Remote, "non-replica node {node}");
            }
        }
    }

    #[test]
    fn publish_updates_all_replicas() {
        let c =
            Cluster::new(ClusterConfig { n_nodes: 3, item_replication: 2, ..Default::default() });
        c.put_item_features(1, vec![1.0]);
        c.publish_item_features(vec![(1, vec![2.0])]);
        for node in c.replica_nodes_of_item(1) {
            let (f, kind, _) = c.get_item_features(node, 1);
            assert_eq!(f.unwrap(), vec![2.0], "replica {node} must see the new version");
            assert_eq!(kind, AccessKind::Local);
        }
    }

    #[test]
    fn replication_clamps_to_node_count() {
        let c =
            Cluster::new(ClusterConfig { n_nodes: 2, item_replication: 10, ..Default::default() });
        let replicas = c.replica_nodes_of_item(5);
        assert_eq!(replicas.len(), 2);
        let mut sorted = replicas.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 2, "replicas are distinct nodes");
    }

    #[test]
    fn virtual_time_accumulates() {
        let c = cluster(2, RoutingPolicy::ByUser);
        c.put_item_features(1, vec![1.0]);
        let other = 1 - c.home_of_item(1);
        let _ = c.get_item_features(other, 1); // remote: 300µs
        let home = c.home_of_item(1);
        let _ = c.get_item_features(home, 1); // local: 1µs
        let stats = c.stats();
        assert!((stats.virtual_read_us - 301.0).abs() < 1e-6, "{}", stats.virtual_read_us);
    }

    #[test]
    fn stats_reset() {
        let c = cluster(2, RoutingPolicy::ByUser);
        c.put_user_weights(1, vec![1.0]);
        let node = c.route_request(1);
        let _ = c.get_user_weights(node, 1);
        c.reset_stats();
        let stats = c.stats();
        assert_eq!(stats.nodes.iter().map(|n| n.requests_served).sum::<u64>(), 0);
        assert_eq!(stats.virtual_read_us, 0.0);
        // Ownership survives reset.
        assert_eq!(stats.nodes.iter().map(|n| n.users_owned).sum::<usize>(), 1);
    }

    #[test]
    fn ownership_counts_partition_everything() {
        let c = cluster(8, RoutingPolicy::ByUser);
        for uid in 0..1000 {
            c.put_user_weights(uid, vec![]);
        }
        for item in 0..500 {
            c.put_item_features(item, vec![]);
        }
        let stats = c.stats();
        assert_eq!(stats.nodes.iter().map(|n| n.users_owned).sum::<usize>(), 1000);
        assert_eq!(stats.nodes.iter().map(|n| n.items_owned).sum::<usize>(), 500);
    }
}
