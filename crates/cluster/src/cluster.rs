//! The simulated cluster: nodes, placed tables, caches, and cost accounting.
//!
//! A [`Cluster`] owns `n_nodes` simulated nodes. Two tables are placed
//! across them by salted hash partitioning:
//!
//! - `W` (user weights): owned by the user's home node; reads and writes
//!   performed at that node are local.
//! - item features (`θ` when materialized): owned by the item's home node;
//!   a read from another node is a *remote* read unless the reading node's
//!   LRU item cache holds it.
//!
//! Costs are virtual time: each access adds `local_read_us` or
//! `remote_read_us` to the caller's [`AccessKind`]-tagged accounting and to
//! per-node counters. Nothing sleeps; experiments convert virtual
//! microseconds into reported latency. This keeps the ABL-PART / ABL-CACHE /
//! FIG4 experiments deterministic and fast while preserving the paper's
//! locality arguments exactly.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use velox_data::VeloxRng;
use velox_obs::{Counter, Registry};
use velox_storage::{LruCache, Namespace};

use crate::fault::{FaultAction, FaultPlan, HealthTransition, NodeHealth};
use crate::netfault::LinkChaos;
use crate::partition::{
    HashPartitioner, MembershipError, MigrationOutcome, MigrationStatus, NodeId, PartitionError,
    PartitionMap, Router, RoutingPolicy,
};

/// Cluster topology and cost-model configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated nodes.
    pub n_nodes: usize,
    /// Virtual cost of a node-local read (microseconds).
    pub local_read_us: f64,
    /// Virtual cost of a remote read (microseconds) — dominated by the
    /// network round-trip in the real system.
    pub remote_read_us: f64,
    /// Capacity of each node's LRU item-feature cache (entries).
    pub item_cache_capacity: usize,
    /// How requests are routed to serving nodes.
    pub routing: RoutingPolicy,
    /// Copies of each item's features across the cluster (≥ 1; clamped to
    /// the node count). The paper pairs partitioning with *replication* of
    /// the materialized feature tables (§3, §8): replicas turn remote item
    /// reads into local ones at the cost of `r×` memory and write fan-out
    /// during (infrequent) retrain publishes.
    pub item_replication: usize,
    /// Copies of each user's weight vector across the cluster (≥ 1;
    /// clamped to the node count). The paper replicates the materialized
    /// tables for fault tolerance (§3); extending that to `W` means a dead
    /// home partition degrades a user's reads to a replica instead of
    /// losing them. Online updates fan out to every live replica.
    pub user_replication: usize,
    /// Maximum nodes the cluster can ever hold (`0` = `n_nodes`, i.e. no
    /// headroom). Slots beyond `n_nodes` are pre-provisioned but start
    /// `Down` and outside the partition map; [`Cluster::join_node`] brings
    /// them into membership.
    pub max_nodes: usize,
    /// Users copied per checkpoint chunk during a partition migration
    /// (`0` = one unbounded chunk). Bounding the chunk keeps each transfer
    /// step small and gives the abort checks a place to fire.
    pub checkpoint_chunk_users: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_nodes: 4,
            local_read_us: 1.0,
            // Intra-datacenter RTT ≈ a few hundred µs; the ratio to local
            // memory access is what matters for the experiments.
            remote_read_us: 300.0,
            item_cache_capacity: 1024,
            routing: RoutingPolicy::ByUser,
            item_replication: 1,
            user_replication: 1,
            max_nodes: 0,
            checkpoint_chunk_users: 256,
        }
    }
}

/// How an access was satisfied (for accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Satisfied from the serving node's own shard.
    Local,
    /// Satisfied from the serving node's item cache.
    CacheHit,
    /// Required a (virtual) network fetch from the owning node.
    Remote,
    /// The primary was unreachable; a surviving replica served the read
    /// (charged as a remote fetch).
    Failover,
}

/// Outcome of a health-aware table read.
#[derive(Debug, Clone)]
pub struct ClusterRead {
    /// The value, when any live replica held it.
    pub value: Option<Vec<f64>>,
    /// How the access was satisfied (meaningless when `unavailable`).
    pub kind: AccessKind,
    /// Virtual cost in microseconds (including any injected spike).
    pub cost_us: f64,
    /// True when the primary was unreachable and a replica answered.
    pub failover: bool,
    /// True when no live replica could serve the key; `value` is `None`.
    pub unavailable: bool,
}

/// One node: its shard of each table, its item cache, and counters.
struct Node {
    user_weights: Namespace<Vec<f64>>,
    item_features: Namespace<Vec<f64>>,
    item_cache: Mutex<LruCache<u64, Vec<f64>>>,
    /// Health state, encoded for lock-free reads ([`NodeHealth::encode`]).
    health: AtomicU8,
    requests_served: Arc<Counter>,
    local_reads: Arc<Counter>,
    remote_reads: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    /// Reads this node served for keys whose primary was unreachable.
    failover_reads: Arc<Counter>,
    /// Reads served at this node that found no live replica anywhere.
    unavailable_reads: Arc<Counter>,
    /// Entries this node re-populated from survivors during recoveries.
    catch_up_entries: Arc<Counter>,
}

const HEALTH_UP: u8 = 0;

/// State of an installed fault plan (events sorted by fire time).
struct FaultState {
    plan: FaultPlan,
    rng: VeloxRng,
    next_event: usize,
}

/// Per-node counter snapshot.
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// Requests routed to this node.
    pub requests_served: u64,
    /// Reads satisfied locally (shard or cache).
    pub local_reads: u64,
    /// Reads that went over the simulated network.
    pub remote_reads: u64,
    /// Reads this node served for keys whose primary was unreachable
    /// (a subset of `remote_reads`).
    pub failover_reads: u64,
    /// Reads served at this node that found no live replica anywhere.
    pub unavailable_reads: u64,
    /// Entries this node re-populated from survivors during recoveries.
    pub catch_up_entries: u64,
    /// Item-cache hit/miss/eviction counters.
    pub cache: (u64, u64, u64),
    /// Entries in this node's user-weight shard.
    pub users_owned: usize,
    /// Entries in this node's item-feature shard.
    pub items_owned: usize,
    /// Current health state.
    pub health: NodeHealth,
}

/// Cluster-wide aggregate statistics.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Per-node snapshots, index = node id.
    pub nodes: Vec<NodeStats>,
    /// Total virtual microseconds spent on reads since creation/reset.
    pub virtual_read_us: f64,
    /// Reads that found no live replica (served degraded upstream).
    pub unavailable_reads: u64,
    /// Entries re-populated from surviving replicas across all recoveries.
    pub catch_up_entries: u64,
    /// Transient shard-read failures injected by the fault plan.
    pub injected_read_failures: u64,
    /// Latency spikes injected by the fault plan.
    pub injected_latency_spikes: u64,
}

impl ClusterStats {
    /// Fraction of all reads that were local (shard or cache). 1.0 when no
    /// reads happened.
    pub fn local_fraction(&self) -> f64 {
        let local: u64 = self.nodes.iter().map(|n| n.local_reads).sum();
        let remote: u64 = self.nodes.iter().map(|n| n.remote_reads).sum();
        if local + remote == 0 {
            1.0
        } else {
            local as f64 / (local + remote) as f64
        }
    }

    /// Load imbalance: max over mean of per-node requests served (1.0 =
    /// perfectly balanced). 1.0 when no requests were served.
    pub fn load_imbalance(&self) -> f64 {
        let loads: Vec<f64> = self.nodes.iter().map(|n| n.requests_served as f64).collect();
        let total: f64 = loads.iter().sum();
        if total == 0.0 {
            return 1.0;
        }
        let mean = total / loads.len() as f64;
        loads.iter().fold(0.0f64, |m, &l| m.max(l)) / mean
    }

    /// Aggregate item-cache hit rate across nodes (0.0 with no accesses).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.nodes.iter().map(|n| n.cache.0).sum();
        let misses: u64 = self.nodes.iter().map(|n| n.cache.1).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Total failover reads across all nodes.
    pub fn failover_reads(&self) -> u64 {
        self.nodes.iter().map(|n| n.failover_reads).sum()
    }

    /// Number of nodes currently `Up`.
    pub fn live_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.health == NodeHealth::Up).count()
    }
}

/// The simulated cluster.
pub struct Cluster {
    config: ClusterConfig,
    nodes: Vec<Node>,
    item_part: HashPartitioner,
    router: Router,
    /// Epoch-stamped partition map — the single source of truth for user
    /// placement. Swapped atomically (whole-`Arc`) on every membership
    /// change.
    map: std::sync::RwLock<Arc<PartitionMap>>,
    /// Requests rejected because the caller presented a stale map epoch.
    wrong_epoch: Arc<Counter>,
    /// Ledger of completed partition migrations (most recent last), the
    /// source for `/cluster/health` membership reporting.
    migrations: Mutex<Vec<MigrationStatus>>,
    /// Virtual microseconds accumulated by all reads (scaled ×1000 to keep
    /// three decimal places in an atomic integer).
    virtual_read_nanos: AtomicU64,
    /// Count of routed requests — the clock scheduled faults fire against.
    request_clock: AtomicU64,
    /// Fast-path gate: true only while a fault plan is installed, so the
    /// healthy serving path pays one relaxed load, never a lock.
    fault_active: AtomicBool,
    faults: Mutex<Option<FaultState>>,
    /// Health transitions not yet collected by the serving layer.
    transitions: Mutex<Vec<HealthTransition>>,
    transitions_pending: AtomicBool,
    injected_read_failures: Arc<Counter>,
    injected_latency_spikes: Arc<Counter>,
    /// At-most-one in-flight migration (the hardened-rebalance policy).
    migration_active: AtomicBool,
    /// Operator cancel request: consumed by the next abort check of the
    /// running (or next) migration.
    migration_cancel: AtomicBool,
    /// Rebalance kill switch (`false` = operator disabled migrations).
    rebalance_enabled: AtomicBool,
    /// Wall-clock budget for a whole migration; exceeded → abort.
    migration_deadline: Mutex<Option<Duration>>,
    /// Link-fault engine consulted between checkpoint chunks: a partition
    /// of the src↔dst link aborts the transfer (the TCP runtime instead
    /// retries and resumes from the cursor).
    migration_link_chaos: Mutex<Option<Arc<LinkChaos>>>,
}

impl Cluster {
    /// Builds a cluster from `config`.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.n_nodes > 0);
        assert!(config.remote_read_us >= config.local_read_us);
        let capacity = config.max_nodes.max(config.n_nodes);
        let nodes = (0..capacity)
            .map(|i| Node {
                user_weights: Namespace::new(format!("user_weights@{i}")),
                item_features: Namespace::new(format!("item_features@{i}")),
                item_cache: Mutex::new(LruCache::new(config.item_cache_capacity)),
                // Headroom slots start Down: they are outside the map and
                // join_node flips them Up when membership grows.
                health: AtomicU8::new(if i < config.n_nodes {
                    HEALTH_UP
                } else {
                    NodeHealth::Down.encode()
                }),
                requests_served: Arc::new(Counter::new()),
                local_reads: Arc::new(Counter::new()),
                remote_reads: Arc::new(Counter::new()),
                cache_hits: Arc::new(Counter::new()),
                cache_misses: Arc::new(Counter::new()),
                failover_reads: Arc::new(Counter::new()),
                unavailable_reads: Arc::new(Counter::new()),
                catch_up_entries: Arc::new(Counter::new()),
            })
            .collect();
        let user_part = HashPartitioner::new(config.n_nodes, crate::partition::USER_SALT)
            .expect("n_nodes asserted positive above");
        let item_part = HashPartitioner::new(config.n_nodes, crate::partition::ITEM_SALT)
            .expect("n_nodes asserted positive above");
        let router = Router::new(config.routing, user_part);
        let map = PartitionMap::bootstrap(
            config.n_nodes,
            config.user_replication,
            crate::partition::USER_SALT,
        )
        .expect("n_nodes asserted positive above");
        Cluster {
            config,
            nodes,
            item_part,
            router,
            map: std::sync::RwLock::new(Arc::new(map)),
            wrong_epoch: Arc::new(Counter::new()),
            migrations: Mutex::new(Vec::new()),
            virtual_read_nanos: AtomicU64::new(0),
            request_clock: AtomicU64::new(0),
            fault_active: AtomicBool::new(false),
            faults: Mutex::new(None),
            transitions: Mutex::new(Vec::new()),
            transitions_pending: AtomicBool::new(false),
            injected_read_failures: Arc::new(Counter::new()),
            injected_latency_spikes: Arc::new(Counter::new()),
            migration_active: AtomicBool::new(false),
            migration_cancel: AtomicBool::new(false),
            rebalance_enabled: AtomicBool::new(true),
            migration_deadline: Mutex::new(None),
            migration_link_chaos: Mutex::new(None),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of provisioned node slots (members plus join headroom).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Snapshot of the current partition map.
    pub fn map(&self) -> Arc<PartitionMap> {
        Arc::clone(&self.map.read().unwrap())
    }

    /// Current partition-map epoch.
    pub fn map_epoch(&self) -> u64 {
        self.map.read().unwrap().epoch()
    }

    /// Installs `map` if it is newer than the current one (idempotent for
    /// same-or-older epochs). Returns true when the map was adopted.
    pub fn install_map(&self, map: Arc<PartitionMap>) -> bool {
        let mut cur = self.map.write().unwrap();
        if map.epoch() > cur.epoch() {
            *cur = map;
            true
        } else {
            false
        }
    }

    /// Epoch admission check — the simulated analogue of the TCP
    /// transport's `WrongEpoch` rejection. A request stamped with a stale
    /// (or future) epoch is refused with the current epoch so the caller
    /// can refresh its cached map and retry; epoch `0` bypasses the check
    /// (server-internal traffic).
    pub fn admit_epoch(&self, epoch: u64) -> Result<(), u64> {
        if epoch == 0 {
            return Ok(());
        }
        let cur = self.map.read().unwrap().epoch();
        if epoch == cur {
            Ok(())
        } else {
            self.wrong_epoch.inc();
            Err(cur)
        }
    }

    /// Requests rejected for presenting a stale map epoch.
    pub fn wrong_epoch_count(&self) -> u64 {
        self.wrong_epoch.get()
    }

    /// Home node of a user.
    pub fn home_of_user(&self, uid: u64) -> NodeId {
        self.map.read().unwrap().owner_of(uid)
    }

    /// Home (primary) node of an item.
    pub fn home_of_item(&self, item_id: u64) -> NodeId {
        self.item_part.node_for(item_id)
    }

    /// All nodes holding a copy of an item's features: the primary plus
    /// `item_replication − 1` successors on the bootstrap node ring (item
    /// placement does not participate in elastic membership; joined nodes
    /// fetch remotely and fill their caches).
    pub fn replica_nodes_of_item(&self, item_id: u64) -> Vec<NodeId> {
        let primary = self.home_of_item(item_id);
        let r = self.config.item_replication.clamp(1, self.config.n_nodes);
        (0..r).map(|k| (primary + k) % self.config.n_nodes).collect()
    }

    /// All nodes holding a copy of a user's weights, owner first, per the
    /// current partition map.
    pub fn replica_nodes_of_user(&self, uid: u64) -> Vec<NodeId> {
        self.map.read().unwrap().replicas_of(uid).to_vec()
    }

    /// Current health of a node.
    pub fn node_health(&self, node: NodeId) -> NodeHealth {
        NodeHealth::decode(self.nodes[node].health.load(Ordering::Acquire))
    }

    /// Number of nodes currently `Up`.
    pub fn live_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.health.load(Ordering::Acquire) == HEALTH_UP).count()
    }

    /// Live (`Up`) replicas of a user's weights, failover order: home first.
    pub fn live_user_replicas(&self, uid: u64) -> Vec<NodeId> {
        self.replica_nodes_of_user(uid)
            .into_iter()
            .filter(|&n| self.node_health(n) == NodeHealth::Up)
            .collect()
    }

    fn set_health(&self, node: NodeId, health: NodeHealth, caught_up: u64) {
        self.nodes[node].health.store(health.encode(), Ordering::Release);
        self.transitions.lock().unwrap().push(HealthTransition { node, health, caught_up });
        self.transitions_pending.store(true, Ordering::Release);
    }

    /// Whether `node` is a valid slot id (members and join headroom).
    fn check_slot(&self, node: NodeId) -> Result<(), MembershipError> {
        if node >= self.nodes.len() {
            return Err(MembershipError::UnknownNode { node, capacity: self.nodes.len() });
        }
        Ok(())
    }

    /// Kills a node: shards wiped (the crash loses in-memory state), item
    /// cache cleared, health `Down`. Idempotent on an already-down node;
    /// a slot id outside the cluster is ignored.
    pub fn kill_node(&self, node: NodeId) {
        if self.check_slot(node).is_err() || self.node_health(node) == NodeHealth::Down {
            return;
        }
        self.nodes[node].user_weights.publish_version(Vec::new());
        self.nodes[node].item_features.publish_version(Vec::new());
        self.nodes[node].item_cache.lock().unwrap().clear();
        self.set_health(node, NodeHealth::Down, 0);
    }

    /// Recovers a dead node: marks it `Recovering`, re-populates every key
    /// whose replica set includes it from surviving `Up` replicas, then
    /// marks it `Up`. Returns the number of entries caught up. Keys with no
    /// surviving replica stay lost until the next write or publish (the
    /// serving layer degrades them). No-op on a node that is already `Up`.
    pub fn recover_node(&self, node: NodeId) -> u64 {
        if self.check_slot(node).is_err() || self.node_health(node) == NodeHealth::Up {
            return 0;
        }
        self.set_health(node, NodeHealth::Recovering, 0);
        let mut caught_up = 0u64;
        for (other_id, other) in self.nodes.iter().enumerate() {
            if other_id == node || other.health.load(Ordering::Acquire) != HEALTH_UP {
                continue;
            }
            for (uid, w) in other.user_weights.snapshot_entries() {
                if self.replica_nodes_of_user(uid).contains(&node)
                    && !self.nodes[node].user_weights.contains(uid)
                {
                    self.nodes[node].user_weights.put(uid, w);
                    caught_up += 1;
                }
            }
            for (item, feat) in other.item_features.snapshot_entries() {
                if self.replica_nodes_of_item(item).contains(&node)
                    && !self.nodes[node].item_features.contains(item)
                {
                    self.nodes[node].item_features.put(item, feat);
                    caught_up += 1;
                }
            }
        }
        self.nodes[node].catch_up_entries.add(caught_up);
        self.set_health(node, NodeHealth::Up, caught_up);
        caught_up
    }

    /// Brings the next pre-provisioned headroom slot into membership as a
    /// fresh, empty node (health `Up`, owning no partitions). Returns the
    /// new node id; fails when no headroom slot is left (`max_nodes`
    /// exhausted). Partitions move afterwards via
    /// [`Cluster::rebalance_join`] / [`Cluster::migrate_partition`].
    pub fn join_node(&self) -> Result<NodeId, MembershipError> {
        let mut cur = self.map.write().unwrap();
        let next_id = cur.members().iter().max().map_or(0, |&m| m + 1);
        if next_id >= self.nodes.len() {
            return Err(MembershipError::Map(PartitionError::InvalidMap(format!(
                "no headroom: slot {next_id} exceeds capacity {}",
                self.nodes.len()
            ))));
        }
        *cur = Arc::new(cur.with_member(next_id)?);
        drop(cur);
        self.set_health(next_id, NodeHealth::Up, 0);
        Ok(next_id)
    }

    /// Requests that the in-flight (or next) migration abort with
    /// `operator cancel` at its next chunk boundary. Returns whether a
    /// migration was running when the cancel landed.
    pub fn request_migration_cancel(&self) -> bool {
        self.migration_cancel.store(true, Ordering::Release);
        self.migration_active.load(Ordering::Acquire)
    }

    /// Flips the rebalance kill switch; `false` makes
    /// [`Cluster::rebalance_join`] and [`Cluster::migrate_partition`]
    /// refuse with [`MembershipError::RebalanceDisabled`].
    pub fn set_rebalance_enabled(&self, on: bool) {
        self.rebalance_enabled.store(on, Ordering::Release);
    }

    /// Current state of the rebalance kill switch.
    pub fn rebalance_enabled(&self) -> bool {
        self.rebalance_enabled.load(Ordering::Acquire)
    }

    /// Sets the wall-clock budget for each subsequent migration (`None`
    /// removes the deadline). The simulator's migrations are synchronous,
    /// so in practice only a zero deadline fires — the deterministic
    /// deadline-abort scenario.
    pub fn set_migration_deadline(&self, deadline: Option<Duration>) {
        *self.migration_deadline.lock().unwrap() = deadline;
    }

    /// Wires a link-fault engine into the migration path: a chunk transfer
    /// that finds the src↔dst link partitioned aborts (the simulator
    /// cannot wait for a heal the way the TCP runtime's cursor-resume
    /// loop does).
    pub fn set_migration_link_chaos(&self, chaos: Arc<LinkChaos>) {
        *self.migration_link_chaos.lock().unwrap() = Some(chaos);
    }

    /// First satisfied abort trigger for a migration step, if any.
    fn migration_abort_reason(
        &self,
        src: NodeId,
        dst: NodeId,
        started: Instant,
        deadline: Option<Duration>,
    ) -> Option<String> {
        if self.migration_cancel.swap(false, Ordering::AcqRel) {
            return Some("operator cancel".into());
        }
        if let Some(limit) = deadline {
            if started.elapsed() > limit {
                return Some("deadline exceeded".into());
            }
        }
        if self.node_health(src) != NodeHealth::Up {
            return Some(format!("source death (node {src})"));
        }
        if self.node_health(dst) != NodeHealth::Up {
            return Some(format!("destination death (node {dst})"));
        }
        if let Some(chaos) = self.migration_link_chaos.lock().unwrap().as_ref() {
            if chaos.is_partitioned(src as u32, dst as u32) {
                return Some(format!("checkpoint link partitioned ({src}<->{dst})"));
            }
        }
        None
    }

    /// Live-migrates virtual partition `p` to `dst` through the epoch
    /// protocol, chunked and abortable:
    ///
    /// 1. **chunk_stream** — the partition's user weights are copied from
    ///    the owner in bounded, uid-sorted chunks
    ///    ([`ClusterConfig::checkpoint_chunk_users`]); every chunk
    ///    boundary checks the abort triggers (operator cancel, deadline,
    ///    source/destination death, partitioned link). An abort here
    ///    rolls back completely: copied entries are scrubbed from `dst`,
    ///    no map was installed, the epoch did not move.
    /// 2. **dual_write** — epoch `+1` adds `dst` to the replica set;
    ///    every new write now fans out to `dst` too.
    /// 3. **catch_up** — a reconcile pass overwrites `dst` with the
    ///    owner's current values (covers writes that raced phase 1).
    /// 4. **cut_over** — epoch `+2` makes `dst` the owner; the old owner
    ///    stays a replica.
    ///
    /// Returns the number of users copied.
    pub fn migrate_partition(&self, p: u32, dst: NodeId) -> Result<u64, MembershipError> {
        self.check_slot(dst)?;
        if !self.rebalance_enabled() {
            return Err(MembershipError::RebalanceDisabled);
        }
        let map0 = self.map();
        if !map0.is_member(dst) {
            return Err(MembershipError::NotAMember(dst));
        }
        let src = map0.owner_of_partition(p);
        if src == dst {
            return Ok(0);
        }
        if self.migration_active.swap(true, Ordering::AcqRel) {
            return Err(MembershipError::MigrationInFlight);
        }
        let result = self.run_migration(p, src, dst, &map0);
        self.migration_active.store(false, Ordering::Release);
        result
    }

    fn run_migration(
        &self,
        p: u32,
        src: NodeId,
        dst: NodeId,
        map0: &Arc<PartitionMap>,
    ) -> Result<u64, MembershipError> {
        let started = Instant::now();
        let deadline = *self.migration_deadline.lock().unwrap();
        let chunk_users = match self.config.checkpoint_chunk_users {
            0 => usize::MAX,
            n => n,
        };
        let mut status = MigrationStatus {
            partition: p,
            from: src,
            to: dst,
            phase: "chunk_stream",
            epoch_start: map0.epoch(),
            epoch_end: 0,
            users_streamed: 0,
            records_replayed: 0,
            chunks_streamed: 0,
            outcome: MigrationOutcome::InFlight,
        };

        // Phase 1: chunked checkpoint, before any install — aborting here
        // leaves the cluster bit-identical to never having tried.
        let mut entries: Vec<(u64, Vec<f64>)> = self.nodes[src]
            .user_weights
            .snapshot_entries()
            .into_iter()
            .filter(|(uid, _)| map0.partition_of(*uid) == p)
            .collect();
        entries.sort_by_key(|(uid, _)| *uid);
        let mut placed: Vec<u64> = Vec::new();
        let mut abort = self.migration_abort_reason(src, dst, started, deadline);
        if abort.is_none() {
            for chunk in entries.chunks(chunk_users.max(1)) {
                for (uid, w) in chunk {
                    if !self.nodes[dst].user_weights.contains(*uid) {
                        self.nodes[dst].user_weights.put(*uid, w.clone());
                        placed.push(*uid);
                    }
                }
                status.chunks_streamed += 1;
                status.users_streamed += chunk.len() as u64;
                abort = self.migration_abort_reason(src, dst, started, deadline);
                if abort.is_some() {
                    break;
                }
            }
        }
        if let Some(reason) = abort {
            // Roll back: scrub everything this migration placed at `dst`,
            // leaving the source authoritative and the epoch untouched.
            if !placed.is_empty() {
                let keep: Vec<(u64, Vec<f64>)> = self.nodes[dst]
                    .user_weights
                    .snapshot_entries()
                    .into_iter()
                    .filter(|(uid, _)| !placed.contains(uid))
                    .collect();
                self.nodes[dst].user_weights.publish_version(keep);
            }
            status.phase = "aborted";
            status.outcome = MigrationOutcome::Aborted(reason.clone());
            self.migrations.lock().unwrap().push(status);
            return Err(MembershipError::Aborted(reason));
        }
        self.nodes[dst].catch_up_entries.add(placed.len() as u64);

        // Phase 2: dual-write window (epoch +1) — the commit point.
        status.phase = "dual_write";
        let map1 = Arc::new(map0.with_extra_replica(p, dst)?);
        self.install_map(Arc::clone(&map1));

        // Phase 3: reconcile writes that raced the chunk stream — the
        // owner's current values win (it stayed authoritative throughout).
        status.phase = "catch_up";
        for (uid, w) in self.nodes[src].user_weights.snapshot_entries() {
            if map1.partition_of(uid) == p {
                self.nodes[dst].user_weights.put(uid, w);
                status.records_replayed += 1;
            }
        }

        // Phase 4: cutover (epoch +2); the old owner stays a replica.
        status.phase = "cut_over";
        let map2 = Arc::new(map1.with_owner(p, dst)?);
        let epoch_end = map2.epoch();
        self.install_map(map2);
        status.phase = "done";
        status.epoch_end = epoch_end;
        status.outcome = MigrationOutcome::Committed;
        let copied = status.users_streamed;
        self.migrations.lock().unwrap().push(status);
        Ok(copied)
    }

    /// Completed, aborted, and failed partition migrations, most recent
    /// last (the ledger behind `/cluster/health`).
    pub fn migrations(&self) -> Vec<MigrationStatus> {
        self.migrations.lock().unwrap().clone()
    }

    /// Planned handoff after [`Cluster::join_node`]: migrates the
    /// deterministic [`PartitionMap::plan_join`] set of partitions onto
    /// `dst`, one epoch-bumped migration at a time. Returns the moved
    /// partitions.
    pub fn rebalance_join(&self, dst: NodeId) -> Result<Vec<u32>, MembershipError> {
        self.check_slot(dst)?;
        if !self.rebalance_enabled() {
            return Err(MembershipError::RebalanceDisabled);
        }
        let plan = self.map().plan_join(dst)?;
        for &p in &plan {
            self.migrate_partition(p, dst)?;
        }
        Ok(plan)
    }

    /// Removes a dead member from the map: its partitions are re-owned by
    /// their first surviving replica, depleted replica sets are backfilled
    /// from survivors, and backfilled holders copy the partition state
    /// from a surviving replica. Returns the entries copied during
    /// backfill. The node must already be `Down` (see
    /// [`Cluster::kill_node`]).
    pub fn fail_over_dead(&self, dead: NodeId) -> Result<u64, MembershipError> {
        self.check_slot(dead)?;
        let old = self.map();
        if !old.is_member(dead) {
            return Err(MembershipError::NotAMember(dead));
        }
        if self.node_health(dead) != NodeHealth::Down {
            return Err(MembershipError::NotDown(dead));
        }
        let new = Arc::new(old.without_member(dead)?);
        self.install_map(Arc::clone(&new));
        let mut copied = 0u64;
        for p in 0..new.n_partitions() {
            let old_set = old.replicas_of_partition(p);
            let new_set = new.replicas_of_partition(p);
            let Some(&source) =
                old_set.iter().find(|&&n| n != dead && self.node_health(n) == NodeHealth::Up)
            else {
                continue; // no surviving copy; lost until the next publish
            };
            for &holder in new_set {
                if old_set.contains(&holder) || self.node_health(holder) != NodeHealth::Up {
                    continue;
                }
                let mut here = 0u64;
                for (uid, w) in self.nodes[source].user_weights.snapshot_entries() {
                    if new.partition_of(uid) == p && !self.nodes[holder].user_weights.contains(uid)
                    {
                        self.nodes[holder].user_weights.put(uid, w);
                        here += 1;
                    }
                }
                self.nodes[holder].catch_up_entries.add(here);
                copied += here;
            }
        }
        Ok(copied)
    }

    /// Installs (or replaces) a fault plan. Scheduled events fire against
    /// the request clock as requests are routed; probabilistic failures and
    /// spikes apply to every shard read from now on.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        let mut plan = plan;
        plan.events.sort_by_key(|e| e.at_request);
        let rng = VeloxRng::seed_from(plan.seed);
        *self.faults.lock().unwrap() = Some(FaultState { plan, rng, next_event: 0 });
        self.fault_active.store(true, Ordering::Release);
    }

    /// Removes the installed fault plan (health states are left as-is).
    pub fn clear_fault_plan(&self) {
        *self.faults.lock().unwrap() = None;
        self.fault_active.store(false, Ordering::Release);
    }

    /// True when health transitions await collection via
    /// [`Cluster::take_transitions`].
    pub fn transitions_pending(&self) -> bool {
        self.transitions_pending.load(Ordering::Acquire)
    }

    /// Drains the journal of health transitions (oldest first). The serving
    /// layer turns these into lifecycle events and recovery actions.
    pub fn take_transitions(&self) -> Vec<HealthTransition> {
        let mut journal = self.transitions.lock().unwrap();
        self.transitions_pending.store(false, Ordering::Release);
        std::mem::take(&mut *journal)
    }

    /// The number of requests routed so far (the fault-plan clock).
    pub fn request_clock(&self) -> u64 {
        self.request_clock.load(Ordering::Relaxed)
    }

    /// Fires every scheduled fault event due at or before `tick`.
    fn apply_due_faults(&self, tick: u64) {
        // Collect targets under the lock, act after releasing it:
        // kill/recover take other locks and must not nest inside this one.
        let due: Vec<(NodeId, FaultAction)> = {
            let mut guard = self.faults.lock().unwrap();
            let Some(state) = guard.as_mut() else { return };
            let mut due = Vec::new();
            while state.next_event < state.plan.events.len()
                && state.plan.events[state.next_event].at_request <= tick
            {
                let ev = state.plan.events[state.next_event];
                due.push((ev.node, ev.action));
                state.next_event += 1;
            }
            due
        };
        for (node, action) in due {
            match action {
                FaultAction::Kill => self.kill_node(node),
                FaultAction::Recover => {
                    self.recover_node(node);
                }
            }
        }
    }

    /// Rolls the plan's dice for one shard read: `true` = the read
    /// transiently fails (the caller should fail over).
    fn inject_read_failure(&self) -> bool {
        if !self.fault_active.load(Ordering::Acquire) {
            return false;
        }
        let mut guard = self.faults.lock().unwrap();
        let Some(state) = guard.as_mut() else { return false };
        if state.plan.read_failure_prob <= 0.0 {
            return false;
        }
        let fail = state.rng.uniform() < state.plan.read_failure_prob;
        if fail {
            self.injected_read_failures.inc();
        }
        fail
    }

    /// Extra virtual microseconds from an injected latency spike (usually
    /// 0.0). Added to the caller's cost and the virtual read clock.
    fn latency_spike_us(&self) -> f64 {
        if !self.fault_active.load(Ordering::Acquire) {
            return 0.0;
        }
        let mut guard = self.faults.lock().unwrap();
        let Some(state) = guard.as_mut() else { return 0.0 };
        if state.plan.latency_spike_prob <= 0.0
            || state.rng.uniform() >= state.plan.latency_spike_prob
        {
            return 0.0;
        }
        self.injected_latency_spikes.inc();
        self.virtual_read_nanos
            .fetch_add((state.plan.latency_spike_us * 1000.0) as u64, Ordering::Relaxed);
        state.plan.latency_spike_us
    }

    /// Picks the serving node for a request from `uid` under the configured
    /// routing policy, counting it against that node's load. Advances the
    /// fault clock; when the routed node is down, the request is redirected
    /// to the first live replica of the user (then any live node).
    pub fn route_request(&self, uid: u64) -> NodeId {
        let tick = self.request_clock.fetch_add(1, Ordering::Relaxed) + 1;
        if self.fault_active.load(Ordering::Acquire) {
            self.apply_due_faults(tick);
        }
        let mut node = match self.config.routing {
            // ByUser consults the live partition map so routing follows
            // migrations; the static router only drives the round-robin
            // ablation baseline.
            RoutingPolicy::ByUser => self.map.read().unwrap().owner_of(uid),
            RoutingPolicy::RoundRobin => self.router.route(uid),
        };
        if self.node_health(node) != NodeHealth::Up {
            node = self
                .replica_nodes_of_user(uid)
                .into_iter()
                .find(|&n| self.node_health(n) == NodeHealth::Up)
                .or_else(|| (0..self.nodes.len()).find(|&n| self.node_health(n) == NodeHealth::Up))
                .unwrap_or(node);
        }
        self.nodes[node].requests_served.inc();
        node
    }

    /// Counts one access of `kind` at `at` and returns its base virtual
    /// cost in microseconds (also added to the virtual read clock).
    fn charge(&self, at: NodeId, kind: AccessKind) -> f64 {
        let us = match kind {
            AccessKind::Local | AccessKind::CacheHit => {
                self.nodes[at].local_reads.inc();
                self.config.local_read_us
            }
            AccessKind::Remote => {
                self.nodes[at].remote_reads.inc();
                self.config.remote_read_us
            }
            AccessKind::Failover => {
                // Failover reads go over the network to the surviving
                // replica; counted under remote for locality accounting,
                // plus their own counter.
                self.nodes[at].remote_reads.inc();
                self.nodes[at].failover_reads.inc();
                self.config.remote_read_us
            }
        };
        self.virtual_read_nanos.fetch_add((us * 1000.0) as u64, Ordering::Relaxed);
        us
    }

    /// Stores a user's weight vector at every replica node that is not
    /// `Down` (placement is not a serving-path cost; no charge).
    pub fn put_user_weights(&self, uid: u64, w: Vec<f64>) {
        for node in self.replica_nodes_of_user(uid) {
            if self.node_health(node) != NodeHealth::Down {
                self.nodes[node].user_weights.put(uid, w.clone());
            }
        }
    }

    /// Health-aware read of a user's weights from serving node `at`.
    ///
    /// Replicas are tried home-first; `Down`/`Recovering` nodes and reads
    /// the fault plan transiently fails are skipped. A read served by a
    /// non-primary replica is a failover (charged remote). When no live
    /// replica can answer, the result is `unavailable` and the serving
    /// layer degrades (stale cache, then bootstrap prior).
    pub fn read_user_weights(&self, at: NodeId, uid: u64) -> ClusterRead {
        let spike = self.latency_spike_us();
        let replicas = self.replica_nodes_of_user(uid);
        for (i, &node) in replicas.iter().enumerate() {
            if self.node_health(node) != NodeHealth::Up || self.inject_read_failure() {
                continue;
            }
            let kind = if i > 0 {
                AccessKind::Failover
            } else if node == at {
                AccessKind::Local
            } else {
                AccessKind::Remote
            };
            let cost_us = self.charge(at, kind) + spike;
            return ClusterRead {
                value: self.nodes[node].user_weights.get(uid),
                kind,
                cost_us,
                failover: kind == AccessKind::Failover,
                unavailable: false,
            };
        }
        self.nodes[at].unavailable_reads.inc();
        ClusterRead {
            value: None,
            kind: AccessKind::Remote,
            cost_us: spike,
            failover: false,
            unavailable: true,
        }
    }

    /// Reads a user's weights from serving node `at`. Local when `at` is
    /// the user's home (always true under `ByUser` routing), remote
    /// otherwise. Returns the weights, how the access was satisfied, and
    /// the virtual cost in microseconds.
    pub fn get_user_weights(&self, at: NodeId, uid: u64) -> (Option<Vec<f64>>, AccessKind, f64) {
        let read = self.read_user_weights(at, uid);
        (read.value, read.kind, read.cost_us)
    }

    /// Applies an in-place update to a user's weights (upserting via
    /// `default` when absent), fanning the result out to every live
    /// replica. Under `ByUser` routing and full health this is the paper's
    /// "all writes are local" property; when `at` differs from the serving
    /// replica the write is charged as remote. Returns `None` when no live
    /// replica exists — the caller should buffer the update for redo.
    pub fn try_update_user_weights<F, D>(
        &self,
        at: NodeId,
        uid: u64,
        default: D,
        f: F,
    ) -> Option<f64>
    where
        F: FnOnce(&mut Vec<f64>),
        D: FnOnce() -> Vec<f64>,
    {
        let live = self.live_user_replicas(uid);
        let (&first, rest) = live.split_first()?;
        let kind = if first == at { AccessKind::Local } else { AccessKind::Remote };
        let cost = self.charge(at, kind);
        self.nodes[first].user_weights.update_with(uid, default, f);
        if !rest.is_empty() {
            if let Some(w) = self.nodes[first].user_weights.get(uid) {
                for &node in rest {
                    self.nodes[node].user_weights.put(uid, w.clone());
                }
            }
        }
        Some(cost)
    }

    /// [`Cluster::try_update_user_weights`], charging a remote read when
    /// every replica is down (legacy callers that cannot buffer).
    pub fn update_user_weights<F, D>(&self, at: NodeId, uid: u64, default: D, f: F) -> f64
    where
        F: FnOnce(&mut Vec<f64>),
        D: FnOnce() -> Vec<f64>,
    {
        self.try_update_user_weights(at, uid, default, f).unwrap_or(self.config.remote_read_us)
    }

    /// Bulk-publishes a new user-weight table (offline retrain output):
    /// contents are re-partitioned across each user's replica set and each
    /// node's shard swaps atomically. `Down` nodes get an empty shard —
    /// their state is whatever recovery later copies back.
    pub fn publish_user_weights(&self, entries: Vec<(u64, Vec<f64>)>) {
        let mut per_node: Vec<Vec<(u64, Vec<f64>)>> =
            (0..self.nodes.len()).map(|_| Vec::new()).collect();
        for (uid, w) in entries {
            for node in self.replica_nodes_of_user(uid) {
                per_node[node].push((uid, w.clone()));
            }
        }
        for ((id, node), mut shard) in self.nodes.iter().enumerate().zip(per_node) {
            if self.node_health(id) == NodeHealth::Down {
                shard = Vec::new();
            }
            node.user_weights.publish_version(shard);
        }
    }

    /// Management-plane read of a user's weights — no routing, no cost
    /// accounting; falls back across replicas so a dead home node does not
    /// hide a surviving copy. Serving paths use
    /// [`Cluster::read_user_weights`] instead.
    pub fn peek_user_weights(&self, uid: u64) -> Option<Vec<f64>> {
        self.replica_nodes_of_user(uid)
            .into_iter()
            .find_map(|node| self.nodes[node].user_weights.get(uid))
    }

    /// Exports the entire user-weight table across all shards — the
    /// management-plane snapshot offline retraining warm-starts from.
    /// Replicated entries are deduplicated (first copy wins; replicas are
    /// kept in sync by the write fan-out).
    pub fn export_user_weights(&self) -> Vec<(u64, Vec<f64>)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for node in &self.nodes {
            for (uid, w) in node.user_weights.snapshot_entries() {
                if seen.insert(uid) {
                    out.push((uid, w));
                }
            }
        }
        out
    }

    /// Stores an item's feature vector at every replica node.
    pub fn put_item_features(&self, item_id: u64, features: Vec<f64>) {
        for node in self.replica_nodes_of_item(item_id) {
            self.nodes[node].item_features.put(item_id, features.clone());
        }
    }

    /// Bulk-publishes a new item-feature table (offline retrain output):
    /// contents are re-partitioned, each node's shard swaps atomically, and
    /// every node's item cache is invalidated (§4.2: retraining
    /// "invalidates both prediction and feature caches").
    pub fn publish_item_features(&self, entries: Vec<(u64, Vec<f64>)>) {
        let mut per_node: Vec<Vec<(u64, Vec<f64>)>> =
            (0..self.nodes.len()).map(|_| Vec::new()).collect();
        for (item, feat) in entries {
            for node in self.replica_nodes_of_item(item) {
                per_node[node].push((item, feat.clone()));
            }
        }
        for (node, shard) in self.nodes.iter().zip(per_node) {
            node.item_features.publish_version(shard);
            node.item_cache.lock().unwrap().clear();
        }
    }

    /// Health-aware read of an item's features from serving node `at`:
    /// local replica → cache → fetch from the first live replica (which
    /// populates the cache). A fetch answered by a non-primary replica —
    /// or forced off the local replica by a fault — is a failover. When no
    /// live replica can answer (and the cache is cold), the result is
    /// `unavailable`.
    pub fn read_item_features(&self, at: NodeId, item_id: u64) -> ClusterRead {
        let spike = self.latency_spike_us();
        let replicas = self.replica_nodes_of_item(item_id);
        let at_is_replica = replicas.contains(&at);
        if at_is_replica && self.node_health(at) == NodeHealth::Up && !self.inject_read_failure() {
            let cost_us = self.charge(at, AccessKind::Local) + spike;
            return ClusterRead {
                value: self.nodes[at].item_features.get(item_id),
                kind: AccessKind::Local,
                cost_us,
                failover: false,
                unavailable: false,
            };
        }
        // Try the serving node's cache.
        {
            let mut cache = self.nodes[at].item_cache.lock().unwrap();
            if let Some(hit) = cache.get(&item_id) {
                let value = hit.clone();
                drop(cache);
                self.nodes[at].cache_hits.inc();
                let cost_us = self.charge(at, AccessKind::CacheHit) + spike;
                return ClusterRead {
                    value: Some(value),
                    kind: AccessKind::CacheHit,
                    cost_us,
                    failover: false,
                    unavailable: false,
                };
            }
        }
        self.nodes[at].cache_misses.inc();
        // Fetch from the first live replica; populate the cache on success —
        // but only if no publish invalidated the table mid-fetch, otherwise
        // a pre-publish value could be re-inserted into a freshly cleared
        // cache and served stale until the next publish.
        for (i, &node) in replicas.iter().enumerate() {
            if self.node_health(node) != NodeHealth::Up || self.inject_read_failure() {
                continue;
            }
            // Reaching the fetch loop at all means a local replica failed
            // (if `at` held one); a non-primary source is likewise a
            // failover rather than ordinary remote locality traffic.
            let kind =
                if i > 0 || at_is_replica { AccessKind::Failover } else { AccessKind::Remote };
            let cost_us = self.charge(at, kind) + spike;
            let version_before = self.nodes[node].item_features.version();
            let fetched = self.nodes[node].item_features.get(item_id);
            if let Some(ref features) = fetched {
                if self.nodes[node].item_features.version() == version_before {
                    self.nodes[at].item_cache.lock().unwrap().put(item_id, features.clone());
                }
            }
            return ClusterRead {
                value: fetched,
                kind,
                cost_us,
                failover: kind == AccessKind::Failover,
                unavailable: false,
            };
        }
        self.nodes[at].unavailable_reads.inc();
        ClusterRead {
            value: None,
            kind: AccessKind::Remote,
            cost_us: spike,
            failover: false,
            unavailable: true,
        }
    }

    /// Reads an item's features from serving node `at`:
    /// local replica → cache → remote fetch (which populates the cache).
    /// Returns the features, the access kind, and the virtual cost (µs).
    pub fn get_item_features(
        &self,
        at: NodeId,
        item_id: u64,
    ) -> (Option<Vec<f64>>, AccessKind, f64) {
        let read = self.read_item_features(at, item_id);
        (read.value, read.kind, read.cost_us)
    }

    /// Invalidates every node's item cache (manual cache flush).
    pub fn invalidate_item_caches(&self) {
        for node in &self.nodes {
            node.item_cache.lock().unwrap().clear();
        }
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> ClusterStats {
        let nodes = self
            .nodes
            .iter()
            .map(|n| NodeStats {
                requests_served: n.requests_served.get(),
                local_reads: n.local_reads.get(),
                remote_reads: n.remote_reads.get(),
                failover_reads: n.failover_reads.get(),
                unavailable_reads: n.unavailable_reads.get(),
                catch_up_entries: n.catch_up_entries.get(),
                cache: n.item_cache.lock().unwrap().stats(),
                users_owned: n.user_weights.len(),
                items_owned: n.item_features.len(),
                health: NodeHealth::decode(n.health.load(Ordering::Acquire)),
            })
            .collect();
        ClusterStats {
            nodes,
            virtual_read_us: self.virtual_read_nanos.load(Ordering::Relaxed) as f64 / 1000.0,
            unavailable_reads: self.nodes.iter().map(|n| n.unavailable_reads.get()).sum(),
            catch_up_entries: self.nodes.iter().map(|n| n.catch_up_entries.get()).sum(),
            injected_read_failures: self.injected_read_failures.get(),
            injected_latency_spikes: self.injected_latency_spikes.get(),
        }
    }

    /// Resets all access counters (placements, health states, and cache
    /// contents stay).
    pub fn reset_stats(&self) {
        for n in &self.nodes {
            n.requests_served.reset();
            n.local_reads.reset();
            n.remote_reads.reset();
            n.cache_hits.reset();
            n.cache_misses.reset();
            n.failover_reads.reset();
            n.unavailable_reads.reset();
            n.catch_up_entries.reset();
            n.item_cache.lock().unwrap().reset_stats();
        }
        self.virtual_read_nanos.store(0, Ordering::Relaxed);
        self.injected_read_failures.reset();
        self.injected_latency_spikes.reset();
    }

    /// Registers every node's counters with a metrics registry, labelled by
    /// node id: routed requests, local/remote read accounting, item-cache
    /// hits and misses, and the shard tables' raw KV read/write counters.
    /// The registry exposes the same atomics the serving path increments.
    pub fn register_metrics(&self, registry: &Registry) {
        for (i, node) in self.nodes.iter().enumerate() {
            let id = i.to_string();
            let labels: [(&str, &str); 1] = [("node", id.as_str())];
            registry.register_counter(
                "velox_cluster_requests_total",
                &labels,
                Arc::clone(&node.requests_served),
            );
            registry.register_counter(
                "velox_cluster_local_reads_total",
                &labels,
                Arc::clone(&node.local_reads),
            );
            registry.register_counter(
                "velox_cluster_remote_reads_total",
                &labels,
                Arc::clone(&node.remote_reads),
            );
            registry.register_counter(
                "velox_cluster_item_cache_hits_total",
                &labels,
                Arc::clone(&node.cache_hits),
            );
            registry.register_counter(
                "velox_cluster_item_cache_misses_total",
                &labels,
                Arc::clone(&node.cache_misses),
            );
            registry.register_counter(
                "velox_cluster_failover_reads_total",
                &labels,
                Arc::clone(&node.failover_reads),
            );
            registry.register_counter(
                "velox_cluster_unavailable_reads_total",
                &labels,
                Arc::clone(&node.unavailable_reads),
            );
            registry.register_counter(
                "velox_cluster_catch_up_entries_total",
                &labels,
                Arc::clone(&node.catch_up_entries),
            );
            for ns in [&node.user_weights, &node.item_features] {
                let table_labels: [(&str, &str); 2] = [("node", id.as_str()), ("table", ns.name())];
                registry.register_counter(
                    "velox_kv_reads_total",
                    &table_labels,
                    ns.reads_counter(),
                );
                registry.register_counter(
                    "velox_kv_writes_total",
                    &table_labels,
                    ns.writes_counter(),
                );
            }
        }
        registry.register_counter(
            "velox_cluster_injected_read_failures_total",
            &[],
            Arc::clone(&self.injected_read_failures),
        );
        registry.register_counter(
            "velox_cluster_injected_latency_spikes_total",
            &[],
            Arc::clone(&self.injected_latency_spikes),
        );
        registry.register_counter(
            "velox_cluster_wrong_epoch_total",
            &[],
            Arc::clone(&self.wrong_epoch),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, routing: RoutingPolicy) -> Cluster {
        Cluster::new(ClusterConfig {
            n_nodes: n,
            routing,
            item_cache_capacity: 8,
            ..Default::default()
        })
    }

    #[test]
    fn user_weights_round_trip_locally_under_by_user_routing() {
        let c = cluster(4, RoutingPolicy::ByUser);
        for uid in 0..100u64 {
            c.put_user_weights(uid, vec![uid as f64]);
        }
        for uid in 0..100u64 {
            let node = c.route_request(uid);
            let (w, kind, cost) = c.get_user_weights(node, uid);
            assert_eq!(w.unwrap(), vec![uid as f64]);
            assert_eq!(kind, AccessKind::Local, "ByUser routing must make W reads local");
            assert_eq!(cost, c.config().local_read_us);
        }
        assert_eq!(c.stats().local_fraction(), 1.0);
    }

    #[test]
    fn round_robin_routing_causes_remote_user_reads() {
        let c = cluster(4, RoutingPolicy::RoundRobin);
        for uid in 0..200u64 {
            c.put_user_weights(uid, vec![1.0]);
        }
        for uid in 0..200u64 {
            let node = c.route_request(uid);
            let _ = c.get_user_weights(node, uid);
        }
        let frac = c.stats().local_fraction();
        // With 4 nodes, ~25% of random routes land on the home node.
        assert!(frac < 0.5, "round-robin should be mostly remote, got {frac}");
        assert!(frac > 0.05);
    }

    #[test]
    fn item_reads_local_on_home_node() {
        let c = cluster(2, RoutingPolicy::ByUser);
        c.put_item_features(7, vec![7.0]);
        let home = c.home_of_item(7);
        let (f, kind, _) = c.get_item_features(home, 7);
        assert_eq!(f.unwrap(), vec![7.0]);
        assert_eq!(kind, AccessKind::Local);
    }

    #[test]
    fn remote_item_read_populates_cache() {
        let c = cluster(2, RoutingPolicy::ByUser);
        c.put_item_features(7, vec![7.0]);
        let other = 1 - c.home_of_item(7);
        let (_, kind1, cost1) = c.get_item_features(other, 7);
        assert_eq!(kind1, AccessKind::Remote);
        assert_eq!(cost1, c.config().remote_read_us);
        let (f2, kind2, cost2) = c.get_item_features(other, 7);
        assert_eq!(kind2, AccessKind::CacheHit);
        assert_eq!(f2.unwrap(), vec![7.0]);
        assert!(cost2 < cost1);
    }

    #[test]
    fn missing_item_is_remote_miss_without_cache_pollution() {
        let c = cluster(2, RoutingPolicy::ByUser);
        let other = 1 - c.home_of_item(99);
        let (f, kind, _) = c.get_item_features(other, 99);
        assert!(f.is_none());
        assert_eq!(kind, AccessKind::Remote);
        // Still a miss next time (absence is not cached).
        let (_, kind2, _) = c.get_item_features(other, 99);
        assert_eq!(kind2, AccessKind::Remote);
    }

    #[test]
    fn publish_invalidates_caches_and_swaps_contents() {
        let c = cluster(2, RoutingPolicy::ByUser);
        c.put_item_features(1, vec![1.0]);
        let other = 1 - c.home_of_item(1);
        let _ = c.get_item_features(other, 1); // cache it remotely
        c.publish_item_features(vec![(1, vec![2.0])]);
        let (f, kind, _) = c.get_item_features(other, 1);
        assert_eq!(f.unwrap(), vec![2.0], "stale cache served after publish");
        assert_eq!(kind, AccessKind::Remote, "cache must have been invalidated");
    }

    #[test]
    fn update_user_weights_is_local_at_home() {
        let c = cluster(4, RoutingPolicy::ByUser);
        let uid = 5;
        let home = c.home_of_user(uid);
        c.update_user_weights(home, uid, || vec![0.0], |w| w[0] += 1.0);
        c.update_user_weights(home, uid, || vec![0.0], |w| w[0] += 1.0);
        let (w, _, _) = c.get_user_weights(home, uid);
        assert_eq!(w.unwrap(), vec![2.0]);
        let stats = c.stats();
        assert_eq!(stats.nodes.iter().map(|n| n.remote_reads).sum::<u64>(), 0);
    }

    #[test]
    fn load_imbalance_detects_hotspots() {
        let c = cluster(4, RoutingPolicy::ByUser);
        // All requests from one user → one node takes everything.
        for _ in 0..100 {
            c.route_request(7);
        }
        let imb = c.stats().load_imbalance();
        assert!((imb - 4.0).abs() < 1e-9, "one of four nodes has all load: {imb}");

        c.reset_stats();
        for uid in 0..10_000u64 {
            c.route_request(uid);
        }
        let imb = c.stats().load_imbalance();
        assert!(imb < 1.1, "hash routing should balance: {imb}");
    }

    #[test]
    fn replication_makes_item_reads_local_everywhere() {
        let c = Cluster::new(ClusterConfig {
            n_nodes: 4,
            item_replication: 4, // full replication
            ..Default::default()
        });
        for item in 0..50u64 {
            c.put_item_features(item, vec![item as f64]);
        }
        for node in 0..4 {
            for item in 0..50u64 {
                let (f, kind, _) = c.get_item_features(node, item);
                assert_eq!(f.unwrap(), vec![item as f64]);
                assert_eq!(kind, AccessKind::Local, "full replication: always local");
            }
        }
        assert_eq!(c.stats().local_fraction(), 1.0);
    }

    #[test]
    fn partial_replication_covers_replica_set_only() {
        let c =
            Cluster::new(ClusterConfig { n_nodes: 4, item_replication: 2, ..Default::default() });
        c.put_item_features(9, vec![9.0]);
        let replicas = c.replica_nodes_of_item(9);
        assert_eq!(replicas.len(), 2);
        for node in 0..4usize {
            let (f, kind, _) = c.get_item_features(node, 9);
            assert_eq!(f.unwrap(), vec![9.0]);
            if replicas.contains(&node) {
                assert_eq!(kind, AccessKind::Local, "replica node {node}");
            } else {
                assert_eq!(kind, AccessKind::Remote, "non-replica node {node}");
            }
        }
    }

    #[test]
    fn publish_updates_all_replicas() {
        let c =
            Cluster::new(ClusterConfig { n_nodes: 3, item_replication: 2, ..Default::default() });
        c.put_item_features(1, vec![1.0]);
        c.publish_item_features(vec![(1, vec![2.0])]);
        for node in c.replica_nodes_of_item(1) {
            let (f, kind, _) = c.get_item_features(node, 1);
            assert_eq!(f.unwrap(), vec![2.0], "replica {node} must see the new version");
            assert_eq!(kind, AccessKind::Local);
        }
    }

    #[test]
    fn replication_clamps_to_node_count() {
        let c =
            Cluster::new(ClusterConfig { n_nodes: 2, item_replication: 10, ..Default::default() });
        let replicas = c.replica_nodes_of_item(5);
        assert_eq!(replicas.len(), 2);
        let mut sorted = replicas.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 2, "replicas are distinct nodes");
    }

    #[test]
    fn virtual_time_accumulates() {
        let c = cluster(2, RoutingPolicy::ByUser);
        c.put_item_features(1, vec![1.0]);
        let other = 1 - c.home_of_item(1);
        let _ = c.get_item_features(other, 1); // remote: 300µs
        let home = c.home_of_item(1);
        let _ = c.get_item_features(home, 1); // local: 1µs
        let stats = c.stats();
        assert!((stats.virtual_read_us - 301.0).abs() < 1e-6, "{}", stats.virtual_read_us);
    }

    #[test]
    fn stats_reset() {
        let c = cluster(2, RoutingPolicy::ByUser);
        c.put_user_weights(1, vec![1.0]);
        let node = c.route_request(1);
        let _ = c.get_user_weights(node, 1);
        c.reset_stats();
        let stats = c.stats();
        assert_eq!(stats.nodes.iter().map(|n| n.requests_served).sum::<u64>(), 0);
        assert_eq!(stats.virtual_read_us, 0.0);
        // Ownership survives reset.
        assert_eq!(stats.nodes.iter().map(|n| n.users_owned).sum::<usize>(), 1);
    }

    #[test]
    fn ownership_counts_partition_everything() {
        let c = cluster(8, RoutingPolicy::ByUser);
        for uid in 0..1000 {
            c.put_user_weights(uid, vec![]);
        }
        for item in 0..500 {
            c.put_item_features(item, vec![]);
        }
        let stats = c.stats();
        assert_eq!(stats.nodes.iter().map(|n| n.users_owned).sum::<usize>(), 1000);
        assert_eq!(stats.nodes.iter().map(|n| n.items_owned).sum::<usize>(), 500);
    }

    fn replicated_cluster(n: usize, r: usize) -> Cluster {
        Cluster::new(ClusterConfig {
            n_nodes: n,
            user_replication: r,
            item_replication: r,
            ..Default::default()
        })
    }

    #[test]
    fn user_replication_fans_out_writes() {
        let c = replicated_cluster(4, 2);
        c.put_user_weights(3, vec![3.0]);
        let replicas = c.replica_nodes_of_user(3);
        assert_eq!(replicas.len(), 2);
        for &node in &replicas {
            assert_eq!(c.nodes[node].user_weights.get(3).unwrap(), vec![3.0]);
        }
        c.update_user_weights(replicas[0], 3, Vec::new, |w| w[0] = 9.0);
        for &node in &replicas {
            assert_eq!(c.nodes[node].user_weights.get(3).unwrap(), vec![9.0], "replica {node}");
        }
    }

    #[test]
    fn kill_node_wipes_state_and_marks_down() {
        let c = replicated_cluster(4, 2);
        for uid in 0..100u64 {
            c.put_user_weights(uid, vec![uid as f64]);
        }
        c.kill_node(1);
        assert_eq!(c.node_health(1), NodeHealth::Down);
        assert_eq!(c.live_nodes(), 3);
        assert_eq!(c.nodes[1].user_weights.len(), 0, "crash loses in-memory state");
        let transitions = c.take_transitions();
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].health, NodeHealth::Down);
        assert!(!c.transitions_pending());
    }

    #[test]
    fn failover_read_survives_single_node_loss() {
        let c = replicated_cluster(4, 2);
        for uid in 0..200u64 {
            c.put_user_weights(uid, vec![uid as f64]);
        }
        c.kill_node(2);
        for uid in 0..200u64 {
            let at = c.route_request(uid);
            assert_ne!(at, 2, "requests must not route to a dead node");
            let read = c.read_user_weights(at, uid);
            assert!(!read.unavailable, "replication 2 must survive one loss");
            assert_eq!(read.value.unwrap(), vec![uid as f64]);
            if c.home_of_user(uid) == 2 {
                assert!(read.failover, "home dead → replica must have answered");
            }
        }
        assert!(c.stats().failover_reads() > 0);
    }

    #[test]
    fn unreplicated_read_is_unavailable_when_home_dies() {
        let c = replicated_cluster(2, 1);
        c.put_user_weights(7, vec![7.0]);
        let home = c.home_of_user(7);
        c.kill_node(home);
        let read = c.read_user_weights(1 - home, 7);
        assert!(read.unavailable);
        assert!(read.value.is_none());
        assert_eq!(c.stats().unavailable_reads, 1);
    }

    #[test]
    fn recovery_catches_up_from_survivors() {
        let c = replicated_cluster(4, 2);
        for uid in 0..300u64 {
            c.put_user_weights(uid, vec![uid as f64]);
        }
        for item in 0..100u64 {
            c.put_item_features(item, vec![item as f64]);
        }
        c.kill_node(0);
        let caught_up = c.recover_node(0);
        assert!(caught_up > 0, "node 0 must re-populate from surviving replicas");
        assert_eq!(c.node_health(0), NodeHealth::Up);
        assert_eq!(c.stats().catch_up_entries, caught_up);
        // Every user whose replica set includes node 0 is back.
        for uid in 0..300u64 {
            if c.replica_nodes_of_user(uid).contains(&0) {
                assert_eq!(c.nodes[0].user_weights.get(uid).unwrap(), vec![uid as f64]);
            }
        }
        // Recovery journals Recovering → Up with the catch-up count.
        let transitions = c.take_transitions();
        let last = transitions.last().unwrap();
        assert_eq!(last.health, NodeHealth::Up);
        assert_eq!(last.caught_up, caught_up);
        // Idempotent: recovering an Up node is a no-op.
        assert_eq!(c.recover_node(0), 0);
    }

    #[test]
    fn scheduled_faults_fire_on_the_request_clock() {
        let c = replicated_cluster(4, 2);
        for uid in 0..50u64 {
            c.put_user_weights(uid, vec![1.0]);
        }
        c.install_fault_plan(FaultPlan::scripted(vec![
            crate::fault::FaultEvent { at_request: 10, node: 1, action: FaultAction::Kill },
            crate::fault::FaultEvent { at_request: 30, node: 1, action: FaultAction::Recover },
        ]));
        for i in 0..9u64 {
            c.route_request(i);
        }
        assert_eq!(c.live_nodes(), 4, "kill not due yet");
        c.route_request(9);
        assert_eq!(c.live_nodes(), 3, "kill fires at request 10");
        for i in 10..29u64 {
            c.route_request(i);
        }
        assert_eq!(c.live_nodes(), 3);
        c.route_request(29);
        assert_eq!(c.live_nodes(), 4, "recover fires at request 30");
        assert_eq!(c.request_clock(), 30);
    }

    #[test]
    fn join_and_rebalance_move_ownership_with_epoch_bumps() {
        let c = Cluster::new(ClusterConfig {
            n_nodes: 3,
            user_replication: 2,
            max_nodes: 4,
            ..Default::default()
        });
        for uid in 0..500u64 {
            c.put_user_weights(uid, vec![uid as f64]);
        }
        assert_eq!(c.map_epoch(), 1);
        let new = c.join_node().unwrap();
        assert_eq!(new, 3);
        assert_eq!(c.map_epoch(), 2, "join bumps the epoch");
        assert_eq!(c.map().partitions_owned_by(new).len(), 0, "join moves no data yet");

        let moved = c.rebalance_join(new).unwrap();
        assert_eq!(moved.len(), c.map().n_partitions() as usize / 4);
        assert_eq!(
            c.map_epoch(),
            2 + 2 * moved.len() as u64,
            "each migration is two epoch bumps (dual-write, cutover)"
        );
        assert_eq!(c.map().partitions_owned_by(new).len(), moved.len());

        // Every user still reads its exact weights, served by the current
        // owner without failover.
        for uid in 0..500u64 {
            let at = c.route_request(uid);
            let read = c.read_user_weights(at, uid);
            assert_eq!(read.value.unwrap(), vec![uid as f64], "uid {uid} after rebalance");
            assert!(!read.failover, "owner must hold the data post-migration");
        }
        // No headroom left: a second join fails with a typed error.
        assert!(c.join_node().is_err());
    }

    #[test]
    fn wrong_epoch_is_rejected_until_refresh() {
        let c = Cluster::new(ClusterConfig {
            n_nodes: 2,
            user_replication: 2,
            max_nodes: 3,
            ..Default::default()
        });
        let stale = c.map_epoch();
        assert!(c.admit_epoch(stale).is_ok());
        c.join_node().unwrap();
        assert_eq!(c.admit_epoch(stale).unwrap_err(), stale + 1, "stale epoch rejected");
        assert_eq!(c.wrong_epoch_count(), 1);
        assert!(c.admit_epoch(c.map_epoch()).is_ok(), "refreshed epoch admitted");
        assert!(c.admit_epoch(0).is_ok(), "epoch 0 bypasses the check");
    }

    #[test]
    fn fail_over_dead_reowns_from_replicas_and_backfills() {
        let c = replicated_cluster(3, 2);
        for uid in 0..300u64 {
            c.put_user_weights(uid, vec![uid as f64]);
        }
        c.kill_node(1);
        assert!(c.fail_over_dead(0).is_err(), "only a down node can be failed over");
        let copied = c.fail_over_dead(1).unwrap();
        assert!(copied > 0, "backfilled replicas must copy state");
        let map = c.map();
        assert!(!map.is_member(1));
        for p in 0..map.n_partitions() {
            assert_eq!(map.replicas_of_partition(p).len(), 2, "replication restored");
        }
        for uid in 0..300u64 {
            let at = c.route_request(uid);
            assert_ne!(at, 1);
            let read = c.read_user_weights(at, uid);
            assert!(!read.unavailable);
            assert_eq!(read.value.unwrap(), vec![uid as f64], "uid {uid} after fail-over");
        }
    }

    #[test]
    fn injected_read_failures_force_failover_deterministically() {
        let run = |seed: u64| {
            let c = replicated_cluster(4, 2);
            for uid in 0..100u64 {
                c.put_user_weights(uid, vec![1.0]);
            }
            c.install_fault_plan(FaultPlan {
                read_failure_prob: 0.3,
                latency_spike_prob: 0.2,
                seed,
                ..Default::default()
            });
            for uid in 0..100u64 {
                let at = c.route_request(uid);
                let _ = c.read_user_weights(at, uid);
            }
            let s = c.stats();
            (s.injected_read_failures, s.injected_latency_spikes, s.failover_reads())
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed → identical fault noise");
        assert!(a.0 > 0, "some reads must have been failed");
        assert!(a.1 > 0, "some spikes must have fired");
        let c = run(43);
        assert_ne!(a, c, "different seed → different noise");
    }
}
