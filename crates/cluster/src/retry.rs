//! RPC retry policy and observation dedupe, shared by both transports.
//!
//! Retries are *budgeted*: a policy caps attempts, and backoff grows
//! exponentially with seeded jitter so synchronized clients desynchronize
//! instead of retry-storming. Idempotency is explicit — predicts and
//! weight reads retry freely; observes must never be blindly replayed
//! past the point where they may have been applied (a duplicate
//! Sherman–Morrison/LMS step corrupts the model). The safe replay path
//! is a client-chosen observation id plus an [`ObsDedupe`] window at the
//! applier, which turns an ambiguous "did my ack get lost?" retry into
//! an exactly-once operation.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use velox_data::VeloxRng;

/// Budgeted exponential backoff with jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per logical call (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff_base: Duration,
    /// Ceiling for one backoff step.
    pub backoff_max: Duration,
    /// Jitter fraction in `[0, 1]`: each step is scaled by a uniform
    /// factor in `[1 - jitter/2, 1 + jitter/2]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(50),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..Default::default() }
    }

    /// Backoff to sleep before retry number `retry` (0-based: the wait
    /// between attempt 1 and attempt 2 is `backoff(0, ..)`).
    pub fn backoff(&self, retry: u32, rng: &mut VeloxRng) -> Duration {
        let base = self.backoff_base.as_nanos() as u64;
        let exp = shl_sat(base, retry.min(32)).min(self.backoff_max.as_nanos() as u64);
        let jitter = self.jitter.clamp(0.0, 1.0);
        let factor = 1.0 - jitter / 2.0 + rng.uniform() * jitter;
        Duration::from_nanos((exp as f64 * factor) as u64)
    }
}

fn shl_sat(v: u64, shift: u32) -> u64 {
    if v != 0 && shift >= v.leading_zeros() {
        u64::MAX
    } else {
        v << shift
    }
}

/// Bounded exactly-once window keyed by observation id.
///
/// The applier records each observation's ack under its id; a replayed
/// request with the same id gets the *original* ack back instead of a
/// second weight update. The window is FIFO-bounded: entries older than
/// `cap` inserts are evicted, which is safe because the client's replay
/// horizon (one call's deadline) is far shorter than the window at any
/// realistic rate. Id `0` is reserved for "no dedupe" and never stored.
#[derive(Debug)]
pub struct ObsDedupe<T> {
    cap: usize,
    seen: HashMap<u64, T>,
    order: VecDeque<u64>,
}

impl<T: Clone> ObsDedupe<T> {
    /// A window remembering the most recent `cap` acks.
    pub fn new(cap: usize) -> Self {
        ObsDedupe { cap: cap.max(1), seen: HashMap::new(), order: VecDeque::new() }
    }

    /// The stored ack for `obs_id`, if this observation was already
    /// applied.
    pub fn hit(&self, obs_id: u64) -> Option<T> {
        if obs_id == 0 {
            return None;
        }
        self.seen.get(&obs_id).cloned()
    }

    /// Records `ack` for `obs_id`, evicting the oldest entry beyond the
    /// window bound.
    pub fn put(&mut self, obs_id: u64, ack: T) {
        if obs_id == 0 {
            return;
        }
        if self.seen.insert(obs_id, ack).is_none() {
            self.order.push_back(obs_id);
            if self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.seen.remove(&old);
                }
            }
        }
    }

    /// Entries currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no entries are remembered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// A process-unique nonce for minting observation ids: high bits from
/// the OS-seeded hasher, so ids from a restarted front never collide
/// with ids a node still remembers from the previous incarnation.
pub fn obs_id_nonce() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let h = std::collections::hash_map::RandomState::new().build_hasher();
    // finish() of an empty hasher is already process-random; fold in the
    // second hasher to fill both halves.
    let a = h.finish();
    let b = std::collections::hash_map::RandomState::new().build_hasher().finish();
    (a ^ b.rotate_left(32)) | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(8),
            jitter: 0.0,
        };
        let mut rng = VeloxRng::seed_from(1);
        assert_eq!(p.backoff(0, &mut rng), Duration::from_millis(1));
        assert_eq!(p.backoff(1, &mut rng), Duration::from_millis(2));
        assert_eq!(p.backoff(2, &mut rng), Duration::from_millis(4));
        assert_eq!(p.backoff(3, &mut rng), Duration::from_millis(8));
        assert_eq!(p.backoff(10, &mut rng), Duration::from_millis(8), "capped");
    }

    #[test]
    fn jitter_stays_in_band_and_is_seeded() {
        let p = RetryPolicy { jitter: 0.5, ..Default::default() };
        let mut a = VeloxRng::seed_from(9);
        let mut b = VeloxRng::seed_from(9);
        for retry in 0..20 {
            let d = p.backoff(retry, &mut a);
            let nominal = p.backoff_base.as_nanos() as f64
                * 2f64
                    .powi(retry as i32)
                    .min(p.backoff_max.as_nanos() as f64 / p.backoff_base.as_nanos() as f64);
            assert!(d.as_nanos() as f64 >= nominal * 0.74, "below jitter band at {retry}");
            assert!(d.as_nanos() as f64 <= nominal * 1.26, "above jitter band at {retry}");
            assert_eq!(d, p.backoff(retry, &mut b), "jitter must be seed-deterministic");
        }
    }

    #[test]
    fn dedupe_replays_original_ack() {
        let mut d: ObsDedupe<(u32, u64)> = ObsDedupe::new(8);
        assert!(d.hit(5).is_none());
        d.put(5, (1, 100));
        assert_eq!(d.hit(5), Some((1, 100)));
        d.put(5, (2, 200)); // re-put does not duplicate the order entry
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn dedupe_window_is_bounded_fifo() {
        let mut d: ObsDedupe<u64> = ObsDedupe::new(3);
        for id in 1..=5u64 {
            d.put(id, id * 10);
        }
        assert_eq!(d.len(), 3);
        assert!(d.hit(1).is_none() && d.hit(2).is_none(), "oldest evicted");
        assert_eq!(d.hit(5), Some(50));
    }

    #[test]
    fn dedupe_ignores_reserved_zero_id() {
        let mut d: ObsDedupe<u64> = ObsDedupe::new(3);
        d.put(0, 1);
        assert!(d.is_empty());
        assert!(d.hit(0).is_none());
    }

    #[test]
    fn nonces_are_distinct_and_nonzero() {
        let a = obs_id_nonce();
        let b = obs_id_nonce();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
