//! Network fault injection: a deterministic link-level adversary.
//!
//! [`fault`](crate::fault) scripts *process* faults (kill/recover); this
//! module scripts *network* faults on the links between named peers. A
//! [`LinkChaos`] engine owns a seeded RNG and a send-clock: every
//! data-plane RPC attempt asks for a [`LinkVerdict`] on its directional
//! link `(src, dst)`, advancing the clock by one tick, firing any
//! scheduled partition/heal events due at that tick, and drawing a fixed
//! number of uniforms for the probabilistic knobs (drop, delay,
//! duplication, corruption, reset, reorder-jitter). The fixed draw
//! discipline means enabling one knob never shifts another knob's stream,
//! so a fault schedule replays identically under a fixed seed.
//!
//! Partitions are *directional*: `partition(a, b)` silences frames from
//! `a` to `b` while the reverse path keeps working — the classic
//! "request applied, ack lost" failure that forces idempotency machinery
//! to earn its keep. Both the in-process [`SimTransport`] and the TCP
//! `NetCluster` in `velox-net` consume the same engine, so one chaos
//! suite runs against both backends.
//!
//! [`SimTransport`]: crate::transport::SimTransport

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use velox_data::VeloxRng;
use velox_obs::{Counter, Registry};

/// Peer id used for the cluster front (routing tier) on chaos links,
/// matching `velox_obs::FRONT_NODE`.
pub const FRONT_PEER: u32 = u32::MAX;

/// What a scheduled link event does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFaultKind {
    /// Silence the directional link `from → to`.
    Partition {
        /// Sending peer.
        from: u32,
        /// Receiving peer.
        to: u32,
    },
    /// Restore the directional link `from → to`.
    Heal {
        /// Sending peer.
        from: u32,
        /// Receiving peer.
        to: u32,
    },
    /// Restore every partitioned link.
    HealAll,
}

/// One scheduled link fault: when the engine's send clock reaches
/// `at_send`, apply `kind`.
#[derive(Debug, Clone, Copy)]
pub struct LinkFaultEvent {
    /// Send-clock tick (1-based count of data-plane verdicts) at which
    /// the event fires.
    pub at_send: u64,
    /// Partition, heal, or heal-all.
    pub kind: LinkFaultKind,
}

/// A deterministic link-fault plan, the network analogue of
/// [`FaultPlan`](crate::fault::FaultPlan).
///
/// Scheduled partition/heal events fire against the engine's send clock;
/// probabilistic knobs model a sick link. All randomness comes from one
/// seeded RNG, so a plan replays identically for identical workloads.
#[derive(Debug, Clone)]
pub struct LinkFaultPlan {
    /// Scheduled partition/heal events (any order; the engine sorts them).
    pub events: Vec<LinkFaultEvent>,
    /// Probability a request frame is dropped in flight (0 disables).
    pub drop_prob: f64,
    /// Probability a frame picks up `delay_us` of extra one-way latency.
    pub delay_prob: f64,
    /// Extra microseconds added by one injected delay.
    pub delay_us: u64,
    /// Probability a request frame is duplicated in flight.
    pub dup_prob: f64,
    /// Probability a request frame is corrupted in flight (the receiver
    /// must reject it at the CRC layer and fail the connection closed).
    pub corrupt_prob: f64,
    /// Probability the connection is reset after the request is sent.
    pub reset_prob: f64,
    /// Probability a frame picks up reorder jitter: up to `reorder_us` of
    /// extra delay, letting frames behind it overtake. (The RPC protocol
    /// is lock-step per connection, so reordering manifests as jitter
    /// between connections rather than within one.)
    pub reorder_prob: f64,
    /// Maximum reorder jitter in microseconds.
    pub reorder_us: u64,
    /// Seed for the engine's RNG.
    pub seed: u64,
}

impl Default for LinkFaultPlan {
    fn default() -> Self {
        LinkFaultPlan {
            events: Vec::new(),
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_us: 2_000,
            dup_prob: 0.0,
            corrupt_prob: 0.0,
            reset_prob: 0.0,
            reorder_prob: 0.0,
            reorder_us: 1_000,
            seed: 0xC4A0_5EED,
        }
    }
}

impl LinkFaultPlan {
    /// A plan with only scripted partition/heal events (no random noise).
    pub fn scripted(events: Vec<LinkFaultEvent>) -> Self {
        LinkFaultPlan { events, ..Default::default() }
    }

    /// True when the plan can never inject anything.
    fn inert(&self) -> bool {
        self.events.is_empty()
            && self.drop_prob == 0.0
            && self.delay_prob == 0.0
            && self.dup_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.reset_prob == 0.0
            && self.reorder_prob == 0.0
    }
}

/// The engine's decision for one RPC attempt on a directional link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkVerdict {
    /// The `src → dst` path is partitioned: the request never arrives.
    pub partitioned_request: bool,
    /// The `dst → src` path is partitioned: the request arrives and is
    /// applied, but the response never comes back.
    pub partitioned_response: bool,
    /// The request frame is lost in flight (receiver never sees it).
    pub drop: bool,
    /// Extra one-way latency to inject, in microseconds (0 = none).
    pub delay_us: u64,
    /// The request frame is delivered twice.
    pub duplicate: bool,
    /// The request frame is corrupted in flight.
    pub corrupt: bool,
    /// The connection is reset after the request is sent.
    pub reset: bool,
}

impl LinkVerdict {
    /// True when nothing is injected for this attempt.
    pub fn clean(&self) -> bool {
        *self == LinkVerdict::default()
    }
}

struct ChaosInner {
    plan: LinkFaultPlan,
    rng: VeloxRng,
    next_event: usize,
    partitions: HashSet<(u32, u32)>,
}

/// Counters for injected faults, registered under `/metrics` so a chaos
/// run can assert the adversary actually showed up.
#[derive(Debug)]
pub struct ChaosCounters {
    /// Request frames dropped.
    pub drops: Arc<Counter>,
    /// Delays injected (including reorder jitter).
    pub delays: Arc<Counter>,
    /// Request frames duplicated.
    pub dups: Arc<Counter>,
    /// Request frames corrupted.
    pub corrupts: Arc<Counter>,
    /// Connections reset mid-call.
    pub resets: Arc<Counter>,
    /// Sends refused because the link was partitioned (either direction).
    pub partitioned: Arc<Counter>,
}

impl ChaosCounters {
    fn new() -> Self {
        ChaosCounters {
            drops: Arc::new(Counter::new()),
            delays: Arc::new(Counter::new()),
            dups: Arc::new(Counter::new()),
            corrupts: Arc::new(Counter::new()),
            resets: Arc::new(Counter::new()),
            partitioned: Arc::new(Counter::new()),
        }
    }
}

/// Deterministic link-fault engine shared by every client on a backend.
///
/// Interior-mutable: install a [`LinkFaultPlan`] (or drive partitions
/// imperatively) at any time; data-plane callers ask [`LinkChaos::verdict`]
/// per RPC attempt. With the default (inert) plan the verdict path is one
/// atomic increment and a relaxed load — cheap enough to leave compiled
/// into the hot path.
pub struct LinkChaos {
    inner: Mutex<ChaosInner>,
    tick: AtomicU64,
    active: AtomicBool,
    counters: ChaosCounters,
}

impl std::fmt::Debug for LinkChaos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkChaos")
            .field("ticks", &self.ticks())
            .field("active", &self.active.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for LinkChaos {
    fn default() -> Self {
        LinkChaos::new(LinkFaultPlan::default())
    }
}

impl LinkChaos {
    /// Builds an engine for `plan`.
    pub fn new(plan: LinkFaultPlan) -> Self {
        let engine = LinkChaos {
            inner: Mutex::new(ChaosInner {
                plan: LinkFaultPlan::default(),
                rng: VeloxRng::seed_from(0),
                next_event: 0,
                partitions: HashSet::new(),
            }),
            tick: AtomicU64::new(0),
            active: AtomicBool::new(false),
            counters: ChaosCounters::new(),
        };
        engine.install(plan);
        engine
    }

    /// Installs a new plan, resetting the send clock, the RNG, and any
    /// partitions (scripted or imperative).
    pub fn install(&self, mut plan: LinkFaultPlan) {
        let mut g = self.inner.lock().unwrap();
        plan.events.sort_by_key(|e| e.at_send);
        g.rng = VeloxRng::seed_from(plan.seed);
        g.next_event = 0;
        g.partitions.clear();
        self.active.store(!plan.inert(), Ordering::Release);
        g.plan = plan;
        self.tick.store(0, Ordering::Release);
    }

    /// Removes all injected faults (equivalent to installing the default
    /// inert plan).
    pub fn clear(&self) {
        self.install(LinkFaultPlan::default());
    }

    /// Silences the directional link `from → to` immediately.
    pub fn partition(&self, from: u32, to: u32) {
        let mut g = self.inner.lock().unwrap();
        g.partitions.insert((from, to));
        self.active.store(true, Ordering::Release);
    }

    /// Silences both directions between `a` and `b`.
    pub fn partition_both(&self, a: u32, b: u32) {
        self.partition(a, b);
        self.partition(b, a);
    }

    /// Restores the directional link `from → to`.
    pub fn heal(&self, from: u32, to: u32) {
        let mut g = self.inner.lock().unwrap();
        g.partitions.remove(&(from, to));
        let still = !g.partitions.is_empty() || !g.plan.inert();
        self.active.store(still, Ordering::Release);
    }

    /// Restores every partitioned link.
    pub fn heal_all(&self) {
        let mut g = self.inner.lock().unwrap();
        g.partitions.clear();
        self.active.store(!g.plan.inert(), Ordering::Release);
    }

    /// True when frames from `src` to `dst` are currently silenced.
    /// Control-plane probes (heartbeats) use this directly: they see
    /// partitions but are exempt from the probabilistic knobs, so probe
    /// traffic never perturbs the data-plane fault stream.
    pub fn is_partitioned(&self, src: u32, dst: u32) -> bool {
        if !self.active.load(Ordering::Acquire) {
            return false;
        }
        self.inner.lock().unwrap().partitions.contains(&(src, dst))
    }

    /// Send-clock ticks consumed so far.
    pub fn ticks(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Injection counters (shared handles; also registered by
    /// [`LinkChaos::register_metrics`]).
    pub fn counters(&self) -> &ChaosCounters {
        &self.counters
    }

    /// Decides the fate of one RPC attempt from `src` to `dst`,
    /// advancing the send clock.
    pub fn verdict(&self, src: u32, dst: u32) -> LinkVerdict {
        let t = self.tick.fetch_add(1, Ordering::AcqRel) + 1;
        if !self.active.load(Ordering::Acquire) {
            return LinkVerdict::default();
        }
        let mut g = self.inner.lock().unwrap();
        while g.next_event < g.plan.events.len() && g.plan.events[g.next_event].at_send <= t {
            let ev = g.plan.events[g.next_event];
            match ev.kind {
                LinkFaultKind::Partition { from, to } => {
                    g.partitions.insert((from, to));
                }
                LinkFaultKind::Heal { from, to } => {
                    g.partitions.remove(&(from, to));
                }
                LinkFaultKind::HealAll => g.partitions.clear(),
            }
            g.next_event += 1;
        }
        // Fixed draw discipline: one uniform per knob, every verdict, so
        // the stream for knob k is independent of every other knob's
        // probability. (delay/reorder burn a second uniform only via the
        // jitter magnitude, drawn lazily below — still deterministic
        // because it is conditioned only on its own knob's draw.)
        let d_drop = g.rng.uniform();
        let d_delay = g.rng.uniform();
        let d_dup = g.rng.uniform();
        let d_corrupt = g.rng.uniform();
        let d_reset = g.rng.uniform();
        let d_reorder = g.rng.uniform();

        let mut v = LinkVerdict {
            partitioned_request: g.partitions.contains(&(src, dst)),
            partitioned_response: g.partitions.contains(&(dst, src)),
            ..Default::default()
        };
        if v.partitioned_request || v.partitioned_response {
            self.counters.partitioned.inc();
            return v;
        }
        v.drop = d_drop < g.plan.drop_prob;
        if d_delay < g.plan.delay_prob {
            v.delay_us = g.plan.delay_us;
        }
        if d_reorder < g.plan.reorder_prob && g.plan.reorder_us > 0 {
            let span = g.plan.reorder_us;
            v.delay_us += g.rng.below(span) + 1;
        }
        v.duplicate = d_dup < g.plan.dup_prob;
        v.corrupt = d_corrupt < g.plan.corrupt_prob;
        v.reset = d_reset < g.plan.reset_prob;

        if v.drop {
            self.counters.drops.inc();
        }
        if v.delay_us > 0 {
            self.counters.delays.inc();
        }
        if v.duplicate {
            self.counters.dups.inc();
        }
        if v.corrupt {
            self.counters.corrupts.inc();
        }
        if v.reset {
            self.counters.resets.inc();
        }
        v
    }

    /// Registers the injection counters with `registry` under
    /// `velox_chaos_net_*` names.
    pub fn register_metrics(&self, registry: &Registry) {
        let c = &self.counters;
        registry.register_counter("velox_chaos_net_drops_total", &[], Arc::clone(&c.drops));
        registry.register_counter("velox_chaos_net_delays_total", &[], Arc::clone(&c.delays));
        registry.register_counter("velox_chaos_net_dups_total", &[], Arc::clone(&c.dups));
        registry.register_counter("velox_chaos_net_corrupts_total", &[], Arc::clone(&c.corrupts));
        registry.register_counter("velox_chaos_net_resets_total", &[], Arc::clone(&c.resets));
        registry.register_counter(
            "velox_chaos_net_partitioned_sends_total",
            &[],
            Arc::clone(&c.partitioned),
        );
    }
}

/// Uniform control surface for installing link faults on a backend, so
/// one chaos suite drives both `SimTransport` and the TCP `NetCluster`.
pub trait ChaosControl {
    /// The backend's shared link-fault engine.
    fn link_chaos(&self) -> &Arc<LinkChaos>;

    /// Installs `plan`, replacing any active faults.
    fn install_link_faults(&self, plan: LinkFaultPlan) {
        self.link_chaos().install(plan);
    }

    /// Clears all link faults.
    fn clear_link_faults(&self) {
        self.link_chaos().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_plan(seed: u64) -> LinkFaultPlan {
        LinkFaultPlan {
            drop_prob: 0.1,
            delay_prob: 0.2,
            delay_us: 500,
            dup_prob: 0.05,
            corrupt_prob: 0.05,
            reset_prob: 0.05,
            reorder_prob: 0.1,
            reorder_us: 200,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn same_seed_same_verdict_sequence() {
        let a = LinkChaos::new(noisy_plan(42));
        let b = LinkChaos::new(noisy_plan(42));
        for i in 0..2_000 {
            let (src, dst) = ((i % 3) as u32, ((i + 1) % 3) as u32);
            assert_eq!(a.verdict(src, dst), b.verdict(src, dst), "verdict {i} diverged");
        }
        assert_eq!(a.ticks(), b.ticks());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = LinkChaos::new(noisy_plan(1));
        let b = LinkChaos::new(noisy_plan(2));
        let diverged = (0..500).any(|_| a.verdict(0, 1) != b.verdict(0, 1));
        assert!(diverged, "independent seeds produced identical fault streams");
    }

    #[test]
    fn inert_plan_injects_nothing() {
        let chaos = LinkChaos::default();
        for _ in 0..100 {
            assert!(chaos.verdict(0, 1).clean());
        }
        assert_eq!(chaos.ticks(), 100);
    }

    #[test]
    fn partitions_are_directional() {
        let chaos = LinkChaos::default();
        chaos.partition(0, 1);
        let fwd = chaos.verdict(0, 1);
        assert!(fwd.partitioned_request && !fwd.partitioned_response);
        // The reverse link sees the same cut as a *response* partition:
        // node 1 can reach node 0, but 0's replies to 1 are silenced.
        let rev = chaos.verdict(1, 0);
        assert!(!rev.partitioned_request && rev.partitioned_response);
        assert!(chaos.is_partitioned(0, 1));
        assert!(!chaos.is_partitioned(1, 0));
        chaos.heal(0, 1);
        assert!(chaos.verdict(0, 1).clean());
        assert!(!chaos.is_partitioned(0, 1));
    }

    #[test]
    fn scripted_events_fire_on_the_send_clock() {
        let plan = LinkFaultPlan::scripted(vec![
            LinkFaultEvent { at_send: 3, kind: LinkFaultKind::Partition { from: 0, to: 1 } },
            LinkFaultEvent { at_send: 6, kind: LinkFaultKind::HealAll },
        ]);
        let chaos = LinkChaos::new(plan);
        assert!(chaos.verdict(0, 1).clean()); // tick 1
        assert!(chaos.verdict(0, 1).clean()); // tick 2
        assert!(chaos.verdict(0, 1).partitioned_request); // tick 3: event fired
        assert!(chaos.verdict(0, 1).partitioned_request); // tick 4
        assert!(chaos.verdict(0, 1).partitioned_request); // tick 5
        assert!(chaos.verdict(0, 1).clean()); // tick 6: healed
        assert_eq!(chaos.counters().partitioned.get(), 3);
    }

    #[test]
    fn install_resets_clock_rng_and_partitions() {
        let chaos = LinkChaos::new(noisy_plan(7));
        chaos.partition(0, 1);
        let first: Vec<LinkVerdict> = (0..50).map(|_| chaos.verdict(2, 3)).collect();
        chaos.install(noisy_plan(7));
        assert_eq!(chaos.ticks(), 0);
        assert!(!chaos.is_partitioned(0, 1));
        let second: Vec<LinkVerdict> = (0..50).map(|_| chaos.verdict(2, 3)).collect();
        assert_eq!(first, second, "reinstalling the same plan must replay the same stream");
    }

    #[test]
    fn probabilistic_knobs_hit_near_their_rates() {
        let chaos =
            LinkChaos::new(LinkFaultPlan { drop_prob: 0.2, seed: 0xD0_11, ..Default::default() });
        let drops = (0..10_000).filter(|_| chaos.verdict(0, 1).drop).count();
        assert!((1_500..2_500).contains(&drops), "drop rate off: {drops}/10000");
        assert_eq!(chaos.counters().drops.get(), drops as u64);
    }
}
