//! Hash partitioning and request routing.
//!
//! Users and items are assigned home nodes by a salted multiplicative hash,
//! so entity id patterns (sequential uids, hot low ids) do not skew
//! placement. The [`RoutingPolicy`] decides which node *serves* a request:
//! `ByUser` is the paper's design (requests routed to the user's home
//! node); `RoundRobin` is the ablation baseline that destroys locality.

/// Identifies a node in the simulated cluster.
pub type NodeId = usize;

/// Salt for the user partitioner. Every backend (simulator, TCP runtime)
/// must hash users identically or routing and replica placement disagree.
pub const USER_SALT: u64 = 0x5EED_0001;

/// Salt for the item partitioner (decorrelated from [`USER_SALT`]).
pub const ITEM_SALT: u64 = 0x5EED_0002;

/// Salted hash partitioner mapping entity ids to nodes.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    n_nodes: usize,
    salt: u64,
}

impl HashPartitioner {
    /// Creates a partitioner over `n_nodes` (must be positive) with a salt
    /// decorrelating it from other partitioners (e.g. users vs. items).
    pub fn new(n_nodes: usize, salt: u64) -> Self {
        assert!(n_nodes > 0, "cluster needs at least one node");
        HashPartitioner { n_nodes, salt }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Home node of an entity.
    #[inline]
    pub fn node_for(&self, id: u64) -> NodeId {
        let mut z = id ^ self.salt;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.n_nodes as u64) as NodeId
    }
}

/// How incoming requests are assigned to serving nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Route each request to the home node of its user — the paper's
    /// intelligent routing: `wᵤ` reads and online updates are always local.
    ByUser,
    /// Spray requests across nodes ignoring data placement — the ablation
    /// baseline (every user-weight read is a potential remote fetch).
    RoundRobin,
}

/// A stateful router applying a [`RoutingPolicy`].
#[derive(Debug)]
pub struct Router {
    policy: RoutingPolicy,
    partitioner: HashPartitioner,
    rr_next: std::sync::atomic::AtomicUsize,
}

impl Router {
    /// Creates a router over the user partitioner.
    pub fn new(policy: RoutingPolicy, partitioner: HashPartitioner) -> Self {
        Router { policy, partitioner, rr_next: std::sync::atomic::AtomicUsize::new(0) }
    }

    /// The active policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Chooses the serving node for a request from `uid`.
    pub fn route(&self, uid: u64) -> NodeId {
        match self.policy {
            RoutingPolicy::ByUser => self.partitioner.node_for(uid),
            RoutingPolicy::RoundRobin => {
                self.rr_next.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    % self.partitioner.n_nodes()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_assignment_is_stable_and_in_range() {
        let p = HashPartitioner::new(8, 0);
        for id in 0..10_000u64 {
            let n = p.node_for(id);
            assert!(n < 8);
            assert_eq!(n, p.node_for(id), "assignment must be deterministic");
        }
    }

    #[test]
    fn assignment_is_balanced() {
        let p = HashPartitioner::new(8, 42);
        let mut counts = [0usize; 8];
        for id in 0..80_000u64 {
            counts[p.node_for(id)] += 1;
        }
        let expected = 10_000.0;
        for (n, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "node {n} holds {c} (>{}% off balance)", 5);
        }
    }

    #[test]
    fn salts_decorrelate() {
        let users = HashPartitioner::new(4, 1);
        let items = HashPartitioner::new(4, 2);
        let same = (0..1000u64).filter(|&id| users.node_for(id) == items.node_for(id)).count();
        // Under independence ~25% collide; assert we're nowhere near 100%.
        assert!(same < 400, "salted partitioners too correlated: {same}/1000");
    }

    #[test]
    fn single_node_cluster() {
        let p = HashPartitioner::new(1, 0);
        assert_eq!(p.node_for(123), 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = HashPartitioner::new(0, 0);
    }

    #[test]
    fn by_user_routing_matches_partitioner() {
        let p = HashPartitioner::new(4, 7);
        let r = Router::new(RoutingPolicy::ByUser, p.clone());
        for uid in 0..100 {
            assert_eq!(r.route(uid), p.node_for(uid));
        }
    }

    #[test]
    fn round_robin_cycles() {
        let r = Router::new(RoutingPolicy::RoundRobin, HashPartitioner::new(3, 0));
        let seq: Vec<NodeId> = (0..6).map(|_| r.route(999)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }
}
