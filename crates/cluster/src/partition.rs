//! Hash partitioning, epoch-stamped partition maps, and request routing.
//!
//! Users and items are assigned home nodes by a salted multiplicative hash,
//! so entity id patterns (sequential uids, hot low ids) do not skew
//! placement. The [`RoutingPolicy`] decides which node *serves* a request:
//! `ByUser` is the paper's design (requests routed to the user's home
//! node); `RoundRobin` is the ablation baseline that destroys locality.
//!
//! Elastic membership is layered on top as a [`PartitionMap`]: user ids
//! hash onto a fixed set of virtual partitions ([`PARTITIONS_PER_NODE`] ×
//! the bootstrap node count), and the map assigns each partition an owner
//! and a replica set. The map is immutable and epoch-stamped — every
//! membership change (join, cutover, fail-over) produces a *new* map with
//! `epoch + 1`, so routers and clients can detect staleness by comparing
//! epochs (`WrongEpoch` rejection + refresh) instead of serving from a map
//! that silently drifted. The bootstrap map reproduces the plain
//! [`HashPartitioner`] placement bit-for-bit (owner of partition `p` is
//! `p % n`, and `(z mod 16n) mod n == z mod n`), so a cluster that never
//! rebalances routes exactly as before.

/// Identifies a node in the simulated cluster.
pub type NodeId = usize;

/// Salt for the user partitioner. Every backend (simulator, TCP runtime)
/// must hash users identically or routing and replica placement disagree.
pub const USER_SALT: u64 = 0x5EED_0001;

/// Salt for the item partitioner (decorrelated from [`USER_SALT`]).
pub const ITEM_SALT: u64 = 0x5EED_0002;

/// Virtual partitions allocated per bootstrap node. A joining node takes
/// over whole virtual partitions, so a finer grain (more partitions per
/// node) moves less data per migration step at the cost of map size.
pub const PARTITIONS_PER_NODE: usize = 16;

/// Typed errors from partitioner and partition-map constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A partitioner or map was requested over zero nodes.
    NoNodes,
    /// A node id is not a member of the map.
    NotAMember(NodeId),
    /// A cutover target is not in the partition's replica set, so it
    /// cannot have the data needed to take ownership.
    NotAReplica {
        /// The partition being cut over.
        partition: u32,
        /// The intended new owner.
        node: NodeId,
    },
    /// Every replica of a partition is gone; ownership cannot move.
    NoSurvivingReplica(u32),
    /// A decoded or assembled map failed structural validation.
    InvalidMap(String),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::NoNodes => write!(f, "cluster needs at least one node"),
            PartitionError::NotAMember(n) => write!(f, "node {n} is not a member"),
            PartitionError::NotAReplica { partition, node } => {
                write!(f, "node {node} is not a replica of partition {partition}")
            }
            PartitionError::NoSurvivingReplica(p) => {
                write!(f, "partition {p} has no surviving replica")
            }
            PartitionError::InvalidMap(why) => write!(f, "invalid partition map: {why}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Typed errors from membership operations (`rebalance_join`,
/// `fail_over_dead`, `migrate_partition`, kill/recover). These are
/// *caller* mistakes or refused preconditions — REST surfaces them as
/// 4xx — as opposed to [`PartitionError`], which covers structurally
/// invalid maps, and I/O errors, which cover the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipError {
    /// The node id is outside the cluster's slot range entirely.
    UnknownNode {
        /// The offending id.
        node: NodeId,
        /// Total slots (valid ids are `0..capacity`).
        capacity: usize,
    },
    /// The node is already a member (join/backfill would be a no-op).
    AlreadyMember(NodeId),
    /// The node is not a member of the current map.
    NotAMember(NodeId),
    /// Fail-over was requested for a node that is still up.
    NotDown(NodeId),
    /// The auto-rebalance kill switch is off (operator disabled it).
    RebalanceDisabled,
    /// Another migration is already in flight (at-most-one policy).
    MigrationInFlight,
    /// A migration aborted and rolled back; the reason names the trigger
    /// (operator cancel, deadline, source/destination death, link fault).
    Aborted(String),
    /// The underlying map transition was structurally invalid.
    Map(PartitionError),
}

impl std::fmt::Display for MembershipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembershipError::UnknownNode { node, capacity } => {
                write!(f, "unknown node {node} (valid slots are 0..{capacity})")
            }
            MembershipError::AlreadyMember(n) => write!(f, "node {n} is already a member"),
            MembershipError::NotAMember(n) => write!(f, "node {n} is not a member"),
            MembershipError::NotDown(n) => {
                write!(f, "node {n} is not down (refusing to fail over a live member)")
            }
            MembershipError::RebalanceDisabled => {
                write!(f, "rebalance is disabled by the kill switch")
            }
            MembershipError::MigrationInFlight => {
                write!(f, "another migration is already in flight")
            }
            MembershipError::Aborted(reason) => {
                write!(f, "migration aborted: {reason}")
            }
            MembershipError::Map(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MembershipError {}

impl From<PartitionError> for MembershipError {
    fn from(e: PartitionError) -> Self {
        match e {
            PartitionError::NotAMember(n) => MembershipError::NotAMember(n),
            other => MembershipError::Map(other),
        }
    }
}

/// Salted hash partitioner mapping entity ids to nodes.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    n_nodes: usize,
    salt: u64,
}

/// The salted splitmix64 finalizer shared by [`HashPartitioner`] and
/// [`PartitionMap`]. Every backend must hash identically or routing and
/// replica placement disagree.
#[inline]
fn mix(id: u64, salt: u64) -> u64 {
    let mut z = id ^ salt;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl HashPartitioner {
    /// Creates a partitioner over `n_nodes` with a salt decorrelating it
    /// from other partitioners (e.g. users vs. items). Returns
    /// [`PartitionError::NoNodes`] for an empty cluster.
    pub fn new(n_nodes: usize, salt: u64) -> Result<Self, PartitionError> {
        if n_nodes == 0 {
            return Err(PartitionError::NoNodes);
        }
        Ok(HashPartitioner { n_nodes, salt })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Home node of an entity.
    #[inline]
    pub fn node_for(&self, id: u64) -> NodeId {
        (mix(id, self.salt) % self.n_nodes as u64) as NodeId
    }
}

/// How incoming requests are assigned to serving nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Route each request to the home node of its user — the paper's
    /// intelligent routing: `wᵤ` reads and online updates are always local.
    ByUser,
    /// Spray requests across nodes ignoring data placement — the ablation
    /// baseline (every user-weight read is a potential remote fetch).
    RoundRobin,
}

/// A stateful router applying a [`RoutingPolicy`].
#[derive(Debug)]
pub struct Router {
    policy: RoutingPolicy,
    partitioner: HashPartitioner,
    rr_next: std::sync::atomic::AtomicUsize,
}

impl Router {
    /// Creates a router over the user partitioner.
    pub fn new(policy: RoutingPolicy, partitioner: HashPartitioner) -> Self {
        Router { policy, partitioner, rr_next: std::sync::atomic::AtomicUsize::new(0) }
    }

    /// The active policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Chooses the serving node for a request from `uid`.
    pub fn route(&self, uid: u64) -> NodeId {
        match self.policy {
            RoutingPolicy::ByUser => self.partitioner.node_for(uid),
            RoutingPolicy::RoundRobin => {
                self.rr_next.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    % self.partitioner.n_nodes()
            }
        }
    }
}

/// An epoch-stamped assignment of virtual partitions to nodes.
///
/// The map is the single source of truth for ownership: the front routes
/// with it, nodes decide `holds_user` / ship targets from it, and every
/// request carries the sender's map epoch so a stale sender is rejected
/// (`WrongEpoch`) instead of silently writing to the wrong owner. Maps
/// are immutable; membership changes go through the `with_*` builders,
/// each of which returns a new map at `epoch + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMap {
    epoch: u64,
    salt: u64,
    replication: usize,
    /// Sorted, deduplicated member node ids.
    members: Vec<NodeId>,
    /// Owner per partition; `owners[p] == replicas[p][0]`.
    owners: Vec<NodeId>,
    /// Full replica set per partition, owner first.
    replicas: Vec<Vec<NodeId>>,
}

impl PartitionMap {
    /// The bootstrap map for `n_nodes` nodes at `replication` copies per
    /// partition. Placement is bit-identical to
    /// [`HashPartitioner::node_for`] over `n_nodes`: there are
    /// [`PARTITIONS_PER_NODE`]` × n_nodes` partitions, partition `p` is
    /// owned by `p % n_nodes`, and replicas are the ring successors.
    pub fn bootstrap(
        n_nodes: usize,
        replication: usize,
        salt: u64,
    ) -> Result<PartitionMap, PartitionError> {
        if n_nodes == 0 {
            return Err(PartitionError::NoNodes);
        }
        let n_partitions = PARTITIONS_PER_NODE * n_nodes;
        let r = replication.clamp(1, n_nodes);
        let owners: Vec<NodeId> = (0..n_partitions).map(|p| p % n_nodes).collect();
        let replicas =
            owners.iter().map(|&o| (0..r).map(|k| (o + k) % n_nodes).collect()).collect();
        Ok(PartitionMap {
            // Epoch 1, not 0: on the wire epoch 0 means "no epoch attached,
            // skip the staleness check", so a real map must never carry it.
            epoch: 1,
            salt,
            replication: r,
            members: (0..n_nodes).collect(),
            owners,
            replicas,
        })
    }

    /// Reassembles a map from its parts (the wire decode path), validating
    /// structure: members sorted/deduped/nonempty, one replica set per
    /// partition with the owner first, and every referenced node a member.
    pub fn from_parts(
        epoch: u64,
        salt: u64,
        replication: usize,
        members: Vec<NodeId>,
        owners: Vec<NodeId>,
        replicas: Vec<Vec<NodeId>>,
    ) -> Result<PartitionMap, PartitionError> {
        if members.is_empty() {
            return Err(PartitionError::NoNodes);
        }
        if members.windows(2).any(|w| w[0] >= w[1]) {
            return Err(PartitionError::InvalidMap("members not sorted/deduped".into()));
        }
        if owners.is_empty() || owners.len() != replicas.len() {
            return Err(PartitionError::InvalidMap("owners/replicas length mismatch".into()));
        }
        if replication == 0 {
            return Err(PartitionError::InvalidMap("zero replication".into()));
        }
        for (p, set) in replicas.iter().enumerate() {
            if set.is_empty() {
                return Err(PartitionError::InvalidMap(format!("partition {p} has no replicas")));
            }
            if set[0] != owners[p] {
                return Err(PartitionError::InvalidMap(format!(
                    "partition {p}: owner {} is not replicas[0]",
                    owners[p]
                )));
            }
            let mut seen = set.clone();
            seen.sort_unstable();
            if seen.windows(2).any(|w| w[0] == w[1]) {
                return Err(PartitionError::InvalidMap(format!(
                    "partition {p}: duplicate replica"
                )));
            }
            for &n in set {
                if members.binary_search(&n).is_err() {
                    return Err(PartitionError::InvalidMap(format!(
                        "partition {p}: replica {n} is not a member"
                    )));
                }
            }
        }
        Ok(PartitionMap { epoch, salt, replication, members, owners, replicas })
    }

    /// Map epoch; bumped by every membership change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Hash salt (shared with the bootstrap [`HashPartitioner`]).
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Target copies per partition.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Number of virtual partitions (fixed for the map's lifetime).
    pub fn n_partitions(&self) -> u32 {
        self.owners.len() as u32
    }

    /// Sorted live member node ids.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Whether `node` is a member.
    pub fn is_member(&self, node: NodeId) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// Virtual partition of an entity id.
    #[inline]
    pub fn partition_of(&self, id: u64) -> u32 {
        (mix(id, self.salt) % self.owners.len() as u64) as u32
    }

    /// Owner of a virtual partition.
    pub fn owner_of_partition(&self, p: u32) -> NodeId {
        self.owners[p as usize]
    }

    /// Replica set of a virtual partition, owner first.
    pub fn replicas_of_partition(&self, p: u32) -> &[NodeId] {
        &self.replicas[p as usize]
    }

    /// Owner node of an entity id.
    #[inline]
    pub fn owner_of(&self, id: u64) -> NodeId {
        self.owners[self.partition_of(id) as usize]
    }

    /// Replica set of an entity id, owner first.
    pub fn replicas_of(&self, id: u64) -> &[NodeId] {
        &self.replicas[self.partition_of(id) as usize]
    }

    /// Whether `node` holds a copy of `id`'s partition.
    pub fn holds(&self, node: NodeId, id: u64) -> bool {
        self.replicas_of(id).contains(&node)
    }

    /// Partitions currently owned by `node`, in ascending order.
    pub fn partitions_owned_by(&self, node: NodeId) -> Vec<u32> {
        (0..self.n_partitions()).filter(|&p| self.owners[p as usize] == node).collect()
    }

    /// A new map at `epoch + 1` with `node` added as a member owning
    /// nothing yet (ownership moves via [`PartitionMap::with_extra_replica`]
    /// and [`PartitionMap::with_owner`] per migrated partition).
    pub fn with_member(&self, node: NodeId) -> Result<PartitionMap, PartitionError> {
        if self.is_member(node) {
            return Err(PartitionError::InvalidMap(format!("node {node} is already a member")));
        }
        let mut next = self.clone();
        next.epoch += 1;
        next.members.push(node);
        next.members.sort_unstable();
        Ok(next)
    }

    /// A new map at `epoch + 1` with `node` appended to partition `p`'s
    /// replica set — the dual-write window of a migration: the owner keeps
    /// serving, but every new observe now also ships to `node`.
    pub fn with_extra_replica(&self, p: u32, node: NodeId) -> Result<PartitionMap, PartitionError> {
        if !self.is_member(node) {
            return Err(PartitionError::NotAMember(node));
        }
        let set = &self.replicas[p as usize];
        if set.contains(&node) {
            return Err(PartitionError::InvalidMap(format!(
                "node {node} is already a replica of partition {p}"
            )));
        }
        let mut next = self.clone();
        next.epoch += 1;
        next.replicas[p as usize].push(node);
        Ok(next)
    }

    /// A new map at `epoch + 1` with partition `p` cut over to `node` as
    /// owner. `node` must already be a replica (it has the data). The old
    /// owner stays in the replica set if the replication target allows,
    /// giving the post-cutover tail replay a live source.
    pub fn with_owner(&self, p: u32, node: NodeId) -> Result<PartitionMap, PartitionError> {
        let set = &self.replicas[p as usize];
        if !set.contains(&node) {
            return Err(PartitionError::NotAReplica { partition: p, node });
        }
        let mut next = self.clone();
        next.epoch += 1;
        let mut order: Vec<NodeId> = vec![node];
        order.extend(set.iter().copied().filter(|&n| n != node));
        order.truncate(self.replication.max(1));
        next.owners[p as usize] = node;
        next.replicas[p as usize] = order;
        Ok(next)
    }

    /// A new map at `epoch + 1` with `dead` removed: its owned partitions
    /// are re-owned by their first surviving replica, and depleted replica
    /// sets are backfilled from the surviving members (ring order after
    /// the new owner). Fails with [`PartitionError::NoSurvivingReplica`]
    /// if any partition loses its last copy.
    pub fn without_member(&self, dead: NodeId) -> Result<PartitionMap, PartitionError> {
        if !self.is_member(dead) {
            return Err(PartitionError::NotAMember(dead));
        }
        if self.members.len() == 1 {
            return Err(PartitionError::NoNodes);
        }
        let mut next = self.clone();
        next.epoch += 1;
        next.members.retain(|&n| n != dead);
        let survivors = next.members.clone();
        for p in 0..next.owners.len() {
            let set = &mut next.replicas[p];
            set.retain(|&n| n != dead);
            if set.is_empty() {
                return Err(PartitionError::NoSurvivingReplica(p as u32));
            }
            let owner = set[0];
            next.owners[p] = owner;
            // Backfill toward the replication target, walking the member
            // ring starting after the owner so load spreads.
            let start = survivors.iter().position(|&n| n == owner).unwrap_or(0);
            let target = self.replication.min(survivors.len());
            let mut i = 1;
            while set.len() < target && i <= survivors.len() {
                let cand = survivors[(start + i) % survivors.len()];
                if !set.contains(&cand) {
                    set.push(cand);
                }
                i += 1;
            }
        }
        Ok(next)
    }

    /// The partitions a freshly joined `node` should take over to level
    /// load: repeatedly takes the lowest-id partition from the most-loaded
    /// owner until `node` would own `n_partitions / members` partitions.
    /// Deterministic, so twin clusters plan identical rebalances.
    pub fn plan_join(&self, node: NodeId) -> Result<Vec<u32>, PartitionError> {
        if !self.is_member(node) {
            return Err(PartitionError::NotAMember(node));
        }
        let target = self.owners.len() / self.members.len();
        let mut owned: Vec<Vec<u32>> =
            self.members.iter().map(|&m| self.partitions_owned_by(m)).collect();
        let me = self.members.iter().position(|&m| m == node).unwrap();
        let mut plan = Vec::new();
        while owned[me].len() + plan.len() < target {
            let donor = (0..self.members.len())
                .filter(|&i| i != me)
                .max_by_key(|&i| (owned[i].len(), std::cmp::Reverse(self.members[i])))
                .ok_or(PartitionError::NoNodes)?;
            if owned[donor].len() <= target {
                break; // nothing left to take without unbalancing the donor
            }
            plan.push(owned[donor].remove(0));
        }
        Ok(plan)
    }
}

/// Terminal (or in-flight) outcome of a migration, recorded in the
/// ledger. An aborted migration rolled back cleanly: the source stayed
/// authoritative and the map epoch did not move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationOutcome {
    /// Still running.
    InFlight,
    /// Cutover completed; the destination owns the partition.
    Committed,
    /// Rolled back before the dual-write install: no epoch bump, source
    /// authoritative, destination scrubbed. The reason is one of
    /// `source death`, `destination death`, `deadline exceeded`,
    /// `operator cancel`, or a transfer-level cause.
    Aborted(String),
    /// Failed past the commit point (after the first map install); the
    /// cluster rolls forward — dual-write replicas keep the data safe —
    /// but the ledger records what broke.
    Failed(String),
}

impl std::fmt::Display for MigrationOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationOutcome::InFlight => write!(f, "in_flight"),
            MigrationOutcome::Committed => write!(f, "committed"),
            MigrationOutcome::Aborted(reason) => write!(f, "aborted: {reason}"),
            MigrationOutcome::Failed(why) => write!(f, "failed: {why}"),
        }
    }
}

/// One in-flight or completed partition migration, as exposed by
/// `/cluster/health` and the `membership()` transport hook.
#[derive(Debug, Clone)]
pub struct MigrationStatus {
    /// The virtual partition being moved.
    pub partition: u32,
    /// Previous owner (migration source).
    pub from: NodeId,
    /// New owner (migration destination).
    pub to: NodeId,
    /// Current phase label (`chunk_stream`, `dual_write`, `checkpoint`,
    /// `catch_up`, `cut_over`, `tail_replay`, `done`, `aborted`,
    /// `failed`).
    pub phase: &'static str,
    /// Map epoch when the migration started.
    pub epoch_start: u64,
    /// Map epoch after cutover (0 while still in flight or aborted).
    pub epoch_end: u64,
    /// Users streamed in the checkpoint phase.
    pub users_streamed: u64,
    /// WAL records replayed in catch-up + tail phases.
    pub records_replayed: u64,
    /// Checkpoint chunks transferred (resumes re-pull the same cursor).
    pub chunks_streamed: u64,
    /// Terminal outcome (`Committed` / `Aborted` / `Failed`).
    pub outcome: MigrationOutcome,
}

/// Membership and migration state for health endpoints, identical in
/// shape across `SimTransport` and the TCP runtime.
#[derive(Debug, Clone)]
pub struct MembershipView {
    /// Current map epoch.
    pub epoch: u64,
    /// Live member node ids.
    pub members: Vec<NodeId>,
    /// Virtual partition count.
    pub n_partitions: u32,
    /// Replication target.
    pub replication: usize,
    /// Recent migrations, oldest first.
    pub migrations: Vec<MigrationStatus>,
    /// Requests rejected for a stale map epoch.
    pub wrong_epoch: u64,
    /// Client-side map refreshes triggered by those rejections.
    pub map_refreshes: u64,
    /// Whether detector-driven auto-rebalance is currently enabled (the
    /// operator kill switch; `false` also when the backend never had it).
    pub auto_rebalance: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_assignment_is_stable_and_in_range() {
        let p = HashPartitioner::new(8, 0).unwrap();
        for id in 0..10_000u64 {
            let n = p.node_for(id);
            assert!(n < 8);
            assert_eq!(n, p.node_for(id), "assignment must be deterministic");
        }
    }

    #[test]
    fn assignment_is_balanced() {
        let p = HashPartitioner::new(8, 42).unwrap();
        let mut counts = [0usize; 8];
        for id in 0..80_000u64 {
            counts[p.node_for(id)] += 1;
        }
        let expected = 10_000.0;
        for (n, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "node {n} holds {c} (>{}% off balance)", 5);
        }
    }

    #[test]
    fn salts_decorrelate() {
        let users = HashPartitioner::new(4, 1).unwrap();
        let items = HashPartitioner::new(4, 2).unwrap();
        let same = (0..1000u64).filter(|&id| users.node_for(id) == items.node_for(id)).count();
        // Under independence ~25% collide; assert we're nowhere near 100%.
        assert!(same < 400, "salted partitioners too correlated: {same}/1000");
    }

    #[test]
    fn single_node_cluster() {
        let p = HashPartitioner::new(1, 0).unwrap();
        assert_eq!(p.node_for(123), 0);
    }

    #[test]
    fn zero_nodes_is_a_typed_error() {
        assert_eq!(HashPartitioner::new(0, 0).unwrap_err(), PartitionError::NoNodes);
        assert_eq!(PartitionMap::bootstrap(0, 1, 0).unwrap_err(), PartitionError::NoNodes);
    }

    #[test]
    fn by_user_routing_matches_partitioner() {
        let p = HashPartitioner::new(4, 7).unwrap();
        let r = Router::new(RoutingPolicy::ByUser, p.clone());
        for uid in 0..100 {
            assert_eq!(r.route(uid), p.node_for(uid));
        }
    }

    #[test]
    fn round_robin_cycles() {
        let r = Router::new(RoutingPolicy::RoundRobin, HashPartitioner::new(3, 0).unwrap());
        let seq: Vec<NodeId> = (0..6).map(|_| r.route(999)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn bootstrap_map_matches_hash_partitioner_bit_for_bit() {
        for n in 1..=6usize {
            let hash = HashPartitioner::new(n, USER_SALT).unwrap();
            let map = PartitionMap::bootstrap(n, 2, USER_SALT).unwrap();
            for uid in 0..5_000u64 {
                assert_eq!(map.owner_of(uid), hash.node_for(uid), "n={n} uid={uid}");
                let expect: Vec<NodeId> =
                    (0..2.min(n)).map(|k| (hash.node_for(uid) + k) % n).collect();
                assert_eq!(map.replicas_of(uid), &expect[..], "n={n} uid={uid}");
            }
        }
    }

    #[test]
    fn builders_bump_epoch_and_preserve_invariants() {
        let map = PartitionMap::bootstrap(3, 2, USER_SALT).unwrap();
        assert_eq!(map.epoch(), 1, "epoch 0 is the wire bypass sentinel");
        let joined = map.with_member(3).unwrap();
        assert_eq!(joined.epoch(), 2);
        assert!(joined.is_member(3));
        assert_eq!(joined.partitions_owned_by(3), Vec::<u32>::new());

        let p = 0u32;
        let dual = joined.with_extra_replica(p, 3).unwrap();
        assert_eq!(dual.epoch(), 3);
        assert!(dual.replicas_of_partition(p).contains(&3));
        assert_eq!(dual.owner_of_partition(p), map.owner_of_partition(p), "owner unchanged");

        let cut = dual.with_owner(p, 3).unwrap();
        assert_eq!(cut.epoch(), 4);
        assert_eq!(cut.owner_of_partition(p), 3);
        assert_eq!(cut.replicas_of_partition(p)[0], 3);
        assert_eq!(cut.replicas_of_partition(p).len(), 2, "trimmed to replication");
        assert!(
            cut.replicas_of_partition(p).contains(&map.owner_of_partition(p)),
            "old owner kept as replica for tail replay"
        );
    }

    #[test]
    fn cutover_to_non_replica_is_rejected() {
        let map = PartitionMap::bootstrap(4, 2, USER_SALT).unwrap();
        // Partition 0 is owned by node 0 with replica 1; node 3 holds nothing.
        assert_eq!(
            map.with_owner(0, 3).unwrap_err(),
            PartitionError::NotAReplica { partition: 0, node: 3 }
        );
    }

    #[test]
    fn member_removal_reowns_and_backfills() {
        let map = PartitionMap::bootstrap(3, 2, USER_SALT).unwrap();
        let next = map.without_member(1).unwrap();
        assert_eq!(next.epoch(), 2);
        assert_eq!(next.members(), &[0, 2]);
        for p in 0..next.n_partitions() {
            let set = next.replicas_of_partition(p);
            assert!(!set.contains(&1), "dead node evicted from partition {p}");
            assert_eq!(set.len(), 2, "replication restored for partition {p}");
            assert_eq!(set[0], next.owner_of_partition(p));
        }
        // Partitions owned by the dead node moved to their surviving replica.
        for p in map.partitions_owned_by(1) {
            assert_ne!(next.owner_of_partition(p), 1);
        }
    }

    #[test]
    fn removing_last_copy_fails_closed() {
        let map = PartitionMap::bootstrap(2, 1, USER_SALT).unwrap();
        // Replication 1: node 0's partitions have no surviving replica.
        assert!(matches!(
            map.without_member(0).unwrap_err(),
            PartitionError::NoSurvivingReplica(_)
        ));
    }

    #[test]
    fn join_plan_levels_load_and_is_deterministic() {
        let map = PartitionMap::bootstrap(3, 2, USER_SALT).unwrap().with_member(3).unwrap();
        let plan = map.plan_join(3).unwrap();
        assert_eq!(plan.len(), map.n_partitions() as usize / 4);
        assert_eq!(plan, map.plan_join(3).unwrap(), "plan must be deterministic");
        let mut sorted = plan.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), plan.len(), "no partition planned twice");
        // Applying the plan levels ownership.
        let mut cur = map.clone();
        for p in &plan {
            cur = cur.with_extra_replica(*p, 3).unwrap().with_owner(*p, 3).unwrap();
        }
        for &m in cur.members() {
            let owned = cur.partitions_owned_by(m).len();
            assert_eq!(owned, 12, "member {m} owns {owned}, want 12");
        }
    }

    #[test]
    fn from_parts_validates_structure() {
        let ok = PartitionMap::bootstrap(2, 2, 7).unwrap();
        let back = PartitionMap::from_parts(
            ok.epoch(),
            ok.salt(),
            ok.replication(),
            ok.members().to_vec(),
            (0..ok.n_partitions()).map(|p| ok.owner_of_partition(p)).collect(),
            (0..ok.n_partitions()).map(|p| ok.replicas_of_partition(p).to_vec()).collect(),
        )
        .unwrap();
        assert_eq!(back, ok);

        assert!(matches!(
            PartitionMap::from_parts(0, 0, 1, vec![], vec![0], vec![vec![0]]),
            Err(PartitionError::NoNodes)
        ));
        assert!(PartitionMap::from_parts(0, 0, 1, vec![0, 0], vec![0], vec![vec![0]]).is_err());
        assert!(
            PartitionMap::from_parts(0, 0, 1, vec![0, 1], vec![1], vec![vec![0]]).is_err(),
            "owner must be replicas[0]"
        );
        assert!(
            PartitionMap::from_parts(0, 0, 1, vec![0], vec![0], vec![vec![0, 5]]).is_err(),
            "replica must be a member"
        );
    }
}
