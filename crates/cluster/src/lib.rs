//! # velox-cluster
//!
//! A deterministic cluster simulator for Velox's distributed serving layer.
//!
//! The paper (§3, §5) deploys the model manager and predictor co-located
//! with each storage worker and relies on three distribution mechanisms:
//!
//! 1. **uid-hash partitioning of the user-weight table `W`** with "a routing
//!    protocol for incoming user requests to ensure that they are served by
//!    the node containing that user's model" — making every `wᵤ` read and
//!    every online update local, and balancing load.
//! 2. **Partitioned item-feature tables** where evaluating `f` "may involve
//!    a data transfer from a remote machine", mitigated by
//! 3. **per-node LRU caches of hot items**, effective because item
//!    popularity is Zipfian.
//!
//! None of this needs real sockets to study: what the experiments measure
//! is *where* data lives and *what a remote read costs*. The simulator
//! models exactly that — N nodes, each owning a shard of `W` and of the
//! item table plus an LRU item cache, with a virtual-time cost model
//! (microseconds per local/remote read) and full access accounting. The
//! ABL-PART and ABL-CACHE experiments, and the serving path of `velox-core`,
//! run on top of this.
//!
//! The [`fault`] module adds the adversary: deterministic node
//! kill/recover schedules, transient read failures, and latency spikes,
//! with replica failover and recovery catch-up in the cluster itself — the
//! substrate for the CHAOS-AVAIL experiment and `velox-core`'s graceful
//! degradation ladder. [`netfault`] extends the adversary to the *links*
//! (seeded drop/delay/duplication/corruption/reset and directional
//! partitions between named peers), [`detector`] turns probe outcomes
//! into suspect/dead liveness verdicts that feed routing, and [`retry`]
//! supplies the budgeted-backoff and observation-dedupe policies both
//! transports share — together the substrate for the CHAOS-NET
//! experiment.

#![warn(missing_docs)]

pub mod cluster;
pub mod detector;
pub mod fault;
pub mod netfault;
pub mod partition;
pub mod retry;
pub mod transport;

pub use cluster::{AccessKind, Cluster, ClusterConfig, ClusterRead, ClusterStats, NodeStats};
pub use detector::{DetectorConfig, FailureDetector, PeerLiveness, PeerState};
pub use fault::{FaultAction, FaultEvent, FaultPlan, HealthTransition, NodeHealth};
pub use netfault::{
    ChaosControl, LinkChaos, LinkFaultEvent, LinkFaultKind, LinkFaultPlan, LinkVerdict, FRONT_PEER,
};
pub use partition::{
    HashPartitioner, MembershipError, MembershipView, MigrationOutcome, MigrationStatus, NodeId,
    PartitionError, PartitionMap, RoutingPolicy, ITEM_SALT, PARTITIONS_PER_NODE, USER_SALT,
};
pub use retry::{obs_id_nonce, ObsDedupe, RetryPolicy};
pub use transport::{
    dot, lms_update, membership_rejection, SimTransport, Transport, TransportError,
    TransportObserve, TransportPredict,
};
