//! Randomized-property tests for the linear-algebra substrate, driven by
//! the in-tree seeded generator (`VeloxRng`) so every case is reproducible
//! from the constants below — no external property-testing framework.
//!
//! These check the algebraic identities the rest of Velox relies on:
//! Cholesky solves actually solve, Sherman–Morrison tracks the naive normal
//! equations, Gram matrices are consistent with explicit products, and the
//! statistics accumulators match closed-form computation.

use velox_data::VeloxRng;
use velox_linalg::ridge::RidgeProblem;
use velox_linalg::stats::RunningStats;
use velox_linalg::{ridge_fit, Cholesky, IncrementalRidge, Matrix, Vector};

const CASES: usize = 128;

fn vec_of(rng: &mut VeloxRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.range(-10.0, 10.0)).collect()
}

/// A random (dimension, design-matrix rows, targets) triple.
fn design(rng: &mut VeloxRng) -> (usize, Vec<Vec<f64>>, Vec<f64>) {
    let d = 2 + rng.below(4) as usize; // 2..6
    let n = 1 + rng.below(11) as usize; // 1..12
    let rows = (0..n).map(|_| vec_of(rng, d)).collect();
    let ys = (0..n).map(|_| rng.range(-5.0, 5.0)).collect();
    (d, rows, ys)
}

/// dot is commutative.
#[test]
fn dot_commutative() {
    let mut rng = VeloxRng::seed_from(0x11_a1);
    for _ in 0..CASES {
        let n = 2 + rng.below(10) as usize;
        let va = Vector::from_vec(vec_of(&mut rng, n));
        let vb = Vector::from_vec(vec_of(&mut rng, n));
        let ab = va.dot(&vb).unwrap();
        let ba = vb.dot(&va).unwrap();
        assert!((ab - ba).abs() <= 1e-9 * (1.0 + ab.abs()));
    }
}

/// ||a+b|| <= ||a|| + ||b|| (triangle inequality).
#[test]
fn triangle_inequality() {
    let mut rng = VeloxRng::seed_from(0x11_a2);
    for _ in 0..CASES {
        let n = 2 + rng.below(10) as usize;
        let va = Vector::from_vec(vec_of(&mut rng, n));
        let vb = Vector::from_vec(vec_of(&mut rng, n));
        let sum = va.add(&vb).unwrap();
        assert!(sum.norm2() <= va.norm2() + vb.norm2() + 1e-9);
    }
}

/// (Aᵀ)ᵀ = A and gram(A) = AᵀA for random matrices.
#[test]
fn transpose_and_gram() {
    let mut rng = VeloxRng::seed_from(0x11_a3);
    for _ in 0..CASES {
        let rows = 1 + rng.below(5) as usize;
        let cols = 1 + rng.below(5) as usize;
        let data = vec_of(&mut rng, rows * cols);
        let a = Matrix::from_row_major(rows, cols, data).unwrap();
        assert_eq!(a.transpose().transpose(), a.clone());
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&explicit).unwrap() < 1e-9);
        assert!(g.is_symmetric(1e-12));
    }
}

/// Cholesky of G + λI solves the system it factored.
#[test]
fn cholesky_solves() {
    let mut rng = VeloxRng::seed_from(0x11_a4);
    for _ in 0..CASES {
        let (d, rows, _ys) = design(&mut rng);
        let lambda = rng.range(0.1, 5.0);
        let vrows: Vec<Vector> = rows.into_iter().map(Vector::from_vec).collect();
        let x = Matrix::from_rows(&vrows).unwrap();
        let mut a = x.gram();
        a.add_scaled_identity(lambda).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let b = Vector::from_vec((0..d).map(|i| (i as f64) - 1.0).collect());
        let sol = ch.solve(&b).unwrap();
        let residual = a.matvec(&sol).unwrap().sub(&b).unwrap().norm2();
        assert!(residual < 1e-6, "residual {residual}");
    }
}

/// The incremental (Sherman–Morrison) solution matches the naive batch
/// normal-equations solution after any observation stream.
#[test]
fn sherman_morrison_matches_batch() {
    let mut rng = VeloxRng::seed_from(0x11_a5);
    for _ in 0..CASES {
        let (d, rows, ys) = design(&mut rng);
        let lambda = rng.range(0.1, 5.0);
        let mut inc = IncrementalRidge::new(d, lambda);
        let mut naive = RidgeProblem::new(d, lambda);
        for (r, &y) in rows.iter().zip(&ys) {
            let x = Vector::from_vec(r.clone());
            inc.observe(&x, y).unwrap();
            naive.observe(&x, y).unwrap();
        }
        let w_batch = naive.solve().unwrap();
        let diff = inc.weights().sub(&w_batch).unwrap().norm2();
        assert!(diff < 1e-6, "diff {diff}");
    }
}

/// ridge_fit residual is optimal: perturbing the solution never reduces
/// the regularized loss.
#[test]
fn ridge_is_a_minimum() {
    let mut rng = VeloxRng::seed_from(0x11_a6);
    for _ in 0..CASES {
        let (d, rows, ys) = design(&mut rng);
        let lambda = rng.range(0.1, 5.0);
        let vrows: Vec<Vector> = rows.into_iter().map(Vector::from_vec).collect();
        let x = Matrix::from_rows(&vrows).unwrap();
        let y = Vector::from_vec(ys);
        let w = ridge_fit(&x, &y, lambda).unwrap();
        let loss = |w: &Vector| -> f64 {
            let r = x.matvec(w).unwrap().sub(&y).unwrap();
            r.norm2_squared() + lambda * w.norm2_squared()
        };
        let base = loss(&w);
        for i in 0..d {
            for delta in [-1e-3, 1e-3] {
                let mut wp = w.clone();
                wp[i] += delta;
                assert!(loss(&wp) >= base - 1e-9);
            }
        }
    }
}

/// Variance of any direction shrinks (weakly) as observations arrive.
#[test]
fn posterior_variance_monotone() {
    let mut rng = VeloxRng::seed_from(0x11_a7);
    for _ in 0..CASES {
        let (d, rows, ys) = design(&mut rng);
        let probe = Vector::from_vec(vec_of(&mut rng, d));
        let mut inc = IncrementalRidge::new(d, 1.0);
        let mut last = inc.variance(&probe).unwrap();
        for (r, &y) in rows.iter().zip(&ys) {
            inc.observe(&Vector::from_vec(r.clone()), y).unwrap();
            let v = inc.variance(&probe).unwrap();
            assert!(v <= last + 1e-9, "variance grew: {last} -> {v}");
            assert!(v >= -1e-12);
            last = v;
        }
    }
}

/// RunningStats merge is order-independent (associativity of merge).
#[test]
fn stats_merge_associative() {
    let mut rng = VeloxRng::seed_from(0x11_a8);
    for _ in 0..CASES {
        let n = 3 + rng.below(37) as usize;
        let data: Vec<f64> = (0..n).map(|_| rng.range(-100.0, 100.0)).collect();
        let split = 1 + rng.below((n - 1) as u64) as usize;
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..split] {
            a.push(x);
        }
        for &x in &data[split..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-7);
    }
}
