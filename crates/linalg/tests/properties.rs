//! Property-based tests for the linear-algebra substrate.
//!
//! These check the algebraic identities the rest of Velox relies on:
//! Cholesky solves actually solve, Sherman–Morrison tracks the naive normal
//! equations, Gram matrices are consistent with explicit products, and the
//! statistics accumulators match closed-form computation.

use proptest::prelude::*;
use velox_linalg::stats::RunningStats;
use velox_linalg::{ridge_fit, Cholesky, IncrementalRidge, Matrix, Vector};
use velox_linalg::ridge::RidgeProblem;

/// Strategy: a small vector of bounded finite floats.
fn vec_of(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, len..=len)
}

/// Strategy: (dimension, rows of a design matrix, targets).
fn design() -> impl Strategy<Value = (usize, Vec<Vec<f64>>, Vec<f64>)> {
    (2usize..6).prop_flat_map(|d| {
        (1usize..12).prop_flat_map(move |n| {
            (
                Just(d),
                prop::collection::vec(vec_of(d), n..=n),
                prop::collection::vec(-5.0f64..5.0, n..=n),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// dot is commutative and bilinear in scaling.
    #[test]
    fn dot_commutative((a, b) in (2usize..12).prop_flat_map(|n| (vec_of(n), vec_of(n)))) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let ab = va.dot(&vb).unwrap();
        let ba = vb.dot(&va).unwrap();
        prop_assert!((ab - ba).abs() <= 1e-9 * (1.0 + ab.abs()));
    }

    /// ||a+b|| <= ||a|| + ||b|| (triangle inequality).
    #[test]
    fn triangle_inequality((a, b) in (2usize..12).prop_flat_map(|n| (vec_of(n), vec_of(n)))) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let sum = va.add(&vb).unwrap();
        prop_assert!(sum.norm2() <= va.norm2() + vb.norm2() + 1e-9);
    }

    /// (Aᵀ)ᵀ = A and gram(A) = AᵀA for random matrices.
    #[test]
    fn transpose_and_gram((rows, cols, data) in (1usize..6, 1usize..6)
        .prop_flat_map(|(r, c)| (Just(r), Just(c), vec_of(r * c)))) {
        let a = Matrix::from_row_major(rows, cols, data).unwrap();
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        prop_assert!(g.max_abs_diff(&explicit).unwrap() < 1e-9);
        prop_assert!(g.is_symmetric(1e-12));
    }

    /// Cholesky of G + λI solves the system it factored.
    #[test]
    fn cholesky_solves((d, rows, _y) in design(), lambda in 0.1f64..5.0) {
        let vrows: Vec<Vector> = rows.into_iter().map(Vector::from_vec).collect();
        let x = Matrix::from_rows(&vrows).unwrap();
        let mut a = x.gram();
        a.add_scaled_identity(lambda).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let b = Vector::from_vec((0..d).map(|i| (i as f64) - 1.0).collect());
        let sol = ch.solve(&b).unwrap();
        let residual = a.matvec(&sol).unwrap().sub(&b).unwrap().norm2();
        prop_assert!(residual < 1e-6, "residual {residual}");
    }

    /// The incremental (Sherman–Morrison) solution matches the naive batch
    /// normal-equations solution after any observation stream.
    #[test]
    fn sherman_morrison_matches_batch((d, rows, ys) in design(), lambda in 0.1f64..5.0) {
        let mut inc = IncrementalRidge::new(d, lambda);
        let mut naive = RidgeProblem::new(d, lambda);
        for (r, &y) in rows.iter().zip(&ys) {
            let x = Vector::from_vec(r.clone());
            inc.observe(&x, y).unwrap();
            naive.observe(&x, y).unwrap();
        }
        let w_batch = naive.solve().unwrap();
        let diff = inc.weights().sub(&w_batch).unwrap().norm2();
        prop_assert!(diff < 1e-6, "diff {diff}");
    }

    /// ridge_fit residual is optimal: perturbing the solution never reduces
    /// the regularized loss.
    #[test]
    fn ridge_is_a_minimum((d, rows, ys) in design(), lambda in 0.1f64..5.0) {
        let vrows: Vec<Vector> = rows.into_iter().map(Vector::from_vec).collect();
        let x = Matrix::from_rows(&vrows).unwrap();
        let y = Vector::from_vec(ys);
        let w = ridge_fit(&x, &y, lambda).unwrap();
        let loss = |w: &Vector| -> f64 {
            let r = x.matvec(w).unwrap().sub(&y).unwrap();
            r.norm2_squared() + lambda * w.norm2_squared()
        };
        let base = loss(&w);
        for i in 0..d {
            for delta in [-1e-3, 1e-3] {
                let mut wp = w.clone();
                wp[i] += delta;
                prop_assert!(loss(&wp) >= base - 1e-9);
            }
        }
    }

    /// Variance of any direction shrinks (weakly) as observations arrive.
    #[test]
    fn posterior_variance_monotone((d, rows, ys) in design(), probe in vec_of(8)) {
        let mut inc = IncrementalRidge::new(d, 1.0);
        let probe = Vector::from_vec(probe[..d].to_vec());
        let mut last = inc.variance(&probe).unwrap();
        for (r, &y) in rows.iter().zip(&ys) {
            inc.observe(&Vector::from_vec(r.clone()), y).unwrap();
            let v = inc.variance(&probe).unwrap();
            prop_assert!(v <= last + 1e-9, "variance grew: {last} -> {v}");
            prop_assert!(v >= -1e-12);
            last = v;
        }
    }

    /// RunningStats merge is order-independent (associativity of merge).
    #[test]
    fn stats_merge_associative(data in prop::collection::vec(-100.0f64..100.0, 3..40),
                               split in 1usize..38) {
        let split = split.min(data.len() - 1);
        let mut all = RunningStats::new();
        for &x in &data { all.push(x); }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..split] { a.push(x); }
        for &x in &data[split..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - all.variance()).abs() < 1e-7);
    }
}
