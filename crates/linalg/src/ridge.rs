//! Batch ridge regression via the normal equations.
//!
//! This module is the literal implementation of the paper's Eq. (2):
//!
//! ```text
//! w_u ← (F(X, θ)ᵀ F(X, θ) + λ I)⁻¹ F(X, θ)ᵀ y
//! ```
//!
//! [`ridge_fit`] is the "naive implementation" whose latency the paper plots
//! in Figure 3: stack the user's observed feature vectors, form the Gram
//! matrix, Cholesky-factorize, solve. [`RidgeProblem`] keeps the running
//! sufficient statistics `(FᵀF, Fᵀy)` so the Gram matrix itself doesn't have
//! to be recomputed from scratch, which is the stepping stone to the full
//! Sherman–Morrison path in [`crate::sherman_morrison`].

use crate::cholesky::Cholesky;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::{LinalgError, Result};

/// Solves `(XᵀX + λI) w = Xᵀ y` by forming the normal equations from the raw
/// design matrix `x` (one observation per row) and targets `y`.
///
/// Errors if `y.len() != x.rows()`, if `x` is empty, or if `lambda <= 0`
/// left the system singular.
pub fn ridge_fit(x: &Matrix, y: &Vector, lambda: f64) -> Result<Vector> {
    if x.rows() == 0 {
        return Err(LinalgError::Empty { op: "ridge_fit" });
    }
    if y.len() != x.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "ridge_fit",
            expected: x.rows(),
            actual: y.len(),
        });
    }
    let mut gram = x.gram();
    gram.add_scaled_identity(lambda)?;
    let xty = x.matvec_transpose(y)?;
    let ch = Cholesky::factor(&gram)?;
    ch.solve(&xty)
}

/// Solves the ridge system given precomputed sufficient statistics: the Gram
/// matrix `XᵀX` (without the ridge shift) and the moment vector `Xᵀy`.
pub fn ridge_fit_gram(gram: &Matrix, xty: &Vector, lambda: f64) -> Result<Vector> {
    let mut a = gram.clone();
    a.add_scaled_identity(lambda)?;
    let ch = Cholesky::factor(&a)?;
    ch.solve(xty)
}

/// A ridge-regression problem accumulated one observation at a time.
///
/// Maintains the sufficient statistics `G = Σ xᵢxᵢᵀ` and `b = Σ yᵢxᵢ`; each
/// [`solve`](RidgeProblem::solve) call factorizes `G + λI` from scratch
/// (O(d³)). This is exactly the cost profile of the paper's prototype: cheap
/// O(d²) accumulation per observation, cubic solve per update.
#[derive(Debug, Clone)]
pub struct RidgeProblem {
    gram: Matrix,
    xty: Vector,
    lambda: f64,
    n_obs: usize,
}

impl RidgeProblem {
    /// Creates an empty problem of dimension `d` with regularization
    /// `lambda` (must be positive so the system is always solvable).
    pub fn new(d: usize, lambda: f64) -> Self {
        assert!(lambda > 0.0, "ridge lambda must be positive");
        RidgeProblem { gram: Matrix::zeros(d, d), xty: Vector::zeros(d), lambda, n_obs: 0 }
    }

    /// Creates a problem whose empty-data solution equals a prior weight
    /// vector: with zero Gram matrix and moment vector `b`, solving
    /// `(0 + λI) w = b` yields `w = b/λ`. Callers pass `b = λ·w₀` to make
    /// the prior mean exactly `w₀` — the warm-start encoding used when a
    /// user's weights return from offline training without their raw
    /// history.
    ///
    /// # Panics
    /// Panics if `lambda <= 0`.
    pub fn with_prior_moments(d: usize, lambda: f64, b: Vector) -> Self {
        assert!(lambda > 0.0, "ridge lambda must be positive");
        assert_eq!(b.len(), d, "prior moment vector must have dimension d");
        RidgeProblem { gram: Matrix::zeros(d, d), xty: b, lambda, n_obs: 0 }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.xty.len()
    }

    /// Number of observations folded in so far.
    pub fn n_obs(&self) -> usize {
        self.n_obs
    }

    /// Regularization constant.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Folds one observation `(x, y)` into the sufficient statistics.
    pub fn observe(&mut self, x: &Vector, y: f64) -> Result<()> {
        if x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                op: "RidgeProblem::observe",
                expected: self.dim(),
                actual: x.len(),
            });
        }
        self.gram.add_outer(1.0, x)?;
        self.xty.axpy(y, x)?;
        self.n_obs += 1;
        Ok(())
    }

    /// Solves for the current weight vector — a fresh O(d³) factorization
    /// every call (the naive Figure-3 path).
    pub fn solve(&self) -> Result<Vector> {
        ridge_fit_gram(&self.gram, &self.xty, self.lambda)
    }

    /// Borrow the accumulated (unshifted) Gram matrix.
    pub fn gram(&self) -> &Matrix {
        &self.gram
    }

    /// Borrow the accumulated moment vector `Xᵀy`.
    pub fn xty(&self) -> &Vector {
        &self.xty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noiseless data generated from known weights must be recovered up to
    /// the (small) ridge bias.
    #[test]
    fn recovers_planted_weights() {
        let w_true = Vector::from_vec(vec![2.0, -1.0, 0.5]);
        let rows: Vec<Vector> = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![2.0, -1.0, 0.5],
            vec![0.3, 0.7, -0.2],
        ]
        .into_iter()
        .map(Vector::from_vec)
        .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y = x.matvec(&w_true).unwrap();
        let w = ridge_fit(&x, &y, 1e-9).unwrap();
        assert!(w.sub(&w_true).unwrap().norm2() < 1e-6);
    }

    #[test]
    fn larger_lambda_shrinks_weights() {
        let rows: Vec<Vector> = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![1.0, -1.0]]
            .into_iter()
            .map(Vector::from_vec)
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y = Vector::from_vec(vec![3.0, 3.0, 0.0]);
        let w_small = ridge_fit(&x, &y, 1e-6).unwrap();
        let w_big = ridge_fit(&x, &y, 100.0).unwrap();
        assert!(w_big.norm2() < w_small.norm2());
    }

    #[test]
    fn underdetermined_is_still_solvable_with_ridge() {
        // One observation, three dimensions: XᵀX is rank-1 but λI fixes it.
        let x = Matrix::from_rows(&[Vector::from_vec(vec![1.0, 2.0, 3.0])]).unwrap();
        let y = Vector::from_vec(vec![1.0]);
        let w = ridge_fit(&x, &y, 0.1).unwrap();
        assert!(w.is_finite());
    }

    #[test]
    fn rejects_bad_shapes() {
        let x = Matrix::zeros(3, 2);
        let y = Vector::zeros(2);
        assert!(ridge_fit(&x, &y, 1.0).is_err());
        let empty = Matrix::zeros(0, 2);
        assert!(ridge_fit(&empty, &Vector::zeros(0), 1.0).is_err());
    }

    #[test]
    fn problem_accumulation_matches_batch_fit() {
        let rows: Vec<Vector> = vec![
            vec![1.0, 0.5, -0.5],
            vec![0.2, 1.0, 0.8],
            vec![-1.0, 0.3, 0.1],
            vec![0.6, -0.6, 1.0],
        ]
        .into_iter()
        .map(Vector::from_vec)
        .collect();
        let ys = [1.0, -0.5, 0.25, 2.0];
        let lambda = 0.3;

        let mut prob = RidgeProblem::new(3, lambda);
        for (x, &y) in rows.iter().zip(&ys) {
            prob.observe(x, y).unwrap();
        }
        let w_inc = prob.solve().unwrap();

        let x = Matrix::from_rows(&rows).unwrap();
        let y = Vector::from_vec(ys.to_vec());
        let w_batch = ridge_fit(&x, &y, lambda).unwrap();
        assert!(w_inc.sub(&w_batch).unwrap().norm2() < 1e-10);
        assert_eq!(prob.n_obs(), 4);
    }

    #[test]
    fn empty_problem_solves_to_zero() {
        let prob = RidgeProblem::new(4, 0.5);
        let w = prob.solve().unwrap();
        assert!(w.norm2() < 1e-15);
    }

    #[test]
    fn observe_rejects_wrong_dimension() {
        let mut prob = RidgeProblem::new(3, 1.0);
        assert!(prob.observe(&Vector::zeros(2), 1.0).is_err());
        assert_eq!(prob.n_obs(), 0);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_panics() {
        let _ = RidgeProblem::new(3, 0.0);
    }
}
