//! Dense `f64` vectors and BLAS-1 style kernels.
//!
//! [`Vector`] is a thin, transparent wrapper over `Vec<f64>`; it exists so
//! that linear-algebra intent is visible in signatures across the workspace
//! (user weights, feature vectors, latent factors are all `Vector`s) and so
//! the hot kernels (`dot`, `axpy`) live in one place for optimization.

use crate::{LinalgError, Result};

/// A dense, heap-allocated `f64` vector.
///
/// Cloning is O(n); the serving path avoids clones by borrowing. All
/// arithmetic helpers check dimensions and return [`LinalgError`] rather
/// than panicking, because in Velox these vectors are driven by external
/// request data.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector from raw data.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Vector { data }
    }

    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector of length `n` with every element set to `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector { data: vec![value; n] }
    }

    /// Creates a standard-basis vector `e_i` of length `n`.
    ///
    /// Returns an error if `i >= n`.
    pub fn basis(n: usize, i: usize) -> Result<Self> {
        if i >= n {
            return Err(LinalgError::DimensionMismatch { op: "basis", expected: n, actual: i });
        }
        let mut v = Self::zeros(n);
        v.data[i] = 1.0;
        Ok(v)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element access (panics on out-of-bounds, like slice indexing).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.data[i]
    }

    /// Element assignment (panics on out-of-bounds).
    #[inline]
    pub fn set(&mut self, i: usize, v: f64) {
        self.data[i] = v;
    }

    /// Dot product `self · other`.
    #[inline]
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "dot",
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(dot_slices(&self.data, &other.data))
    }

    /// `self += alpha * x` (the BLAS `axpy` kernel).
    pub fn axpy(&mut self, alpha: f64, x: &Vector) -> Result<()> {
        if self.len() != x.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "axpy",
                expected: self.len(),
                actual: x.len(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(x.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scales every element in place.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns `self + other` as a new vector.
    pub fn add(&self, other: &Vector) -> Result<Vector> {
        let mut out = self.clone();
        out.axpy(1.0, other)?;
        Ok(out)
    }

    /// Returns `self - other` as a new vector.
    pub fn sub(&self, other: &Vector) -> Result<Vector> {
        let mut out = self.clone();
        out.axpy(-1.0, other)?;
        Ok(out)
    }

    /// Euclidean (L2) norm.
    pub fn norm2(&self) -> f64 {
        dot_slices(&self.data, &self.data).sqrt()
    }

    /// Squared Euclidean norm — cheaper than `norm2` when the root is not
    /// needed (e.g. regularization terms `||w||²`).
    pub fn norm2_squared(&self) -> f64 {
        dot_slices(&self.data, &self.data)
    }

    /// L1 norm (sum of absolute values).
    pub fn norm1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Arithmetic mean of the elements. Errors on an empty vector.
    pub fn mean(&self) -> Result<f64> {
        if self.is_empty() {
            return Err(LinalgError::Empty { op: "mean" });
        }
        Ok(self.data.iter().sum::<f64>() / self.data.len() as f64)
    }

    /// True when all elements are finite (no NaN / ±inf).
    ///
    /// Online updates divide by data-dependent quantities; the model manager
    /// uses this as a guard before publishing an updated user weight vector.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Index and value of the maximum element. Errors on an empty vector.
    pub fn argmax(&self) -> Result<(usize, f64)> {
        if self.is_empty() {
            return Err(LinalgError::Empty { op: "argmax" });
        }
        let mut best = (0usize, self.data[0]);
        for (i, &v) in self.data.iter().enumerate().skip(1) {
            if v > best.1 {
                best = (i, v);
            }
        }
        Ok(best)
    }

    /// Iterator over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector::from_vec(v)
    }
}

impl From<&[f64]> for Vector {
    fn from(v: &[f64]) -> Self {
        Vector::from_vec(v.to_vec())
    }
}

impl std::ops::Index<usize> for Vector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

/// Unchecked slice dot product — the hot kernel behind both `Vector::dot`
/// and all matrix products. Manually unrolled four-wide: with `f64` adds
/// being non-associative the compiler will not vectorize a naive reduction
/// loop on its own, and this kernel dominates serving latency (every
/// prediction in Velox is at least one `d`-dimensional dot product).
#[inline]
pub fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for i in 0..chunks {
        let k = i * 4;
        s0 += a[k] * b[k];
        s1 += a[k + 1] * b[k + 1];
        s2 += a[k + 2] * b[k + 2];
        s3 += a[k + 3] * b[k + 3];
    }
    let mut tail = 0.0;
    for k in (chunks * 4)..n {
        tail += a[k] * b[k];
    }
    (s0 + s1) + (s2 + s3) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let v = Vector::zeros(5);
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|&x| x == 0.0));
        assert!(!v.is_empty());
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn basis_vector() {
        let e2 = Vector::basis(4, 2).unwrap();
        assert_eq!(e2.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
        assert!(Vector::basis(4, 4).is_err());
    }

    #[test]
    fn dot_product_matches_manual() {
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = Vector::from_vec(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn dot_dimension_mismatch() {
        let a = Vector::zeros(3);
        let b = Vector::zeros(4);
        assert!(matches!(a.dot(&b), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn dot_unrolled_matches_naive_on_odd_lengths() {
        for n in 0..13 {
            let a: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 1.0).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot_slices(&a, &b) - naive).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Vector::from_vec(vec![1.0, 1.0]);
        let x = Vector::from_vec(vec![2.0, 3.0]);
        a.axpy(0.5, &x).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Vector::from_vec(vec![1.0, -2.0, 3.0]);
        let b = Vector::from_vec(vec![0.5, 0.5, 0.5]);
        let sum = a.add(&b).unwrap();
        let back = sum.sub(&b).unwrap();
        for i in 0..3 {
            assert!((back[i] - a[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn norms() {
        let v = Vector::from_vec(vec![3.0, 4.0]);
        assert_eq!(v.norm2(), 5.0);
        assert_eq!(v.norm2_squared(), 25.0);
        assert_eq!(v.norm1(), 7.0);
    }

    #[test]
    fn mean_and_empty() {
        let v = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(v.mean().unwrap(), 2.0);
        assert!(Vector::zeros(0).mean().is_err());
    }

    #[test]
    fn argmax_finds_peak() {
        let v = Vector::from_vec(vec![1.0, 9.0, 3.0, 9.0]);
        // First maximal element wins.
        assert_eq!(v.argmax().unwrap(), (1, 9.0));
        assert!(Vector::zeros(0).argmax().is_err());
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Vector::from_vec(vec![1.0, 2.0]).is_finite());
        assert!(!Vector::from_vec(vec![1.0, f64::NAN]).is_finite());
        assert!(!Vector::from_vec(vec![f64::INFINITY]).is_finite());
    }

    #[test]
    fn scale_in_place() {
        let mut v = Vector::from_vec(vec![1.0, -2.0]);
        v.scale(-3.0);
        assert_eq!(v.as_slice(), &[-3.0, 6.0]);
    }

    #[test]
    fn indexing() {
        let mut v = Vector::zeros(3);
        v[1] = 7.0;
        assert_eq!(v[1], 7.0);
        v.set(2, 8.0);
        assert_eq!(v.get(2), 8.0);
    }
}
