//! Incremental ridge maintenance via Sherman–Morrison rank-one updates.
//!
//! The paper (§4.2) observes that while the naive normal-equations solve is
//! cubic in the feature dimension `d`, the updated weights "can be maintained
//! in time quadratic in d using the Sherman–Morrison formula for rank-one
//! updates". This module implements exactly that: maintain
//!
//! ```text
//! A⁻¹ where A = λI + Σᵢ xᵢ xᵢᵀ,    b = Σᵢ yᵢ xᵢ
//! ```
//!
//! and on each new observation `(x, y)` apply
//!
//! ```text
//! A⁻¹ ← A⁻¹ − (A⁻¹ x)(xᵀ A⁻¹) / (1 + xᵀ A⁻¹ x)
//! b   ← b + y·x
//! w   = A⁻¹ b
//! ```
//!
//! Each update is O(d²) time and the state is O(d²) memory per user. The
//! same `A⁻¹` doubles as the covariance proxy the contextual-bandit layer
//! (`velox-bandit`) needs for confidence bounds, so this struct is shared by
//! both the online learner and LinUCB.

use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::{LinalgError, Result};

/// An incrementally-maintained ridge regression.
///
/// Equivalent (up to floating-point error) to re-solving
/// `(XᵀX + λI) w = Xᵀy` after every observation, but each observation costs
/// O(d²) instead of O(d³).
#[derive(Debug, Clone)]
pub struct IncrementalRidge {
    /// `(λI + XᵀX)⁻¹`, maintained directly.
    a_inv: Matrix,
    /// `Xᵀ y`.
    b: Vector,
    /// Current solution `A⁻¹ b`, refreshed on each update.
    w: Vector,
    lambda: f64,
    n_obs: usize,
}

impl IncrementalRidge {
    /// Creates an empty model of dimension `d` with ridge constant
    /// `lambda > 0`. Initially `A = λI`, so `A⁻¹ = I/λ` and `w = 0`.
    ///
    /// # Panics
    /// Panics if `lambda <= 0` (the inverse would not exist).
    pub fn new(d: usize, lambda: f64) -> Self {
        assert!(lambda > 0.0, "ridge lambda must be positive");
        let mut a_inv = Matrix::identity(d);
        a_inv.scale(1.0 / lambda);
        IncrementalRidge { a_inv, b: Vector::zeros(d), w: Vector::zeros(d), lambda, n_obs: 0 }
    }

    /// Reconstructs an incremental model from batch sufficient statistics
    /// (`gram = XᵀX`, `xty = Xᵀy`). O(d³) — done once when a user's model is
    /// loaded from storage or after an offline retrain, after which all
    /// updates are O(d²).
    pub fn from_sufficient_stats(
        gram: &Matrix,
        xty: &Vector,
        lambda: f64,
        n_obs: usize,
    ) -> Result<Self> {
        if lambda <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: 0 });
        }
        let mut a = gram.clone();
        a.add_scaled_identity(lambda)?;
        let ch = crate::cholesky::Cholesky::factor(&a)?;
        let a_inv = ch.inverse()?;
        let w = a_inv.matvec(xty)?;
        Ok(IncrementalRidge { a_inv, b: xty.clone(), w, lambda, n_obs })
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.b.len()
    }

    /// Number of observations folded in.
    pub fn n_obs(&self) -> usize {
        self.n_obs
    }

    /// Ridge constant.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Current weight vector `w = A⁻¹ b`.
    pub fn weights(&self) -> &Vector {
        &self.w
    }

    /// Borrow the maintained inverse `A⁻¹` (the bandit layer's covariance
    /// proxy).
    pub fn a_inv(&self) -> &Matrix {
        &self.a_inv
    }

    /// Predicted value `wᵀx` for a feature vector.
    pub fn predict(&self, x: &Vector) -> Result<f64> {
        self.w.dot(x)
    }

    /// The quadratic form `xᵀ A⁻¹ x` — the variance proxy used by LinUCB
    /// confidence bounds (larger = the model knows less about direction `x`).
    pub fn variance(&self, x: &Vector) -> Result<f64> {
        let ax = self.a_inv.matvec(x)?;
        x.dot(&ax)
    }

    /// Folds in one observation `(x, y)` with a Sherman–Morrison rank-one
    /// update. O(d²).
    pub fn observe(&mut self, x: &Vector, y: f64) -> Result<()> {
        let d = self.dim();
        if x.len() != d {
            return Err(LinalgError::DimensionMismatch {
                op: "IncrementalRidge::observe",
                expected: d,
                actual: x.len(),
            });
        }
        // u = A⁻¹ x   (A⁻¹ is symmetric, so xᵀA⁻¹ = uᵀ)
        let u = self.a_inv.matvec(x)?;
        let denom = 1.0 + x.dot(&u)?;
        // denom = 1 + xᵀA⁻¹x > 0 always holds for SPD A, but guard against
        // accumulated round-off driving it non-positive.
        if denom <= 0.0 || !denom.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: 0 });
        }
        // A⁻¹ ← A⁻¹ − u uᵀ / denom
        self.a_inv.add_outer(-1.0 / denom, &u)?;
        // b ← b + y x ; w = A⁻¹ b
        self.b.axpy(y, x)?;
        self.w = self.a_inv.matvec(&self.b)?;
        self.n_obs += 1;
        Ok(())
    }

    /// Recomputes `w` from the maintained state. Normally unnecessary
    /// (`observe` already refreshes it); exposed for tests and for recovery
    /// after deserialization.
    pub fn refresh_weights(&mut self) -> Result<()> {
        self.w = self.a_inv.matvec(&self.b)?;
        Ok(())
    }

    /// Replaces the moment vector `b` (used when an offline retrain rewrites
    /// a user's history in a new feature basis of the same dimension) and
    /// refreshes `w`.
    pub fn reset_moments(&mut self, b: Vector) -> Result<()> {
        if b.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                op: "reset_moments",
                expected: self.dim(),
                actual: b.len(),
            });
        }
        self.b = b;
        self.refresh_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ridge::RidgeProblem;

    fn obs() -> (Vec<Vector>, Vec<f64>) {
        let xs: Vec<Vector> = vec![
            vec![1.0, 0.2, -0.3],
            vec![0.4, 1.0, 0.5],
            vec![-0.7, 0.1, 1.0],
            vec![0.2, -0.4, 0.6],
            vec![1.5, 0.9, -1.1],
        ]
        .into_iter()
        .map(Vector::from_vec)
        .collect();
        let ys = vec![1.0, 0.5, -0.25, 0.75, 2.0];
        (xs, ys)
    }

    /// The incremental path must track the naive normal-equations solution
    /// observation-for-observation.
    #[test]
    fn tracks_naive_solution_exactly() {
        let (xs, ys) = obs();
        let lambda = 0.5;
        let mut inc = IncrementalRidge::new(3, lambda);
        let mut naive = RidgeProblem::new(3, lambda);
        for (x, &y) in xs.iter().zip(&ys) {
            inc.observe(x, y).unwrap();
            naive.observe(x, y).unwrap();
            let w_naive = naive.solve().unwrap();
            assert!(
                inc.weights().sub(&w_naive).unwrap().norm2() < 1e-9,
                "diverged after {} obs",
                naive.n_obs()
            );
        }
        assert_eq!(inc.n_obs(), 5);
    }

    #[test]
    fn a_inv_stays_close_to_true_inverse() {
        let (xs, ys) = obs();
        let lambda = 1.0;
        let mut inc = IncrementalRidge::new(3, lambda);
        let mut gram = Matrix::zeros(3, 3);
        for (x, &y) in xs.iter().zip(&ys) {
            inc.observe(x, y).unwrap();
            gram.add_outer(1.0, x).unwrap();
        }
        let mut a = gram.clone();
        a.add_scaled_identity(lambda).unwrap();
        let true_inv = crate::cholesky::Cholesky::factor(&a).unwrap().inverse().unwrap();
        assert!(inc.a_inv().max_abs_diff(&true_inv).unwrap() < 1e-9);
    }

    #[test]
    fn from_sufficient_stats_matches_replay() {
        let (xs, ys) = obs();
        let lambda = 0.7;
        let mut replayed = IncrementalRidge::new(3, lambda);
        let mut gram = Matrix::zeros(3, 3);
        let mut xty = Vector::zeros(3);
        for (x, &y) in xs.iter().zip(&ys) {
            replayed.observe(x, y).unwrap();
            gram.add_outer(1.0, x).unwrap();
            xty.axpy(y, x).unwrap();
        }
        let loaded =
            IncrementalRidge::from_sufficient_stats(&gram, &xty, lambda, xs.len()).unwrap();
        assert!(loaded.weights().sub(replayed.weights()).unwrap().norm2() < 1e-9);
        assert_eq!(loaded.n_obs(), 5);
    }

    #[test]
    fn variance_shrinks_with_observations() {
        let mut inc = IncrementalRidge::new(2, 1.0);
        let x = Vector::from_vec(vec![1.0, 0.0]);
        let v0 = inc.variance(&x).unwrap();
        inc.observe(&x, 1.0).unwrap();
        let v1 = inc.variance(&x).unwrap();
        inc.observe(&x, 1.0).unwrap();
        let v2 = inc.variance(&x).unwrap();
        assert!(v0 > v1 && v1 > v2, "variance must shrink: {v0} {v1} {v2}");
        // Orthogonal direction untouched by these observations keeps its
        // prior variance 1/λ.
        let y_dir = Vector::from_vec(vec![0.0, 1.0]);
        assert!((inc.variance(&y_dir).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predict_is_dot_with_weights() {
        let mut inc = IncrementalRidge::new(2, 0.1);
        inc.observe(&Vector::from_vec(vec![1.0, 0.0]), 2.0).unwrap();
        inc.observe(&Vector::from_vec(vec![0.0, 1.0]), -1.0).unwrap();
        let x = Vector::from_vec(vec![1.0, 1.0]);
        let p = inc.predict(&x).unwrap();
        assert!((p - inc.weights().dot(&x).unwrap()).abs() < 1e-15);
    }

    #[test]
    fn dimension_checks() {
        let mut inc = IncrementalRidge::new(3, 1.0);
        assert!(inc.observe(&Vector::zeros(2), 1.0).is_err());
        assert!(inc.predict(&Vector::zeros(4)).is_err());
        assert!(inc.variance(&Vector::zeros(1)).is_err());
        assert!(inc.reset_moments(Vector::zeros(2)).is_err());
    }

    #[test]
    fn reset_moments_rewrites_solution() {
        let mut inc = IncrementalRidge::new(2, 1.0);
        inc.observe(&Vector::from_vec(vec![1.0, 0.0]), 1.0).unwrap();
        inc.reset_moments(Vector::zeros(2)).unwrap();
        assert!(inc.weights().norm2() < 1e-15);
    }

    #[test]
    fn long_stream_stays_numerically_sane() {
        // 500 pseudo-random observations in d=8; weights must stay finite
        // and match a final batch solve.
        let d = 8;
        let lambda = 0.5;
        let mut inc = IncrementalRidge::new(d, lambda);
        let mut naive = RidgeProblem::new(d, lambda);
        let mut state = 0x12345678u64;
        let mut next = || {
            // xorshift
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for _ in 0..500 {
            let x = Vector::from_vec((0..d).map(|_| next()).collect());
            let y = next();
            inc.observe(&x, y).unwrap();
            naive.observe(&x, y).unwrap();
        }
        assert!(inc.weights().is_finite());
        let w_batch = naive.solve().unwrap();
        assert!(inc.weights().sub(&w_batch).unwrap().norm2() < 1e-6);
    }
}
