//! Scalar statistics shared by model evaluation and the bench harnesses.
//!
//! The paper reports averages with 95% confidence intervals (Figure 3) and
//! measures model quality as prediction error on held-out ratings (§4.2).
//! This module provides those primitives: running mean/variance (Welford),
//! confidence intervals, RMSE/MAE, and simple percentile summaries for
//! latency distributions.

/// A running mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; used for per-user error aggregates
/// in the model manager and for latency series in the bench harness.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Folds in one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (NaN-free streams only); +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen; -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the 95% confidence interval for the mean, using the
    /// normal approximation (`1.96 · s/√n`). This matches how the paper's
    /// Figure 3 error bars are described (95% CIs over 5000 updates).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.std_dev() / (self.n as f64).sqrt()
    }

    /// Merges another accumulator into this one (parallel reduction), using
    /// Chan's pairwise-merge formulas.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Root-mean-square error between predictions and targets.
///
/// Returns `None` when the slices are empty or of different lengths.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> Option<f64> {
    if predictions.is_empty() || predictions.len() != targets.len() {
        return None;
    }
    let sse: f64 = predictions.iter().zip(targets).map(|(p, t)| (p - t) * (p - t)).sum();
    Some((sse / predictions.len() as f64).sqrt())
}

/// Mean absolute error between predictions and targets.
///
/// Returns `None` when the slices are empty or of different lengths.
pub fn mae(predictions: &[f64], targets: &[f64]) -> Option<f64> {
    if predictions.is_empty() || predictions.len() != targets.len() {
        return None;
    }
    let sae: f64 = predictions.iter().zip(targets).map(|(p, t)| (p - t).abs()).sum();
    Some(sae / predictions.len() as f64)
}

/// The `q`-th percentile (0.0–1.0) of a sample, by linear interpolation on
/// the sorted data. Returns `None` on an empty slice or out-of-range `q`.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// A latency summary (mean, CI, p50/p99, min/max) for one bench
/// configuration, pre-formatted the way the harness binaries print rows.
#[derive(Debug, Clone)]
pub struct LatencySummary {
    /// Mean in the caller's unit (the harnesses use microseconds).
    pub mean: f64,
    /// 95% CI half-width around the mean.
    pub ci95: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

impl LatencySummary {
    /// Summarizes a sample set. Returns `None` when empty.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut rs = RunningStats::new();
        for &s in samples {
            rs.push(s);
        }
        Some(LatencySummary {
            mean: rs.mean(),
            ci95: rs.ci95_half_width(),
            p50: percentile(samples, 0.5)?,
            p99: percentile(samples, 0.99)?,
            min: rs.min(),
            max: rs.max(),
            n: samples.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut rs = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        // Known population: sample variance = 32/7.
        assert!((rs.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(rs.min(), 2.0);
        assert_eq!(rs.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let rs = RunningStats::new();
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.variance(), 0.0);
        assert_eq!(rs.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_sqrt_n() {
        let mut small = RunningStats::new();
        let mut big = RunningStats::new();
        // Same alternating data, 4x the samples → CI halves.
        for i in 0..100 {
            small.push((i % 2) as f64);
        }
        for i in 0..400 {
            big.push((i % 2) as f64);
        }
        let ratio = small.ci95_half_width() / big.ci95_half_width();
        assert!((ratio - 2.0).abs() < 0.01, "ratio={ratio}");
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..57).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let (left, right) = data.split_at(20);
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in left {
            a.push(x);
        }
        for &x in right {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        // Merging an empty accumulator is a no-op.
        let before = a.mean();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before);
    }

    #[test]
    fn rmse_and_mae() {
        let p = [1.0, 2.0, 3.0];
        let t = [1.0, 2.0, 5.0];
        assert!((rmse(&p, &t).unwrap() - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&p, &t).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!(rmse(&p, &t[..2]).is_none());
        assert!(rmse(&[], &[]).is_none());
        // Perfect prediction.
        assert_eq!(rmse(&p, &p).unwrap(), 0.0);
    }

    #[test]
    fn percentiles() {
        let data = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&data, 0.5).unwrap(), 3.0);
        assert_eq!(percentile(&data, 1.0).unwrap(), 5.0);
        // Interpolation: 25th percentile of 1..5 = 2.0
        assert_eq!(percentile(&data, 0.25).unwrap(), 2.0);
        assert!(percentile(&[], 0.5).is_none());
        assert!(percentile(&data, 1.5).is_none());
    }

    #[test]
    fn latency_summary() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_samples(&samples).unwrap();
        assert_eq!(s.n, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!(s.p99 > 98.0);
        assert!(LatencySummary::from_samples(&[]).is_none());
    }
}
