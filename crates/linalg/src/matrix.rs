//! Dense, row-major `f64` matrices and the BLAS-2/3 kernels Velox needs.
//!
//! The matrices that actually occur in Velox are small-to-medium dense
//! blocks: per-user Gram matrices `FᵀF + λI` (d×d, d up to a few thousand),
//! stacked feature matrices `F ∈ R^{n_u × d}` for one user's observations,
//! and the user/item factor tables sliced row-wise. Row-major layout keeps
//! "one row = one entity's vector" a contiguous slice, which is the access
//! pattern of every serving and update path.

use crate::vector::{dot_slices, Vector};
use crate::{LinalgError, Result};

/// A dense, row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data buffer.
    ///
    /// Errors if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_row_major",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by stacking row vectors. All rows must share a
    /// length; errors otherwise or when `rows` is empty.
    pub fn from_rows(rows: &[Vector]) -> Result<Self> {
        let first = rows.first().ok_or(LinalgError::Empty { op: "from_rows" })?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_rows",
                    expected: cols,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r.as_slice());
        }
        Ok(Matrix { rows: rows.len(), cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access (panics on out-of-bounds, mirroring slice semantics).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment (panics on out-of-bounds).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies row `r` into a new [`Vector`].
    pub fn row_vector(&self, r: usize) -> Vector {
        Vector::from_vec(self.row(r).to_vec())
    }

    /// Overwrites row `r` with `v`. Errors on length mismatch.
    pub fn set_row(&mut self, r: usize, v: &Vector) -> Result<()> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "set_row",
                expected: self.cols,
                actual: v.len(),
            });
        }
        self.row_mut(r).copy_from_slice(v.as_slice());
        Ok(())
    }

    /// Raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product `A x`.
    pub fn matvec(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                expected: self.cols,
                actual: x.len(),
            });
        }
        let xs = x.as_slice();
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            out.push(dot_slices(self.row(r), xs));
        }
        Ok(Vector::from_vec(out))
    }

    /// Transposed matrix–vector product `Aᵀ x`.
    ///
    /// Implemented as an axpy sweep over rows so the row-major layout is
    /// still traversed contiguously.
    pub fn matvec_transpose(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec_transpose",
                expected: self.rows,
                actual: x.len(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let alpha = x[r];
            if alpha == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (o, &v) in out.iter_mut().zip(row) {
                *o += alpha * v;
            }
        }
        Ok(Vector::from_vec(out))
    }

    /// Matrix product `A B`.
    ///
    /// ikj loop order: the inner loop streams a row of `B` and a row of the
    /// output, so both are contiguous.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a_ik = self.get(i, k);
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                let o_row = out.row_mut(i);
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
        Ok(out)
    }

    /// Gram matrix `AᵀA` (symmetric, `cols × cols`).
    ///
    /// This is the matrix Velox forms for every online user-weight solve
    /// (Eq. 2); only the upper triangle is computed and then mirrored.
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let mut g = Matrix::zeros(d, d);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..d {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                let gi = &mut g.data[i * d..(i + 1) * d];
                for j in i..d {
                    gi[j] += ri * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..d {
            for j in (i + 1)..d {
                let v = g.data[i * d + j];
                g.data[j * d + i] = v;
            }
        }
        g
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds `alpha` to every diagonal element in place (ridge shift
    /// `A + αI`). Errors if the matrix is not square.
    pub fn add_scaled_identity(&mut self, alpha: f64) -> Result<()> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "add_scaled_identity",
                expected: self.rows,
                actual: self.cols,
            });
        }
        for i in 0..self.rows {
            self.data[i * self.cols + i] += alpha;
        }
        Ok(())
    }

    /// Rank-one symmetric update `self += alpha * x xᵀ` in place.
    ///
    /// Used to fold a new observation's feature vector into a running Gram
    /// matrix without re-stacking all of a user's history.
    pub fn add_outer(&mut self, alpha: f64, x: &Vector) -> Result<()> {
        if self.rows != x.len() || self.cols != x.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "add_outer",
                expected: self.rows,
                actual: x.len(),
            });
        }
        let xs = x.as_slice();
        for i in 0..self.rows {
            let xi = alpha * xs[i];
            if xi == 0.0 {
                continue;
            }
            let row = self.row_mut(i);
            for (r, &xj) in row.iter_mut().zip(xs) {
                *r += xi * xj;
            }
        }
        Ok(())
    }

    /// Elementwise `self += alpha * other`. Errors on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "matrix axpy",
                expected: self.data.len(),
                actual: other.data.len(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scales every element in place.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        dot_slices(&self.data, &self.data).sqrt()
    }

    /// Maximum absolute elementwise difference to `other` — the metric used
    /// by tests to compare factorizations. Errors on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "max_abs_diff",
                expected: self.data.len(),
                actual: other.data.len(),
            });
        }
        Ok(self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max))
    }

    /// True when all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Whether `|a_ij - a_ji| <= tol` everywhere (used to sanity-check Gram
    /// matrices before Cholesky).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2x3() -> Matrix {
        Matrix::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = m2x3();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert!(Matrix::from_row_major(2, 3, vec![0.0; 5]).is_err());
    }

    #[test]
    fn identity_matvec_is_noop() {
        let i = Matrix::identity(4);
        let x = Vector::from_vec(vec![1.0, -2.0, 3.0, 0.5]);
        assert_eq!(i.matvec(&x).unwrap(), x);
    }

    #[test]
    fn from_rows_stacks() {
        let rows = vec![Vector::from_vec(vec![1.0, 2.0]), Vector::from_vec(vec![3.0, 4.0])];
        let m = Matrix::from_rows(&rows).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let ragged = vec![Vector::zeros(2), Vector::zeros(3)];
        assert!(Matrix::from_rows(&ragged).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn matvec_matches_manual() {
        let m = m2x3();
        let x = Vector::from_vec(vec![1.0, 0.0, -1.0]);
        let y = m.matvec(&x).unwrap();
        assert_eq!(y.as_slice(), &[-2.0, -2.0]);
        assert!(m.matvec(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn matvec_transpose_matches_explicit_transpose() {
        let m = m2x3();
        let x = Vector::from_vec(vec![1.0, 2.0]);
        let via_kernel = m.matvec_transpose(&x).unwrap();
        let via_transpose = m.transpose().matvec(&x).unwrap();
        assert_eq!(via_kernel, via_transpose);
    }

    #[test]
    fn matmul_against_known_product() {
        let a = Matrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_row_major(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        assert!(a.matmul(&m2x3().transpose()).is_err());
    }

    #[test]
    fn gram_matches_explicit_ata() {
        let a = m2x3();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&explicit).unwrap() < 1e-12);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn transpose_involution() {
        let m = m2x3();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn add_scaled_identity_shifts_diagonal() {
        let mut m = Matrix::zeros(3, 3);
        m.add_scaled_identity(2.5).unwrap();
        assert_eq!(m.get(1, 1), 2.5);
        assert_eq!(m.get(0, 1), 0.0);
        let mut rect = Matrix::zeros(2, 3);
        assert!(rect.add_scaled_identity(1.0).is_err());
    }

    #[test]
    fn add_outer_matches_explicit() {
        let x = Vector::from_vec(vec![1.0, 2.0, -1.0]);
        let mut m = Matrix::identity(3);
        m.add_outer(0.5, &x).unwrap();
        // Check a few entries: I + 0.5 x xᵀ
        assert!((m.get(0, 0) - 1.5).abs() < 1e-15);
        assert!((m.get(0, 1) - 1.0).abs() < 1e-15);
        assert!((m.get(2, 1) - (-1.0)).abs() < 1e-15);
        assert!(m.is_symmetric(1e-15));
    }

    #[test]
    fn row_accessors() {
        let mut m = m2x3();
        assert_eq!(m.row_vector(0).as_slice(), &[1.0, 2.0, 3.0]);
        m.set_row(0, &Vector::from_vec(vec![9.0, 8.0, 7.0])).unwrap();
        assert_eq!(m.row(0), &[9.0, 8.0, 7.0]);
        assert!(m.set_row(0, &Vector::zeros(2)).is_err());
    }

    #[test]
    fn frobenius_and_finiteness() {
        let m = Matrix::from_row_major(1, 2, vec![3.0, 4.0]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
        assert!(m.is_finite());
        let bad = Matrix::from_row_major(1, 1, vec![f64::NAN]).unwrap();
        assert!(!bad.is_finite());
    }

    #[test]
    fn symmetry_check() {
        let sym = Matrix::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(sym.is_symmetric(0.0));
        let asym = Matrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 1.0]).unwrap();
        assert!(!asym.is_symmetric(0.5));
        assert!(!m2x3().is_symmetric(1.0));
    }

    #[test]
    fn matrix_axpy_and_scale() {
        let mut a = Matrix::identity(2);
        let b = Matrix::from_row_major(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.as_slice(), &[3.0, 2.0, 2.0, 3.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.5, 1.0, 1.0, 1.5]);
        assert!(a.axpy(1.0, &Matrix::zeros(3, 3)).is_err());
    }
}
