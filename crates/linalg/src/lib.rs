//! # velox-linalg
//!
//! Dense linear algebra substrate for Velox.
//!
//! Velox's online learning phase (paper §4.2, Eq. 2) solves per-user ridge
//! regressions over the feature dimension `d`:
//!
//! ```text
//! w_u ← (F(X, θ)ᵀ F(X, θ) + λ I)⁻¹ F(X, θ)ᵀ y
//! ```
//!
//! This crate provides everything needed to do that both naively (Cholesky
//! solve per update, O(d³), as in the paper's Figure 3 prototype) and
//! incrementally (Sherman–Morrison rank-one maintenance of the inverse,
//! O(d²) per observation, the optimization the paper calls out).
//!
//! The crate is deliberately self-contained — no BLAS, no external linear
//! algebra dependencies — so that the rest of the workspace can be built and
//! benchmarked hermetically. Matrices are dense, row-major, `f64`.
//!
//! Modules:
//! - [`vector`]: dense vector type and BLAS-1 style kernels.
//! - [`matrix`]: dense row-major matrix, BLAS-2/3 style kernels.
//! - [`cholesky`]: Cholesky factorization, triangular solves, SPD inverse.
//! - [`ridge`]: batch ridge regression via the normal equations.
//! - [`sherman_morrison`]: incremental ridge maintenance via rank-one
//!   inverse updates.
//! - [`stats`]: scalar statistics used by the evaluation and bench harnesses
//!   (mean, variance, confidence intervals, RMSE).

#![warn(missing_docs)]

pub mod cholesky;
pub mod matrix;
pub mod mips;
pub mod ridge;
pub mod sherman_morrison;
pub mod stats;
pub mod vector;

pub use cholesky::Cholesky;
pub use matrix::Matrix;
pub use mips::{MipsIndex, ScoredItem};
pub use ridge::{ridge_fit, ridge_fit_gram, RidgeProblem};
pub use sherman_morrison::IncrementalRidge;
pub use vector::Vector;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible (e.g. `matvec` with wrong length).
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// The matrix passed to a factorization was not symmetric positive
    /// definite (within floating-point tolerance).
    NotPositiveDefinite {
        /// Pivot index at which the factorization broke down.
        pivot: usize,
    },
    /// An operation that requires a non-empty operand received an empty one.
    Empty {
        /// The operation that failed.
        op: &'static str,
    },
    /// An operand contained NaN or infinity where finite values are
    /// required (e.g. building a MIPS index over corrupt factors).
    NonFinite {
        /// The operation that failed.
        op: &'static str,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, expected, actual } => {
                write!(f, "{op}: dimension mismatch (expected {expected}, got {actual})")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot} <= 0)")
            }
            LinalgError::Empty { op } => write!(f, "{op}: empty operand"),
            LinalgError::NonFinite { op } => write!(f, "{op}: non-finite operand"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
