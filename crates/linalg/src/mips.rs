//! Exact maximum-inner-product search (MIPS) with norm-bound pruning.
//!
//! The paper's future work (§8) calls for "more efficient top-K support for
//! our linear modeling tasks". For Velox's models a top-K query is a MIPS
//! problem: find the items maximizing `wᵀxᵢ`. This module implements the
//! classic exact pruning: store items sorted by `‖xᵢ‖` descending; while
//! scanning, Cauchy–Schwarz gives `wᵀxᵢ ≤ ‖w‖·‖xᵢ‖`, so once the bound for
//! the next item falls below the current k-th best score, no remaining item
//! can enter the top-K and the scan stops.
//!
//! Pruning power depends on the norm distribution: real factor tables have
//! long-tailed norms (popular items train to larger factors), which is what
//! makes this effective in practice. The worst case (equal norms) degrades
//! gracefully to a full scan — results are exact either way.

use crate::vector::{dot_slices, Vector};
use crate::{LinalgError, Result};

/// One scored result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredItem {
    /// The item's id.
    pub id: u64,
    /// Its inner-product score.
    pub score: f64,
}

/// An immutable MIPS index over a set of item vectors.
///
/// Build cost O(n·d + n log n); queries are exact top-K with early
/// termination. Rebuild after every offline retrain (θ changes).
#[derive(Debug, Clone)]
pub struct MipsIndex {
    /// Items sorted by norm descending.
    ids: Vec<u64>,
    vectors: Vec<Vector>,
    norms: Vec<f64>,
    dim: usize,
}

/// Query statistics for instrumentation: how much of the index a query
/// actually scanned.
#[derive(Debug, Clone, Copy)]
pub struct MipsQueryStats {
    /// Items whose full dot product was evaluated.
    pub scanned: usize,
    /// Total items in the index.
    pub total: usize,
}

impl MipsQueryStats {
    /// Fraction of the index scanned (1.0 = no pruning happened).
    pub fn scan_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.scanned as f64 / self.total as f64
        }
    }
}

impl MipsIndex {
    /// Builds an index from `(id, vector)` pairs. All vectors must share a
    /// dimension; errors otherwise or on an empty input.
    pub fn build(items: Vec<(u64, Vector)>) -> Result<Self> {
        let first = items.first().ok_or(LinalgError::Empty { op: "MipsIndex::build" })?;
        let dim = first.1.len();
        for (_, v) in &items {
            if v.len() != dim {
                return Err(LinalgError::DimensionMismatch {
                    op: "MipsIndex::build",
                    expected: dim,
                    actual: v.len(),
                });
            }
        }
        let mut order: Vec<usize> = (0..items.len()).collect();
        let norms_unsorted: Vec<f64> = items.iter().map(|(_, v)| v.norm2()).collect();
        // A NaN norm would both poison the sort and break the pruning
        // bound; refuse corrupt factor tables instead of panicking later.
        if norms_unsorted.iter().any(|n| !n.is_finite()) {
            return Err(LinalgError::NonFinite { op: "MipsIndex::build" });
        }
        order.sort_by(|&a, &b| {
            norms_unsorted[b].partial_cmp(&norms_unsorted[a]).expect("finite norms")
        });
        let mut ids = Vec::with_capacity(items.len());
        let mut vectors = Vec::with_capacity(items.len());
        let mut norms = Vec::with_capacity(items.len());
        for idx in order {
            ids.push(items[idx].0);
            vectors.push(items[idx].1.clone());
            norms.push(norms_unsorted[idx]);
        }
        Ok(MipsIndex { ids, vectors, norms, dim })
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the index holds no items (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Exact top-`k` items by inner product with `query`, descending, with
    /// scan statistics. `k` is clamped to the index size.
    pub fn top_k(&self, query: &Vector, k: usize) -> Result<(Vec<ScoredItem>, MipsQueryStats)> {
        if query.len() != self.dim {
            return Err(LinalgError::DimensionMismatch {
                op: "MipsIndex::top_k",
                expected: self.dim,
                actual: query.len(),
            });
        }
        if !query.is_finite() {
            return Err(LinalgError::NonFinite { op: "MipsIndex::top_k" });
        }
        let k = k.max(1).min(self.len());
        let q_norm = query.norm2();
        let q = query.as_slice();

        // Bounded min-heap of the best k scores (by score ascending so the
        // root is the current k-th best).
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<HeapEntry>> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        let mut scanned = 0usize;
        for i in 0..self.len() {
            // Cauchy–Schwarz bound for this and all later (smaller-norm)
            // items; once the heap is full and the bound can't beat the
            // current k-th best, stop.
            if heap.len() == k {
                let kth = heap.peek().expect("full heap").0 .0;
                if q_norm * self.norms[i] <= kth {
                    break;
                }
            }
            scanned += 1;
            let score = dot_slices(q, self.vectors[i].as_slice());
            if heap.len() < k {
                heap.push(std::cmp::Reverse(HeapEntry(score, self.ids[i])));
            } else if score > heap.peek().expect("full heap").0 .0 {
                heap.pop();
                heap.push(std::cmp::Reverse(HeapEntry(score, self.ids[i])));
            }
        }
        let mut results: Vec<ScoredItem> = heap
            .into_iter()
            .map(|std::cmp::Reverse(HeapEntry(score, id))| ScoredItem { id, score })
            .collect();
        results.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
        Ok((results, MipsQueryStats { scanned, total: self.len() }))
    }

    /// Reference implementation: full scan, no pruning. Used by tests and
    /// the ablation bench as the baseline.
    pub fn top_k_full_scan(&self, query: &Vector, k: usize) -> Result<Vec<ScoredItem>> {
        if query.len() != self.dim {
            return Err(LinalgError::DimensionMismatch {
                op: "MipsIndex::top_k_full_scan",
                expected: self.dim,
                actual: query.len(),
            });
        }
        let mut all: Vec<ScoredItem> = self
            .ids
            .iter()
            .zip(&self.vectors)
            .map(|(&id, v)| ScoredItem { id, score: dot_slices(query.as_slice(), v.as_slice()) })
            .collect();
        all.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
        all.truncate(k.max(1).min(self.len()));
        Ok(all)
    }
}

/// Heap entry ordered by score (ties broken by id for determinism).
#[derive(PartialEq)]
struct HeapEntry(f64, u64);

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite scores").then_with(|| self.1.cmp(&other.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_with_norm_spread(n: usize, d: usize, seed: u64) -> MipsIndex {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let items: Vec<(u64, Vector)> = (0..n as u64)
            .map(|id| {
                // Long-tailed norms, like trained factor tables.
                let scale = 1.0 / (1.0 + id as f64 * 0.05);
                (id, Vector::from_vec((0..d).map(|_| next() * scale).collect()))
            })
            .collect();
        MipsIndex::build(items).unwrap()
    }

    #[test]
    fn pruned_matches_full_scan() {
        let idx = index_with_norm_spread(500, 16, 3);
        let mut state = 99u64;
        for trial in 0..20 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(trial);
            let q = Vector::from_vec(
                (0..16).map(|j| ((state >> (j % 48)) as f64 / 1e15).sin()).collect(),
            );
            for k in [1usize, 5, 20] {
                let (pruned, _) = idx.top_k(&q, k).unwrap();
                let full = idx.top_k_full_scan(&q, k).unwrap();
                assert_eq!(pruned.len(), full.len());
                for (p, f) in pruned.iter().zip(&full) {
                    assert!((p.score - f.score).abs() < 1e-12, "k={k}");
                }
            }
        }
    }

    #[test]
    fn pruning_actually_prunes_on_long_tailed_norms() {
        let idx = index_with_norm_spread(2000, 16, 7);
        let q = Vector::filled(16, 0.25);
        let (_, stats) = idx.top_k(&q, 10).unwrap();
        assert!(
            stats.scan_fraction() < 0.5,
            "expected meaningful pruning, scanned {}",
            stats.scan_fraction()
        );
    }

    #[test]
    fn equal_norms_degrade_to_full_scan_but_stay_exact() {
        let items: Vec<(u64, Vector)> = (0..100u64)
            .map(|id| {
                let angle = id as f64 * 0.17;
                (id, Vector::from_vec(vec![angle.cos(), angle.sin()]))
            })
            .collect();
        let idx = MipsIndex::build(items).unwrap();
        let q = Vector::from_vec(vec![1.0, 0.5]);
        let (pruned, stats) = idx.top_k(&q, 5).unwrap();
        let full = idx.top_k_full_scan(&q, 5).unwrap();
        assert_eq!(
            pruned.iter().map(|s| s.id).collect::<Vec<_>>(),
            full.iter().map(|s| s.id).collect::<Vec<_>>()
        );
        assert!(stats.scan_fraction() > 0.9, "no pruning possible with equal norms");
    }

    #[test]
    fn k_edge_cases() {
        let idx = index_with_norm_spread(10, 4, 1);
        let q = Vector::filled(4, 1.0);
        // k = 0 clamps to 1; k > n clamps to n.
        let (one, _) = idx.top_k(&q, 0).unwrap();
        assert_eq!(one.len(), 1);
        let (all, _) = idx.top_k(&q, 50).unwrap();
        assert_eq!(all.len(), 10);
        // Results strictly ordered.
        for w in all.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn build_and_query_validation() {
        assert!(MipsIndex::build(vec![]).is_err());
        let ragged = vec![(0u64, Vector::zeros(2)), (1u64, Vector::zeros(3))];
        assert!(MipsIndex::build(ragged).is_err());
        let idx = index_with_norm_spread(5, 4, 2);
        assert!(idx.top_k(&Vector::zeros(3), 1).is_err());
        assert!(idx.top_k_full_scan(&Vector::zeros(5), 1).is_err());
        assert_eq!(idx.dim(), 4);
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
    }

    #[test]
    fn non_finite_inputs_are_rejected_not_panics() {
        let bad = vec![(0u64, Vector::from_vec(vec![f64::NAN, 1.0]))];
        assert!(matches!(MipsIndex::build(bad), Err(LinalgError::NonFinite { .. })));
        let idx = MipsIndex::build(vec![(0u64, Vector::from_vec(vec![1.0, 0.0]))]).unwrap();
        assert!(matches!(
            idx.top_k(&Vector::from_vec(vec![f64::NAN, 0.0]), 1),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn negative_scores_handled() {
        // Query anti-aligned with everything: top-1 is the *least negative*.
        let items = vec![
            (0u64, Vector::from_vec(vec![1.0, 0.0])),
            (1u64, Vector::from_vec(vec![5.0, 0.0])),
        ];
        let idx = MipsIndex::build(items).unwrap();
        let q = Vector::from_vec(vec![-1.0, 0.0]);
        let (top, _) = idx.top_k(&q, 1).unwrap();
        assert_eq!(top[0].id, 0);
        assert_eq!(top[0].score, -1.0);
    }
}
