//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The regularized Gram matrix `FᵀF + λI` that Velox solves against on every
//! online update (Eq. 2) is symmetric positive definite by construction
//! (λ > 0), so Cholesky is the right factorization: half the flops of LU, no
//! pivoting, and a clean failure signal (a non-positive pivot) when numerical
//! trouble does occur.

use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::{LinalgError, Result};

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// Once formed (O(d³)), solves are O(d²); the naive online-update path in
/// `velox-online` re-factorizes per update, while the Sherman–Morrison path
/// avoids factorization entirely.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored dense (upper triangle is zero).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so callers may pass a matrix
    /// whose upper triangle is stale. Errors with
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is ≤ 0 (within
    /// floating point), which in Velox signals a degenerate Gram matrix —
    /// e.g. λ = 0 with fewer observations than dimensions.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (n, m) = a.shape();
        if n != m {
            return Err(LinalgError::DimensionMismatch { op: "cholesky", expected: n, actual: m });
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal element.
            let mut d = a.get(j, j);
            for k in 0..j {
                let ljk = l.get(j, k);
                d -= ljk * ljk;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let djj = d.sqrt();
            l.set(j, j, djj);
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a.get(i, j);
                // dot of rows i and j of L over the first j columns
                let (ri, rj) = (i * n, j * n);
                let li = &l.as_slice()[ri..ri + j];
                let lj = &l.as_slice()[rj..rj + j];
                for k in 0..j {
                    s -= li[k] * lj[k];
                }
                l.set(i, j, s / djj);
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor.
    pub fn factor_l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward then backward substitution.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                expected: n,
                actual: b.len(),
            });
        }
        // Forward: L y = b
        let ldata = self.l.as_slice();
        let mut y = b.as_slice().to_vec();
        for i in 0..n {
            let row = &ldata[i * n..i * n + i];
            let mut s = y[i];
            for (k, &lik) in row.iter().enumerate() {
                s -= lik * y[k];
            }
            y[i] = s / ldata[i * n + i];
        }
        // Backward: Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= ldata[k * n + i] * y[k];
            }
            y[i] = s / ldata[i * n + i];
        }
        Ok(Vector::from_vec(y))
    }

    /// Computes the full inverse `A⁻¹` column by column.
    ///
    /// O(d³); used once to seed [`crate::IncrementalRidge`], after which the
    /// inverse is maintained incrementally.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let e = Vector::basis(n, j)?;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv.set(i, j, col[i]);
            }
        }
        Ok(inv)
    }

    /// log-determinant of `A`, computed as `2 Σ log L_ii`.
    ///
    /// Used by the bandit layer's Thompson-sampling diagnostics and by model
    /// evaluation to track the "volume" of remaining uncertainty.
    pub fn log_det(&self) -> f64 {
        let n = self.dim();
        let mut s = 0.0;
        for i in 0..n {
            s += self.l.get(i, i).ln();
        }
        2.0 * s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for a fixed B → guaranteed SPD.
        let b = Matrix::from_row_major(3, 3, vec![1.0, 2.0, 0.0, 0.5, -1.0, 3.0, 2.0, 0.0, 1.0])
            .unwrap();
        let mut a = b.gram();
        a.add_scaled_identity(1.0).unwrap();
        a
    }

    #[test]
    fn reconstruction() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_l();
        let llt = l.matmul(&l.transpose()).unwrap();
        assert!(llt.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn solve_matches_direct_check() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = Vector::from_vec(vec![1.0, -2.0, 0.5]);
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!(ax.sub(&b).unwrap().norm2() < 1e-10);
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = inv.matmul(&a).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn rejects_non_spd() {
        // Indefinite matrix: eigenvalues 1 and -1.
        let m = Matrix::from_row_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!(matches!(Cholesky::factor(&m), Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(Cholesky::factor(&m), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let ch = Cholesky::factor(&spd3()).unwrap();
        assert!(ch.solve(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn log_det_matches_known_value() {
        // diag(4, 9) → det = 36, log_det = ln 36.
        let mut d = Matrix::zeros(2, 2);
        d.set(0, 0, 4.0);
        d.set(1, 1, 9.0);
        let ch = Cholesky::factor(&d).unwrap();
        assert!((ch.log_det() - 36.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn identity_factorization() {
        let ch = Cholesky::factor(&Matrix::identity(5)).unwrap();
        assert!(ch.factor_l().max_abs_diff(&Matrix::identity(5)).unwrap() < 1e-15);
        assert_eq!(ch.log_det(), 0.0);
    }

    #[test]
    fn reads_lower_triangle_only() {
        // Garbage in the strict upper triangle must not affect the result.
        let mut a = spd3();
        let ch_clean = Cholesky::factor(&a).unwrap();
        a.set(0, 2, 999.0);
        a.set(0, 1, -999.0);
        let ch_dirty = Cholesky::factor(&a).unwrap();
        assert!(ch_clean.factor_l().max_abs_diff(ch_dirty.factor_l()).unwrap() < 1e-15);
    }
}
