//! # velox-core
//!
//! The Velox system: low-latency model serving and online model management
//! on top of the batch/storage/cluster substrates.
//!
//! A [`Velox`] instance deploys one model lineage (a [`VeloxModel`] plus its
//! per-user weight table) across a simulated cluster and exposes the
//! paper's front-end API (Listing 1):
//!
//! - [`Velox::predict`] — point prediction `wᵤᵀ f(x, θ)` with prediction
//!   and feature caching (§5).
//! - [`Velox::top_k`] — candidate-set evaluation with contextual-bandit
//!   serving and validation-pool collection (§5, §4.3).
//! - [`Velox::observe`] — feedback ingestion: logs the observation, applies
//!   the online user-weight update (Eq. 2), tracks model quality, and
//!   triggers offline retraining when the model goes stale (§4).
//!
//! Model lifecycle (§4.3, §6) is handled by the manager half:
//! [`Velox::retrain_offline`] delegates to the batch substrate ("Spark"),
//! swaps the new model version in atomically, repopulates caches, and
//! retains history for [`Velox::rollback`].
//!
//! Durable state ([`durability`]) adds crash safety: with
//! [`DurabilityConfig`] set, every observation is written ahead to an
//! on-disk log before acknowledgment, [`Velox::checkpoint`] persists the
//! full deployment atomically, and [`Velox::deploy_durable`] recovers —
//! checkpoint restore plus WAL replay — after a crash.
//!
//! [`server::VeloxServer`] hosts many independent `Velox` deployments and
//! dispatches by model name — the multi-model front-end of Listing 1's
//! `ModelSchema` parameter.

#![warn(missing_docs)]

pub mod bootstrap;
pub mod config;
pub mod durability;
pub mod ensemble;
pub mod error;
pub mod persistence;
pub mod server;
pub mod sharded_cache;
pub mod velox;

pub use bootstrap::BootstrapState;
pub use config::VeloxConfig;
pub use durability::{CheckpointReport, DurabilityConfig, DurabilityStats, RecoveryReport};
pub use ensemble::{EnsemblePrediction, EnsembleSelector, WeightScope};
pub use error::VeloxError;
pub use persistence::DeploymentSnapshot;
pub use server::VeloxServer;
pub use velox::{
    DegradationCounts, DegradationLevel, ObserveOutcome, PredictResponse, RedoQueueStats,
    SystemStats, TopKResponse, Velox,
};

// Re-export the trait and common types users need to deploy models, so
// downstream code can depend on velox-core alone.
pub use velox_bandit::{
    BanditPolicy, EpsilonGreedyPolicy, GreedyPolicy, LinUcbPolicy, ThompsonPolicy,
};
pub use velox_models::{Item, ModelError, TrainingExample, VeloxModel};
