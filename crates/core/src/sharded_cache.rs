//! A lock-sharded LRU cache for the serving hot path.
//!
//! The throughput harness (`svc_throughput`) showed a single
//! `Mutex<LruCache>` prediction cache *negatively* scaling with client
//! threads — every cache-hit predict serialized on one lock. Sharding by
//! key hash bounds contention to 1/S of traffic per lock while keeping LRU
//! behaviour per shard (global LRU order is approximated by per-shard
//! order, the standard trade in concurrent caches).

use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use velox_storage::LruCache;

/// Number of lock shards (power of two).
const SHARDS: usize = 16;

/// A fixed-capacity, lock-sharded LRU cache.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedCache<K, V> {
    /// Creates a cache with `capacity` total entries spread over the
    /// shards (each shard gets `capacity / SHARDS`, minimum 1).
    pub fn new(capacity: usize) -> Self {
        let per_shard = (capacity / SHARDS).max(1);
        ShardedCache { shards: (0..SHARDS).map(|_| Mutex::new(LruCache::new(per_shard))).collect() }
    }

    #[inline]
    fn shard(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (SHARDS - 1)]
    }

    /// Looks up and clones the value, promoting it in its shard's LRU.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().unwrap().get(key).cloned()
    }

    /// Inserts or replaces a key.
    pub fn put(&self, key: K, value: V) {
        self.shard(&key).lock().unwrap().put(key, value);
    }

    /// Clears every shard (statistics are preserved, like
    /// [`LruCache::clear`]).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }

    /// Aggregated `(hits, misses, evictions)` across shards.
    pub fn stats(&self) -> (u64, u64, u64) {
        let mut total = (0, 0, 0);
        for shard in &self.shards {
            let (h, m, e) = shard.lock().unwrap().stats();
            total.0 += h;
            total.1 += m;
            total.2 += e;
        }
        total
    }

    /// All cached keys, shard by shard, each shard in MRU order. Used to
    /// snapshot hot keys for cache repopulation at version swaps.
    pub fn keys(&self) -> Vec<K> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().unwrap().keys_mru_order());
        }
        out
    }

    /// Total cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_get_put_clear() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(64);
        assert!(c.get(&1).is_none());
        c.put(1, 10);
        c.put(2, 20);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(&1).is_none());
    }

    #[test]
    fn stats_aggregate() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(64);
        c.put(1, 1);
        c.get(&1);
        c.get(&2);
        let (h, m, _) = c.stats();
        assert_eq!((h, m), (1, 1), "one hit on key 1, one miss on key 2");
    }

    #[test]
    fn capacity_is_respected_per_shard() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(32);
        for k in 0..10_000u64 {
            c.put(k, k);
        }
        assert!(c.len() <= 32, "total stays within budget: {}", c.len());
    }

    #[test]
    fn keys_cover_all_shards() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(256);
        for k in 0..100u64 {
            c.put(k, k);
        }
        let mut keys = c.keys();
        keys.sort_unstable();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_access_is_safe_and_consistent() {
        let c: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new(1024));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..5000u64 {
                    let k = (t * 131 + i) % 512;
                    c.put(k, k * 3);
                    if let Some(v) = c.get(&k) {
                        assert_eq!(v % 3, 0);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
