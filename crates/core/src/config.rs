//! Deployment configuration for a Velox instance.

use velox_cluster::ClusterConfig;
use velox_obs::ObsConfig;
use velox_online::UpdateStrategy;

use crate::durability::DurabilityConfig;

/// Bandit policy selection for `topK` serving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BanditChoice {
    /// Pure exploitation (the feedback-loop baseline).
    Greedy,
    /// ε-greedy with the given exploration rate.
    EpsilonGreedy(f64),
    /// LinUCB with the given exploration width α (the paper's choice).
    LinUcb(f64),
    /// Thompson sampling with the given posterior scale.
    Thompson(f64),
}

/// Configuration of one Velox deployment.
#[derive(Debug, Clone)]
pub struct VeloxConfig {
    /// Ridge regularization λ for online user-weight updates (Eq. 2).
    pub lambda: f64,
    /// Online update algorithm (naive re-solve vs. Sherman–Morrison).
    pub update_strategy: UpdateStrategy,
    /// Prediction-cache capacity (entries across all users).
    pub prediction_cache_capacity: usize,
    /// Feature-cache capacity for computed feature functions (entries).
    pub feature_cache_capacity: usize,
    /// Staleness threshold: relative loss increase that triggers offline
    /// retraining (§6).
    pub staleness_threshold: f64,
    /// Observations before the staleness detector may fire.
    pub staleness_warmup: u64,
    /// Retrain automatically when staleness fires (can be off for manual
    /// lifecycle control or experiments).
    pub auto_retrain: bool,
    /// Hold out every k-th observation for prequential cross-validation
    /// (0 disables; held-out observations are still logged, not trained).
    pub crossval_holdout_every: u64,
    /// Bandit policy used by `topK`.
    pub bandit: BanditChoice,
    /// Fraction of `topK` serves randomized into the validation pool.
    pub validation_fraction: f64,
    /// Capacity of the validation pool.
    pub validation_capacity: usize,
    /// Simulated-cluster topology and cost model.
    pub cluster: ClusterConfig,
    /// Capacity of the stale-weight cache backing graceful degradation:
    /// last-known-good `wᵤ` copies served (flagged stale) when every live
    /// replica of a user is gone.
    pub stale_weight_cache_capacity: usize,
    /// Bounded redo queue for observations that arrive while a user's
    /// partition is unreachable; drained into the online state on recovery.
    /// When full, further observations during the outage are shed (and
    /// counted) rather than growing memory without bound.
    pub redo_queue_capacity: usize,
    /// Worker threads for offline (re)training jobs.
    pub training_workers: usize,
    /// Deterministic seed for serving-side randomness (bandits, validation).
    pub seed: u64,
    /// On-disk durability (WAL + checkpoints). `None` (the default) keeps
    /// the deployment memory-only; set it and deploy through
    /// [`Velox::deploy_durable`](crate::Velox::deploy_durable) to make
    /// acknowledged observations crash-safe.
    pub durability: Option<DurabilityConfig>,
    /// Observability knobs (span-timer clock discipline).
    pub obs: ObsConfig,
}

impl Default for VeloxConfig {
    fn default() -> Self {
        VeloxConfig {
            lambda: 1.0,
            update_strategy: UpdateStrategy::ShermanMorrison,
            prediction_cache_capacity: 64 * 1024,
            feature_cache_capacity: 16 * 1024,
            staleness_threshold: 0.5,
            staleness_warmup: 200,
            auto_retrain: false,
            crossval_holdout_every: 0,
            bandit: BanditChoice::LinUcb(1.0),
            validation_fraction: 0.0,
            validation_capacity: 4096,
            cluster: ClusterConfig::default(),
            stale_weight_cache_capacity: 16 * 1024,
            redo_queue_capacity: 1024,
            training_workers: 4,
            seed: 0xC1D1,
            durability: None,
            obs: ObsConfig::default(),
        }
    }
}

impl VeloxConfig {
    /// A small single-node configuration for tests and examples: 1 node,
    /// small caches, deterministic.
    pub fn single_node() -> Self {
        VeloxConfig {
            cluster: ClusterConfig { n_nodes: 1, ..Default::default() },
            prediction_cache_capacity: 1024,
            feature_cache_capacity: 1024,
            training_workers: 2,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = VeloxConfig::default();
        assert!(c.lambda > 0.0);
        assert!(c.prediction_cache_capacity > 0);
        assert_eq!(c.update_strategy, UpdateStrategy::ShermanMorrison);
        assert!(matches!(c.bandit, BanditChoice::LinUcb(_)));
    }

    #[test]
    fn single_node_profile() {
        let c = VeloxConfig::single_node();
        assert_eq!(c.cluster.n_nodes, 1);
    }
}
