//! Deployment snapshot & restore.
//!
//! Velox persists its model state through the storage layer (Tachyon in
//! the paper, §3); our substitute is in-memory, so durability is provided
//! by explicit snapshots: the serving-relevant tables — user weights, the
//! materialized item-feature table, and the raw-attribute catalog — encode
//! to the compact binary format of `velox_storage::codec`. The blobs are
//! opaque bytes the operator can ship to any object store; restore rebuilds
//! a serving-equivalent deployment from them.
//!
//! What a snapshot does **not** contain: per-user online sufficient
//! statistics (recreated lazily from the restored weights as priors, the
//! same path a retrain swap uses) and the observation log (whose system of
//! record in the paper is the storage/batch layer, not the serving tier).

use std::collections::HashMap;
use std::sync::Arc;
use velox_storage::bytes::Bytes;

use velox_linalg::Vector;
use velox_models::VeloxModel;
use velox_storage::codec::{decode_vector_table, encode_vector_table};

use crate::config::VeloxConfig;
use crate::error::VeloxError;
use crate::velox::Velox;

/// A serialized deployment: three independent binary blobs plus metadata.
#[derive(Debug, Clone)]
pub struct DeploymentSnapshot {
    /// Model version at snapshot time.
    pub model_version: u64,
    /// Encoded user-weight table.
    pub user_weights: Bytes,
    /// Encoded materialized item-feature table (empty table for
    /// computational models).
    pub item_table: Bytes,
    /// Encoded raw-attribute catalog (for computational feature functions).
    pub catalog: Bytes,
}

impl DeploymentSnapshot {
    /// Total serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.user_weights.len() + self.item_table.len() + self.catalog.len()
    }
}

impl Velox {
    /// Captures a restorable snapshot of the deployment's serving state.
    pub fn snapshot(&self) -> DeploymentSnapshot {
        let user_weights = self.cluster().export_user_weights();
        let item_table = self.current_model().materialized_table();
        let catalog = self.catalog_entries();
        DeploymentSnapshot {
            model_version: self.model_version(),
            user_weights: encode_vector_table(&user_weights),
            item_table: encode_vector_table(&item_table),
            catalog: encode_vector_table(&catalog),
        }
    }

    /// Rebuilds a deployment from a snapshot. The model object itself is
    /// supplied by the caller (for materialized models, rebuild it from
    /// `snapshot.item_table` via `MatrixFactorizationModel::from_table`;
    /// computational models carry their θ internally and are
    /// reconstructible from their own constructor parameters).
    pub fn restore(
        model: Arc<dyn VeloxModel>,
        snapshot: &DeploymentSnapshot,
        config: VeloxConfig,
    ) -> Result<Velox, VeloxError> {
        let weights: HashMap<u64, Vector> = decode_vector_table(snapshot.user_weights.clone())?
            .into_iter()
            .map(|(uid, w)| (uid, Vector::from_vec(w)))
            .collect();
        // The item table is the caller's input to the model constructor,
        // but a snapshot is restored as a unit: validate the blob here so
        // a torn or corrupted snapshot is rejected atomically instead of
        // producing a deployment that fails later.
        let _ = decode_vector_table(snapshot.item_table.clone())?;
        let velox = Velox::deploy(model, weights, config);
        velox.force_version(snapshot.model_version);
        for (item, attrs) in decode_vector_table(snapshot.catalog.clone())? {
            velox.register_item(item, attrs);
        }
        Ok(velox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velox_bandit as _;
    use velox_batch::AlsConfig;
    use velox_models::{IdentityModel, Item, MatrixFactorizationModel};

    fn mf_deployment() -> Velox {
        let mut table = HashMap::new();
        for item in 0..30u64 {
            table.insert(
                item,
                Vector::from_vec(vec![(item as f64 * 0.3).sin(), (item as f64 * 0.7).cos()]),
            );
        }
        let model = MatrixFactorizationModel::from_table(
            "snap",
            table,
            3.0,
            AlsConfig { rank: 2, ..Default::default() },
        )
        .unwrap();
        let mut weights = HashMap::new();
        for uid in 0..10u64 {
            weights.insert(uid, Vector::from_vec(vec![uid as f64 * 0.1, -(uid as f64) * 0.05]));
        }
        Velox::deploy(Arc::new(model), weights, VeloxConfig::single_node())
    }

    #[test]
    fn mf_snapshot_round_trips_predictions() {
        let original = mf_deployment();
        // Mutate some state so the snapshot isn't just the deploy inputs.
        original.observe(3, &Item::Id(5), 2.0).unwrap();
        original.observe(7, &Item::Id(9), -1.0).unwrap();
        let snap = original.snapshot();
        assert!(snap.size_bytes() > 0);
        assert_eq!(snap.model_version, 1);
        // Restored deployments report the snapshot's version, not 1.

        // Rebuild the model from the snapshotted item table.
        let table: HashMap<u64, Vector> = decode_vector_table(snap.item_table.clone())
            .unwrap()
            .into_iter()
            .map(|(id, v)| (id, Vector::from_vec(v)))
            .collect();
        let model = MatrixFactorizationModel::from_table(
            "snap",
            table,
            3.0,
            AlsConfig { rank: 2, ..Default::default() },
        )
        .unwrap();
        let restored = Velox::restore(Arc::new(model), &snap, VeloxConfig::single_node()).unwrap();
        assert_eq!(restored.model_version(), snap.model_version);

        for uid in 0..10u64 {
            for item in 0..30u64 {
                let a = original.predict(uid, &Item::Id(item)).unwrap().score;
                let b = restored.predict(uid, &Item::Id(item)).unwrap().score;
                assert!((a - b).abs() < 1e-12, "uid {uid} item {item}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn computed_model_snapshot_round_trips_catalog() {
        let model = IdentityModel::new("snap-id", 2, 0.5);
        let original =
            Velox::deploy(Arc::new(model.clone()), HashMap::new(), VeloxConfig::single_node());
        for item in 0..15u64 {
            original.register_item(item, vec![item as f64, 1.0 / (item as f64 + 1.0)]);
        }
        original.observe(1, &Item::Id(4), 2.5).unwrap();
        let snap = original.snapshot();
        let restored = Velox::restore(Arc::new(model), &snap, VeloxConfig::single_node()).unwrap();
        for item in 0..15u64 {
            let a = original.predict(1, &Item::Id(item)).unwrap().score;
            let b = restored.predict(1, &Item::Id(item)).unwrap().score;
            assert!((a - b).abs() < 1e-12);
        }
        // The computed model's snapshot has an empty item table but a
        // populated catalog.
        assert!(decode_vector_table(snap.item_table.clone()).unwrap().is_empty());
        assert_eq!(decode_vector_table(snap.catalog.clone()).unwrap().len(), 15);
    }

    #[test]
    fn restore_rejects_corrupt_blobs() {
        let original = mf_deployment();
        let mut snap = original.snapshot();
        snap.user_weights = Bytes::from_static(b"not a snapshot");
        let model = IdentityModel::new("x", 2, 0.5);
        assert!(matches!(
            Velox::restore(Arc::new(model), &snap, VeloxConfig::single_node()),
            Err(VeloxError::Storage(_))
        ));
    }

    /// Restoring with `model` against `snap` must produce a clean error —
    /// never a panic, never a silently-partial deployment.
    fn assert_restore_rejects(snap: &DeploymentSnapshot, what: &str) {
        let model = IdentityModel::new("x", 2, 0.5);
        match Velox::restore(Arc::new(model), snap, VeloxConfig::single_node()) {
            Err(_) => {}
            Ok(_) => panic!("restore accepted a damaged snapshot: {what}"),
        }
    }

    /// Crash consistency: a snapshot torn at *any* byte boundary, or with
    /// targeted corruption (bad magic, bad tag, inflated count), is
    /// rejected with a `VeloxError` for every one of the three blobs.
    #[test]
    fn restore_survives_torn_and_corrupt_snapshots() {
        let original = mf_deployment();
        original.observe(3, &Item::Id(5), 2.0).unwrap();
        let snap = original.snapshot();

        let blobs: [(&str, &Bytes); 3] = [
            ("user_weights", &snap.user_weights),
            ("item_table", &snap.item_table),
            ("catalog", &snap.catalog),
        ];
        for (name, blob) in blobs {
            // Truncation at every cut point simulates a crash mid-write.
            for cut in 0..blob.len() {
                let mut torn = snap.clone();
                let truncated = blob.slice(0..cut);
                match name {
                    "user_weights" => torn.user_weights = truncated,
                    "item_table" => torn.item_table = truncated,
                    _ => torn.catalog = truncated,
                }
                assert_restore_rejects(&torn, &format!("{name} truncated at {cut}"));
            }

            // Targeted corruption: flip the magic, the tag byte, and
            // inflate the element count past the data that follows.
            let corruptions: [(&str, usize, u8); 3] =
                [("magic", 0, 0xFF), ("tag", 4, 0xEE), ("count", 5, 0xFF)];
            for (kind, offset, value) in corruptions {
                let mut bytes = blob.as_slice().to_vec();
                if offset >= bytes.len() {
                    continue;
                }
                bytes[offset] = value;
                let mut corrupt = snap.clone();
                let damaged = Bytes::from(bytes);
                match name {
                    "user_weights" => corrupt.user_weights = damaged,
                    "item_table" => corrupt.item_table = damaged,
                    _ => corrupt.catalog = damaged,
                }
                assert_restore_rejects(&corrupt, &format!("{name} with corrupt {kind}"));
            }
        }
    }

    #[test]
    fn snapshot_reflects_online_updates() {
        let original = mf_deployment();
        let before = original.snapshot();
        original.observe(0, &Item::Id(0), 10.0).unwrap();
        let after = original.snapshot();
        assert_ne!(
            before.user_weights, after.user_weights,
            "weight mutation must be visible in the snapshot"
        );
        assert_eq!(before.item_table, after.item_table, "θ untouched by online updates");
    }
}
