//! New-user bootstrapping (§5).
//!
//! "New users are assigned a recent estimate of the average of the existing
//! user weight vectors" — predicting with `w̄` "corresponds to predicting
//! the average score for all users". [`BootstrapState`] maintains that
//! average incrementally: cheap to update on every weight change, O(d) to
//! read.

use std::sync::RwLock;
use velox_linalg::Vector;

/// Incrementally-maintained mean of the user weight vectors.
///
/// The mean is maintained over *contributions*: each user contributes their
/// latest weight vector; re-contributions replace the previous one (so the
/// mean tracks current weights, not a history of updates).
pub struct BootstrapState {
    inner: RwLock<Inner>,
}

struct Inner {
    /// Sum of each contributing user's latest weights.
    sum: Vector,
    /// Per-user latest contribution (to subtract on replacement).
    latest: std::collections::HashMap<u64, Vector>,
}

impl BootstrapState {
    /// Creates an empty state for weight dimension `d`.
    pub fn new(d: usize) -> Self {
        BootstrapState {
            inner: RwLock::new(Inner { sum: Vector::zeros(d), latest: Default::default() }),
        }
    }

    /// Records user `uid`'s current weights (replacing any previous
    /// contribution from the same user).
    pub fn contribute(&self, uid: u64, weights: &Vector) {
        let mut inner = self.inner.write().unwrap();
        if let Some(old) = inner.latest.get(&uid).cloned() {
            inner.sum.axpy(-1.0, &old).expect("dimension-consistent contributions");
        }
        inner.sum.axpy(1.0, weights).expect("dimension-consistent contributions");
        inner.latest.insert(uid, weights.clone());
    }

    /// Number of users contributing to the mean.
    pub fn contributors(&self) -> usize {
        self.inner.read().unwrap().latest.len()
    }

    /// The current mean weight vector `w̄`; the zero vector when no user
    /// has contributed yet (a brand-new deployment predicts 0, i.e. the
    /// global mean once the model's μ offset is added back).
    pub fn mean_weights(&self) -> Vector {
        let inner = self.inner.read().unwrap();
        let n = inner.latest.len();
        if n == 0 {
            return Vector::zeros(inner.sum.len());
        }
        let mut mean = inner.sum.clone();
        mean.scale(1.0 / n as f64);
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_state_is_zero() {
        let b = BootstrapState::new(3);
        assert_eq!(b.mean_weights().as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(b.contributors(), 0);
    }

    #[test]
    fn mean_of_contributions() {
        let b = BootstrapState::new(2);
        b.contribute(1, &Vector::from_vec(vec![2.0, 0.0]));
        b.contribute(2, &Vector::from_vec(vec![0.0, 4.0]));
        let m = b.mean_weights();
        assert_eq!(m.as_slice(), &[1.0, 2.0]);
        assert_eq!(b.contributors(), 2);
    }

    #[test]
    fn recontribution_replaces_not_accumulates() {
        let b = BootstrapState::new(1);
        b.contribute(1, &Vector::from_vec(vec![10.0]));
        b.contribute(1, &Vector::from_vec(vec![2.0]));
        b.contribute(2, &Vector::from_vec(vec![4.0]));
        assert_eq!(b.mean_weights().as_slice(), &[3.0]);
        assert_eq!(b.contributors(), 2);
    }

    #[test]
    fn many_updates_stay_consistent() {
        let b = BootstrapState::new(2);
        for round in 0..10 {
            for uid in 0..50u64 {
                b.contribute(uid, &Vector::from_vec(vec![round as f64, uid as f64]));
            }
        }
        let m = b.mean_weights();
        assert!((m[0] - 9.0).abs() < 1e-9, "latest round wins: {}", m[0]);
        assert!((m[1] - 24.5).abs() < 1e-9, "mean of uids 0..50: {}", m[1]);
    }
}
