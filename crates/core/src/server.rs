//! The multi-model front end.
//!
//! Listing 1's API takes a `ModelSchema` — Velox hosts many models at once
//! ("an advertising service may run a series of ad campaigns, each with
//! separate models over the same set of users", §2). [`VeloxServer`] maps
//! model names to independent [`Velox`] deployments and dispatches the
//! front-end calls. Each deployment owns its cluster placement, caches, and
//! lifecycle; they share nothing, so one model's retrain never stalls
//! another's serving.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::RwLock;

use velox_models::Item;

use crate::error::VeloxError;
use crate::velox::{ObserveOutcome, PredictResponse, TopKResponse, Velox};

/// Addresses a deployed model — the `ModelSchema` of Listing 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelSchema {
    /// The deployment name.
    pub name: String,
}

impl ModelSchema {
    /// Creates a schema reference by name.
    pub fn named(name: impl Into<String>) -> Self {
        ModelSchema { name: name.into() }
    }
}

/// Hosts independent Velox deployments, dispatching by model name.
#[derive(Default)]
pub struct VeloxServer {
    deployments: RwLock<HashMap<String, Arc<Velox>>>,
}

impl VeloxServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a deployment under `name`, replacing any previous one.
    pub fn install(&self, name: impl Into<String>, velox: Arc<Velox>) {
        self.deployments.write().unwrap().insert(name.into(), velox);
    }

    /// Fetches a deployment.
    pub fn deployment(&self, schema: &ModelSchema) -> Result<Arc<Velox>, VeloxError> {
        self.deployments
            .read()
            .unwrap()
            .get(&schema.name)
            .cloned()
            .ok_or_else(|| VeloxError::ModelNotFound(schema.name.clone()))
    }

    /// Listing 1: `predict(s, uid, x)`.
    pub fn predict(
        &self,
        schema: &ModelSchema,
        uid: u64,
        item: &Item,
    ) -> Result<PredictResponse, VeloxError> {
        self.deployment(schema)?.predict(uid, item)
    }

    /// Listing 1: `topK(s, uid, xs)`.
    pub fn top_k(
        &self,
        schema: &ModelSchema,
        uid: u64,
        items: &[Item],
    ) -> Result<TopKResponse, VeloxError> {
        self.deployment(schema)?.top_k(uid, items)
    }

    /// Listing 1: `observe(uid, x, y)` — applied to every deployment that
    /// serves this user, since in the paper observations update "the user's
    /// model" for the deployment the front end is bound to. Here the caller
    /// names the deployment explicitly.
    pub fn observe(
        &self,
        schema: &ModelSchema,
        uid: u64,
        item: &Item,
        y: f64,
    ) -> Result<ObserveOutcome, VeloxError> {
        self.deployment(schema)?.observe(uid, item, y)
    }

    /// Names of all installed deployments, unordered.
    pub fn deployment_names(&self) -> Vec<String> {
        self.deployments.read().unwrap().keys().cloned().collect()
    }

    /// Removes a deployment; returns whether it existed.
    pub fn uninstall(&self, name: &str) -> bool {
        self.deployments.write().unwrap().remove(name).is_some()
    }
}
