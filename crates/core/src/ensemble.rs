//! Dynamic model selection — the abstract's "online model maintenance and
//! selection (i.e., dynamic weighting)".
//!
//! Velox can host several models of the same prediction task (e.g. a
//! matrix-factorization model and a content-based model for the same
//! catalog). [`EnsembleSelector`] serves a *weighted combination* of their
//! predictions and adapts the weights online with the multiplicative-weights
//! (Hedge/exponentiated-gradient) rule: each observation multiplies every
//! model's weight by `exp(−η · loss)` and renormalizes. Models that predict
//! well gain serving weight within `O(log n / η)` observations; a model
//! that degrades (stale, bad deploy) is de-weighted automatically, which is
//! the "model selection" half of lifecycle management.
//!
//! Weights can be global or per-user (`PerUserWeights`): per-user weighting
//! captures that different model families fit different users (heavy raters
//! suit the latent-factor model; cold users suit the content model).

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::RwLock;

use velox_models::Item;

use crate::error::VeloxError;
use crate::velox::Velox;

/// How ensemble weights are scoped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightScope {
    /// One weight vector shared by all users.
    Global,
    /// Independent weights per user (falling back to the global vector for
    /// users with no feedback yet).
    PerUser,
}

/// A prediction from the ensemble, with the per-model breakdown.
#[derive(Debug, Clone)]
pub struct EnsemblePrediction {
    /// The weighted ensemble score.
    pub score: f64,
    /// `(model name, weight, that model's raw score)` per member.
    pub breakdown: Vec<(String, f64, f64)>,
}

struct Member {
    name: String,
    velox: Arc<Velox>,
}

/// An online-weighted ensemble over Velox deployments.
pub struct EnsembleSelector {
    members: Vec<Member>,
    /// Hedge learning rate η.
    eta: f64,
    /// Fixed-Share mixing rate γ (Herbster–Warmuth): after every update
    /// each weight is mixed with the uniform distribution,
    /// `w ← (1−γ)w + γ/n`. Without it a member whose weight decays to zero
    /// can never recover — fatal for lifecycle management, where a
    /// currently-bad model may be retrained into the best one.
    share: f64,
    scope: WeightScope,
    global: RwLock<Vec<f64>>,
    per_user: RwLock<HashMap<u64, Vec<f64>>>,
}

impl EnsembleSelector {
    /// Creates an ensemble over `(name, deployment)` members with learning
    /// rate `eta > 0`. Weights start uniform.
    ///
    /// # Panics
    /// Panics on an empty member list or non-positive `eta`.
    pub fn new(members: Vec<(String, Arc<Velox>)>, eta: f64, scope: WeightScope) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        assert!(eta > 0.0, "Hedge learning rate must be positive");
        let n = members.len();
        EnsembleSelector {
            members: members.into_iter().map(|(name, velox)| Member { name, velox }).collect(),
            eta,
            share: 1e-3,
            scope,
            global: RwLock::new(vec![1.0 / n as f64; n]),
            per_user: RwLock::new(HashMap::new()),
        }
    }

    /// Overrides the Fixed-Share mixing rate γ ∈ [0, 1). Larger values
    /// track regime switches faster at the cost of slower convergence in a
    /// stationary regime; 0 recovers pure Hedge (a zeroed weight is then
    /// permanent).
    pub fn with_fixed_share(mut self, gamma: f64) -> Self {
        assert!((0.0..1.0).contains(&gamma), "fixed-share rate must be in [0, 1)");
        self.share = gamma;
        self
    }

    /// Number of member models.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members (never: construction forbids
    /// it; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Current weights for a user (the global vector under
    /// [`WeightScope::Global`] or for users without feedback).
    pub fn weights(&self, uid: u64) -> Vec<f64> {
        if self.scope == WeightScope::PerUser {
            if let Some(w) = self.per_user.read().unwrap().get(&uid) {
                return w.clone();
            }
        }
        self.global.read().unwrap().clone()
    }

    /// Member names in weight order.
    pub fn member_names(&self) -> Vec<String> {
        self.members.iter().map(|m| m.name.clone()).collect()
    }

    /// Ensemble prediction: the weight-averaged member scores.
    pub fn predict(&self, uid: u64, item: &Item) -> Result<EnsemblePrediction, VeloxError> {
        let weights = self.weights(uid);
        let mut score = 0.0;
        let mut breakdown = Vec::with_capacity(self.members.len());
        for (member, &w) in self.members.iter().zip(&weights) {
            let raw = member.velox.predict(uid, item)?.score;
            score += w * raw;
            breakdown.push((member.name.clone(), w, raw));
        }
        Ok(EnsemblePrediction { score, breakdown })
    }

    /// Feeds an observation to every member (each runs its own online
    /// update) and applies the Hedge weight update from the members'
    /// *prequential* losses — the loss of each model's prediction before it
    /// saw the label, so the weighting is an honest forecast comparison.
    pub fn observe(&self, uid: u64, item: &Item, y: f64) -> Result<(), VeloxError> {
        let mut losses = Vec::with_capacity(self.members.len());
        for member in &self.members {
            let outcome = member.velox.observe(uid, item, y)?;
            losses.push(outcome.loss);
        }
        // Normalize losses to [0, 1] for a scale-free multiplicative update
        // (Hedge's regret bound assumes bounded losses).
        let max_loss = losses.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        let factors: Vec<f64> = losses.iter().map(|l| (-self.eta * l / max_loss).exp()).collect();

        let share = self.share;
        let update = |w: &mut Vec<f64>| {
            let mut total = 0.0;
            for (wi, f) in w.iter_mut().zip(&factors) {
                *wi *= f;
                total += *wi;
            }
            let n = w.len() as f64;
            // Renormalize (guarding underflow), then Fixed-Share mix so no
            // member's weight can decay irrecoverably to zero.
            if total <= 0.0 || !total.is_finite() {
                for wi in w.iter_mut() {
                    *wi = 1.0 / n;
                }
            } else {
                for wi in w.iter_mut() {
                    *wi = (1.0 - share) * (*wi / total) + share / n;
                }
            }
        };

        match self.scope {
            WeightScope::Global => update(&mut self.global.write().unwrap()),
            WeightScope::PerUser => {
                let mut map = self.per_user.write().unwrap();
                let w = map.entry(uid).or_insert_with(|| self.global.read().unwrap().clone());
                update(w);
            }
        }
        Ok(())
    }

    /// The member currently carrying the most weight for a user.
    pub fn dominant_model(&self, uid: u64) -> (String, f64) {
        let weights = self.weights(uid);
        let (idx, &w) = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
            .expect("non-empty ensemble");
        (self.members[idx].name.clone(), w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VeloxConfig;
    use std::collections::HashMap as StdHashMap;
    use velox_linalg::Vector;
    use velox_models::IdentityModel;

    /// Two deployments over the same 2-D catalog: "good" items match model
    /// A's planted structure, so A's online learner fits fast; model B is
    /// fed the same data but its feature space is degenerate (1 useful dim),
    /// so it fits worse.
    fn two_member_ensemble(scope: WeightScope) -> EnsembleSelector {
        let make = |name: &str, dim: usize| -> Arc<Velox> {
            let v = Arc::new(Velox::deploy(
                Arc::new(IdentityModel::new(name, dim, 0.5)),
                StdHashMap::new(),
                VeloxConfig::single_node(),
            ));
            for item in 0..20u64 {
                let full = [(item as f64 * 0.37).sin(), (item as f64 * 0.73).cos()];
                v.register_item(item, full[..dim].to_vec());
            }
            v
        };
        EnsembleSelector::new(
            vec![("full".into(), make("full", 2)), ("degenerate".into(), make("degenerate", 1))],
            2.0,
            scope,
        )
    }

    fn truth(item: u64) -> f64 {
        // Depends on both dims → the 1-D model cannot represent it.
        1.5 * (item as f64 * 0.37).sin() - 1.0 * (item as f64 * 0.73).cos()
    }

    #[test]
    fn weights_start_uniform_and_sum_to_one() {
        let e = two_member_ensemble(WeightScope::Global);
        let w = e.weights(0);
        assert_eq!(w, vec![0.5, 0.5]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.member_names(), vec!["full", "degenerate"]);
    }

    #[test]
    fn hedge_shifts_weight_to_the_better_model() {
        let e = two_member_ensemble(WeightScope::Global);
        for round in 0..30u64 {
            let item = round % 20;
            e.observe(7, &Item::Id(item), truth(item)).unwrap();
        }
        let (name, weight) = e.dominant_model(7);
        assert_eq!(name, "full");
        assert!(weight > 0.8, "better model should dominate: {weight}");
        let w = e.weights(7);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12, "weights stay normalized");
    }

    #[test]
    fn ensemble_prediction_is_weighted_average() {
        let e = two_member_ensemble(WeightScope::Global);
        for round in 0..10u64 {
            e.observe(1, &Item::Id(round % 20), truth(round % 20)).unwrap();
        }
        let pred = e.predict(1, &Item::Id(3)).unwrap();
        let manual: f64 = pred.breakdown.iter().map(|(_, w, s)| w * s).sum();
        assert!((pred.score - manual).abs() < 1e-12);
        assert_eq!(pred.breakdown.len(), 2);
    }

    #[test]
    fn ensemble_beats_its_worst_member() {
        let e = two_member_ensemble(WeightScope::Global);
        // Train.
        for round in 0..100u64 {
            e.observe(2, &Item::Id(round % 20), truth(round % 20)).unwrap();
        }
        // Evaluate squared error of ensemble vs. degenerate member.
        let mut err_ensemble = 0.0;
        let mut err_degenerate = 0.0;
        for item in 0..20u64 {
            let p = e.predict(2, &Item::Id(item)).unwrap();
            err_ensemble += (p.score - truth(item)).powi(2);
            let deg = p.breakdown[1].2;
            err_degenerate += (deg - truth(item)).powi(2);
        }
        assert!(
            err_ensemble < err_degenerate * 0.5,
            "ensemble {err_ensemble} vs degenerate member {err_degenerate}"
        );
    }

    #[test]
    fn per_user_weights_diverge() {
        let e = two_member_ensemble(WeightScope::PerUser);
        // User 1 produces data the full model fits; user 2 produces data
        // only the first dimension explains (so the degenerate model is
        // *equally* good and cheap noise keeps weights near parity).
        for round in 0..40u64 {
            let item = round % 20;
            e.observe(1, &Item::Id(item), truth(item)).unwrap();
            let first_dim_only = 2.0 * (item as f64 * 0.37).sin();
            e.observe(2, &Item::Id(item), first_dim_only).unwrap();
        }
        let w1 = e.weights(1);
        let w2 = e.weights(2);
        assert!(w1[0] > 0.8, "user 1 favours the full model: {w1:?}");
        assert!(w2[0] < w1[0], "user 2's weights must differ from user 1's: {w1:?} vs {w2:?}");
        // A user with no feedback gets the global (uniform) weights.
        assert_eq!(e.weights(999), vec![0.5, 0.5]);
    }

    #[test]
    fn degraded_member_is_deweighted() {
        // Build the members by hand so the test can corrupt one directly
        // (a bad deploy / data-pipeline bug on one model).
        let make = |name: &str, dim: usize| -> Arc<Velox> {
            let v = Arc::new(Velox::deploy(
                Arc::new(IdentityModel::new(name, dim, 0.5)),
                StdHashMap::new(),
                VeloxConfig::single_node(),
            ));
            for item in 0..20u64 {
                let full = [(item as f64 * 0.37).sin(), (item as f64 * 0.73).cos()];
                v.register_item(item, full[..dim].to_vec());
            }
            v
        };
        let full = make("full", 2);
        let degenerate = make("degenerate", 1);
        let e = EnsembleSelector::new(
            vec![("full".into(), Arc::clone(&full)), ("degenerate".into(), degenerate)],
            2.0,
            WeightScope::Global,
        );
        for round in 0..30u64 {
            e.observe(5, &Item::Id(round % 20), truth(round % 20)).unwrap();
        }
        assert_eq!(e.dominant_model(5).0, "full");
        let w_before = e.weights(5)[0];

        // Incident: the full deployment ingests garbage out-of-band.
        for round in 0..50u64 {
            full.observe(5, &Item::Id(round % 20), 100.0).unwrap();
        }
        // Honest traffic resumes through the ensemble; the corrupted member
        // now predicts wildly and Hedge de-weights it.
        for round in 0..10u64 {
            let item = round % 20;
            e.observe(5, &Item::Id(item), truth(item)).unwrap();
        }
        let w_after = e.weights(5)[0];
        assert!(
            w_after < w_before * 0.5,
            "corrupted member must lose weight: {w_before:.3} -> {w_after:.3}"
        );
        assert_eq!(e.dominant_model(5).0, "degenerate");
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_panics() {
        let _ = EnsembleSelector::new(vec![], 1.0, WeightScope::Global);
    }

    #[test]
    fn raw_items_flow_through() {
        let e = two_member_ensemble(WeightScope::Global);
        // Raw items only work if every member accepts the payload — the
        // degenerate member expects d=1, so this must error, not panic.
        let raw = Item::Raw(Vector::from_vec(vec![0.5, 0.5]));
        assert!(e.predict(0, &raw).is_err());
    }
}
