//! The deployed Velox system: predictor + manager for one model lineage.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, RwLock};

use velox_bandit::{
    BanditPolicy, Candidate, EpsilonGreedyPolicy, GreedyPolicy, LinUcbPolicy, ThompsonPolicy,
    ValidationPool,
};
use velox_batch::JobExecutor;
use velox_cluster::{Cluster, ClusterStats, FaultPlan, NodeHealth};
use velox_linalg::Vector;
use velox_models::{Item, ModelError, TrainingExample, VeloxModel};
use velox_obs::{Counter, EventKind, Histogram, Registry, SpanTimer, Timer, TimerMode};
use velox_online::{
    PerUserErrorTracker, PrequentialEvaluator, StalenessDetector, UpdateStrategy, UserOnlineModel,
};
use velox_storage::codec::{decode_observations, encode_observations};
use velox_storage::wal::{Wal, WalConfig};
use velox_storage::{CheckpointStore, Namespace, ObservationLog, StorageError};

use crate::bootstrap::BootstrapState;
use crate::config::{BanditChoice, VeloxConfig};
use crate::durability::{CheckpointReport, DurabilityConfig, DurabilityStats, RecoveryReport};
use crate::error::VeloxError;
use crate::persistence::DeploymentSnapshot;
use crate::sharded_cache::ShardedCache;

/// How gracefully degraded a serving answer was (§3's fault-tolerance
/// story: replication keeps answers flowing when nodes die, at decreasing
/// fidelity).
///
/// The levels form a ladder: the serving path walks down it until
/// something can answer, so a request only errors when even the bootstrap
/// prior is unusable (it never is — `Bootstrap` always answers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationLevel {
    /// The user's primary partition answered — normal operation.
    Full,
    /// The primary was unreachable; a surviving replica answered with
    /// up-to-date weights.
    Replica,
    /// No live replica held the user; a last-known-good cached copy of
    /// their weights answered (may miss recent online updates).
    StaleCache,
    /// Nothing user-specific survived; the bootstrap (population-mean)
    /// model answered.
    Bootstrap,
}

impl DegradationLevel {
    /// Stable snake_case label (metric `level` label values).
    pub fn label(&self) -> &'static str {
        match self {
            DegradationLevel::Full => "full",
            DegradationLevel::Replica => "replica",
            DegradationLevel::StaleCache => "stale_cache",
            DegradationLevel::Bootstrap => "bootstrap",
        }
    }

    fn index(&self) -> usize {
        match self {
            DegradationLevel::Full => 0,
            DegradationLevel::Replica => 1,
            DegradationLevel::StaleCache => 2,
            DegradationLevel::Bootstrap => 3,
        }
    }
}

/// Per-level counts of served requests (each predict/topK counts exactly
/// once, under the level it was served at).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationCounts {
    /// Requests served at full fidelity.
    pub full: u64,
    /// Requests served by a surviving replica.
    pub replica: u64,
    /// Requests served from the stale-weight cache.
    pub stale_cache: u64,
    /// Requests served by the bootstrap prior during an outage.
    pub bootstrap: u64,
}

impl DegradationCounts {
    /// Total requests counted across all levels.
    pub fn total(&self) -> u64 {
        self.full + self.replica + self.stale_cache + self.bootstrap
    }
}

/// State of the observe redo queue (outage buffering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedoQueueStats {
    /// Observations buffered because no live replica could take the write.
    pub buffered: u64,
    /// Buffered observations successfully re-applied after recovery.
    pub drained: u64,
    /// Observations shed because the queue was full during the outage.
    pub shed: u64,
    /// Observations currently waiting in the queue.
    pub pending: usize,
}

/// Response of a point prediction.
#[derive(Debug, Clone)]
pub struct PredictResponse {
    /// Predicted score `wᵤᵀ f(x, θ)` (plus the model's internal offsets).
    pub score: f64,
    /// Whether the score came from the prediction cache.
    pub cached: bool,
    /// Whether the user was unknown and served the bootstrap (mean-weight)
    /// model.
    pub bootstrapped: bool,
    /// Virtual serving cost in microseconds (storage/network accesses under
    /// the cluster's cost model; excludes CPU time, which the caller
    /// measures in wall-clock).
    pub virtual_cost_us: f64,
    /// How degraded this answer was (`Full` in normal operation).
    pub degradation: DegradationLevel,
}

/// Response of a `topK` evaluation.
#[derive(Debug, Clone)]
pub struct TopKResponse {
    /// `(input index, score)` pairs, sorted by score descending.
    pub ranked: Vec<(usize, f64)>,
    /// Index (into the input candidate list) of the item the system chose
    /// to *serve* — the bandit's pick, or a validation-pool randomization.
    pub served: usize,
    /// Whether the served item came from validation randomization rather
    /// than the bandit policy.
    pub randomized: bool,
    /// Fraction of candidates scored from the prediction cache.
    pub cached_fraction: f64,
    /// Virtual serving cost in microseconds.
    pub virtual_cost_us: f64,
    /// How degraded this answer was (`Full` in normal operation).
    pub degradation: DegradationLevel,
}

/// Outcome of an `observe` call.
#[derive(Debug, Clone)]
pub struct ObserveOutcome {
    /// Prediction for this pair *before* the update (prequential error).
    pub predicted_before: f64,
    /// Loss of that prediction under the model's loss function.
    pub loss: f64,
    /// Whether the observation was trained on (false = held out for
    /// cross-validation).
    pub trained: bool,
    /// Whether the model is flagged stale after this observation.
    pub stale: bool,
    /// Whether this observation triggered an automatic offline retrain.
    pub retrained: bool,
    /// Whether the online update was deferred into the redo queue because
    /// the user's partition is unreachable (`predicted_before`/`loss` are
    /// NaN in that case — there was no model to predict with).
    pub deferred: bool,
}

/// A snapshot of system-wide observability counters.
#[derive(Debug, Clone)]
pub struct SystemStats {
    /// Current model version.
    pub model_version: u64,
    /// Offline retrains completed since deployment.
    pub retrains: u64,
    /// Observations ingested.
    pub observations: u64,
    /// Users with online state.
    pub online_users: usize,
    /// Prediction-cache `(hits, misses, evictions)`.
    pub prediction_cache: (u64, u64, u64),
    /// Feature-cache `(hits, misses, evictions)` (computed models only).
    pub feature_cache: (u64, u64, u64),
    /// Cluster counters.
    pub cluster: ClusterStats,
    /// Mean loss across all observations since the last retrain.
    pub mean_loss: f64,
    /// Prequential generalization loss, when cross-validation is enabled.
    pub generalization_loss: Option<f64>,
    /// Validation-pool `(randomized serves, total serves)`.
    pub validation_decisions: (u64, u64),
    /// Whether the staleness detector currently flags the model.
    pub stale: bool,
    /// Per-degradation-level serve counts (reconciles with request counts:
    /// every non-cache-bypassing predict/topK lands in exactly one level).
    pub degraded: DegradationCounts,
    /// Redo-queue counters (outage observation buffering).
    pub redo: RedoQueueStats,
    /// Durable-state counters (all zero when durability is disabled).
    pub durability: DurabilityStats,
}

/// Cache key: `(uid, item_id, user weight version, model version)` — version
/// components make stale entries unreachable instead of requiring scans.
type PredKey = (u64, u64, u64, u64);

/// One retained model version for rollback: the model object plus the full
/// user-weight table at swap time.
struct HistoryEntry {
    version: u64,
    model: Arc<dyn VeloxModel>,
    user_weights: Vec<(u64, Vec<f64>)>,
}

/// How many superseded versions are retained for rollback.
const VERSION_HISTORY: usize = 4;

/// Live durable-state machinery: the checkpoint store plus bookkeeping
/// about the last checkpoint taken. The WAL itself lives inside the
/// observation log (write path) — this holds everything else.
struct DurabilityRuntime {
    store: CheckpointStore,
    config: DurabilityConfig,
    /// Sequence number of the newest checkpoint (0 = none yet).
    last_seq: u64,
    /// Observation-log length the newest checkpoint covers.
    last_offset: u64,
}

/// A deployed Velox instance serving one model lineage.
pub struct Velox {
    config: VeloxConfig,
    model: RwLock<Arc<dyn VeloxModel>>,
    version: AtomicU64,
    history: Mutex<Vec<HistoryEntry>>,
    cluster: Cluster,
    obslog: ObservationLog,
    /// Raw item attributes for computed feature functions.
    catalog: Namespace<Vec<f64>>,
    /// Per-user online learning state (fine-grained per-user locks).
    user_state: Namespace<Arc<Mutex<UserOnlineModel>>>,
    /// Per-user weight-update counters (prediction-cache keys).
    user_versions: Namespace<u64>,
    /// Full training history (uid, item, y) for offline retraining.
    training_log: Mutex<Vec<TrainingExample>>,
    prediction_cache: ShardedCache<PredKey, f64>,
    /// Computed-feature cache keyed by `(item_id, model_version)`.
    feature_cache: ShardedCache<(u64, u64), Vector>,
    /// Last-known-good user weights, written through on every weight write
    /// and served (flagged `StaleCache`) when every live replica is gone.
    stale_weights: ShardedCache<u64, Vector>,
    /// Observations buffered while their user's partition is unreachable,
    /// drained into the online state when a node recovers. Bounded by
    /// `redo_queue_capacity`; overflow is shed and counted.
    redo_queue: Mutex<VecDeque<TrainingExample>>,
    bootstrap: BootstrapState,
    error_tracker: Mutex<PerUserErrorTracker>,
    staleness: Mutex<StalenessDetector>,
    prequential: Mutex<PrequentialEvaluator>,
    bandit: Mutex<Box<dyn BanditPolicy>>,
    validation: Mutex<ValidationPool>,
    executor: JobExecutor,
    stale_flag: AtomicBool,
    /// Metric registry + lifecycle event log for this deployment. The
    /// handles below are adopted into it, so a snapshot sees the same
    /// atomics the serving paths update.
    registry: Registry,
    predict_latency: Arc<Histogram>,
    top_k_latency: Arc<Histogram>,
    observe_latency: Arc<Histogram>,
    online_update_latency: Arc<Histogram>,
    pred_cache_hits: Arc<Counter>,
    pred_cache_misses: Arc<Counter>,
    feat_cache_hits: Arc<Counter>,
    feat_cache_misses: Arc<Counter>,
    observations_total: Arc<Counter>,
    retrains: Arc<Counter>,
    /// Per-degradation-level serve counters, indexed by
    /// `DegradationLevel::index()`.
    degraded: [Arc<Counter>; 4],
    redo_buffered: Arc<Counter>,
    redo_drained: Arc<Counter>,
    redo_shed: Arc<Counter>,
    /// Guards against concurrent offline retrains (sync or async).
    retrain_in_flight: AtomicBool,
    /// Swap gate: observe/ingest write-backs hold it shared; a version
    /// swap holds it exclusive, so no observation can interleave with the
    /// table swap (and the post-retrain replay boundary is exact).
    swap_gate: RwLock<()>,
    /// Lazily-built MIPS index over the catalog's feature vectors, tagged
    /// with the model version it was built against (§8's efficient top-K).
    mips_index: Mutex<Option<(u64, Arc<velox_linalg::MipsIndex>)>>,
    /// Durable-state runtime (checkpoint store + config); `None` when the
    /// deployment is memory-only. The WAL rides inside `obslog`.
    durability: Mutex<Option<DurabilityRuntime>>,
    /// Lets a slow automatic checkpoint shed later triggers instead of
    /// queueing observe threads behind the durability mutex.
    checkpoint_in_flight: AtomicBool,
    /// Span-timer clock discipline on the hot serving paths.
    timer_mode: TimerMode,
    recovery_replayed: Arc<Counter>,
    recovery_replay_duration: Arc<Histogram>,
    checkpoints_total: Arc<Counter>,
    checkpoint_failures: Arc<Counter>,
}

fn make_policy(choice: BanditChoice, seed: u64) -> Box<dyn BanditPolicy> {
    match choice {
        BanditChoice::Greedy => Box::new(GreedyPolicy),
        BanditChoice::EpsilonGreedy(eps) => Box::new(EpsilonGreedyPolicy::new(eps, seed)),
        BanditChoice::LinUcb(alpha) => Box::new(LinUcbPolicy::new(alpha)),
        BanditChoice::Thompson(scale) => Box::new(ThompsonPolicy::new(scale, seed)),
    }
}

impl Velox {
    /// Deploys a model: places its materialized feature table across the
    /// cluster, installs the initial user weights (from offline training),
    /// and initializes all serving state.
    pub fn deploy(
        model: Arc<dyn VeloxModel>,
        initial_weights: HashMap<u64, Vector>,
        config: VeloxConfig,
    ) -> Self {
        let cluster = Cluster::new(config.cluster.clone());
        cluster.publish_item_features(model.materialized_table());

        // One registry per deployment; serving-path handles are created
        // here once and then updated lock-free.
        let registry = Registry::new();
        let strategy = match config.update_strategy {
            UpdateStrategy::Naive => "naive",
            UpdateStrategy::ShermanMorrison => "sherman_morrison",
        };
        let predict_latency = registry.histogram("velox_predict_latency_ns");
        let top_k_latency = registry.histogram("velox_top_k_latency_ns");
        let observe_latency = registry.histogram("velox_observe_latency_ns");
        let online_update_latency =
            registry.histogram_with("velox_online_update_latency_ns", &[("strategy", strategy)]);
        let pred_cache_hits = registry.counter("velox_prediction_cache_hits_total");
        let pred_cache_misses = registry.counter("velox_prediction_cache_misses_total");
        let feat_cache_hits = registry.counter("velox_feature_cache_hits_total");
        let feat_cache_misses = registry.counter("velox_feature_cache_misses_total");
        let observations_total = registry.counter("velox_observations_total");
        let retrains = registry.counter("velox_retrains_total");
        let degraded = [
            DegradationLevel::Full,
            DegradationLevel::Replica,
            DegradationLevel::StaleCache,
            DegradationLevel::Bootstrap,
        ]
        .map(|l| registry.counter_with("velox_degraded_requests_total", &[("level", l.label())]));
        let redo_buffered = registry.counter("velox_redo_buffered_total");
        let redo_drained = registry.counter("velox_redo_drained_total");
        let redo_shed = registry.counter("velox_redo_shed_total");
        let recovery_replayed = registry.counter("velox_recovery_replayed_total");
        let recovery_replay_duration = registry.histogram("velox_recovery_replay_duration_ns");
        let checkpoints_total = registry.counter("velox_checkpoints_total");
        let checkpoint_failures = registry.counter("velox_checkpoint_failures_total");
        cluster.register_metrics(&registry);
        let timer_mode = config.obs.timer_mode;

        let velox = Velox {
            model: RwLock::new(Arc::clone(&model)),
            version: AtomicU64::new(1),
            history: Mutex::new(Vec::new()),
            obslog: ObservationLog::new(),
            catalog: Namespace::new("item_catalog"),
            user_state: Namespace::new("user_online_state"),
            user_versions: Namespace::new("user_versions"),
            training_log: Mutex::new(Vec::new()),
            prediction_cache: ShardedCache::new(config.prediction_cache_capacity),
            feature_cache: ShardedCache::new(config.feature_cache_capacity),
            stale_weights: ShardedCache::new(config.stale_weight_cache_capacity),
            redo_queue: Mutex::new(VecDeque::new()),
            bootstrap: BootstrapState::new(model.dim()),
            error_tracker: Mutex::new(PerUserErrorTracker::new()),
            staleness: Mutex::new(StalenessDetector::new(
                config.staleness_threshold,
                config.staleness_warmup,
            )),
            prequential: Mutex::new(PrequentialEvaluator::new(config.crossval_holdout_every)),
            bandit: Mutex::new(make_policy(config.bandit, config.seed)),
            validation: Mutex::new(ValidationPool::new(
                config.validation_fraction,
                config.validation_capacity,
                config.seed ^ 0x5A11_DA7A,
            )),
            executor: JobExecutor::new(config.training_workers),
            stale_flag: AtomicBool::new(false),
            retrain_in_flight: AtomicBool::new(false),
            swap_gate: RwLock::new(()),
            mips_index: Mutex::new(None),
            registry,
            predict_latency,
            top_k_latency,
            observe_latency,
            online_update_latency,
            pred_cache_hits,
            pred_cache_misses,
            feat_cache_hits,
            feat_cache_misses,
            observations_total,
            retrains,
            degraded,
            redo_buffered,
            redo_drained,
            redo_shed,
            durability: Mutex::new(None),
            checkpoint_in_flight: AtomicBool::new(false),
            timer_mode,
            recovery_replayed,
            recovery_replay_duration,
            checkpoints_total,
            checkpoint_failures,
            cluster,
            config,
        };
        // Adopt the storage-layer counters so the registry exposes the
        // exact atomics those components bump.
        velox.registry.register_histogram(
            "velox_obslog_append_latency_ns",
            &[],
            velox.obslog.append_latency_histogram(),
        );
        for ns in [
            ("item_catalog", velox.catalog.reads_counter(), velox.catalog.writes_counter()),
            (
                "user_online_state",
                velox.user_state.reads_counter(),
                velox.user_state.writes_counter(),
            ),
            (
                "user_versions",
                velox.user_versions.reads_counter(),
                velox.user_versions.writes_counter(),
            ),
        ] {
            velox.registry.register_counter("velox_kv_reads_total", &[("table", ns.0)], ns.1);
            velox.registry.register_counter("velox_kv_writes_total", &[("table", ns.0)], ns.2);
        }
        velox.install_user_weights(&initial_weights);
        velox
    }

    /// This deployment's metric registry and lifecycle event log.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn install_user_weights(&self, weights: &HashMap<u64, Vector>) {
        // Serving weights and the bootstrap mean are installed eagerly;
        // per-user *online* state (the O(d²) inverse) is created lazily on
        // a user's first observe, with these weights as the prior — pure
        // serving never pays the online-learning memory cost.
        for (&uid, w) in weights {
            self.cluster.put_user_weights(uid, w.as_slice().to_vec());
            self.stale_weights.put(uid, w.clone());
            self.bootstrap.contribute(uid, w);
        }
    }

    /// Registers an item's raw attributes in the catalog — required before
    /// computed-feature models can serve `Item::Id` references to it.
    pub fn register_item(&self, item_id: u64, attributes: Vec<f64>) {
        self.catalog.put(item_id, attributes);
    }

    /// Gets (or lazily creates) the per-user online state. The prior for a
    /// fresh state is the user's current serving weights when they exist
    /// (offline-trained users), falling back to the bootstrap mean for
    /// brand-new users (§5's heuristic).
    fn user_state_arc(&self, uid: u64) -> Arc<Mutex<UserOnlineModel>> {
        if let Some(s) = self.user_state.get(uid) {
            return s;
        }
        let prior = match self.cluster.peek_user_weights(uid) {
            Some(w) => Vector::from_vec(w),
            // A dead partition may have taken the serving copy with it; the
            // stale cache is a better prior than the population mean.
            None => self.stale_weights.get(&uid).unwrap_or_else(|| self.bootstrap.mean_weights()),
        };
        let fresh = Arc::new(Mutex::new(UserOnlineModel::from_prior(
            &prior,
            self.config.lambda,
            self.config.update_strategy,
        )));
        // update_with keeps creation atomic under racing callers.
        self.user_state.update_with(uid, || Arc::clone(&fresh), |_| {});
        self.user_state.get(uid).expect("just inserted")
    }

    /// Seeds the system with historical training data — the observations
    /// the initial offline training consumed. Eq. 2 solves each user's
    /// weights over *all* of that user's examples, so the per-user online
    /// sufficient statistics must include the offline history, not just a
    /// weak prior around the batch weights; this method replays the history
    /// into them. The examples also enter the training/observation logs so
    /// future offline retrains see the full dataset.
    ///
    /// History is training input, not serving feedback: it does not touch
    /// the quality trackers or staleness detector.
    pub fn ingest_history(&self, examples: &[TrainingExample]) -> Result<(), VeloxError> {
        {
            // Log under the swap gate so no example can fall between a
            // retrain's snapshot and its replay boundary.
            let _gate = self.swap_gate.read().unwrap();
            for ex in examples {
                if let Some(id) = ex.item.id() {
                    self.log_observation(ex.uid, id, ex.y)?;
                }
            }
            self.training_log.lock().unwrap().extend(examples.iter().cloned());
        }
        self.apply_examples_to_online_state(examples)?;
        self.maybe_checkpoint();
        Ok(())
    }

    /// Current model version.
    pub fn model_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The deployed model's feature dimension.
    pub fn dim(&self) -> usize {
        self.model.read().unwrap().dim()
    }

    /// Whether the staleness detector currently flags the model.
    pub fn is_stale(&self) -> bool {
        self.stale_flag.load(Ordering::Acquire)
    }

    fn item_cache_id(item: &Item) -> Option<u64> {
        item.id()
    }

    /// Resolves `f(x, θ)` for an item at a serving node, through the
    /// appropriate cache. Returns `(features, virtual cost in µs)`.
    fn features_for(
        &self,
        model: &Arc<dyn VeloxModel>,
        model_version: u64,
        at_node: usize,
        item: &Item,
    ) -> Result<(Vector, f64), VeloxError> {
        if model.is_materialized() {
            // Materialized: the θ table lives in the cluster, sharded, with
            // per-node hot-item caches.
            match item {
                Item::Id(id) => {
                    let read = self.cluster.read_item_features(at_node, *id);
                    if read.unavailable {
                        return Err(VeloxError::Unavailable(format!(
                            "item {id}: no live replica of its feature partition"
                        )));
                    }
                    let features = read.value.ok_or(ModelError::UnknownItem(*id))?;
                    Ok((Vector::from_vec(features), read.cost_us))
                }
                Item::Raw(_) => {
                    Err(ModelError::WrongItemKind { expected: "catalog item id" }.into())
                }
            }
        } else {
            // Computed: featurization is CPU work; cacheable when the item
            // is a catalog reference.
            match item {
                Item::Id(id) => {
                    if let Some(hit) = self.feature_cache.get(&(*id, model_version)) {
                        self.feat_cache_hits.inc();
                        return Ok((hit, 0.0));
                    }
                    self.feat_cache_misses.inc();
                    let attrs = self.catalog.get(*id).ok_or(ModelError::UnknownItem(*id))?;
                    let features = model.features(&Item::Raw(Vector::from_vec(attrs)))?;
                    self.feature_cache.put((*id, model_version), features.clone());
                    Ok((features, 0.0))
                }
                Item::Raw(_) => Ok((model.features(item)?, 0.0)),
            }
        }
    }

    /// Reads the user's serving weights at a node, walking the degradation
    /// ladder: live replica → stale cached copy → bootstrap mean. Falls
    /// back to the bootstrap mean for unknown users even at full health.
    /// Returns `(weights, bootstrapped, cost µs, degradation level)`.
    fn serving_weights(&self, at_node: usize, uid: u64) -> (Vector, bool, f64, DegradationLevel) {
        let read = self.cluster.read_user_weights(at_node, uid);
        if !read.unavailable {
            let level =
                if read.failover { DegradationLevel::Replica } else { DegradationLevel::Full };
            return match read.value {
                Some(w) => (Vector::from_vec(w), false, read.cost_us, level),
                None => (self.bootstrap.mean_weights(), true, read.cost_us, level),
            };
        }
        match self.stale_weights.get(&uid) {
            Some(w) => (w, false, read.cost_us, DegradationLevel::StaleCache),
            None => {
                (self.bootstrap.mean_weights(), true, read.cost_us, DegradationLevel::Bootstrap)
            }
        }
    }

    /// Counts one served request at its degradation level.
    fn note_degradation(&self, level: DegradationLevel) {
        self.degraded[level.index()].inc();
    }

    /// Whether a score computed at `level` may enter the prediction cache.
    /// Degraded scores must not outlive the outage: a stale- or
    /// bootstrap-served score would otherwise keep being served at full
    /// apparent fidelity after the partition comes back.
    fn cacheable(level: DegradationLevel) -> bool {
        matches!(level, DegradationLevel::Full | DegradationLevel::Replica)
    }

    /// Point prediction for `(uid, item)` — Listing 1's `predict`.
    pub fn predict(&self, uid: u64, item: &Item) -> Result<PredictResponse, VeloxError> {
        let _span = SpanTimer::with_mode(&self.predict_latency, self.timer_mode);
        let node = self.cluster.route_request(uid);
        self.publish_fault_transitions();
        let model_version = self.model_version();
        let user_version = self.user_versions.get(uid).unwrap_or(0);

        // Prediction cache (only catalog items are cacheable; an
        // uncacheable raw-item lookup counts as a miss, so
        // hits + misses == predict calls exactly).
        let key = Self::item_cache_id(item).map(|id| (uid, id, user_version, model_version));
        if let Some(k) = key {
            if let Some(score) = self.prediction_cache.get(&k) {
                self.pred_cache_hits.inc();
                // Only full/replica-fidelity scores enter the cache, so a
                // hit is by construction a full-fidelity answer.
                self.note_degradation(DegradationLevel::Full);
                return Ok(PredictResponse {
                    score,
                    cached: true,
                    bootstrapped: false,
                    virtual_cost_us: 0.0,
                    degradation: DegradationLevel::Full,
                });
            }
        }

        self.pred_cache_misses.inc();
        let model = Arc::clone(&*self.model.read().unwrap());
        let (weights, bootstrapped, w_cost, level) = self.serving_weights(node, uid);
        let (features, f_cost) = self.features_for(&model, model_version, node, item)?;
        let score = weights.dot(&features)?;
        // Bootstrapped scores are served from the *population mean*, which
        // moves whenever any user's weights change — state the cache key
        // cannot see. Never cache them; likewise degraded scores.
        if let (Some(k), false, true) = (key, bootstrapped, Self::cacheable(level)) {
            self.prediction_cache.put(k, score);
        }
        self.note_degradation(level);
        Ok(PredictResponse {
            score,
            cached: false,
            bootstrapped,
            virtual_cost_us: w_cost + f_cost,
            degradation: level,
        })
    }

    /// One coalesced predict pass over many `(uid, item)` pairs — the
    /// serving-tier batch entry point (`velox-serve`'s adaptive batcher
    /// drains its queue into this).
    ///
    /// The pass is **bit-identical** to calling [`Velox::predict`] once per
    /// pair in order: it uses the same weight reads, the same feature
    /// resolution, and the same `wᵤᵀ f(x, θ)` dot (identical op order), and
    /// it consults and fills the prediction cache exactly like the single
    /// path. What it *amortizes* is the per-call overhead: one model
    /// snapshot, one version load, and one serving-weight read per distinct
    /// user in the batch instead of per request — which is where the
    /// batched-vs-unbatched throughput gap in SERVE-BATCH comes from.
    pub fn predict_batch(
        &self,
        requests: &[(u64, Item)],
    ) -> Vec<Result<PredictResponse, VeloxError>> {
        let _span = SpanTimer::with_mode(&self.predict_latency, self.timer_mode);
        self.publish_fault_transitions();
        // One snapshot of the model lineage for the whole batch: no request
        // in it can observe a half-swapped version.
        let model_version = self.model_version();
        let model = Arc::clone(&*self.model.read().unwrap());

        // Per-user read cache for this batch only. Weight reads are
        // deterministic given cluster state, so reusing the first read for
        // later requests of the same user changes nothing numerically.
        let mut weights_by_user: HashMap<u64, (usize, Vector, bool, f64, DegradationLevel)> =
            HashMap::new();
        let mut out = Vec::with_capacity(requests.len());
        for (uid, item) in requests {
            let uid = *uid;
            let user_version = self.user_versions.get(uid).unwrap_or(0);
            let key = Self::item_cache_id(item).map(|id| (uid, id, user_version, model_version));
            if let Some(k) = key {
                if let Some(score) = self.prediction_cache.get(&k) {
                    self.pred_cache_hits.inc();
                    self.note_degradation(DegradationLevel::Full);
                    out.push(Ok(PredictResponse {
                        score,
                        cached: true,
                        bootstrapped: false,
                        virtual_cost_us: 0.0,
                        degradation: DegradationLevel::Full,
                    }));
                    continue;
                }
            }
            self.pred_cache_misses.inc();
            let (node, weights, bootstrapped, w_cost, level) = match weights_by_user.get(&uid) {
                Some((node, w, b, _, l)) => (*node, w.clone(), *b, 0.0, *l),
                None => {
                    let node = self.cluster.route_request(uid);
                    let (w, b, c, l) = self.serving_weights(node, uid);
                    weights_by_user.insert(uid, (node, w.clone(), b, c, l));
                    (node, w, b, c, l)
                }
            };
            let result = self.features_for(&model, model_version, node, item).and_then(
                |(features, f_cost)| {
                    let score = weights.dot(&features)?;
                    if let (Some(k), false, true) = (key, bootstrapped, Self::cacheable(level)) {
                        self.prediction_cache.put(k, score);
                    }
                    self.note_degradation(level);
                    Ok(PredictResponse {
                        score,
                        cached: false,
                        bootstrapped,
                        virtual_cost_us: w_cost + f_cost,
                        degradation: level,
                    })
                },
            );
            out.push(result);
        }
        out
    }

    /// Evaluates a candidate set for a user and picks the item to serve —
    /// Listing 1's `topK`, with bandit-based serving (§5) and
    /// validation-pool randomization (§4.3).
    pub fn top_k(&self, uid: u64, items: &[Item]) -> Result<TopKResponse, VeloxError> {
        if items.is_empty() {
            return Err(VeloxError::EmptyCandidateSet);
        }
        let _span = SpanTimer::with_mode(&self.top_k_latency, self.timer_mode);
        let node = self.cluster.route_request(uid);
        self.publish_fault_transitions();
        let model_version = self.model_version();
        let user_version = self.user_versions.get(uid).unwrap_or(0);
        let model = Arc::clone(&*self.model.read().unwrap());

        // Read the user's weights once for the whole candidate set.
        let (weights, bootstrapped, w_cost, level) = self.serving_weights(node, uid);
        let mut virtual_cost = w_cost;
        let mut cached = 0usize;

        // The user's online state provides per-candidate uncertainty for
        // the bandit; absent state (pure-serving users) means zero
        // uncertainty, reducing every policy to greedy. Exploitation-only
        // policies never read the variance, so skip the O(d²) quadratic
        // form per candidate for them entirely.
        let wants_uncertainty = self.bandit.lock().unwrap().wants_uncertainty();
        let online = if wants_uncertainty { self.user_state.get(uid) } else { None };

        let mut scores = Vec::with_capacity(items.len());
        let mut candidates = Vec::with_capacity(items.len());
        for item in items {
            let key = Self::item_cache_id(item).map(|id| (uid, id, user_version, model_version));
            let (score, features) = match key.and_then(|k| self.prediction_cache.get(&k)) {
                Some(score) => {
                    cached += 1;
                    (score, None)
                }
                None => {
                    let (features, f_cost) =
                        self.features_for(&model, model_version, node, item)?;
                    virtual_cost += f_cost;
                    let score = weights.dot(&features)?;
                    // Same rule as `predict`: bootstrap-mean and degraded
                    // scores are uncacheable.
                    if let (Some(k), false, true) = (key, bootstrapped, Self::cacheable(level)) {
                        self.prediction_cache.put(k, score);
                    }
                    (score, Some(features))
                }
            };
            let variance = match (&online, &features) {
                (Some(state), Some(f)) => state.lock().unwrap().variance(f).unwrap_or(0.0),
                // Cached-score path: recover features only if a bandit with
                // exploration is active and state exists; cheaper to treat
                // cached items as exploitation-only.
                _ => 0.0,
            };
            scores.push(score);
            candidates.push(Candidate { score, variance });
        }
        // Batched (two atomic adds per call, not two per candidate) to keep
        // the fully-cached hot loop free of per-item metric traffic.
        self.pred_cache_hits.add(cached as u64);
        self.pred_cache_misses.add((items.len() - cached) as u64);

        let mut ranked: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));

        // Validation randomization takes precedence over the policy.
        let (served, randomized) =
            match self.validation.lock().unwrap().maybe_randomize(items.len()) {
                Some(idx) => (idx, true),
                None => (self.bandit.lock().unwrap().select(&candidates), false),
            };

        self.note_degradation(level);
        Ok(TopKResponse {
            ranked,
            served,
            randomized,
            cached_fraction: cached as f64 / items.len() as f64,
            virtual_cost_us: virtual_cost,
            degradation: level,
        })
    }

    /// Ingests one observation — Listing 1's `observe`: logs it, updates
    /// the user's weights online (Eq. 2), tracks model quality, and
    /// (optionally) triggers offline retraining on staleness.
    pub fn observe(&self, uid: u64, item: &Item, y: f64) -> Result<ObserveOutcome, VeloxError> {
        let _span = SpanTimer::with_mode(&self.observe_latency, self.timer_mode);
        let node = self.cluster.route_request(uid);
        self.publish_fault_transitions();

        // Every replica of the user's weights is dead: there is no online
        // state to update against and nowhere to write the result. Buffer
        // the observation for redo on recovery instead of erroring.
        if self.cluster.live_user_replicas(uid).is_empty() {
            return self.defer_observation(uid, item, y);
        }

        // The whole read-model → update-state → write-back → log sequence
        // runs under the swap gate (shared), so a concurrent retrain's
        // version swap (exclusive) can never interleave mid-observation —
        // without the gate, an observe computed against the old θ could
        // overwrite a user's freshly retrained weights in the new table,
        // and the observation could miss both the batch snapshot and the
        // post-swap replay.
        let gated: Option<(f64, bool, f64)> = {
            let _gate = self.swap_gate.read().unwrap();
            let model_version = self.model_version();
            let model = Arc::clone(&*self.model.read().unwrap());
            // An unreachable item partition also defers: the update needs
            // f(x, θ). (The gate is released before deferring — the redo
            // path takes it itself.)
            match self.features_for(&model, model_version, node, item) {
                Err(VeloxError::Unavailable(_)) => None,
                Err(e) => return Err(e),
                Ok((features, _f_cost)) => {
                    // Get or create the user's online state (bootstrap prior
                    // for new users — §5's mean-weight heuristic).
                    let state_arc = self.user_state_arc(uid);

                    // Prequential evaluation: predict before updating.
                    let (predicted_before, trained, loss, new_weights) = {
                        let mut state = state_arc.lock().unwrap();
                        let predicted_before = state.predict(&features)?;
                        let loss = model.loss(y, predicted_before, item, uid);
                        let trained = self.prequential.lock().unwrap().record(loss);
                        if trained {
                            let update_timer = Timer::start();
                            state.observe(&features, y)?;
                            update_timer.observe(&self.online_update_latency);
                        }
                        (predicted_before, trained, loss, state.weights().clone())
                    };

                    if trained {
                        // Push the updated weights to every live replica (a
                        // local write at the home shard under ByUser routing)
                        // and bump the cache version. A `None` here means the
                        // last replica died mid-observation; the online state
                        // already holds the update and writes through on the
                        // next trained observe, so only the serving copy lags.
                        let _ = self.cluster.try_update_user_weights(node, uid, Vec::new, |w| {
                            *w = new_weights.as_slice().to_vec()
                        });
                        self.user_versions.update_with(uid, || 0, |v| *v += 1);
                        self.bootstrap.contribute(uid, &new_weights);
                        self.stale_weights.put(uid, new_weights.clone());
                    }

                    // Durable observation log (catalog items) + training log
                    // (all). With a WAL attached, the record hits disk (per
                    // the fsync policy) before this call can return Ok — the
                    // acknowledgment is the durability boundary.
                    if let Some(id) = item.id() {
                        self.log_observation(uid, id, y)?;
                    }
                    self.training_log.lock().unwrap().push(TrainingExample {
                        uid,
                        item: item.clone(),
                        y,
                    });
                    Some((predicted_before, trained, loss))
                }
            }
        };
        let Some((predicted_before, trained, loss)) = gated else {
            return self.defer_observation(uid, item, y);
        };

        // Quality tracking and staleness (gate released: the auto-retrain
        // below acquires the gate exclusively via swap_in).
        self.error_tracker.lock().unwrap().record(uid, loss);
        let stale = self.staleness.lock().unwrap().push(loss);
        if stale && !self.stale_flag.swap(true, Ordering::AcqRel) {
            self.registry
                .event(EventKind::StalenessTrip { observations: self.observations_total.get() });
        }
        let mut retrained = false;
        if stale && self.config.auto_retrain {
            // A retrain already in flight will pick this observation up via
            // the post-swap replay — not an error, and the observation has
            // already been committed either way.
            match self.retrain_offline() {
                Ok(_) => retrained = true,
                Err(VeloxError::RetrainInProgress) => {}
                Err(e) => return Err(e),
            }
        }

        // Automatic checkpointing runs here, after every gate/lock from the
        // observation itself is released (taking one inside the gated block
        // would deadlock: the capture needs the gate exclusively).
        self.maybe_checkpoint();

        Ok(ObserveOutcome {
            predicted_before,
            loss,
            trained,
            stale: self.is_stale() && !retrained,
            retrained,
            deferred: false,
        })
    }

    /// Buffers an observation that cannot be applied right now (its user's
    /// partition — or the item's — is unreachable) into the bounded redo
    /// queue, logging it durably so offline retrains still see it. Sheds
    /// (with an error and a counter) when the queue is full.
    fn defer_observation(
        &self,
        uid: u64,
        item: &Item,
        y: f64,
    ) -> Result<ObserveOutcome, VeloxError> {
        {
            let mut queue = self.redo_queue.lock().unwrap();
            if queue.len() >= self.config.redo_queue_capacity {
                self.redo_shed.inc();
                return Err(VeloxError::Unavailable("redo queue full; observation shed".into()));
            }
            queue.push_back(TrainingExample { uid, item: item.clone(), y });
        }
        self.redo_buffered.inc();
        // The observation is still real feedback: it enters the durable
        // logs now (under the swap gate, like any other observation) even
        // though its online update waits for recovery. The redo drain
        // applies state only — it never re-logs — so each observation is
        // logged exactly once and applied exactly once.
        {
            let _gate = self.swap_gate.read().unwrap();
            if let Some(id) = item.id() {
                self.log_observation(uid, id, y)?;
            }
            self.training_log.lock().unwrap().push(TrainingExample { uid, item: item.clone(), y });
        }
        self.maybe_checkpoint();
        Ok(ObserveOutcome {
            predicted_before: f64::NAN,
            loss: f64::NAN,
            trained: false,
            stale: self.is_stale(),
            retrained: false,
            deferred: true,
        })
    }

    /// Re-applies every buffered observation to the online state and the
    /// serving tables. Called automatically when a node recovery is
    /// published; callable directly for manual recovery drills. Returns
    /// how many observations were applied. On failure (e.g. the item
    /// partition is still unreachable) the batch is pushed back intact and
    /// retried on the next recovery.
    pub fn drain_redo_queue(&self) -> Result<u64, VeloxError> {
        let pending: Vec<TrainingExample> = {
            let mut queue = self.redo_queue.lock().unwrap();
            queue.drain(..).collect()
        };
        if pending.is_empty() {
            return Ok(0);
        }
        match self.apply_examples_to_online_state(&pending) {
            Ok(()) => {
                let n = pending.len() as u64;
                self.redo_drained.add(n);
                self.registry.event(EventKind::RedoDrain { applied: n });
                Ok(n)
            }
            Err(e) => {
                let mut queue = self.redo_queue.lock().unwrap();
                for ex in pending.into_iter().rev() {
                    queue.push_front(ex);
                }
                Err(e)
            }
        }
    }

    /// Turns health transitions journaled by the cluster into lifecycle
    /// events, and drains the redo queue when a node comes back. Called on
    /// every serving request (cheap when nothing is pending) and by the
    /// explicit kill/recover entry points.
    fn publish_fault_transitions(&self) {
        if !self.cluster.transitions_pending() {
            return;
        }
        for t in self.cluster.take_transitions() {
            match t.health {
                NodeHealth::Down => {
                    self.registry.event(EventKind::NodeDown { node: t.node as u64 });
                }
                NodeHealth::Up => {
                    self.registry.event(EventKind::NodeRecovered {
                        node: t.node as u64,
                        caught_up: t.caught_up,
                    });
                    // Redo failures here are not fatal to serving: the
                    // batch stays queued and retries on the next recovery
                    // or manual drain.
                    let _ = self.drain_redo_queue();
                }
                NodeHealth::Recovering => {}
            }
        }
    }

    /// Installs a deterministic fault plan on the underlying cluster (see
    /// [`FaultPlan`]); scheduled events fire as requests are served.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.cluster.install_fault_plan(plan);
    }

    /// Kills a cluster node immediately (chaos drills outside a scripted
    /// plan). The outage is observable right away: the lifecycle event is
    /// published before returning.
    pub fn kill_node(&self, node: usize) {
        self.cluster.kill_node(node);
        self.publish_fault_transitions();
    }

    /// Recovers a cluster node immediately: re-populates its shards from
    /// surviving replicas, publishes the lifecycle event, and drains the
    /// redo queue. Returns the number of entries caught up.
    pub fn recover_node(&self, node: usize) -> u64 {
        let caught_up = self.cluster.recover_node(node);
        self.publish_fault_transitions();
        caught_up
    }

    /// Records a label for a `topK` serve that was validation-randomized,
    /// feeding the unbiased validation pool (§4.3). Also performs the
    /// normal `observe` path (the observation is still real feedback).
    pub fn observe_randomized(
        &self,
        uid: u64,
        item: &Item,
        y: f64,
    ) -> Result<ObserveOutcome, VeloxError> {
        let outcome = self.observe(uid, item, y)?;
        if let Some(id) = item.id() {
            self.validation.lock().unwrap().record(
                velox_bandit::validation::ValidationObservation {
                    uid,
                    item_id: id,
                    predicted: outcome.predicted_before,
                    actual: y,
                },
            );
        }
        Ok(outcome)
    }

    /// Unbiased model RMSE from the validation pool, when populated.
    pub fn validation_rmse(&self) -> Option<f64> {
        self.validation.lock().unwrap().rmse()
    }

    /// Launches [`Velox::retrain_offline`] on a background thread — the
    /// paper's actual deployment shape, where "the maintenance service
    /// triggers Spark, the offline training component" and serving
    /// continues against the current version until the new one swaps in.
    ///
    /// At most one retrain runs at a time: a second call while one is in
    /// flight returns [`VeloxError::RetrainInProgress`] instead of queueing
    /// (the in-flight run will already see the latest observation log).
    /// Join the returned handle for the outcome.
    pub fn retrain_offline_async(
        self: &Arc<Self>,
    ) -> Result<std::thread::JoinHandle<Result<u64, VeloxError>>, VeloxError> {
        self.begin_retrain()?;
        let velox = Arc::clone(self);
        Ok(std::thread::spawn(move || {
            let result = velox.retrain_offline_inner();
            velox.retrain_in_flight.store(false, Ordering::Release);
            result
        }))
    }

    /// Runs a full offline retrain *now* (the manager's "trigger Spark"
    /// path): retrains on the entire observation history warm-started from
    /// the current weights, swaps in the new version, repopulates caches,
    /// and resets quality baselines. Returns the new model version.
    ///
    /// Errors with [`VeloxError::RetrainInProgress`] when an async retrain
    /// is currently running.
    pub fn retrain_offline(&self) -> Result<u64, VeloxError> {
        self.begin_retrain()?;
        let result = self.retrain_offline_inner();
        self.retrain_in_flight.store(false, Ordering::Release);
        result
    }

    /// Claims the single retrain slot or reports one already in flight.
    fn begin_retrain(&self) -> Result<(), VeloxError> {
        self.retrain_in_flight
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
            .map_err(|_| VeloxError::RetrainInProgress)
    }

    fn retrain_offline_inner(&self) -> Result<u64, VeloxError> {
        let mut data = self.training_log.lock().unwrap().clone();
        if data.is_empty() {
            return Err(VeloxError::RetrainFailed("no observations to train on".into()));
        }
        // Observations logged after this snapshot keep serving against the
        // old version while training runs; they are replayed onto the new
        // version after the swap so they are lost from neither the batch
        // model nor the online state.
        let snapshot_len = data.len();
        self.registry.event(EventKind::RetrainStart { observations: snapshot_len as u64 });
        let retrain_timer = Timer::start();
        let old_model = Arc::clone(&*self.model.read().unwrap());

        // Computational models featurize raw payloads; resolve catalog
        // references for them before handing the data to the trainer.
        if !old_model.is_materialized() {
            for ex in &mut data {
                if let Some(id) = ex.item.id() {
                    let attrs = self.catalog.get(id).ok_or_else(|| {
                        VeloxError::RetrainFailed(format!(
                            "observed item {id} no longer in the catalog"
                        ))
                    })?;
                    ex.item = Item::Raw(Vector::from_vec(attrs));
                }
            }
        }

        // Current user weights as the warm start. The cluster table is
        // authoritative: every online update writes through to it.
        let current_weights: HashMap<u64, Vector> = self
            .cluster
            .export_user_weights()
            .into_iter()
            .map(|(uid, w)| (uid, Vector::from_vec(w)))
            .collect();

        let result = old_model
            .retrain(&data, &current_weights, &self.executor)
            .map_err(|e| VeloxError::RetrainFailed(e.to_string()))?;
        let new_model: Arc<dyn VeloxModel> = Arc::from(result.model);

        // Snapshot hot keys for cache repopulation before invalidating
        // (§4.2: the batch system "computes all predictions ... that were
        // cached at the time the batch computation was triggered" to
        // repopulate the caches on swap).
        let hot_keys: Vec<PredKey> = self.prediction_cache.keys();

        // Retire the old version.
        let old_version = self.version.load(Ordering::Acquire);
        {
            let mut history = self.history.lock().unwrap();
            history.push(HistoryEntry {
                version: old_version,
                model: old_model,
                user_weights: current_weights
                    .iter()
                    .map(|(u, w)| (*u, w.as_slice().to_vec()))
                    .collect(),
            });
            if history.len() > VERSION_HISTORY {
                history.remove(0);
            }
        }

        let missed_boundary = self.swap_in(new_model, result.user_weights, old_version + 1);
        // Replay the observations that arrived mid-retrain (they were
        // applied to the discarded old online state and are not in the
        // batch snapshot). The boundary was captured under the exclusive
        // swap gate, so entries past it were observed against the *new*
        // version and must not be double-applied.
        let missed: Vec<TrainingExample> = {
            let log = self.training_log.lock().unwrap();
            log[snapshot_len..missed_boundary].to_vec()
        };
        if !missed.is_empty() {
            self.apply_examples_to_online_state(&missed)?;
        }
        self.repopulate_prediction_cache(&hot_keys);
        self.retrains.inc();
        let new_version = self.model_version();
        self.registry.event(EventKind::RetrainFinish {
            version: new_version,
            duration_us: retrain_timer.elapsed_ns() / 1_000,
        });
        Ok(new_version)
    }

    /// Installs `model` + `weights` as version `new_version` and resets
    /// serving/quality state accordingly. Returns the training-log length
    /// at swap time (captured under the exclusive swap gate), i.e. the
    /// boundary up to which observations were applied against the *old*
    /// version.
    fn swap_in(
        &self,
        model: Arc<dyn VeloxModel>,
        weights: HashMap<u64, Vector>,
        new_version: u64,
    ) -> usize {
        // Exclusive: no observe/ingest may interleave with the swap (their
        // write-backs run under the shared side of this gate).
        let _gate = self.swap_gate.write().unwrap();
        let from = self.version.load(Ordering::Acquire);
        // New θ table to the cluster (atomically per shard; invalidates
        // per-node item caches).
        self.cluster.publish_item_features(model.materialized_table());
        *self.model.write().unwrap() = model;
        self.version.store(new_version, Ordering::Release);
        self.registry.event(EventKind::VersionSwap { from, to: new_version });

        // New user weights: the serving table swaps wholesale (stale users
        // must not survive the version change) and the bootstrap mean is
        // refreshed. Online state is discarded — each user's history is
        // inside the batch model now, and fresh state is recreated lazily
        // on their next observe, with the retrained weights as its prior.
        self.cluster.publish_user_weights(
            weights.iter().map(|(&uid, w)| (uid, w.as_slice().to_vec())).collect(),
        );
        for (&uid, w) in &weights {
            self.stale_weights.put(uid, w.clone());
            self.bootstrap.contribute(uid, w);
        }
        self.user_state.publish_version(Vec::new());
        // Bump every user's cache version in one publish.
        let bumped: Vec<(u64, u64)> = weights.keys().map(|&uid| (uid, new_version << 32)).collect();
        self.user_versions.publish_version(bumped);

        // Old caches describe the old model.
        self.prediction_cache.clear();
        self.feature_cache.clear();
        self.staleness.lock().unwrap().reset();
        self.error_tracker.lock().unwrap().reset();
        self.validation.lock().unwrap().clear();
        self.stale_flag.store(false, Ordering::Release);
        self.training_log.lock().unwrap().len()
    }

    /// Applies historical/missed examples to the per-user online state and
    /// serving tables (no logging, no quality tracking) — shared by
    /// [`Velox::ingest_history`] and the post-retrain replay.
    fn apply_examples_to_online_state(
        &self,
        examples: &[TrainingExample],
    ) -> Result<(), VeloxError> {
        let _gate = self.swap_gate.read().unwrap();
        let model = Arc::clone(&*self.model.read().unwrap());
        let model_version = self.model_version();
        let mut touched: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for ex in examples {
            let home = self.cluster.home_of_user(ex.uid);
            let (features, _) = self.features_for(&model, model_version, home, &ex.item)?;
            let state_arc = self.user_state_arc(ex.uid);
            state_arc.lock().unwrap().observe(&features, ex.y)?;
            touched.insert(ex.uid);
        }
        // Publish the updated weights to the serving table once per user.
        for uid in touched {
            let state_arc = self.user_state_arc(uid);
            let w = state_arc.lock().unwrap().weights().clone();
            self.cluster.put_user_weights(uid, w.as_slice().to_vec());
            self.stale_weights.put(uid, w.clone());
            self.user_versions.update_with(uid, || 0, |v| *v += 1);
            self.bootstrap.contribute(uid, &w);
        }
        Ok(())
    }

    /// Recomputes predictions for previously-hot `(uid, item)` pairs under
    /// the *new* model so the cache is warm when traffic resumes.
    fn repopulate_prediction_cache(&self, old_keys: &[PredKey]) {
        let model_version = self.model_version();
        let model = Arc::clone(&*self.model.read().unwrap());
        let mut entries = 0u64;
        for &(uid, item_id, _, _) in old_keys {
            let node = self.cluster.home_of_user(uid);
            let user_version = self.user_versions.get(uid).unwrap_or(0);
            let (weights, bootstrapped, _, level) = self.serving_weights(node, uid);
            if bootstrapped || !Self::cacheable(level) {
                continue;
            }
            let item = Item::Id(item_id);
            if let Ok((features, _)) = self.features_for(&model, model_version, node, &item) {
                if let Ok(score) = weights.dot(&features) {
                    self.prediction_cache.put((uid, item_id, user_version, model_version), score);
                    entries += 1;
                }
            }
        }
        self.registry.event(EventKind::CacheRepopulation { entries });
    }

    /// Rolls back to a retained prior `version` (restored under a fresh
    /// version number). Returns the new serving version.
    pub fn rollback(&self, version: u64) -> Result<u64, VeloxError> {
        let entry = {
            let mut history = self.history.lock().unwrap();
            let pos = history
                .iter()
                .position(|e| e.version == version)
                .ok_or(VeloxError::VersionNotFound(version))?;
            history.remove(pos)
        };
        let old_version = self.version.load(Ordering::Acquire);
        // Current state goes to history so the rollback is itself
        // reversible.
        {
            let current_model = Arc::clone(&*self.model.read().unwrap());
            let current_weights = self.cluster.export_user_weights();
            let mut history = self.history.lock().unwrap();
            history.push(HistoryEntry {
                version: old_version,
                model: current_model,
                user_weights: current_weights,
            });
            if history.len() > VERSION_HISTORY {
                history.remove(0);
            }
        }
        let weights: HashMap<u64, Vector> =
            entry.user_weights.into_iter().map(|(u, w)| (u, Vector::from_vec(w))).collect();
        self.swap_in(entry.model, weights, old_version + 1);
        self.registry.event(EventKind::Rollback { from: old_version, to: version });
        Ok(self.model_version())
    }

    /// Versions currently available for rollback, oldest first.
    pub fn rollback_versions(&self) -> Vec<u64> {
        self.history.lock().unwrap().iter().map(|e| e.version).collect()
    }

    /// Users whose mean loss exceeds `multiple` × the global mean with at
    /// least `min_obs` observations (admin diagnostics, §4.3).
    pub fn underperforming_users(&self, multiple: f64, min_obs: u64) -> Vec<u64> {
        self.error_tracker.lock().unwrap().underperforming_users(multiple, min_obs)
    }

    /// Observability snapshot. Counter-valued fields are read from the
    /// metric registry — the same atomics `GET /metrics` exposes — so every
    /// reporting surface agrees; eviction counts (not registry metrics)
    /// come from the caches, and quality figures from their trackers.
    pub fn stats(&self) -> SystemStats {
        let snap = self.registry.snapshot();
        SystemStats {
            model_version: self.model_version(),
            retrains: snap.counter("velox_retrains_total"),
            observations: snap.counter("velox_observations_total"),
            online_users: self.user_state.len(),
            prediction_cache: (
                snap.counter("velox_prediction_cache_hits_total"),
                snap.counter("velox_prediction_cache_misses_total"),
                self.prediction_cache.stats().2,
            ),
            feature_cache: (
                snap.counter("velox_feature_cache_hits_total"),
                snap.counter("velox_feature_cache_misses_total"),
                self.feature_cache.stats().2,
            ),
            cluster: self.cluster.stats(),
            mean_loss: self.error_tracker.lock().unwrap().global_mean(),
            generalization_loss: self.prequential.lock().unwrap().generalization_loss(),
            validation_decisions: self.validation.lock().unwrap().decision_counts(),
            stale: self.is_stale(),
            degraded: DegradationCounts {
                full: self.degraded[0].get(),
                replica: self.degraded[1].get(),
                stale_cache: self.degraded[2].get(),
                bootstrap: self.degraded[3].get(),
            },
            redo: RedoQueueStats {
                buffered: self.redo_buffered.get(),
                drained: self.redo_drained.get(),
                shed: self.redo_shed.get(),
                pending: self.redo_queue.lock().unwrap().len(),
            },
            durability: self.durability_stats(),
        }
    }

    fn durability_stats(&self) -> DurabilityStats {
        let durability = self.durability.lock().unwrap();
        match durability.as_ref() {
            Some(runtime) => DurabilityStats {
                enabled: true,
                checkpoints: self.checkpoints_total.get(),
                last_checkpoint_seq: runtime.last_seq,
                last_checkpoint_wal_offset: runtime.last_offset,
                wal_appends: self.obslog.wal_stats().map(|s| s.appends.get()).unwrap_or(0),
                wal_fsyncs: self.obslog.wal_stats().map(|s| s.fsyncs.get()).unwrap_or(0),
                wal_segments: self.obslog.with_wal(|w| w.segment_count() as u64).unwrap_or(0),
                recovery_replayed: self.recovery_replayed.get(),
            },
            None => DurabilityStats::default(),
        }
    }

    /// Direct cluster access for experiments (cache ablations, partitioning
    /// studies).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Sets the serving version directly — used by snapshot restore so a
    /// restored deployment reports the version it was captured at.
    pub(crate) fn force_version(&self, version: u64) {
        self.version.store(version.max(1), Ordering::Release);
    }

    /// The currently-served model object.
    pub fn current_model(&self) -> Arc<dyn VeloxModel> {
        Arc::clone(&*self.model.read().unwrap())
    }

    /// Read access to this deployment's configuration.
    pub fn config(&self) -> &VeloxConfig {
        &self.config
    }

    /// Logs an observation durably (WAL-first when one is attached) and
    /// counts it. The counter moves only after the record is on disk, so
    /// anything an external observer can see acknowledged really is
    /// persistent (under per-record fsync).
    fn log_observation(&self, uid: u64, item_id: u64, y: f64) -> Result<(), VeloxError> {
        self.obslog.try_append(uid, item_id, y)?;
        self.observations_total.inc();
        Ok(())
    }

    /// Deploys with durability: opens (or creates) the WAL and checkpoint
    /// store under `config.durability`, recovers whatever state they hold,
    /// and attaches them so subsequent observations are crash-safe.
    ///
    /// `factory` builds the model object — from the checkpoint's snapshot
    /// when one exists (`Some`), from scratch on a fresh boot (`None`).
    /// `initial_weights` seed a fresh boot only; a recovered deployment's
    /// weights come from the checkpoint plus the WAL replay.
    ///
    /// Recovery never panics on torn or corrupt files: a corrupt newest
    /// checkpoint falls back to an older retained one, the WAL scan stops
    /// at the last valid record (truncating the torn tail), and the
    /// instance serves from whatever it recovered. Each replayed record
    /// goes through the same online-update path a live `observe` takes,
    /// keyed by its log offset — replaying twice is a no-op.
    pub fn deploy_durable<F>(
        factory: F,
        initial_weights: HashMap<u64, Vector>,
        config: VeloxConfig,
    ) -> Result<(Velox, RecoveryReport), VeloxError>
    where
        F: FnOnce(Option<&DeploymentSnapshot>) -> Result<Arc<dyn VeloxModel>, VeloxError>,
    {
        let durability_config = config.durability.clone().ok_or(VeloxError::DurabilityDisabled)?;
        let timer = Timer::start();
        let store = CheckpointStore::open(
            durability_config.dir.join("checkpoints"),
            durability_config.retain_checkpoints,
        )?;
        let checkpoint = store.load_latest()?;

        let (velox, checkpoint_seq, checkpoint_wal_offset) =
            match &checkpoint {
                Some(c) => {
                    if c.blobs.len() != 4 {
                        return Err(VeloxError::Storage(StorageError::Corrupt(format!(
                            "checkpoint {} carries {} blobs, expected 4",
                            c.seq,
                            c.blobs.len()
                        ))));
                    }
                    let snapshot = DeploymentSnapshot {
                        model_version: c.model_version,
                        user_weights: c.blobs[0].clone(),
                        item_table: c.blobs[1].clone(),
                        catalog: c.blobs[2].clone(),
                    };
                    let model = factory(Some(&snapshot))?;
                    let velox = Velox::restore(model, &snapshot, config)?;
                    // The checkpoint carries the observation log too (4th
                    // blob), so retraining history survives WAL truncation.
                    let base = decode_observations(c.blobs[3].clone())?;
                    let seeded = velox.obslog.seed(&base) as usize;
                    velox.observations_total.add(seeded as u64);
                    velox.training_log.lock().unwrap().extend(base[..seeded].iter().map(|o| {
                        TrainingExample { uid: o.uid, item: Item::Id(o.item_id), y: o.y }
                    }));
                    (velox, Some(c.seq), c.wal_offset)
                }
                None => {
                    let model = factory(None)?;
                    (Velox::deploy(model, initial_weights, config), None, 0)
                }
            };

        let mut wal_config = WalConfig::new(durability_config.dir.join("wal"));
        wal_config.fsync = durability_config.fsync;
        wal_config.segment_max_bytes = durability_config.wal_segment_bytes;
        let (wal, scan) = Wal::open(wal_config)?;

        // Replay the WAL tail through the online-update path. Offsets
        // decide idempotence: records the checkpoint already covers skip,
        // an out-of-sequence record (unreachable history past a
        // quarantined segment) stops the replay cleanly.
        let mut replayed = 0u64;
        let mut apply_failures = 0u64;
        for record in &scan.records {
            if record.timestamp < velox.obslog.len() {
                continue;
            }
            if velox.obslog.seed(std::slice::from_ref(record)) == 0 {
                break;
            }
            velox.observations_total.inc();
            let example =
                TrainingExample { uid: record.uid, item: Item::Id(record.item_id), y: record.y };
            velox.training_log.lock().unwrap().push(example.clone());
            // An individually unappliable record (its item vanished from
            // the catalog, say) must not halt recovery: the observation is
            // preserved in the log; only its online update is lost.
            if velox.apply_examples_to_online_state(std::slice::from_ref(&example)).is_err() {
                apply_failures += 1;
            }
            replayed += 1;
            velox.recovery_replayed.inc();
        }

        velox.obslog.attach_wal(wal);
        if let Some(stats) = velox.obslog.wal_stats() {
            velox.registry.register_counter("velox_wal_appends_total", &[], stats.appends);
            velox.registry.register_counter("velox_wal_fsyncs_total", &[], stats.fsyncs);
            velox.registry.register_counter(
                "velox_wal_bytes_written_total",
                &[],
                stats.bytes_written,
            );
        }

        let duration_ns = timer.elapsed_ns();
        velox.recovery_replay_duration.record(duration_ns);
        let torn = scan.torn.is_some();
        if checkpoint_seq.is_some() || !scan.records.is_empty() || torn || scan.quarantined > 0 {
            velox.registry.event(EventKind::Recovery { replayed, torn: torn as u64 });
        }
        *velox.durability.lock().unwrap() = Some(DurabilityRuntime {
            store,
            config: durability_config,
            last_seq: checkpoint_seq.unwrap_or(0),
            last_offset: checkpoint_wal_offset,
        });

        let report = RecoveryReport {
            checkpoint_seq,
            checkpoint_wal_offset,
            replayed,
            apply_failures,
            torn,
            wal_quarantined: scan.quarantined as u64,
            duration_ns,
        };
        Ok((velox, report))
    }

    /// Writes a durable checkpoint: the full deployment snapshot plus the
    /// observation log, fsynced and atomically installed, then reclaims
    /// the WAL segments every retained checkpoint covers.
    ///
    /// The capture runs under the exclusive swap gate, so the snapshot and
    /// the log length form one consistent cut — no observation can land
    /// half in the snapshot and half in the replayable WAL suffix.
    pub fn checkpoint(&self) -> Result<CheckpointReport, VeloxError> {
        let mut durability = self.durability.lock().unwrap();
        let Some(runtime) = durability.as_mut() else {
            return Err(VeloxError::DurabilityDisabled);
        };
        let (snapshot, observations) = {
            let _gate = self.swap_gate.write().unwrap();
            (self.snapshot(), self.obslog.read_all())
        };
        let wal_offset = observations.len() as u64;
        let model_version = snapshot.model_version;
        let blobs = [
            snapshot.user_weights,
            snapshot.item_table,
            snapshot.catalog,
            encode_observations(&observations),
        ];
        let bytes = blobs.iter().map(|b| b.len()).sum();
        let seq = runtime.store.save(model_version, wal_offset, &blobs)?;
        // Truncate only to what the *oldest* retained checkpoint covers:
        // if the file just written is later found corrupt, the fallback
        // checkpoint still has its entire WAL suffix to replay.
        let covered = runtime.store.covered_offset();
        let removed =
            self.obslog.with_wal(|w| w.truncate_covered(covered)).transpose()?.unwrap_or(0) as u64;
        runtime.last_seq = seq;
        runtime.last_offset = wal_offset;
        self.checkpoints_total.inc();
        self.registry.event(EventKind::Checkpoint {
            seq,
            wal_offset,
            wal_segments_removed: removed,
        });
        Ok(CheckpointReport { seq, wal_offset, wal_segments_removed: removed, bytes })
    }

    /// Takes an automatic checkpoint once `checkpoint_every` observations
    /// have accumulated past the last one. Called after an observation is
    /// fully committed (no gate or lock from it is still held — the
    /// capture needs the swap gate exclusively). Failures are counted, not
    /// surfaced: the triggering observation is already durable in the WAL.
    fn maybe_checkpoint(&self) {
        {
            let durability = self.durability.lock().unwrap();
            let Some(runtime) = durability.as_ref() else { return };
            if runtime.config.checkpoint_every == 0 {
                return;
            }
            if self.obslog.len() < runtime.last_offset + runtime.config.checkpoint_every {
                return;
            }
        }
        if self.checkpoint_in_flight.swap(true, Ordering::AcqRel) {
            return;
        }
        if self.checkpoint().is_err() {
            self.checkpoint_failures.inc();
        }
        self.checkpoint_in_flight.store(false, Ordering::Release);
    }

    /// Detaches the WAL (after a final sync) and drops the checkpoint
    /// store, releasing the on-disk directory so another instance — a
    /// recovery drill, a replacement process — can take it over. Returns
    /// whether durability had been attached.
    pub fn close_durability(&self) -> bool {
        let had = self.durability.lock().unwrap().take().is_some();
        self.obslog.detach_wal().is_some() || had
    }

    /// Exact top-`k` over the **entire catalog** — the paper's §8 future
    /// work ("more efficient top-K support for our linear modeling tasks").
    /// Backed by a norm-pruned exact MIPS index over the catalog's feature
    /// vectors, built lazily per model version: queries terminate early via
    /// the Cauchy–Schwarz bound instead of scoring every item, yet return
    /// exactly what a full scan would.
    ///
    /// Unlike [`Velox::top_k`] this bypasses the per-candidate caches and
    /// bandit layer — it is the "browse the whole catalog" bulk query, not
    /// the serving decision for one impression.
    pub fn top_k_catalog(&self, uid: u64, k: usize) -> Result<Vec<(u64, f64)>, VeloxError> {
        let version = self.model_version();
        let index = self.catalog_index(version)?;
        let node = self.cluster.route_request(uid);
        let (weights, _bootstrapped, _, _level) = self.serving_weights(node, uid);
        let (results, _stats) = index.top_k(&weights, k)?;
        Ok(results.into_iter().map(|s| (s.id, s.score)).collect())
    }

    /// Builds (or returns the cached) MIPS index for `version`.
    fn catalog_index(&self, version: u64) -> Result<Arc<velox_linalg::MipsIndex>, VeloxError> {
        if let Some((v, idx)) = self.mips_index.lock().unwrap().as_ref() {
            if *v == version {
                return Ok(Arc::clone(idx));
            }
        }
        let model = self.current_model();
        let items: Vec<(u64, Vector)> = if model.is_materialized() {
            model
                .materialized_table()
                .into_iter()
                .map(|(id, v)| (id, Vector::from_vec(v)))
                .collect()
        } else {
            // Computational models: featurize every catalog item once.
            let mut out = Vec::new();
            for (id, attrs) in self.catalog.snapshot_entries() {
                let f = model.features(&Item::Raw(Vector::from_vec(attrs)))?;
                out.push((id, f));
            }
            out
        };
        let index = Arc::new(velox_linalg::MipsIndex::build(items)?);
        *self.mips_index.lock().unwrap() = Some((version, Arc::clone(&index)));
        Ok(index)
    }

    /// The raw-attribute catalog contents (for snapshots and diagnostics).
    pub fn catalog_entries(&self) -> Vec<(u64, Vec<f64>)> {
        self.catalog.snapshot_entries()
    }

    /// The durable observation log (offline jobs read from here).
    pub fn observation_log(&self) -> &ObservationLog {
        &self.obslog
    }
}
