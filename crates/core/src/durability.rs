//! Durable-state configuration and reports.
//!
//! The paper's Velox leans on Tachyon/HDFS for persistence (§3); this
//! workspace's in-memory substitute gets real crash durability from two
//! cooperating on-disk structures in `velox_storage`:
//!
//! - a **write-ahead log** ([`velox_storage::wal`]) that every observation
//!   is appended to — and, under [`FsyncPolicy::PerRecord`], fsynced —
//!   *before* the caller's `observe` is acknowledged, and
//! - periodic **checkpoints** ([`velox_storage::checkpoint`]) of the full
//!   [`DeploymentSnapshot`](crate::DeploymentSnapshot) plus the observation
//!   log, after which the WAL prefix they cover is truncated.
//!
//! Recovery ([`Velox::deploy_durable`](crate::Velox::deploy_durable)) loads
//! the newest valid checkpoint and replays the WAL tail through the same
//! online-update path live observations take, stopping cleanly at the
//! first torn or corrupt record. The contract: **no observation whose
//! `observe` call returned `Ok` is ever lost** (per-record fsync), and
//! recovery never panics on arbitrarily mangled files.
//!
//! This module holds the configuration and the plain-data reports; the
//! methods live on [`Velox`](crate::Velox) itself (they need its
//! internals).

use std::path::PathBuf;

use velox_storage::FsyncPolicy;

/// Configuration of the on-disk durability subsystem.
///
/// Attached to a deployment via
/// [`VeloxConfig::durability`](crate::VeloxConfig); `None` (the default)
/// means memory-only operation, exactly as before.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory for durable state. The WAL lives in `<dir>/wal`,
    /// checkpoints in `<dir>/checkpoints`; both are created on demand.
    pub dir: PathBuf,
    /// When appends reach the platter. [`FsyncPolicy::PerRecord`] is the
    /// only policy under which an acknowledged observation is guaranteed
    /// to survive a crash; the others trade that guarantee for throughput.
    pub fsync: FsyncPolicy,
    /// WAL segment rotation threshold in bytes.
    pub wal_segment_bytes: u64,
    /// Take a checkpoint automatically once this many observations have
    /// accumulated past the last one (0 = manual checkpoints only).
    pub checkpoint_every: u64,
    /// How many checkpoints to retain on disk. The WAL is truncated only
    /// to the offset the *oldest* retained checkpoint covers, so every
    /// retained checkpoint stays independently recoverable.
    pub retain_checkpoints: usize,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with safe defaults: fsync per record,
    /// 1 MiB segments, manual checkpoints, two checkpoints retained.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::PerRecord,
            wal_segment_bytes: 1 << 20,
            checkpoint_every: 0,
            retain_checkpoints: 2,
        }
    }
}

/// What startup recovery found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint restored from (`None` = fresh
    /// boot, nothing on disk).
    pub checkpoint_seq: Option<u64>,
    /// Observation-log length the checkpoint covered (0 on fresh boot).
    pub checkpoint_wal_offset: u64,
    /// WAL records replayed on top of the checkpoint through the
    /// online-update path.
    pub replayed: u64,
    /// Replayed observations whose online update failed (e.g. their item
    /// vanished from the catalog); the observation itself is preserved in
    /// the log either way.
    pub apply_failures: u64,
    /// Whether the WAL scan stopped at a torn/corrupt record (the tail was
    /// truncated back to the last valid record).
    pub torn: bool,
    /// WAL segments quarantined because a segment *before* them was
    /// corrupt mid-log.
    pub wal_quarantined: u64,
    /// Wall-clock nanoseconds the whole recovery took.
    pub duration_ns: u64,
}

/// What a completed checkpoint wrote and reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The checkpoint's sequence number.
    pub seq: u64,
    /// Observation-log length it covers.
    pub wal_offset: u64,
    /// WAL segment files deleted because every retained checkpoint now
    /// covers them.
    pub wal_segments_removed: u64,
    /// Total payload bytes written (before framing).
    pub bytes: usize,
}

/// Durable-state counters surfaced in
/// [`SystemStats`](crate::velox::SystemStats). All zero when durability is
/// disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityStats {
    /// Whether a WAL + checkpoint store is attached.
    pub enabled: bool,
    /// Checkpoints taken by this instance.
    pub checkpoints: u64,
    /// Sequence number of the newest checkpoint (0 = none yet).
    pub last_checkpoint_seq: u64,
    /// Observation-log length the newest checkpoint covers.
    pub last_checkpoint_wal_offset: u64,
    /// Records appended to the WAL by this instance.
    pub wal_appends: u64,
    /// fsync calls issued by the WAL.
    pub wal_fsyncs: u64,
    /// Live WAL segment files on disk.
    pub wal_segments: u64,
    /// WAL records replayed during this instance's recovery.
    pub recovery_replayed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_favor_safety() {
        let c = DurabilityConfig::new("/tmp/x");
        assert_eq!(c.fsync, FsyncPolicy::PerRecord, "default must be the no-loss policy");
        assert_eq!(c.checkpoint_every, 0, "checkpoints are explicit unless opted in");
        assert!(c.retain_checkpoints >= 2, "need a fallback checkpoint");
    }

    #[test]
    fn stats_default_to_disabled() {
        let s = DurabilityStats::default();
        assert!(!s.enabled);
        assert_eq!(s.wal_appends, 0);
    }
}
