//! The unified error type of the Velox front end.

use velox_linalg::LinalgError;
use velox_models::ModelError;
use velox_storage::StorageError;

/// Errors surfaced by Velox API calls.
#[derive(Debug, Clone, PartialEq)]
pub enum VeloxError {
    /// The referenced model name is not deployed.
    ModelNotFound(String),
    /// The model implementation rejected the request.
    Model(ModelError),
    /// Numerical failure in an online update or prediction.
    Numeric(LinalgError),
    /// Storage-layer failure.
    Storage(StorageError),
    /// A `topK` call with an empty candidate set.
    EmptyCandidateSet,
    /// Rollback target version not retained.
    VersionNotFound(u64),
    /// Offline retraining failed.
    RetrainFailed(String),
    /// An offline retrain is already running; the request was rejected
    /// rather than queued.
    RetrainInProgress,
    /// The request could not be served — or an observation could not even
    /// be buffered — because every replica of the needed partition is
    /// unreachable and no degraded fallback applied.
    Unavailable(String),
    /// A durability operation (checkpoint, recovery) was requested on a
    /// deployment with no durability configured/attached.
    DurabilityDisabled,
}

impl std::fmt::Display for VeloxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VeloxError::ModelNotFound(name) => write!(f, "model not deployed: {name}"),
            VeloxError::Model(e) => write!(f, "model error: {e}"),
            VeloxError::Numeric(e) => write!(f, "numeric error: {e}"),
            VeloxError::Storage(e) => write!(f, "storage error: {e}"),
            VeloxError::EmptyCandidateSet => write!(f, "topK requires a non-empty candidate set"),
            VeloxError::VersionNotFound(v) => write!(f, "model version {v} not retained"),
            VeloxError::RetrainFailed(why) => write!(f, "offline retraining failed: {why}"),
            VeloxError::RetrainInProgress => write!(f, "an offline retrain is already in flight"),
            VeloxError::Unavailable(why) => write!(f, "temporarily unavailable: {why}"),
            VeloxError::DurabilityDisabled => {
                write!(f, "durability is not configured for this deployment")
            }
        }
    }
}

impl std::error::Error for VeloxError {}

impl From<ModelError> for VeloxError {
    fn from(e: ModelError) -> Self {
        VeloxError::Model(e)
    }
}

impl From<LinalgError> for VeloxError {
    fn from(e: LinalgError) -> Self {
        VeloxError::Numeric(e)
    }
}

impl From<StorageError> for VeloxError {
    fn from(e: StorageError) -> Self {
        VeloxError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = VeloxError::ModelNotFound("songs".into());
        assert!(e.to_string().contains("songs"));
        let e: VeloxError = ModelError::UnknownItem(7).into();
        assert!(e.to_string().contains('7'));
        let e: VeloxError = LinalgError::Empty { op: "mean" }.into();
        assert!(e.to_string().contains("mean"));
        let e: VeloxError = StorageError::VersionNotFound(3).into();
        assert!(e.to_string().contains('3'));
        assert!(VeloxError::EmptyCandidateSet.to_string().contains("non-empty"));
    }
}
