//! # velox-batch
//!
//! The batch-compute substrate — the Spark substitute.
//!
//! Velox "aggressively exploits" an existing cluster-compute framework for
//! the offline phase (§4.2): full retraining of the feature parameters `θ`
//! and the user-weight table `W` from the accumulated observation log. This
//! crate rebuilds the slice of that framework the paper actually exercises:
//!
//! - [`executor::JobExecutor`]: a fixed-size worker pool executing the tasks
//!   of a stage in parallel with per-job metrics (task counts, wall time) —
//!   the moral equivalent of a Spark stage scheduler for a single node.
//! - [`dataset::PartitionedDataset`]: an immutable, partitioned, in-memory
//!   collection with `map` / `filter` / `reduce` / `map_partitions`, the
//!   RDD-shaped API the training code is written against.
//! - [`als`]: Alternating Least Squares matrix factorization — the offline
//!   trainer for the paper's collaborative-filtering running example. Each
//!   half-step is a bag of independent per-entity ridge regressions
//!   (`velox-linalg`), scheduled across the executor.
//! - [`sgd`]: a biased matrix-factorization SGD trainer, the alternative
//!   offline algorithm the related work points at (Sparkler \[12\]); used as
//!   a cross-check and an ablation baseline.
//!
//! Determinism: given the same inputs, seeds, and worker counts, training
//! produces identical results; ALS parallel reductions are structured so
//! the result does not depend on task interleaving.

#![warn(missing_docs)]

pub mod als;
pub mod dataset;
pub mod executor;
pub mod sgd;

pub use als::{AlsConfig, AlsModel};
pub use dataset::PartitionedDataset;
pub use executor::{JobExecutor, JobMetrics};
pub use sgd::{SgdConfig, SgdModel};
