//! Alternating Least Squares matrix factorization — the offline trainer.
//!
//! This is the batch job Velox delegates to "Spark" (§4.2): from the full
//! observation log, learn the latent item factors (the feature parameters
//! `θ` of the paper's generalized linear model) and the user weight table
//! `W`, minimizing
//!
//! ```text
//! λ(||W||² + ||X||²) + Σ_{(u,i)∈Obs} (r_ui − μ − wᵤᵀ xᵢ)²
//! ```
//!
//! exactly the objective of §2. ALS alternates two embarrassingly parallel
//! half-steps — fix `X`, ridge-solve every `wᵤ`; fix `W`, ridge-solve every
//! `xᵢ` — each scheduled across the [`JobExecutor`]. Per-entity solves use
//! the same `velox-linalg` ridge machinery as the online path, so offline
//! and online training are numerically consistent by construction.

use velox_data::Rating;
use velox_linalg::{ridge_fit, Matrix, Vector};

use crate::executor::JobExecutor;

/// ALS hyper-parameters.
#[derive(Debug, Clone)]
pub struct AlsConfig {
    /// Latent dimension.
    pub rank: usize,
    /// L2 regularization constant λ.
    pub lambda: f64,
    /// Number of full (user + item) alternations.
    pub iterations: usize,
    /// Seed for factor initialization.
    pub seed: u64,
}

impl Default for AlsConfig {
    fn default() -> Self {
        AlsConfig { rank: 10, lambda: 0.1, iterations: 10, seed: 0xA15 }
    }
}

/// A trained matrix-factorization model.
#[derive(Debug, Clone)]
pub struct AlsModel {
    /// Per-user latent factors (index = uid). Users with no training
    /// ratings keep their initialization.
    pub user_factors: Vec<Vector>,
    /// Per-item latent factors (index = item id) — the `θ` table served by
    /// the predictor.
    pub item_factors: Vec<Vector>,
    /// Global rating mean `μ`, subtracted before factorization.
    pub global_mean: f64,
    /// The hyper-parameters used.
    pub config: AlsConfig,
    /// Training RMSE after each iteration (monotone decrease expected).
    pub training_curve: Vec<f64>,
}

/// Deterministic small pseudo-random initializer (splitmix64 → (−0.5, 0.5)
/// scaled by 1/√rank), independent of thread scheduling.
fn init_factor(entity: u64, salt: u64, rank: usize) -> Vector {
    let scale = 1.0 / (rank as f64).sqrt();
    let mut v = Vec::with_capacity(rank);
    for k in 0..rank as u64 {
        let mut z = entity
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt)
            .wrapping_add(k.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        v.push((u - 0.5) * scale);
    }
    Vector::from_vec(v)
}

impl AlsModel {
    /// Trains from scratch on `ratings`. `n_users`/`n_items` bound the id
    /// spaces (ids must be dense in `[0, n)`).
    pub fn train(
        ratings: &[Rating],
        n_users: usize,
        n_items: usize,
        config: AlsConfig,
        executor: &JobExecutor,
    ) -> Self {
        let user_init: Vec<Vector> =
            (0..n_users as u64).map(|u| init_factor(u, config.seed, config.rank)).collect();
        let item_init: Vec<Vector> = (0..n_items as u64)
            .map(|i| init_factor(i, config.seed ^ 0xDEAD_BEEF, config.rank))
            .collect();
        Self::train_warm_start(ratings, user_init, item_init, config, executor)
    }

    /// Trains starting from existing factor tables — the paper's retraining
    /// path, where "the training procedure ... depends on the current user
    /// weights" (§4.2). Factor tables must have consistent rank matching
    /// `config.rank`.
    pub fn train_warm_start(
        ratings: &[Rating],
        user_factors: Vec<Vector>,
        item_factors: Vec<Vector>,
        config: AlsConfig,
        executor: &JobExecutor,
    ) -> Self {
        assert!(config.rank > 0 && config.lambda > 0.0);
        assert!(user_factors.iter().all(|w| w.len() == config.rank));
        assert!(item_factors.iter().all(|x| x.len() == config.rank));
        let n_users = user_factors.len();
        let n_items = item_factors.len();
        for r in ratings {
            assert!((r.uid as usize) < n_users, "uid {} out of range", r.uid);
            assert!((r.item_id as usize) < n_items, "item {} out of range", r.item_id);
        }

        let global_mean = if ratings.is_empty() {
            0.0
        } else {
            ratings.iter().map(|r| r.value).sum::<f64>() / ratings.len() as f64
        };

        // Index observations both ways once.
        let mut by_user: Vec<Vec<(u64, f64)>> = vec![Vec::new(); n_users];
        let mut by_item: Vec<Vec<(u64, f64)>> = vec![Vec::new(); n_items];
        for r in ratings {
            let centered = r.value - global_mean;
            by_user[r.uid as usize].push((r.item_id, centered));
            by_item[r.item_id as usize].push((r.uid, centered));
        }

        let mut model = AlsModel {
            user_factors,
            item_factors,
            global_mean,
            config: config.clone(),
            training_curve: Vec::with_capacity(config.iterations),
        };

        for _ in 0..config.iterations {
            model.user_factors = half_step(
                &by_user,
                &model.item_factors,
                config.rank,
                config.lambda,
                &model.user_factors,
                executor,
            );
            model.item_factors = half_step(
                &by_item,
                &model.user_factors,
                config.rank,
                config.lambda,
                &model.item_factors,
                executor,
            );
            model.training_curve.push(model.rmse(ratings));
        }
        model
    }

    /// Predicted rating `μ + wᵤᵀ xᵢ`.
    pub fn predict(&self, uid: u64, item_id: u64) -> f64 {
        let w = &self.user_factors[uid as usize];
        let x = &self.item_factors[item_id as usize];
        self.global_mean + w.dot(x).expect("consistent rank")
    }

    /// RMSE of the model over a rating set (0.0 on an empty set).
    pub fn rmse(&self, ratings: &[Rating]) -> f64 {
        if ratings.is_empty() {
            return 0.0;
        }
        let sse: f64 = ratings
            .iter()
            .map(|r| {
                let e = self.predict(r.uid, r.item_id) - r.value;
                e * e
            })
            .sum();
        (sse / ratings.len() as f64).sqrt()
    }

    /// The regularized training objective of §2 (useful for asserting that
    /// ALS monotonically decreases it).
    pub fn objective(&self, ratings: &[Rating]) -> f64 {
        let sse: f64 = ratings
            .iter()
            .map(|r| {
                let e = self.predict(r.uid, r.item_id) - r.value;
                e * e
            })
            .sum();
        let reg: f64 = self.user_factors.iter().map(Vector::norm2_squared).sum::<f64>()
            + self.item_factors.iter().map(Vector::norm2_squared).sum::<f64>();
        sse + self.config.lambda * reg
    }
}

/// One ALS half-step: for every left-entity with observations, ridge-solve
/// its factor against the fixed right-entity factors. Entities with no
/// observations keep `current`.
fn half_step(
    by_left: &[Vec<(u64, f64)>],
    right_factors: &[Vector],
    rank: usize,
    lambda: f64,
    current: &[Vector],
    executor: &JobExecutor,
) -> Vec<Vector> {
    let indices: Vec<usize> = (0..by_left.len()).collect();
    executor.execute(indices, |_, &e| {
        let obs = &by_left[e];
        if obs.is_empty() {
            return current[e].clone();
        }
        let rows: Vec<Vector> =
            obs.iter().map(|(j, _)| right_factors[*j as usize].clone()).collect();
        let x = Matrix::from_rows(&rows).expect("non-empty, rank-consistent rows");
        let y = Vector::from_vec(obs.iter().map(|(_, r)| *r).collect());
        // λ scaled by the observation count (weighted-λ ALS, Zhou et al.),
        // which keeps regularization strength per-observation constant.
        let lam = lambda * obs.len() as f64;
        ridge_fit(&x, &y, lam).unwrap_or_else(|_| Vector::zeros(rank))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use velox_data::{RatingsDataset, SyntheticConfig};

    fn dataset() -> RatingsDataset {
        RatingsDataset::generate(SyntheticConfig {
            n_users: 80,
            n_items: 120,
            rank: 5,
            ratings_per_user: 25,
            noise_std: 0.2,
            seed: 77,
            ..Default::default()
        })
    }

    fn config() -> AlsConfig {
        AlsConfig { rank: 5, lambda: 0.05, iterations: 8, seed: 1 }
    }

    #[test]
    fn fits_planted_factors_better_than_mean() {
        let ds = dataset();
        let ex = JobExecutor::new(4);
        let model = AlsModel::train(&ds.ratings, 80, 120, config(), &ex);
        let rmse = model.rmse(&ds.ratings);
        // Mean-only predictor RMSE:
        let mean = ds.ratings.iter().map(|r| r.value).sum::<f64>() / ds.len() as f64;
        let mean_rmse =
            (ds.ratings.iter().map(|r| (r.value - mean) * (r.value - mean)).sum::<f64>()
                / ds.len() as f64)
                .sqrt();
        assert!(rmse < 0.6 * mean_rmse, "ALS rmse {rmse} should beat mean-only {mean_rmse}");
    }

    #[test]
    fn training_curve_is_monotone_decreasing() {
        let ds = dataset();
        let ex = JobExecutor::new(4);
        let model = AlsModel::train(&ds.ratings, 80, 120, config(), &ex);
        for w in model.training_curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "training RMSE increased: {:?}", model.training_curve);
        }
    }

    #[test]
    fn deterministic_across_parallelism() {
        let ds = dataset();
        let seq = JobExecutor::new(1);
        let par = JobExecutor::new(8);
        let m1 = AlsModel::train(&ds.ratings, 80, 120, config(), &seq);
        let m2 = AlsModel::train(&ds.ratings, 80, 120, config(), &par);
        for (a, b) in m1.user_factors.iter().zip(&m2.user_factors) {
            assert!(a.sub(b).unwrap().norm2() < 1e-12, "parallelism changed the model");
        }
        assert_eq!(m1.training_curve, m2.training_curve);
    }

    #[test]
    fn warm_start_from_trained_model_stays_good() {
        let ds = dataset();
        let ex = JobExecutor::new(4);
        let m1 = AlsModel::train(&ds.ratings, 80, 120, config(), &ex);
        let rmse1 = m1.rmse(&ds.ratings);
        let mut cfg2 = config();
        cfg2.iterations = 2;
        let m2 = AlsModel::train_warm_start(
            &ds.ratings,
            m1.user_factors.clone(),
            m1.item_factors.clone(),
            cfg2,
            &ex,
        );
        let rmse2 = m2.rmse(&ds.ratings);
        assert!(rmse2 <= rmse1 + 1e-6, "warm start regressed: {rmse1} -> {rmse2}");
    }

    #[test]
    fn empty_ratings_yield_initialization() {
        let ex = JobExecutor::new(2);
        let model = AlsModel::train(&[], 10, 10, config(), &ex);
        assert_eq!(model.global_mean, 0.0);
        assert_eq!(model.user_factors.len(), 10);
        assert!(model.rmse(&[]) == 0.0);
    }

    #[test]
    fn users_without_ratings_keep_initialization() {
        let ds = dataset();
        let ex = JobExecutor::new(2);
        // Train with extra user slots beyond those that appear in data.
        let model = AlsModel::train(&ds.ratings, 100, 120, config(), &ex);
        let fresh = init_factor(95, config().seed, 5);
        assert!(model.user_factors[95].sub(&fresh).unwrap().norm2() < 1e-15);
    }

    #[test]
    fn predictions_are_finite_and_centered() {
        let ds = dataset();
        let ex = JobExecutor::new(4);
        let model = AlsModel::train(&ds.ratings, 80, 120, config(), &ex);
        for r in ds.ratings.iter().take(100) {
            let p = model.predict(r.uid, r.item_id);
            assert!(p.is_finite());
            assert!(p > -5.0 && p < 15.0, "wild prediction {p}");
        }
    }

    #[test]
    fn objective_decreases_with_more_iterations() {
        let ds = dataset();
        let ex = JobExecutor::new(4);
        let mut short = config();
        short.iterations = 1;
        let mut long = config();
        long.iterations = 8;
        let m_short = AlsModel::train(&ds.ratings, 80, 120, short, &ex);
        let m_long = AlsModel::train(&ds.ratings, 80, 120, long, &ex);
        assert!(m_long.objective(&ds.ratings) <= m_short.objective(&ds.ratings) + 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_ids() {
        let ex = JobExecutor::new(1);
        let bad = vec![Rating { uid: 99, item_id: 0, value: 3.0, timestamp: 0 }];
        let _ = AlsModel::train(&bad, 10, 10, config(), &ex);
    }
}
