//! An immutable, partitioned, in-memory collection — the RDD shape.
//!
//! Offline training code in Velox is written against a Spark-like dataset
//! API: partition the observation log, run per-partition transformations in
//! parallel, reduce. [`PartitionedDataset`] provides exactly the operations
//! the training jobs use, nothing speculative: `map`, `filter`,
//! `map_partitions`, `reduce`, `group_by_key` (hash shuffle), `collect`.
//!
//! All parallel operators take a [`JobExecutor`] explicitly, so callers
//! decide the parallelism and the same code runs single-threaded in tests.

use crate::executor::JobExecutor;
use std::collections::HashMap;
use std::hash::Hash;

/// An immutable partitioned collection of `T`.
#[derive(Debug, Clone)]
pub struct PartitionedDataset<T> {
    partitions: Vec<Vec<T>>,
}

impl<T: Send + Sync> PartitionedDataset<T> {
    /// Partitions `data` round-robin into `n_partitions` (minimum 1).
    pub fn from_vec(data: Vec<T>, n_partitions: usize) -> Self {
        let n = n_partitions.max(1);
        let mut partitions: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        for (i, item) in data.into_iter().enumerate() {
            partitions[i % n].push(item);
        }
        PartitionedDataset { partitions }
    }

    /// Builds a dataset from pre-formed partitions.
    pub fn from_partitions(partitions: Vec<Vec<T>>) -> Self {
        assert!(!partitions.is_empty(), "dataset needs at least one partition");
        PartitionedDataset { partitions }
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total element count across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// True when all partitions are empty.
    pub fn is_empty(&self) -> bool {
        self.partitions.iter().all(Vec::is_empty)
    }

    /// Borrow a partition's contents.
    pub fn partition(&self, i: usize) -> &[T] {
        &self.partitions[i]
    }

    /// Applies `f` to every element in parallel (per-partition tasks).
    pub fn map<R, F>(&self, executor: &JobExecutor, f: F) -> PartitionedDataset<R>
    where
        R: Send + Sync,
        F: Fn(&T) -> R + Sync,
    {
        let parts: Vec<&Vec<T>> = self.partitions.iter().collect();
        let mapped = executor.execute(parts, |_, part| part.iter().map(&f).collect::<Vec<R>>());
        PartitionedDataset { partitions: mapped }
    }

    /// Keeps the elements satisfying `pred`, preserving partitioning.
    pub fn filter<F>(&self, executor: &JobExecutor, pred: F) -> PartitionedDataset<T>
    where
        T: Clone,
        F: Fn(&T) -> bool + Sync,
    {
        let parts: Vec<&Vec<T>> = self.partitions.iter().collect();
        let filtered = executor
            .execute(parts, |_, part| part.iter().filter(|t| pred(t)).cloned().collect::<Vec<T>>());
        PartitionedDataset { partitions: filtered }
    }

    /// Applies `f` to each whole partition in parallel — the escape hatch
    /// for stateful per-partition computation (e.g. building per-partition
    /// Gram matrices).
    pub fn map_partitions<R, F>(&self, executor: &JobExecutor, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let parts: Vec<&Vec<T>> = self.partitions.iter().collect();
        executor.execute(parts, |i, part| f(i, part))
    }

    /// Two-level reduction: fold each partition from `identity()` with
    /// `fold`, then merge the per-partition accumulators with `merge`
    /// left-to-right in partition order (deterministic regardless of
    /// scheduling).
    pub fn reduce<A, FI, FF, FM>(
        &self,
        executor: &JobExecutor,
        identity: FI,
        fold: FF,
        merge: FM,
    ) -> A
    where
        A: Send,
        FI: Fn() -> A + Sync,
        FF: Fn(A, &T) -> A + Sync,
        FM: Fn(A, A) -> A,
    {
        let partials = self.map_partitions(executor, |_, part| part.iter().fold(identity(), &fold));
        partials.into_iter().fold(identity(), merge)
    }

    /// Copies all elements out, partition by partition, in partition order.
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.len());
        for p in &self.partitions {
            out.extend(p.iter().cloned());
        }
        out
    }
}

impl<K, V> PartitionedDataset<(K, V)>
where
    K: Eq + Hash + Clone + Send + Sync,
    V: Send + Sync + Clone,
{
    /// Hash-shuffles key–value pairs into per-key groups — the shuffle
    /// behind "gather all ratings of user u" in the training jobs.
    ///
    /// The output map's iteration order is unspecified (HashMap), but the
    /// values within each key preserve (partition-major) input order.
    pub fn group_by_key(&self, executor: &JobExecutor) -> HashMap<K, Vec<V>> {
        // Per-partition local grouping in parallel, then a sequential merge.
        let locals = self.map_partitions(executor, |_, part| {
            let mut m: HashMap<K, Vec<V>> = HashMap::new();
            for (k, v) in part {
                m.entry(k.clone()).or_default().push(v.clone());
            }
            m
        });
        let mut merged: HashMap<K, Vec<V>> = HashMap::new();
        for local in locals {
            for (k, mut vs) in local {
                merged.entry(k).or_default().append(&mut vs);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex() -> JobExecutor {
        JobExecutor::new(4)
    }

    #[test]
    fn round_robin_partitioning() {
        let ds = PartitionedDataset::from_vec((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(ds.n_partitions(), 3);
        assert_eq!(ds.len(), 10);
        assert_eq!(ds.partition(0), &[0, 3, 6, 9]);
        assert_eq!(ds.partition(1), &[1, 4, 7]);
    }

    #[test]
    fn zero_partitions_clamps() {
        let ds = PartitionedDataset::from_vec(vec![1, 2, 3], 0);
        assert_eq!(ds.n_partitions(), 1);
    }

    #[test]
    fn map_preserves_order_within_layout() {
        let ds = PartitionedDataset::from_vec((0..100).collect::<Vec<i64>>(), 7);
        let doubled = ds.map(&ex(), |&x| x * 2);
        assert_eq!(doubled.len(), 100);
        let mut all = doubled.collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        // Partition structure preserved.
        assert_eq!(doubled.n_partitions(), 7);
        assert_eq!(doubled.partition(0).len(), ds.partition(0).len());
    }

    #[test]
    fn filter_keeps_matching() {
        let ds = PartitionedDataset::from_vec((0..100).collect::<Vec<i64>>(), 4);
        let evens = ds.filter(&ex(), |&x| x % 2 == 0);
        assert_eq!(evens.len(), 50);
        assert!(evens.collect().iter().all(|x| x % 2 == 0));
    }

    #[test]
    fn reduce_sums() {
        let ds = PartitionedDataset::from_vec((1..=100).collect::<Vec<i64>>(), 8);
        let sum = ds.reduce(&ex(), || 0i64, |acc, &x| acc + x, |a, b| a + b);
        assert_eq!(sum, 5050);
    }

    #[test]
    fn reduce_on_empty_is_identity() {
        let ds: PartitionedDataset<i64> = PartitionedDataset::from_vec(vec![], 4);
        let sum = ds.reduce(&ex(), || 42i64, |acc, &x| acc + x, |a, b| a + b - 42);
        assert_eq!(sum, 42);
        assert!(ds.is_empty());
    }

    #[test]
    fn map_partitions_sees_every_partition() {
        let ds = PartitionedDataset::from_vec((0..20).collect::<Vec<i64>>(), 5);
        let sizes = ds.map_partitions(&ex(), |i, part| (i, part.len()));
        assert_eq!(sizes.len(), 5);
        let total: usize = sizes.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 20);
        for (i, (idx, _)) in sizes.iter().enumerate() {
            assert_eq!(*idx, i, "partition index passed through in order");
        }
    }

    #[test]
    fn group_by_key_gathers_all_values() {
        let pairs: Vec<(u64, i64)> = (0..60).map(|i| (i % 5, i as i64)).collect();
        let ds = PartitionedDataset::from_vec(pairs, 6);
        let grouped = ds.group_by_key(&ex());
        assert_eq!(grouped.len(), 5);
        for (k, vs) in &grouped {
            assert_eq!(vs.len(), 12, "key {k}");
            assert!(vs.iter().all(|v| (*v as u64) % 5 == *k));
        }
    }

    #[test]
    fn from_partitions_respects_layout() {
        let ds = PartitionedDataset::from_partitions(vec![vec![1, 2], vec![3]]);
        assert_eq!(ds.n_partitions(), 2);
        assert_eq!(ds.collect(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn empty_partition_list_panics() {
        let _: PartitionedDataset<i32> = PartitionedDataset::from_partitions(vec![]);
    }

    #[test]
    fn parallel_matches_single_threaded() {
        let ds = PartitionedDataset::from_vec((0..500).collect::<Vec<i64>>(), 16);
        let seq = JobExecutor::new(1);
        let par = JobExecutor::new(8);
        let a = ds.reduce(&seq, || 0i64, |acc, &x| acc ^ (x * 7), |a, b| a ^ b);
        let b = ds.reduce(&par, || 0i64, |acc, &x| acc ^ (x * 7), |a, b| a ^ b);
        assert_eq!(a, b);
    }
}
