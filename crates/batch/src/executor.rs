//! Fixed-size worker-pool job execution.
//!
//! A [`JobExecutor`] runs one *stage* at a time: a vector of independent
//! tasks fanned out over `workers` OS threads, results gathered in task
//! order. This mirrors how the offline retraining jobs in the paper are
//! structured (embarrassingly parallel per-entity solves inside each ALS
//! half-step), while keeping scheduling deterministic enough that training
//! output does not depend on thread interleaving: tasks are claimed from an
//! atomic counter but results land in their task's slot.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// Metrics for one executed stage.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// Number of tasks in the stage.
    pub tasks: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the stage.
    pub wall_time: Duration,
}

/// A fixed-parallelism task-stage executor.
pub struct JobExecutor {
    workers: usize,
    /// Cumulative metrics of every stage run on this executor.
    history: Mutex<Vec<JobMetrics>>,
}

impl JobExecutor {
    /// Creates an executor with `workers` threads per stage (minimum 1).
    pub fn new(workers: usize) -> Self {
        JobExecutor { workers: workers.max(1), history: Mutex::new(Vec::new()) }
    }

    /// Creates an executor sized to the machine (`available_parallelism`),
    /// capped at 16 — offline training in Velox shares the node with the
    /// serving path, so it should not monopolize every core.
    pub fn default_parallelism() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::new(n.min(16))
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` once per task input, in parallel, returning results in task
    /// order. `f` must be `Sync` because multiple workers call it
    /// concurrently on distinct tasks.
    ///
    /// Panics in a task propagate (the stage joins all workers first), so a
    /// bug in training code fails the job loudly rather than producing a
    /// silently-truncated model.
    pub fn execute<T, R, F>(&self, inputs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let start = Instant::now();
        let n = inputs.len();
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        if n > 0 {
            let next = AtomicUsize::new(0);
            let inputs_ref = &inputs;
            let f_ref = &f;
            // Slots are disjoint per task, so hand each worker raw access
            // through a Mutex-free slice split via interior indexing.
            let results_ptr = SlotWriter::new(&mut results);
            let workers = self.workers.min(n);
            // std's scoped threads join on scope exit and re-raise any
            // worker panic, so a bug in training code still fails loudly.
            thread::scope(|scope| {
                for _ in 0..workers {
                    let next = &next;
                    let results_ptr = &results_ptr;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = f_ref(i, &inputs_ref[i]);
                        // SAFETY (encapsulated in SlotWriter): each index is
                        // claimed exactly once via the atomic counter.
                        unsafe { results_ptr.write(i, r) };
                    });
                }
            });
        }
        let metrics = JobMetrics { tasks: n, workers: self.workers, wall_time: start.elapsed() };
        self.history.lock().unwrap().push(metrics);
        results.into_iter().map(|r| r.expect("every task slot filled")).collect()
    }

    /// Metrics of all stages executed so far, in order.
    pub fn stage_history(&self) -> Vec<JobMetrics> {
        self.history.lock().unwrap().clone()
    }
}

/// Shared mutable access to distinct `Option<R>` slots, each written at most
/// once by the worker that claimed its index from the atomic counter.
struct SlotWriter<R> {
    ptr: *mut Option<R>,
}

// SAFETY: workers write disjoint slots (guaranteed by the fetch_add claim
// protocol) and the owning Vec outlives the scope.
unsafe impl<R: Send> Sync for SlotWriter<R> {}
unsafe impl<R: Send> Send for SlotWriter<R> {}

impl<R> SlotWriter<R> {
    fn new(slots: &mut Vec<Option<R>>) -> Self {
        SlotWriter { ptr: slots.as_mut_ptr() }
    }

    /// # Safety
    /// `i` must be in bounds and claimed by exactly one caller.
    unsafe fn write(&self, i: usize, value: R) {
        std::ptr::write(self.ptr.add(i), Some(value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_task_order() {
        let ex = JobExecutor::new(4);
        let inputs: Vec<u64> = (0..1000).collect();
        let out = ex.execute(inputs, |_, &x| x * 2);
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, i as u64 * 2);
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ex = JobExecutor::new(8);
        let counter = AtomicU64::new(0);
        let inputs: Vec<usize> = (0..500).collect();
        let out = ex.execute(inputs, |_, &i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(counter.load(Ordering::SeqCst), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn empty_stage() {
        let ex = JobExecutor::new(4);
        let out: Vec<u64> = ex.execute(Vec::<u64>::new(), |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_is_sequential_but_complete() {
        let ex = JobExecutor::new(1);
        assert_eq!(ex.workers(), 1);
        let out = ex.execute((0..100).collect::<Vec<u64>>(), |i, &x| (i as u64, x));
        for (i, &(idx, val)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(val, i as u64);
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let ex = JobExecutor::new(0);
        assert_eq!(ex.workers(), 1);
    }

    #[test]
    fn metrics_recorded_per_stage() {
        let ex = JobExecutor::new(2);
        ex.execute(vec![1, 2, 3], |_, &x: &i32| x);
        ex.execute(vec![1], |_, &x: &i32| x);
        let hist = ex.stage_history();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].tasks, 3);
        assert_eq!(hist[1].tasks, 1);
        assert_eq!(hist[0].workers, 2);
    }

    #[test]
    fn parallel_results_match_sequential() {
        let seq = JobExecutor::new(1);
        let par = JobExecutor::new(8);
        let inputs: Vec<u64> = (0..2000).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        assert_eq!(seq.execute(inputs.clone(), f), par.execute(inputs, f));
    }

    #[test]
    #[should_panic]
    fn task_panic_propagates() {
        let ex = JobExecutor::new(2);
        let _ = ex.execute(vec![0, 1, 2], |_, &x: &i32| {
            if x == 1 {
                panic!("task failure");
            }
            x
        });
    }
}
