//! Stochastic-gradient-descent matrix factorization — the alternative
//! offline trainer.
//!
//! The paper's related work points at SGD-on-Spark (Sparkler, \[12\]) as "a
//! strategy ... that could be used by Velox to improve offline training
//! performance". This module provides that alternative: biased MF trained
//! by SGD with per-epoch learning-rate decay. It fits the same model shape
//! as [`crate::als`] (`r̂ = μ + b_u + b_i + wᵤᵀxᵢ`, with optional biases),
//! so the model manager can swap trainers, and the bench harness uses it as
//! an offline-training ablation.

use velox_data::Rating;
use velox_linalg::Vector;

use crate::executor::JobExecutor;

/// SGD hyper-parameters.
#[derive(Debug, Clone)]
pub struct SgdConfig {
    /// Latent dimension.
    pub rank: usize,
    /// L2 regularization on factors and biases.
    pub lambda: f64,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Multiplicative decay applied to the learning rate each epoch.
    pub decay: f64,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Whether to learn per-user/per-item bias terms.
    pub use_biases: bool,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            rank: 10,
            lambda: 0.05,
            learning_rate: 0.02,
            decay: 0.95,
            epochs: 20,
            use_biases: true,
            seed: 0x56D,
        }
    }
}

/// A trained SGD matrix-factorization model.
#[derive(Debug, Clone)]
pub struct SgdModel {
    /// Per-user latent factors.
    pub user_factors: Vec<Vector>,
    /// Per-item latent factors.
    pub item_factors: Vec<Vector>,
    /// Per-user bias terms (all zero when `use_biases` is false).
    pub user_bias: Vec<f64>,
    /// Per-item bias terms.
    pub item_bias: Vec<f64>,
    /// Global mean μ.
    pub global_mean: f64,
    /// Hyper-parameters used.
    pub config: SgdConfig,
    /// Training RMSE after each epoch.
    pub training_curve: Vec<f64>,
}

impl SgdModel {
    /// Trains on `ratings` (ids dense in `[0, n)`). The `executor` is used
    /// for the parallel evaluation passes between epochs; the gradient pass
    /// itself is sequential per epoch, which keeps training exactly
    /// reproducible (Hogwild-style parallel SGD trades determinism for
    /// speed — the wrong trade for a reference implementation).
    pub fn train(
        ratings: &[Rating],
        n_users: usize,
        n_items: usize,
        config: SgdConfig,
        executor: &JobExecutor,
    ) -> Self {
        assert!(config.rank > 0);
        assert!(config.learning_rate > 0.0 && config.lambda >= 0.0);
        for r in ratings {
            assert!((r.uid as usize) < n_users, "uid {} out of range", r.uid);
            assert!((r.item_id as usize) < n_items, "item {} out of range", r.item_id);
        }
        let global_mean = if ratings.is_empty() {
            0.0
        } else {
            ratings.iter().map(|r| r.value).sum::<f64>() / ratings.len() as f64
        };

        let scale = 0.1 / (config.rank as f64).sqrt();
        let mut state = config.seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0 * scale
        };
        let mut user_factors: Vec<Vector> = (0..n_users)
            .map(|_| Vector::from_vec((0..config.rank).map(|_| next()).collect()))
            .collect();
        let mut item_factors: Vec<Vector> = (0..n_items)
            .map(|_| Vector::from_vec((0..config.rank).map(|_| next()).collect()))
            .collect();
        let mut user_bias = vec![0.0; n_users];
        let mut item_bias = vec![0.0; n_items];

        let mut lr = config.learning_rate;
        let mut training_curve = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            for r in ratings {
                let u = r.uid as usize;
                let i = r.item_id as usize;
                let pred = global_mean
                    + user_bias[u]
                    + item_bias[i]
                    + user_factors[u].dot(&item_factors[i]).expect("rank consistent");
                let err = r.value - pred;
                if config.use_biases {
                    user_bias[u] += lr * (err - config.lambda * user_bias[u]);
                    item_bias[i] += lr * (err - config.lambda * item_bias[i]);
                }
                let wu = user_factors[u].as_mut_slice();
                // Split borrows: take a copy of xi first (rank is small).
                let xi_copy = item_factors[i].clone();
                for (w, &x) in wu.iter_mut().zip(xi_copy.as_slice()) {
                    *w += lr * (err * x - config.lambda * *w);
                }
                let wu_copy = user_factors[u].clone();
                let xi = item_factors[i].as_mut_slice();
                for (x, &w) in xi.iter_mut().zip(wu_copy.as_slice()) {
                    *x += lr * (err * w - config.lambda * *x);
                }
            }
            lr *= config.decay;
            // Parallel evaluation pass.
            let snapshot = SgdModel {
                user_factors: user_factors.clone(),
                item_factors: item_factors.clone(),
                user_bias: user_bias.clone(),
                item_bias: item_bias.clone(),
                global_mean,
                config: config.clone(),
                training_curve: Vec::new(),
            };
            training_curve.push(snapshot.rmse_parallel(ratings, executor));
        }

        SgdModel {
            user_factors,
            item_factors,
            user_bias,
            item_bias,
            global_mean,
            config,
            training_curve,
        }
    }

    /// Predicted rating for a pair.
    pub fn predict(&self, uid: u64, item_id: u64) -> f64 {
        let u = uid as usize;
        let i = item_id as usize;
        self.global_mean
            + self.user_bias[u]
            + self.item_bias[i]
            + self.user_factors[u].dot(&self.item_factors[i]).expect("rank consistent")
    }

    /// Sequential RMSE over a rating set.
    pub fn rmse(&self, ratings: &[Rating]) -> f64 {
        if ratings.is_empty() {
            return 0.0;
        }
        let sse: f64 = ratings
            .iter()
            .map(|r| {
                let e = self.predict(r.uid, r.item_id) - r.value;
                e * e
            })
            .sum();
        (sse / ratings.len() as f64).sqrt()
    }

    /// RMSE computed as a parallel map-reduce over the executor (the form
    /// the offline evaluation jobs use on large logs).
    pub fn rmse_parallel(&self, ratings: &[Rating], executor: &JobExecutor) -> f64 {
        if ratings.is_empty() {
            return 0.0;
        }
        let chunks: Vec<&[Rating]> = ratings.chunks(4096.max(ratings.len() / 64)).collect();
        let partials = executor.execute(chunks, |_, chunk| {
            chunk
                .iter()
                .map(|r| {
                    let e = self.predict(r.uid, r.item_id) - r.value;
                    e * e
                })
                .sum::<f64>()
        });
        (partials.into_iter().sum::<f64>() / ratings.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velox_data::{RatingsDataset, SyntheticConfig};

    fn dataset() -> RatingsDataset {
        RatingsDataset::generate(SyntheticConfig {
            n_users: 60,
            n_items: 100,
            rank: 4,
            ratings_per_user: 25,
            noise_std: 0.2,
            seed: 31,
            ..Default::default()
        })
    }

    fn config() -> SgdConfig {
        SgdConfig { rank: 4, epochs: 60, learning_rate: 0.05, decay: 0.99, ..Default::default() }
    }

    #[test]
    fn beats_mean_only_baseline() {
        let ds = dataset();
        let ex = JobExecutor::new(4);
        let model = SgdModel::train(&ds.ratings, 60, 100, config(), &ex);
        let mean = ds.ratings.iter().map(|r| r.value).sum::<f64>() / ds.len() as f64;
        let mean_rmse =
            (ds.ratings.iter().map(|r| (r.value - mean) * (r.value - mean)).sum::<f64>()
                / ds.len() as f64)
                .sqrt();
        let rmse = model.rmse(&ds.ratings);
        assert!(rmse < 0.75 * mean_rmse, "SGD rmse {rmse} vs mean {mean_rmse}");
    }

    #[test]
    fn training_curve_trends_down() {
        let ds = dataset();
        let ex = JobExecutor::new(4);
        let model = SgdModel::train(&ds.ratings, 60, 100, config(), &ex);
        let first = model.training_curve.first().copied().unwrap();
        let last = model.training_curve.last().copied().unwrap();
        assert!(last < first, "curve did not descend: {first} -> {last}");
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let ex = JobExecutor::new(4);
        let m1 = SgdModel::train(&ds.ratings, 60, 100, config(), &ex);
        let m2 = SgdModel::train(&ds.ratings, 60, 100, config(), &ex);
        assert_eq!(m1.training_curve, m2.training_curve);
        for (a, b) in m1.user_factors.iter().zip(&m2.user_factors) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rmse_parallel_matches_sequential() {
        let ds = dataset();
        let ex = JobExecutor::new(8);
        let model = SgdModel::train(&ds.ratings, 60, 100, config(), &ex);
        let seq = model.rmse(&ds.ratings);
        let par = model.rmse_parallel(&ds.ratings, &ex);
        assert!((seq - par).abs() < 1e-10);
    }

    #[test]
    fn biases_capture_systematic_offsets() {
        let ds = dataset();
        let ex = JobExecutor::new(2);
        let with = SgdModel::train(&ds.ratings, 60, 100, config(), &ex);
        let mut cfg = config();
        cfg.use_biases = false;
        let without = SgdModel::train(&ds.ratings, 60, 100, cfg, &ex);
        assert!(without.user_bias.iter().all(|&b| b == 0.0));
        assert!(with.user_bias.iter().any(|&b| b != 0.0));
    }

    #[test]
    fn empty_training_set() {
        let ex = JobExecutor::new(2);
        let model = SgdModel::train(&[], 5, 5, config(), &ex);
        assert_eq!(model.global_mean, 0.0);
        assert_eq!(model.rmse(&[]), 0.0);
        assert!(model.predict(0, 0).is_finite());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_ids() {
        let ex = JobExecutor::new(1);
        let bad = vec![Rating { uid: 0, item_id: 50, value: 1.0, timestamp: 0 }];
        let _ = SgdModel::train(&bad, 5, 5, config(), &ex);
    }
}
