//! CRC-32 (IEEE 802.3 polynomial), table-driven, std-only.
//!
//! Every durable format in this crate — WAL records, checkpoint files, and
//! codec blobs — carries a CRC-32 so that torn writes and bit rot are
//! *detected* rather than decoded into silently-wrong model state. The
//! polynomial is the ubiquitous reflected 0xEDB88320 (the same one gzip,
//! PNG, and ext4 metadata use), which guarantees detection of any
//! single-bit error and any burst shorter than 32 bits.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_feed(crc32_begin(), data))
}

/// Starts an incremental CRC-32 over a region that arrives in chunks
/// (e.g. a frame-header extension followed by the payload), so callers
/// never have to concatenate buffers just to checksum them.
pub fn crc32_begin() -> u32 {
    0xFFFF_FFFF
}

/// Folds `data` into a running CRC-32 state from [`crc32_begin`].
pub fn crc32_feed(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// Finalizes an incremental CRC-32 state into the checksum value.
pub fn crc32_finish(state: u32) -> u32 {
    !state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot_at_every_split() {
        let data = b"velox incremental checksum";
        let want = crc32(data);
        for split in 0..=data.len() {
            let state = crc32_feed(crc32_begin(), &data[..split]);
            assert_eq!(crc32_finish(crc32_feed(state, &data[split..])), want, "split {split}");
        }
    }

    #[test]
    fn detects_every_single_bit_flip() {
        let data = b"velox durable state".to_vec();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), good, "missed flip at byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn sensitive_to_truncation_and_extension() {
        let data = b"0123456789abcdef";
        let good = crc32(data);
        assert_ne!(crc32(&data[..15]), good);
        let mut longer = data.to_vec();
        longer.push(0);
        assert_ne!(crc32(&longer), good);
    }
}
