//! A constant-time LRU cache with hit/miss instrumentation.
//!
//! Figure 4 of the paper turns on the predictor's prediction/feature caches;
//! §5 argues that Zipfian item popularity makes "a simple cache eviction
//! strategy like LRU" effective for hot item features. This implementation
//! backs both: an intrusive doubly-linked list threaded through a slab of
//! entries (indices, not pointers, so it is plain safe Rust with O(1)
//! get/put), plus counters so the experiments can report hit rates directly.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU cache.
///
/// Not internally synchronized: the predictor wraps one per shard (or per
/// node in the cluster simulator) behind its own lock, which keeps lock
/// scope explicit at the call site. Slab slots are `Option` so entries can
/// be moved out on invalidation without `unsafe`.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0` — a zero-capacity cache is a configuration
    /// error, not a runtime condition.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    #[inline]
    fn entry(&self, idx: usize) -> &Entry<K, V> {
        self.slab[idx].as_ref().expect("live slot")
    }

    #[inline]
    fn entry_mut(&mut self, idx: usize) -> &mut Entry<K, V> {
        self.slab[idx].as_mut().expect("live slot")
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = {
            let e = self.entry(idx);
            (e.prev, e.next)
        };
        if prev != NIL {
            self.entry_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entry_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let e = self.entry_mut(idx);
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.entry_mut(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, marking it most-recently-used on a hit. Counts the
    /// access in the hit/miss statistics.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.attach_front(idx);
                Some(&self.entry(idx).value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Non-promoting, non-counting lookup — used by tests and metrics
    /// endpoints that must not perturb recency or statistics.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.entry(idx).value)
    }

    /// Inserts or replaces `key`, marking it most-recently-used. Evicts the
    /// least-recently-used entry when at capacity; returns the evicted
    /// `(key, value)` if any.
    pub fn put(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.entry_mut(idx).value = value;
            self.detach(idx);
            self.attach_front(idx);
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let tail = self.tail;
            self.detach(tail);
            let old = self.slab[tail].take().expect("live tail");
            self.map.remove(&old.key);
            self.free.push(tail);
            self.evictions += 1;
            evicted = Some((old.key, old.value));
        }
        let entry = Entry { key: key.clone(), value, prev: NIL, next: NIL };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(entry);
                i
            }
            None => {
                self.slab.push(Some(entry));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        evicted
    }

    /// Removes `key`, returning its value. Does not count as a miss.
    pub fn invalidate(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        let entry = self.slab[idx].take().expect("live slot");
        self.free.push(idx);
        Some(entry.value)
    }

    /// Clears all entries and resets recency (statistics are preserved).
    ///
    /// Cache invalidation after an offline retrain (§4.2: the offline phase
    /// "invalidates both prediction and feature caches") uses this.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// `(hits, misses, evictions)` counters since creation.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Hit rate over all counted accesses; 0.0 before any access.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Resets the hit/miss/eviction counters (contents untouched).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    /// Keys from most- to least-recently used (diagnostics and tests).
    pub fn keys_mru_order(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            let e = self.entry(cur);
            out.push(e.key.clone());
            cur = e.next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_get_put() {
        let mut c: LruCache<u64, String> = LruCache::new(2);
        assert!(c.get(&1).is_none());
        c.put(1, "a".into());
        assert_eq!(c.get(&1).unwrap(), "a");
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u64, u64> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.get(&1); // 1 is now MRU
        let evicted = c.put(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert!(c.peek(&2).is_none());
        assert!(c.peek(&1).is_some());
        assert!(c.peek(&3).is_some());
        assert_eq!(c.stats().2, 1);
    }

    #[test]
    fn put_existing_updates_and_promotes() {
        let mut c: LruCache<u64, u64> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(1, 11); // update, promote
        assert_eq!(c.keys_mru_order(), vec![1, 2]);
        let evicted = c.put(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(*c.peek(&1).unwrap(), 11);
    }

    #[test]
    fn peek_does_not_promote_or_count() {
        let mut c: LruCache<u64, u64> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.peek(&1);
        assert_eq!(c.stats(), (0, 0, 0));
        assert_eq!(c.keys_mru_order(), vec![2, 1]);
    }

    #[test]
    fn invalidate_removes_and_frees_slot() {
        let mut c: LruCache<u64, u64> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        assert_eq!(c.invalidate(&1), Some(10));
        assert_eq!(c.invalidate(&1), None);
        assert_eq!(c.len(), 1);
        // The freed slot is reusable without eviction.
        assert!(c.put(3, 30).is_none());
        assert_eq!(c.len(), 2);
        assert_eq!(c.keys_mru_order(), vec![3, 2]);
        assert_eq!(c.stats(), (0, 0, 0), "invalidate is not a miss");
    }

    #[test]
    fn capacity_one() {
        let mut c: LruCache<u64, u64> = LruCache::new(1);
        c.put(1, 10);
        assert_eq!(c.put(2, 20), Some((1, 10)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    fn clear_resets_contents_not_stats() {
        let mut c: LruCache<u64, u64> = LruCache::new(4);
        c.put(1, 10);
        c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().0, 1, "stats survive clear");
        // Reusable after clear.
        c.put(2, 20);
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    fn hit_rate() {
        let mut c: LruCache<u64, u64> = LruCache::new(4);
        assert_eq!(c.hit_rate(), 0.0);
        c.put(1, 1);
        c.get(&1);
        c.get(&2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats(), (0, 0, 0));
    }

    #[test]
    fn mru_order_tracks_accesses() {
        let mut c: LruCache<u64, u64> = LruCache::new(3);
        c.put(1, 1);
        c.put(2, 2);
        c.put(3, 3);
        assert_eq!(c.keys_mru_order(), vec![3, 2, 1]);
        c.get(&1);
        assert_eq!(c.keys_mru_order(), vec![1, 3, 2]);
    }

    #[test]
    fn heavy_churn_consistency() {
        let mut c: LruCache<u64, u64> = LruCache::new(8);
        for i in 0..1000u64 {
            c.put(i % 16, i);
            if i % 7 == 0 {
                c.invalidate(&(i % 16));
            }
            let _ = c.get(&(i % 5));
        }
        assert!(c.len() <= 8);
        // Every cached key round-trips and the recency list is consistent
        // with the map.
        let keys = c.keys_mru_order();
        assert_eq!(keys.len(), c.len());
        for k in keys {
            assert!(c.peek(&k).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: LruCache<u64, u64> = LruCache::new(0);
    }
}
