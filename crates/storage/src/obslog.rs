//! Append-only observation log.
//!
//! Every `observe(uid, item, label)` call (paper §4.1) does two things:
//! trigger an online update, and durably record the observation "for use by
//! Spark when retraining the model offline". This module is that record: a
//! segmented, append-only, concurrently-readable log. Offline retraining
//! reads from offset 0; the evaluator tails new entries; nothing is ever
//! rewritten in place.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use velox_obs::{Histogram, Timer};

/// One recorded interaction: user `uid` gave item `item_id` the label `y`
/// (a rating, a click indicator, etc.) at logical time `timestamp`.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// User identifier.
    pub uid: u64,
    /// Item identifier.
    pub item_id: u64,
    /// Supervised label (rating / click).
    pub y: f64,
    /// Logical timestamp assigned by the log at append time (monotonically
    /// increasing; equals the observation's log offset).
    pub timestamp: u64,
}

/// Entries per segment. Segments let long logs be scanned without holding a
/// lock across the whole history: readers lock one segment at a time.
const SEGMENT_SIZE: usize = 4096;

/// An append-only, segmented, in-memory observation log.
///
/// Appends are lock-free in the common case apart from one segment write
/// lock; reads never block appends to other segments.
pub struct ObservationLog {
    segments: RwLock<Vec<RwLock<Vec<Observation>>>>,
    next_offset: AtomicU64,
    /// Per-append wall-clock latency (ns), exposable through a registry.
    append_latency: Arc<Histogram>,
}

impl ObservationLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ObservationLog {
            segments: RwLock::new(vec![RwLock::new(Vec::with_capacity(SEGMENT_SIZE))]),
            next_offset: AtomicU64::new(0),
            append_latency: Arc::new(Histogram::new()),
        }
    }

    /// Shared handle to the append-latency histogram, so a metrics
    /// registry can expose the same atomics this log records into.
    pub fn append_latency_histogram(&self) -> Arc<Histogram> {
        Arc::clone(&self.append_latency)
    }

    /// Appends an observation, assigning and returning its offset (which
    /// doubles as its logical timestamp).
    pub fn append(&self, uid: u64, item_id: u64, y: f64) -> u64 {
        let timer = Timer::start();
        let offset = self.next_offset.fetch_add(1, Ordering::SeqCst);
        let seg_idx = (offset as usize) / SEGMENT_SIZE;
        let obs = Observation { uid, item_id, y, timestamp: offset };
        loop {
            {
                let segments = self.segments.read().unwrap();
                if let Some(seg) = segments.get(seg_idx) {
                    let mut seg = seg.write().unwrap();
                    // Offsets are dense, so within a segment the index is
                    // offset % SEGMENT_SIZE; appends may arrive slightly out
                    // of order across threads, so grow with placeholders.
                    let local = (offset as usize) % SEGMENT_SIZE;
                    if seg.len() <= local {
                        seg.resize(
                            local + 1,
                            Observation {
                                uid: u64::MAX,
                                item_id: u64::MAX,
                                y: 0.0,
                                timestamp: u64::MAX,
                            },
                        );
                    }
                    seg[local] = obs;
                    timer.observe(&self.append_latency);
                    return offset;
                }
            }
            // Need a new segment; take the outer write lock and extend.
            let mut segments = self.segments.write().unwrap();
            while segments.len() <= seg_idx {
                segments.push(RwLock::new(Vec::with_capacity(SEGMENT_SIZE)));
            }
        }
    }

    /// Number of observations appended.
    pub fn len(&self) -> u64 {
        self.next_offset.load(Ordering::SeqCst)
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads up to `max` observations starting at `from_offset`, in offset
    /// order. Returns fewer than `max` at the log head. Placeholder slots
    /// from in-flight concurrent appends (timestamp == u64::MAX) terminate
    /// the scan early, so a reader never observes a torn entry.
    pub fn read_from(&self, from_offset: u64, max: usize) -> Vec<Observation> {
        let end = self.len().min(from_offset.saturating_add(max as u64));
        let mut out = Vec::with_capacity((end.saturating_sub(from_offset)) as usize);
        let segments = self.segments.read().unwrap();
        let mut offset = from_offset;
        while offset < end {
            let seg_idx = (offset as usize) / SEGMENT_SIZE;
            let Some(seg) = segments.get(seg_idx) else { break };
            let seg = seg.read().unwrap();
            let local_start = (offset as usize) % SEGMENT_SIZE;
            let local_end = (SEGMENT_SIZE).min(local_start + (end - offset) as usize);
            // Only what the segment has actually materialized is readable;
            // a shorter-than-claimed segment means an in-flight append, and
            // the scan must STOP there rather than skip ahead and return a
            // log with holes.
            let avail_end = local_end.min(seg.len());
            for obs in seg.get(local_start..avail_end).unwrap_or(&[]) {
                if obs.timestamp == u64::MAX {
                    return out; // in-flight append; stop cleanly
                }
                out.push(obs.clone());
            }
            if avail_end < local_end {
                break;
            }
            let consumed = avail_end - local_start;
            if consumed == 0 {
                break;
            }
            offset += consumed as u64;
        }
        out
    }

    /// Reads the entire log (used by offline retraining).
    pub fn read_all(&self) -> Vec<Observation> {
        self.read_from(0, self.len() as usize)
    }

    /// All observations for one user, in arrival order. O(len) scan — used
    /// by model reconstruction (rebuilding a user's sufficient statistics
    /// after a feature-parameter change), which is an offline-path
    /// operation.
    pub fn read_user(&self, uid: u64) -> Vec<Observation> {
        self.read_all().into_iter().filter(|o| o.uid == uid).collect()
    }
}

impl Default for ObservationLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn append_assigns_dense_offsets() {
        let log = ObservationLog::new();
        assert!(log.is_empty());
        assert_eq!(log.append(1, 100, 4.5), 0);
        assert_eq!(log.append(2, 200, 3.0), 1);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn read_from_respects_offset_and_max() {
        let log = ObservationLog::new();
        for i in 0..10 {
            log.append(i, i * 10, i as f64);
        }
        let chunk = log.read_from(3, 4);
        assert_eq!(chunk.len(), 4);
        assert_eq!(chunk[0].uid, 3);
        assert_eq!(chunk[3].uid, 6);
        assert_eq!(chunk[0].timestamp, 3);
        // Reading past the end returns what exists.
        assert_eq!(log.read_from(8, 100).len(), 2);
        assert!(log.read_from(100, 10).is_empty());
    }

    #[test]
    fn read_all_round_trips() {
        let log = ObservationLog::new();
        log.append(7, 77, 1.5);
        log.append(8, 88, -0.5);
        let all = log.read_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1], Observation { uid: 8, item_id: 88, y: -0.5, timestamp: 1 });
    }

    #[test]
    fn read_user_filters() {
        let log = ObservationLog::new();
        log.append(1, 10, 1.0);
        log.append(2, 20, 2.0);
        log.append(1, 30, 3.0);
        let user1 = log.read_user(1);
        assert_eq!(user1.len(), 2);
        assert_eq!(user1[0].item_id, 10);
        assert_eq!(user1[1].item_id, 30);
        assert!(log.read_user(99).is_empty());
    }

    #[test]
    fn spans_multiple_segments() {
        let log = ObservationLog::new();
        let n = (SEGMENT_SIZE * 2 + 100) as u64;
        for i in 0..n {
            log.append(i, i, i as f64);
        }
        assert_eq!(log.len(), n);
        let all = log.read_all();
        assert_eq!(all.len(), n as usize);
        // Spot-check a cross-segment boundary read.
        let boundary = log.read_from(SEGMENT_SIZE as u64 - 2, 4);
        assert_eq!(boundary.len(), 4);
        for (i, obs) in boundary.iter().enumerate() {
            assert_eq!(obs.timestamp, SEGMENT_SIZE as u64 - 2 + i as u64);
        }
    }

    #[test]
    fn concurrent_appends_preserve_density() {
        let log = Arc::new(ObservationLog::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let log = Arc::clone(&log);
            handles.push(thread::spawn(move || {
                for i in 0..2000u64 {
                    log.append(t, i, (t * i) as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 16000);
        let all = log.read_all();
        assert_eq!(all.len(), 16000);
        // Offsets are dense and in order; no placeholder slots remain.
        for (i, obs) in all.iter().enumerate() {
            assert_eq!(obs.timestamp, i as u64);
            assert!(obs.uid < 8);
        }
    }
}
