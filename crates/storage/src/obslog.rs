//! Append-only observation log.
//!
//! Every `observe(uid, item, label)` call (paper §4.1) does two things:
//! trigger an online update, and durably record the observation "for use by
//! Spark when retraining the model offline". This module is that record: a
//! segmented, append-only, concurrently-readable log. Offline retraining
//! reads from offset 0; the evaluator tails new entries; nothing is ever
//! rewritten in place.
//!
//! ## Committed prefix
//!
//! Offsets are handed out by a fetch-add, so two threads can land their
//! slots out of order: offset 7's write may finish before offset 6's. A
//! slot only becomes *committed* — visible to readers — once every earlier
//! slot in the log is filled too. Readers ([`read_from`]) therefore see a
//! dense, gap-free prefix and can never observe an in-flight placeholder
//! (the historical bug here was `resize`-with-default placeholders that a
//! concurrent reader could return as real zero-valued records).
//!
//! ## Durability
//!
//! Optionally, a [`Wal`] can be attached: [`try_append`] then writes the
//! record to disk (honoring the WAL's fsync policy) *before* making it
//! visible in memory, so an acknowledged observation survives a process
//! crash. Appends on a durable log are serialized by the WAL mutex, which
//! keeps the on-disk order identical to the offset order.
//!
//! [`read_from`]: ObservationLog::read_from
//! [`try_append`]: ObservationLog::try_append

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use velox_obs::{Histogram, Timer};

use crate::wal::{Wal, WalStats};
use crate::Result;

/// One recorded interaction: user `uid` gave item `item_id` the label `y`
/// (a rating, a click indicator, etc.) at logical time `timestamp`.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// User identifier.
    pub uid: u64,
    /// Item identifier.
    pub item_id: u64,
    /// Supervised label (rating / click).
    pub y: f64,
    /// Logical timestamp assigned by the log at append time (monotonically
    /// increasing; equals the observation's log offset).
    pub timestamp: u64,
}

/// Entries per segment. Segments let long logs be scanned without holding a
/// lock across the whole history: readers lock one segment at a time.
const SEGMENT_SIZE: usize = 4096;

/// One segment: optional slots (None = reserved but not yet written) plus
/// the length of its committed (gap-free) prefix.
struct Segment {
    slots: Vec<Option<Observation>>,
    committed: usize,
}

impl Segment {
    fn new() -> Self {
        Segment { slots: Vec::with_capacity(SEGMENT_SIZE), committed: 0 }
    }
}

/// An append-only, segmented, concurrently-readable observation log, with
/// optional write-ahead durability.
pub struct ObservationLog {
    segments: RwLock<Vec<RwLock<Segment>>>,
    next_offset: AtomicU64,
    /// Per-append wall-clock latency (ns), exposable through a registry.
    append_latency: Arc<Histogram>,
    /// Attached write-ahead log; when present, [`try_append`] persists
    /// records before exposing them (and serializes appends).
    ///
    /// [`try_append`]: ObservationLog::try_append
    wal: Mutex<Option<Wal>>,
}

impl ObservationLog {
    /// Creates an empty, memory-only log.
    pub fn new() -> Self {
        ObservationLog {
            segments: RwLock::new(vec![RwLock::new(Segment::new())]),
            next_offset: AtomicU64::new(0),
            append_latency: Arc::new(Histogram::new()),
            wal: Mutex::new(None),
        }
    }

    /// Shared handle to the append-latency histogram, so a metrics
    /// registry can expose the same atomics this log records into.
    pub fn append_latency_histogram(&self) -> Arc<Histogram> {
        Arc::clone(&self.append_latency)
    }

    /// Places `obs` into its slot and advances the segment's committed
    /// frontier over any now-contiguous run.
    fn insert(&self, offset: u64, obs: Observation) {
        let seg_idx = (offset as usize) / SEGMENT_SIZE;
        loop {
            {
                let segments = self.segments.read().unwrap();
                if let Some(seg) = segments.get(seg_idx) {
                    let mut seg = seg.write().unwrap();
                    let local = (offset as usize) % SEGMENT_SIZE;
                    if seg.slots.len() <= local {
                        seg.slots.resize(local + 1, None);
                    }
                    seg.slots[local] = Some(obs);
                    while seg.committed < seg.slots.len() && seg.slots[seg.committed].is_some() {
                        seg.committed += 1;
                    }
                    return;
                }
            }
            // Need a new segment; take the outer write lock and extend.
            let mut segments = self.segments.write().unwrap();
            while segments.len() <= seg_idx {
                segments.push(RwLock::new(Segment::new()));
            }
        }
    }

    /// Appends an observation in memory only, assigning and returning its
    /// offset (which doubles as its logical timestamp). Durable logs (a
    /// WAL attached) must go through [`try_append`](Self::try_append)
    /// instead — this path never touches disk.
    pub fn append(&self, uid: u64, item_id: u64, y: f64) -> u64 {
        let timer = Timer::start();
        let offset = self.next_offset.fetch_add(1, Ordering::SeqCst);
        self.insert(offset, Observation { uid, item_id, y, timestamp: offset });
        timer.observe(&self.append_latency);
        offset
    }

    /// Appends an observation, writing it to the attached WAL (and
    /// syncing, per the WAL's fsync policy) *before* making it readable.
    /// Without an attached WAL this is exactly [`append`](Self::append).
    /// On an I/O error nothing becomes visible and the offset reservation
    /// is rolled back.
    pub fn try_append(&self, uid: u64, item_id: u64, y: f64) -> Result<u64> {
        let mut wal = self.wal.lock().unwrap();
        let Some(w) = wal.as_mut() else {
            drop(wal);
            return Ok(self.append(uid, item_id, y));
        };
        let timer = Timer::start();
        let offset = self.next_offset.fetch_add(1, Ordering::SeqCst);
        let obs = Observation { uid, item_id, y, timestamp: offset };
        if let Err(e) = w.append(&obs) {
            // Appends on a durable log are serialized by the wal mutex, so
            // nothing can have raced past the reservation; roll it back.
            let _ = self.next_offset.compare_exchange(
                offset + 1,
                offset,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
            return Err(e);
        }
        self.insert(offset, obs);
        timer.observe(&self.append_latency);
        Ok(offset)
    }

    /// Attaches a write-ahead log. Subsequent
    /// [`try_append`](Self::try_append) calls persist through it.
    pub fn attach_wal(&self, wal: Wal) {
        *self.wal.lock().unwrap() = Some(wal);
    }

    /// Detaches and returns the WAL (syncing it first), leaving the log
    /// memory-only. Used when an instance is being replaced so the new
    /// process can take over the files.
    pub fn detach_wal(&self) -> Option<Wal> {
        let mut guard = self.wal.lock().unwrap();
        if let Some(w) = guard.as_mut() {
            let _ = w.sync();
        }
        guard.take()
    }

    /// Runs `f` against the attached WAL, if any. The WAL mutex is held
    /// for the duration, so `f` must not append to this log.
    pub fn with_wal<R>(&self, f: impl FnOnce(&mut Wal) -> R) -> Option<R> {
        self.wal.lock().unwrap().as_mut().map(f)
    }

    /// Shared WAL counters for registry adoption (None when memory-only).
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.lock().unwrap().as_ref().map(|w| w.stats())
    }

    /// Pre-populates an empty (or partially seeded) log during recovery.
    /// Records are accepted while their timestamps continue the log's
    /// offset sequence exactly; the first out-of-sequence record stops the
    /// seed. Returns how many records were taken. Single-threaded use only
    /// (recovery runs before the instance serves traffic).
    pub fn seed(&self, records: &[Observation]) -> u64 {
        let mut taken = 0u64;
        for r in records {
            let expected = self.next_offset.load(Ordering::SeqCst);
            if r.timestamp != expected {
                break;
            }
            self.insert(expected, r.clone());
            self.next_offset.store(expected + 1, Ordering::SeqCst);
            taken += 1;
        }
        taken
    }

    /// Number of offsets handed out (includes in-flight appends).
    pub fn len(&self) -> u64 {
        self.next_offset.load(Ordering::SeqCst)
    }

    /// Length of the committed (reader-visible, gap-free) prefix. Equal to
    /// [`len`](Self::len) whenever no append is mid-flight.
    pub fn committed_len(&self) -> u64 {
        let segments = self.segments.read().unwrap();
        let mut total = 0u64;
        for seg in segments.iter() {
            let seg = seg.read().unwrap();
            total += seg.committed as u64;
            if seg.committed < SEGMENT_SIZE {
                break;
            }
        }
        total
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads up to `max` observations starting at `from_offset`, in offset
    /// order. Returns fewer than `max` at the log head. Only the committed
    /// prefix is readable: the scan stops at the first in-flight slot, so
    /// a reader never observes a torn or placeholder entry.
    pub fn read_from(&self, from_offset: u64, max: usize) -> Vec<Observation> {
        let end = self.len().min(from_offset.saturating_add(max as u64));
        let mut out = Vec::with_capacity((end.saturating_sub(from_offset)) as usize);
        let segments = self.segments.read().unwrap();
        let mut offset = from_offset;
        while offset < end {
            let seg_idx = (offset as usize) / SEGMENT_SIZE;
            let Some(seg) = segments.get(seg_idx) else { break };
            let seg = seg.read().unwrap();
            let local_start = (offset as usize) % SEGMENT_SIZE;
            let local_end = (SEGMENT_SIZE).min(local_start + (end - offset) as usize);
            let avail_end = local_end.min(seg.committed);
            if avail_end <= local_start {
                break;
            }
            for slot in &seg.slots[local_start..avail_end] {
                out.push(slot.clone().expect("committed prefix has no holes"));
            }
            if avail_end < local_end {
                break; // hit the committed frontier mid-segment
            }
            offset += (avail_end - local_start) as u64;
        }
        out
    }

    /// Reads the entire committed log (used by offline retraining).
    pub fn read_all(&self) -> Vec<Observation> {
        self.read_from(0, self.len() as usize)
    }

    /// All observations for one user, in arrival order. O(len) scan — used
    /// by model reconstruction (rebuilding a user's sufficient statistics
    /// after a feature-parameter change), which is an offline-path
    /// operation.
    pub fn read_user(&self, uid: u64) -> Vec<Observation> {
        self.read_all().into_iter().filter(|o| o.uid == uid).collect()
    }
}

impl Default for ObservationLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn append_assigns_dense_offsets() {
        let log = ObservationLog::new();
        assert!(log.is_empty());
        assert_eq!(log.append(1, 100, 4.5), 0);
        assert_eq!(log.append(2, 200, 3.0), 1);
        assert_eq!(log.len(), 2);
        assert_eq!(log.committed_len(), 2);
    }

    #[test]
    fn read_from_respects_offset_and_max() {
        let log = ObservationLog::new();
        for i in 0..10 {
            log.append(i, i * 10, i as f64);
        }
        let chunk = log.read_from(3, 4);
        assert_eq!(chunk.len(), 4);
        assert_eq!(chunk[0].uid, 3);
        assert_eq!(chunk[3].uid, 6);
        assert_eq!(chunk[0].timestamp, 3);
        // Reading past the end returns what exists.
        assert_eq!(log.read_from(8, 100).len(), 2);
        assert!(log.read_from(100, 10).is_empty());
    }

    #[test]
    fn read_all_round_trips() {
        let log = ObservationLog::new();
        log.append(7, 77, 1.5);
        log.append(8, 88, -0.5);
        let all = log.read_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1], Observation { uid: 8, item_id: 88, y: -0.5, timestamp: 1 });
    }

    #[test]
    fn read_user_filters() {
        let log = ObservationLog::new();
        log.append(1, 10, 1.0);
        log.append(2, 20, 2.0);
        log.append(1, 30, 3.0);
        let user1 = log.read_user(1);
        assert_eq!(user1.len(), 2);
        assert_eq!(user1[0].item_id, 10);
        assert_eq!(user1[1].item_id, 30);
        assert!(log.read_user(99).is_empty());
    }

    #[test]
    fn spans_multiple_segments() {
        let log = ObservationLog::new();
        let n = (SEGMENT_SIZE * 2 + 100) as u64;
        for i in 0..n {
            log.append(i, i, i as f64);
        }
        assert_eq!(log.len(), n);
        assert_eq!(log.committed_len(), n);
        let all = log.read_all();
        assert_eq!(all.len(), n as usize);
        // Spot-check a cross-segment boundary read.
        let boundary = log.read_from(SEGMENT_SIZE as u64 - 2, 4);
        assert_eq!(boundary.len(), 4);
        for (i, obs) in boundary.iter().enumerate() {
            assert_eq!(obs.timestamp, SEGMENT_SIZE as u64 - 2 + i as u64);
        }
    }

    #[test]
    fn concurrent_appends_preserve_density() {
        let log = Arc::new(ObservationLog::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let log = Arc::clone(&log);
            handles.push(thread::spawn(move || {
                for i in 0..2000u64 {
                    log.append(t, i, (t * i) as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 16000);
        assert_eq!(log.committed_len(), 16000);
        let all = log.read_all();
        assert_eq!(all.len(), 16000);
        // Offsets are dense and in order; no placeholder slots remain.
        for (i, obs) in all.iter().enumerate() {
            assert_eq!(obs.timestamp, i as u64);
            assert!(obs.uid < 8);
        }
    }

    /// Regression test for the placeholder hazard: when a later offset
    /// lands before an earlier one, readers must see *neither* until the
    /// gap fills (the old implementation resized with default-valued
    /// placeholder records that a concurrent reader could return).
    #[test]
    fn in_flight_gaps_are_invisible_to_readers() {
        let log = ObservationLog::new();
        // Simulate thread B (offset 1) landing before thread A (offset 0).
        log.next_offset.store(2, Ordering::SeqCst);
        log.insert(1, Observation { uid: 9, item_id: 90, y: 9.0, timestamp: 1 });
        assert_eq!(log.len(), 2);
        assert_eq!(log.committed_len(), 0);
        assert!(log.read_from(0, 10).is_empty(), "gap at offset 0 must hide offset 1");
        assert!(log.read_from(1, 10).is_empty(), "offset 1 is not committed yet");
        assert!(log.read_all().is_empty());
        // The straggler lands; both records become visible atomically.
        log.insert(0, Observation { uid: 5, item_id: 50, y: 5.0, timestamp: 0 });
        assert_eq!(log.committed_len(), 2);
        let all = log.read_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].uid, 5);
        assert_eq!(all[1].uid, 9);
    }

    /// A concurrent tail reader must never see placeholder values or
    /// out-of-order timestamps while appenders are racing.
    #[test]
    fn concurrent_reader_never_sees_placeholders() {
        let log = Arc::new(ObservationLog::new());
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let log = Arc::clone(&log);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let tail = log.read_from(0, usize::MAX);
                    for (i, obs) in tail.iter().enumerate() {
                        assert_eq!(obs.timestamp, i as u64, "hole surfaced to a reader");
                        assert_ne!(obs.uid, u64::MAX, "placeholder surfaced to a reader");
                    }
                }
            })
        };
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = Arc::clone(&log);
            handles.push(thread::spawn(move || {
                for i in 0..3000u64 {
                    log.append(t, i, 1.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(log.committed_len(), 12000);
    }

    #[test]
    fn seed_takes_contiguous_prefix_only() {
        let log = ObservationLog::new();
        let mk = |ts: u64| Observation { uid: ts, item_id: ts, y: 0.0, timestamp: ts };
        let taken = log.seed(&[mk(0), mk(1), mk(3)]);
        assert_eq!(taken, 2, "ts=3 breaks the sequence");
        assert_eq!(log.len(), 2);
        assert_eq!(log.committed_len(), 2);
        // Appends continue after the seeded prefix.
        assert_eq!(log.append(7, 7, 7.0), 2);
    }

    #[test]
    fn try_append_without_wal_behaves_like_append() {
        let log = ObservationLog::new();
        assert_eq!(log.try_append(1, 2, 3.0).unwrap(), 0);
        assert_eq!(log.try_append(4, 5, 6.0).unwrap(), 1);
        assert_eq!(log.read_all().len(), 2);
        assert!(log.wal_stats().is_none());
    }

    #[test]
    fn try_append_with_wal_persists_records() {
        use crate::tmp::ScratchDir;
        use crate::wal::{Wal, WalConfig};
        let dir = ScratchDir::new("velox-obslog-wal");
        let log = ObservationLog::new();
        let (wal, _) = Wal::open(WalConfig::new(dir.path())).unwrap();
        log.attach_wal(wal);
        for i in 0..20u64 {
            assert_eq!(log.try_append(i, i * 2, i as f64).unwrap(), i);
        }
        assert_eq!(log.wal_stats().unwrap().appends.get(), 20);
        drop(log);
        let (_, rec) = Wal::open(WalConfig::new(dir.path())).unwrap();
        assert_eq!(rec.records.len(), 20);
        assert_eq!(rec.records[7], Observation { uid: 7, item_id: 14, y: 7.0, timestamp: 7 });
    }
}
