//! Sharded, versioned, in-memory key–value tables.
//!
//! A [`Namespace`] is one logical table (e.g. `user_weights`, `item_factors`)
//! sharded over `S` independently-locked segments so concurrent readers and
//! writers on different keys never contend. Namespaces are *versioned*: an
//! offline retrain builds a complete replacement map and publishes it with
//! [`Namespace::publish_version`], which bumps the version counter atomically
//! and retains a bounded history for rollback — the paper's model-lifecycle
//! requirement ("version histories, enabling ... simple rollbacks to earlier
//! model versions", §2).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use velox_obs::Counter;

use crate::{Result, StorageError};

/// Number of lock-sharded segments per namespace. A power of two so the
/// shard index is a mask of the key hash.
const DEFAULT_SHARDS: usize = 16;

/// How many superseded versions a namespace retains for rollback.
const VERSION_HISTORY: usize = 4;

/// A value plus the namespace version it was written under.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionedValue<V> {
    /// The stored value.
    pub value: V,
    /// Namespace version at write time.
    pub version: u64,
}

/// Cheap deterministic u64 hash (splitmix64 finalizer). Keys in Velox are
/// entity ids, often sequential; this decorrelates them across shards.
#[inline]
fn hash_key(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Shard<V> {
    map: RwLock<HashMap<u64, VersionedValue<V>>>,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard { map: RwLock::new(HashMap::new()) }
    }
}

/// One retained prior version: `(version number, full contents)`.
type RetainedVersion<V> = (u64, HashMap<u64, VersionedValue<V>>);

/// One logical, sharded, versioned table keyed by `u64` entity ids.
///
/// All operations are O(1) expected and take a single shard lock; bulk
/// operations (`publish_version`, `snapshot_entries`) take shard locks one
/// at a time, so they never deadlock against point operations.
pub struct Namespace<V> {
    name: String,
    shards: Vec<Shard<V>>,
    version: AtomicU64,
    /// Superseded full copies retained for rollback, newest last.
    history: RwLock<Vec<RetainedVersion<V>>>,
    reads: Arc<Counter>,
    writes: Arc<Counter>,
}

impl<V: Clone> Namespace<V> {
    /// Creates an empty namespace with the default shard count.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_shards(name, DEFAULT_SHARDS)
    }

    /// Creates an empty namespace with `shards` lock shards (rounded up to a
    /// power of two, minimum 1).
    pub fn with_shards(name: impl Into<String>, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Namespace {
            name: name.into(),
            shards: (0..n).map(|_| Shard::new()).collect(),
            version: AtomicU64::new(1),
            history: RwLock::new(Vec::new()),
            reads: Arc::new(Counter::new()),
            writes: Arc::new(Counter::new()),
        }
    }

    /// The namespace's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current published version.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    #[inline]
    fn shard_for(&self, key: u64) -> &Shard<V> {
        let idx = (hash_key(key) as usize) & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Point read. Clones the value out so the shard lock is held only for
    /// the copy.
    pub fn get(&self, key: u64) -> Option<V> {
        self.reads.inc();
        self.shard_for(key).map.read().unwrap().get(&key).map(|vv| vv.value.clone())
    }

    /// Point read including the version the value was written under.
    pub fn get_versioned(&self, key: u64) -> Option<VersionedValue<V>> {
        self.reads.inc();
        self.shard_for(key).map.read().unwrap().get(&key).cloned()
    }

    /// Point write under the current version. Returns the previous value.
    pub fn put(&self, key: u64, value: V) -> Option<V> {
        self.writes.inc();
        let version = self.version();
        self.shard_for(key)
            .map
            .write()
            .unwrap()
            .insert(key, VersionedValue { value, version })
            .map(|vv| vv.value)
    }

    /// Atomically applies `f` to the value at `key` (inserting
    /// `default_with()` first when absent), under the shard's write lock.
    ///
    /// This is the primitive behind online user-weight updates: read-modify-
    /// write of one user's model without a global lock.
    pub fn update_with<F, D>(&self, key: u64, default_with: D, f: F)
    where
        F: FnOnce(&mut V),
        D: FnOnce() -> V,
    {
        self.writes.inc();
        let version = self.version();
        let mut map = self.shard_for(key).map.write().unwrap();
        let entry =
            map.entry(key).or_insert_with(|| VersionedValue { value: default_with(), version });
        f(&mut entry.value);
        entry.version = version;
    }

    /// Removes a key, returning its value.
    pub fn remove(&self, key: u64) -> Option<V> {
        self.writes.inc();
        self.shard_for(key).map.write().unwrap().remove(&key).map(|vv| vv.value)
    }

    /// True when the key exists.
    pub fn contains(&self, key: u64) -> bool {
        self.shard_for(key).map.read().unwrap().contains_key(&key)
    }

    /// Number of stored entries (sums shard sizes; O(shards)).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.read().unwrap().len()).sum()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out all `(key, value)` pairs — the input to snapshotting and
    /// offline retraining. Shard-by-shard, so point ops interleave freely.
    pub fn snapshot_entries(&self) -> Vec<(u64, V)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let map = shard.map.read().unwrap();
            out.extend(map.iter().map(|(k, vv)| (*k, vv.value.clone())));
        }
        out
    }

    /// All keys currently stored.
    pub fn keys(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            out.extend(shard.map.read().unwrap().keys().copied());
        }
        out
    }

    /// Atomically replaces the entire contents with `entries` and bumps the
    /// version. The superseded contents are pushed onto a bounded rollback
    /// history. Returns the new version.
    ///
    /// This is the "switch to the newly trained model" step of §4.2: the
    /// offline retrain produces a complete new table which is published in
    /// one step so no reader ever sees a half-updated model.
    pub fn publish_version(&self, entries: Vec<(u64, V)>) -> u64 {
        // fetch_add allocates a unique version even under concurrent
        // publishers (load+1 could hand two publishers the same number).
        let old_version = self.version.fetch_add(1, Ordering::AcqRel);
        let new_version = old_version + 1;
        // Build the replacement shard maps outside any lock.
        let mut new_maps: Vec<HashMap<u64, VersionedValue<V>>> =
            (0..self.shards.len()).map(|_| HashMap::new()).collect();
        for (k, v) in entries {
            let idx = (hash_key(k) as usize) & (self.shards.len() - 1);
            new_maps[idx].insert(k, VersionedValue { value: v, version: new_version });
        }
        // Swap in shard-by-shard, collecting the old contents.
        let mut old_all: HashMap<u64, VersionedValue<V>> = HashMap::new();
        for (shard, new_map) in self.shards.iter().zip(new_maps) {
            let mut guard = shard.map.write().unwrap();
            let old = std::mem::replace(&mut *guard, new_map);
            drop(guard);
            old_all.extend(old);
        }
        let mut history = self.history.write().unwrap();
        history.push((old_version, old_all));
        if history.len() > VERSION_HISTORY {
            history.remove(0);
        }
        new_version
    }

    /// Rolls the namespace back to a retained prior `version`. The current
    /// contents are discarded (they are re-derivable by retraining). Returns
    /// the version now being served (a fresh version number, with the old
    /// contents) or an error when `version` is not in the retained history.
    pub fn rollback_to(&self, version: u64) -> Result<u64> {
        let mut history = self.history.write().unwrap();
        let pos = history
            .iter()
            .position(|(v, _)| *v == version)
            .ok_or(StorageError::VersionNotFound(version))?;
        let (_, contents) = history.remove(pos);
        drop(history);
        let entries: Vec<(u64, V)> = contents.into_iter().map(|(k, vv)| (k, vv.value)).collect();
        Ok(self.publish_version(entries))
    }

    /// Versions currently available for rollback, oldest first.
    pub fn rollback_versions(&self) -> Vec<u64> {
        self.history.read().unwrap().iter().map(|(v, _)| *v).collect()
    }

    /// `(reads, writes)` counters since creation.
    pub fn access_counts(&self) -> (u64, u64) {
        (self.reads.get(), self.writes.get())
    }

    /// Shared handle to the read counter, so a metrics registry can expose
    /// the same atomic this namespace increments.
    pub fn reads_counter(&self) -> Arc<Counter> {
        Arc::clone(&self.reads)
    }

    /// Shared handle to the write counter.
    pub fn writes_counter(&self) -> Arc<Counter> {
        Arc::clone(&self.writes)
    }
}

/// A collection of named namespaces — one per logical table — forming the
/// node-local storage manager.
pub struct KvStore<V> {
    namespaces: RwLock<HashMap<String, Arc<Namespace<V>>>>,
}

impl<V: Clone> KvStore<V> {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore { namespaces: RwLock::new(HashMap::new()) }
    }

    /// Returns the namespace, creating it when absent.
    pub fn namespace(&self, name: &str) -> Arc<Namespace<V>> {
        if let Some(ns) = self.namespaces.read().unwrap().get(name) {
            return Arc::clone(ns);
        }
        let mut map = self.namespaces.write().unwrap();
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Namespace::new(name))))
    }

    /// Returns an existing namespace or an error.
    pub fn existing_namespace(&self, name: &str) -> Result<Arc<Namespace<V>>> {
        self.namespaces
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::NamespaceNotFound(name.to_string()))
    }

    /// Drops a namespace entirely. Returns whether it existed.
    pub fn drop_namespace(&self, name: &str) -> bool {
        self.namespaces.write().unwrap().remove(name).is_some()
    }

    /// Names of all namespaces, unordered.
    pub fn namespace_names(&self) -> Vec<String> {
        self.namespaces.read().unwrap().keys().cloned().collect()
    }
}

impl<V: Clone> Default for KvStore<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_ops() {
        let ns: Namespace<Vec<f64>> = Namespace::new("w");
        assert!(ns.get(1).is_none());
        assert!(ns.put(1, vec![1.0, 2.0]).is_none());
        assert_eq!(ns.get(1).unwrap(), vec![1.0, 2.0]);
        assert!(ns.contains(1));
        assert_eq!(ns.put(1, vec![3.0]), Some(vec![1.0, 2.0]));
        assert_eq!(ns.remove(1), Some(vec![3.0]));
        assert!(!ns.contains(1));
        assert!(ns.is_empty());
    }

    #[test]
    fn versioned_reads_carry_version() {
        let ns: Namespace<i32> = Namespace::new("v");
        ns.put(7, 70);
        let vv = ns.get_versioned(7).unwrap();
        assert_eq!(vv.value, 70);
        assert_eq!(vv.version, 1);
        ns.publish_version(vec![(7, 71)]);
        let vv = ns.get_versioned(7).unwrap();
        assert_eq!(vv.value, 71);
        assert_eq!(vv.version, 2);
    }

    #[test]
    fn update_with_inserts_default() {
        let ns: Namespace<i64> = Namespace::new("c");
        ns.update_with(5, || 0, |v| *v += 10);
        ns.update_with(5, || 0, |v| *v += 10);
        assert_eq!(ns.get(5), Some(20));
    }

    #[test]
    fn publish_version_replaces_everything() {
        let ns: Namespace<i32> = Namespace::new("t");
        ns.put(1, 10);
        ns.put(2, 20);
        let v = ns.publish_version(vec![(2, 200), (3, 300)]);
        assert_eq!(v, 2);
        assert_eq!(ns.version(), 2);
        assert!(ns.get(1).is_none(), "old-only keys are gone");
        assert_eq!(ns.get(2), Some(200));
        assert_eq!(ns.get(3), Some(300));
        assert_eq!(ns.len(), 2);
    }

    #[test]
    fn rollback_restores_contents() {
        let ns: Namespace<i32> = Namespace::new("r");
        ns.put(1, 10);
        ns.publish_version(vec![(1, 11)]); // v2, history holds v1
        ns.publish_version(vec![(1, 12)]); // v3, history holds v1, v2
        assert_eq!(ns.rollback_versions(), vec![1, 2]);
        let new_v = ns.rollback_to(1).unwrap();
        assert_eq!(new_v, 4, "rollback publishes under a fresh version");
        assert_eq!(ns.get(1), Some(10));
        assert!(matches!(ns.rollback_to(99), Err(StorageError::VersionNotFound(99))));
    }

    #[test]
    fn history_is_bounded() {
        let ns: Namespace<i32> = Namespace::new("h");
        for i in 0..10 {
            ns.publish_version(vec![(1, i)]);
        }
        assert!(ns.rollback_versions().len() <= VERSION_HISTORY);
    }

    #[test]
    fn snapshot_and_keys() {
        let ns: Namespace<i32> = Namespace::new("s");
        for k in 0..100u64 {
            ns.put(k, k as i32 * 2);
        }
        let mut snap = ns.snapshot_entries();
        snap.sort_by_key(|(k, _)| *k);
        assert_eq!(snap.len(), 100);
        assert_eq!(snap[50], (50, 100));
        let mut keys = ns.keys();
        keys.sort_unstable();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn access_counters() {
        let ns: Namespace<i32> = Namespace::new("a");
        ns.put(1, 1);
        ns.get(1);
        ns.get(2);
        let (r, w) = ns.access_counts();
        assert_eq!((r, w), (2, 1));
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let ns: Arc<Namespace<u64>> = Arc::new(Namespace::new("mt"));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let ns = Arc::clone(&ns);
            handles.push(thread::spawn(move || {
                for i in 0..1000u64 {
                    let key = t * 1000 + i;
                    ns.put(key, key * 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ns.len(), 8000);
        assert_eq!(ns.get(4321), Some(4321 * 3));
    }

    #[test]
    fn concurrent_update_with_is_atomic() {
        let ns: Arc<Namespace<u64>> = Arc::new(Namespace::new("cnt"));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ns = Arc::clone(&ns);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    ns.update_with(42, || 0, |v| *v += 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ns.get(42), Some(8000));
    }

    #[test]
    fn store_namespace_lifecycle() {
        let store: KvStore<i32> = KvStore::new();
        assert!(store.existing_namespace("w").is_err());
        let ns = store.namespace("w");
        ns.put(1, 1);
        // Same Arc comes back.
        let ns2 = store.namespace("w");
        assert_eq!(ns2.get(1), Some(1));
        assert!(store.existing_namespace("w").is_ok());
        let mut names = store.namespace_names();
        names.sort();
        assert_eq!(names, vec!["w"]);
        assert!(store.drop_namespace("w"));
        assert!(!store.drop_namespace("w"));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let ns: Namespace<i32> = Namespace::with_shards("p", 5);
        // 5 → 8 shards; behaviour identical from the outside.
        for k in 0..64 {
            ns.put(k, k as i32);
        }
        assert_eq!(ns.len(), 64);
    }
}
