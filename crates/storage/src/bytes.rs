//! A minimal in-repo byte-buffer shim (the subset of the `bytes` crate the
//! codec needs), keeping the workspace std-only.
//!
//! [`Bytes`] is an immutable, cheaply-cloneable view into shared storage
//! (`Arc<[u8]>` plus a window); reading integers/floats off the front
//! *consumes* the view, exactly like `bytes::Buf`. [`BytesMut`] is a
//! growable builder that [`freeze`](BytesMut::freeze)s into a [`Bytes`].
//! All multi-byte reads and writes are big-endian, matching the snapshot
//! format.

use std::ops::Range;
use std::sync::Arc;

/// An immutable, reference-counted byte window. Cloning and slicing are
/// O(1) (they share the backing allocation).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static byte slice (copies it into shared storage; the
    /// signature exists so callers can hand in literals).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Bytes remaining in the window.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.end - self.start
    }

    /// True while any bytes remain.
    #[inline]
    pub fn has_remaining(&self) -> bool {
        self.start < self.end
    }

    /// Length of the window (same as [`remaining`](Self::remaining); kept
    /// for slice-like call sites).
    #[inline]
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// True when the window is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The window as a plain slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-window of this window, sharing the backing storage.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end, "inverted slice range");
        assert!(range.end <= self.len(), "slice past end of Bytes");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    #[inline]
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.remaining() >= N, "read past end of Bytes");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }

    /// Consumes one byte off the front.
    #[inline]
    pub fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Consumes a big-endian `u32` off the front.
    #[inline]
    pub fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    /// Consumes a big-endian `u64` off the front.
    #[inline]
    pub fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    /// Consumes a big-endian `f64` off the front.
    #[inline]
    pub fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_array())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::from(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Debug renders length plus a short hex prefix, never the full payload.
fn fmt_byte_window(s: &[u8], f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    write!(f, "b[{}; ", s.len())?;
    for b in s.iter().take(8) {
        write!(f, "{b:02x}")?;
    }
    if s.len() > 8 {
        write!(f, "…")?;
    }
    write!(f, "]")
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_byte_window(self.as_slice(), f)
    }
}

/// A growable byte builder with big-endian put operations.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { buf: v.to_vec() }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_byte_window(self.as_slice(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_put_get() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32(0xDEADBEEF);
        b.put_u8(7);
        b.put_u64(u64::MAX - 1);
        b.put_f64(-2.5);
        let mut bytes = b.freeze();
        assert_eq!(bytes.remaining(), 4 + 1 + 8 + 8);
        assert_eq!(bytes.get_u32(), 0xDEADBEEF);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u64(), u64::MAX - 1);
        assert_eq!(bytes.get_f64(), -2.5);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn big_endian_layout() {
        let mut b = BytesMut::new();
        b.put_u32(0x0102_0304);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn slice_shares_and_windows() {
        let mut b = BytesMut::new();
        for i in 0..10u8 {
            b.put_u8(i);
        }
        let full = b.freeze();
        let mid = full.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        assert_eq!(full.len(), 10, "slicing does not consume the parent");
        let sub = mid.slice(1..2);
        assert_eq!(&sub[..], &[3]);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut bytes = Bytes::from(vec![1u8, 2]);
        let _ = bytes.get_u32();
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn out_of_range_slice_panics() {
        let bytes = Bytes::from(vec![1u8, 2]);
        let _ = bytes.slice(0..3);
    }

    #[test]
    fn equality_compares_contents() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::from(vec![0u8, 1, 2, 3]).slice(1..4);
        assert_eq!(a, b);
        assert_eq!(Bytes::from_static(b"xyz"), Bytes::from(b"xyz".to_vec()));
    }

    #[test]
    fn consuming_reads_advance_window() {
        let mut bytes = Bytes::from(vec![0u8, 0, 0, 5, 9]);
        assert_eq!(bytes.get_u32(), 5);
        assert_eq!(bytes.remaining(), 1);
        assert_eq!(bytes.get_u8(), 9);
        assert!(bytes.is_empty());
    }
}
