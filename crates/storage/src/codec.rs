//! Compact binary snapshot codec.
//!
//! Tachyon persists Velox's model state; our in-memory substitute persists
//! through this codec instead: a small, self-describing, versioned binary
//! format built on `bytes`. It encodes exactly the shapes Velox stores —
//! `f64` vectors keyed by `u64` ids (user weights, item factors) and the
//! observation log — and refuses anything malformed with a
//! [`StorageError::Corrupt`] instead of panicking, since snapshots cross a
//! trust boundary (they may come from disk or another process).
//!
//! Every encoding ends with a CRC-32 footer over all preceding bytes.
//! Structural checks (magic, tag, lengths) catch truncation, but without a
//! checksum a bit flip inside an `f64` payload would decode "successfully"
//! into silently-wrong model state — unacceptable now that these blobs
//! live on disk inside checkpoints. Decoding verifies the CRC before
//! parsing a single field.

use crate::bytes::{Bytes, BytesMut};
use crate::crc::crc32;
use crate::obslog::Observation;
use crate::{Result, StorageError};

/// Magic prefix identifying a Velox snapshot.
const MAGIC: u32 = 0x56_4C_58_31; // "VLX1"

/// Payload type tags.
const TAG_VECTOR_TABLE: u8 = 1;
const TAG_OBSERVATIONS: u8 = 2;

/// Appends the CRC-32 footer and freezes the encoding.
fn seal(mut buf: BytesMut) -> Bytes {
    let crc = crc32(buf.as_slice());
    buf.put_u32(crc);
    buf.freeze()
}

/// Verifies and strips the CRC-32 footer, returning the protected body.
fn unseal(data: Bytes) -> Result<Bytes> {
    if data.len() < 4 {
        return Err(StorageError::Corrupt(format!(
            "payload shorter than its checksum: {} bytes",
            data.len()
        )));
    }
    let body = data.slice(0..data.len() - 4);
    let mut tail = data.slice(data.len() - 4..data.len());
    let stored = tail.get_u32();
    if crc32(body.as_slice()) != stored {
        return Err(StorageError::Corrupt("checksum mismatch".to_string()));
    }
    Ok(body)
}

fn check_remaining(buf: &Bytes, need: usize, what: &str) -> Result<()> {
    if buf.remaining() < need {
        return Err(StorageError::Corrupt(format!(
            "truncated while reading {what}: need {need} bytes, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

/// Encodes a table of `(id, f64-vector)` entries — the on-wire form of a
/// user-weight or item-factor namespace.
///
/// Layout: `MAGIC u32 | TAG u8 | count u64 | { id u64 | len u64 | f64... }* | crc32 u32`
pub fn encode_vector_table(entries: &[(u64, Vec<f64>)]) -> Bytes {
    let payload: usize =
        entries.iter().map(|(_, v)| 16 + v.len() * 8).sum::<usize>() + 4 + 1 + 8 + 4;
    let mut buf = BytesMut::with_capacity(payload);
    buf.put_u32(MAGIC);
    buf.put_u8(TAG_VECTOR_TABLE);
    buf.put_u64(entries.len() as u64);
    for (id, v) in entries {
        buf.put_u64(*id);
        buf.put_u64(v.len() as u64);
        for &x in v {
            buf.put_f64(x);
        }
    }
    seal(buf)
}

/// Decodes a vector table produced by [`encode_vector_table`].
pub fn decode_vector_table(data: Bytes) -> Result<Vec<(u64, Vec<f64>)>> {
    let mut data = unseal(data)?;
    check_remaining(&data, 13, "header")?;
    let magic = data.get_u32();
    if magic != MAGIC {
        return Err(StorageError::Corrupt(format!("bad magic {magic:#x}")));
    }
    let tag = data.get_u8();
    if tag != TAG_VECTOR_TABLE {
        return Err(StorageError::Corrupt(format!("expected vector table, got tag {tag}")));
    }
    let count = data.get_u64() as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for i in 0..count {
        check_remaining(&data, 16, "entry header")?;
        let id = data.get_u64();
        let len = data.get_u64() as usize;
        check_remaining(&data, len.saturating_mul(8), "vector body")?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(data.get_f64());
        }
        out.push((id, v));
        let _ = i;
    }
    if data.has_remaining() {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes after vector table",
            data.remaining()
        )));
    }
    Ok(out)
}

/// Encodes a slice of observations (a log segment or a full export).
///
/// Layout: `MAGIC u32 | TAG u8 | count u64 | { uid u64 | item u64 | y f64 | ts u64 }* | crc32 u32`
pub fn encode_observations(obs: &[Observation]) -> Bytes {
    let mut buf = BytesMut::with_capacity(13 + obs.len() * 32 + 4);
    buf.put_u32(MAGIC);
    buf.put_u8(TAG_OBSERVATIONS);
    buf.put_u64(obs.len() as u64);
    for o in obs {
        buf.put_u64(o.uid);
        buf.put_u64(o.item_id);
        buf.put_f64(o.y);
        buf.put_u64(o.timestamp);
    }
    seal(buf)
}

/// Decodes observations produced by [`encode_observations`].
pub fn decode_observations(data: Bytes) -> Result<Vec<Observation>> {
    let mut data = unseal(data)?;
    check_remaining(&data, 13, "header")?;
    let magic = data.get_u32();
    if magic != MAGIC {
        return Err(StorageError::Corrupt(format!("bad magic {magic:#x}")));
    }
    let tag = data.get_u8();
    if tag != TAG_OBSERVATIONS {
        return Err(StorageError::Corrupt(format!("expected observations, got tag {tag}")));
    }
    let count = data.get_u64() as usize;
    check_remaining(&data, count.saturating_mul(32), "observation body")?;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        out.push(Observation {
            uid: data.get_u64(),
            item_id: data.get_u64(),
            y: data.get_f64(),
            timestamp: data.get_u64(),
        });
    }
    if data.has_remaining() {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes after observations",
            data.remaining()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seals a hand-built raw buffer with a *valid* CRC so tests can reach
    /// the structural checks behind the checksum gate.
    fn sealed(raw: BytesMut) -> Bytes {
        seal(raw)
    }

    #[test]
    fn vector_table_round_trip() {
        let entries = vec![
            (1u64, vec![1.0, -2.5, 3.25]),
            (42u64, vec![]),
            (u64::MAX, vec![f64::MIN_POSITIVE, f64::MAX]),
        ];
        let encoded = encode_vector_table(&entries);
        let decoded = decode_vector_table(encoded).unwrap();
        assert_eq!(decoded, entries);
    }

    #[test]
    fn empty_table_round_trip() {
        let encoded = encode_vector_table(&[]);
        assert!(decode_vector_table(encoded).unwrap().is_empty());
    }

    #[test]
    fn observations_round_trip() {
        let obs = vec![
            Observation { uid: 1, item_id: 2, y: 4.5, timestamp: 0 },
            Observation { uid: 3, item_id: 4, y: -1.0, timestamp: 1 },
        ];
        let decoded = decode_observations(encode_observations(&obs)).unwrap();
        assert_eq!(decoded, obs);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut data = BytesMut::new();
        data.put_u32(0xDEADBEEF);
        data.put_u8(TAG_VECTOR_TABLE);
        data.put_u64(0);
        assert!(matches!(decode_vector_table(sealed(data)), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn rejects_wrong_tag() {
        let encoded = encode_observations(&[]);
        assert!(matches!(decode_vector_table(encoded), Err(StorageError::Corrupt(_))));
        let encoded = encode_vector_table(&[]);
        assert!(matches!(decode_observations(encoded), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let entries = vec![(1u64, vec![1.0, 2.0, 3.0]), (2u64, vec![4.0])];
        let full = encode_vector_table(&entries);
        for cut in 0..full.len() {
            let truncated = full.slice(0..cut);
            assert!(
                decode_vector_table(truncated).is_err(),
                "decode accepted a {cut}-byte prefix of a {}-byte snapshot",
                full.len()
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut raw = BytesMut::from(&encode_vector_table(&[(1, vec![1.0])])[..]);
        raw.put_u8(0);
        assert!(matches!(decode_vector_table(raw.freeze()), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn rejects_length_overflow_claim() {
        // Claims a vector of 2^61 elements; must fail cleanly, not allocate.
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u8(TAG_VECTOR_TABLE);
        buf.put_u64(1);
        buf.put_u64(7); // id
        buf.put_u64(1 << 61); // absurd length
        assert!(decode_vector_table(sealed(buf)).is_err());
    }

    #[test]
    fn rejects_every_single_bit_flip() {
        let entries = vec![(3u64, vec![0.25, -8.5]), (4u64, vec![1.0])];
        let full = encode_vector_table(&entries);
        for byte in 0..full.len() {
            for bit in 0..8 {
                let mut raw = full.as_slice().to_vec();
                raw[byte] ^= 1 << bit;
                assert!(
                    decode_vector_table(Bytes::from(raw)).is_err(),
                    "flip at byte {byte} bit {bit} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn special_float_values_survive() {
        let entries = vec![(9u64, vec![f64::INFINITY, f64::NEG_INFINITY, -0.0])];
        let decoded = decode_vector_table(encode_vector_table(&entries)).unwrap();
        assert_eq!(decoded[0].1[0], f64::INFINITY);
        assert_eq!(decoded[0].1[1], f64::NEG_INFINITY);
        assert!(decoded[0].1[2] == 0.0 && decoded[0].1[2].is_sign_negative());
    }
}
