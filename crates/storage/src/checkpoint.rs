//! On-disk checkpoint store for deployment snapshots.
//!
//! A checkpoint is the durable complement of the WAL: it captures the
//! [`DeploymentSnapshot`](../../velox_core) blobs (user weights, item
//! table, catalog) *plus* the observation-log prefix at a single logical
//! instant, so that recovery = load newest valid checkpoint + replay the
//! WAL records with `timestamp >= wal_offset`. Once a checkpoint is
//! durable, the WAL prefix it covers can be deleted.
//!
//! ## Crash consistency
//!
//! Each checkpoint is one self-validating file `ckpt-<seq>.ckpt`:
//!
//! ```text
//! magic "VLXC" u32 | format u32 | seq u64 | model_version u64 |
//! wal_offset u64 | blob_count u32 | { len u64 | bytes }* | crc32 u32
//! ```
//!
//! written as `*.tmp`, fsynced, then atomically renamed — a crash at any
//! point leaves either the complete old state or the complete new state,
//! never a half-written visible checkpoint. A tiny `MANIFEST` (also
//! tmp+rename) records the latest sequence number; if the manifest is
//! missing, stale, or corrupt, [`CheckpointStore::load_latest`] falls back
//! to scanning for the newest file that passes its CRC. Loading never
//! panics on corrupt input.
//!
//! The store retains the last `retain` checkpoints so that a corrupted
//! newest checkpoint still leaves an older recovery point; callers must
//! only truncate the WAL up to [`CheckpointStore::covered_offset`] (the
//! *oldest retained* checkpoint), which keeps every retained fallback
//! replayable.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::bytes::Bytes;
use crate::crc::crc32;
use crate::{Result, StorageError};

/// Magic prefix of a checkpoint file ("VLXC").
const MAGIC_CKPT: u32 = 0x564C_5843;
/// Magic prefix of the manifest ("VLXM").
const MAGIC_MANIFEST: u32 = 0x564C_584D;
/// Format version.
const FORMAT: u32 = 1;

/// A decoded checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointData {
    /// Monotonic checkpoint sequence number.
    pub seq: u64,
    /// Model version at capture time.
    pub model_version: u64,
    /// Number of observations covered: WAL records with
    /// `timestamp >= wal_offset` must be replayed on top.
    pub wal_offset: u64,
    /// Opaque snapshot blobs, in the order the producer wrote them.
    pub blobs: Vec<Bytes>,
}

struct Entry {
    seq: u64,
    wal_offset: u64,
    path: PathBuf,
}

/// A directory of retained checkpoints plus a manifest pointer.
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
    next_seq: u64,
    /// Valid checkpoints, ascending by seq.
    entries: Vec<Entry>,
}

fn io_err(ctx: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{ctx}: {e}"))
}

fn sync_dir(dir: &Path) {
    if let Ok(f) = File::open(dir) {
        let _ = f.sync_all();
    }
}

fn ckpt_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{seq:010}.ckpt"))
}

/// Writes `bytes` to `final_path` via tmp + fsync + atomic rename.
fn write_atomically(dir: &Path, final_path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = final_path.with_extension("tmp");
    let mut f = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| io_err("create tmp file", e))?;
    f.write_all(bytes).map_err(|e| io_err("write tmp file", e))?;
    f.sync_all().map_err(|e| io_err("sync tmp file", e))?;
    drop(f);
    fs::rename(&tmp, final_path).map_err(|e| io_err("rename into place", e))?;
    sync_dir(dir);
    Ok(())
}

fn parse_checkpoint(buf: &[u8], what: &str) -> Result<CheckpointData> {
    if buf.len() < 4 {
        return Err(StorageError::Corrupt(format!("{what}: shorter than its checksum")));
    }
    let (body, tail) = buf.split_at(buf.len() - 4);
    let stored = u32::from_be_bytes(tail.try_into().unwrap());
    if crc32(body) != stored {
        return Err(StorageError::Corrupt(format!("{what}: checksum mismatch")));
    }
    let mut data = Bytes::from(body);
    let need = |data: &Bytes, n: usize, field: &str| -> Result<()> {
        if data.remaining() < n {
            return Err(StorageError::Corrupt(format!("{what}: truncated {field}")));
        }
        Ok(())
    };
    need(&data, 4 + 4 + 8 + 8 + 8 + 4, "header")?;
    if data.get_u32() != MAGIC_CKPT {
        return Err(StorageError::Corrupt(format!("{what}: bad magic")));
    }
    let format = data.get_u32();
    if format != FORMAT {
        return Err(StorageError::Corrupt(format!("{what}: unknown format {format}")));
    }
    let seq = data.get_u64();
    let model_version = data.get_u64();
    let wal_offset = data.get_u64();
    let blob_count = data.get_u32() as usize;
    let mut blobs = Vec::with_capacity(blob_count.min(64));
    for i in 0..blob_count {
        need(&data, 8, "blob length")?;
        let len = data.get_u64() as usize;
        if data.remaining() < len {
            return Err(StorageError::Corrupt(format!("{what}: truncated blob {i}")));
        }
        blobs.push(data.slice(0..len));
        data = data.slice(len..data.len());
    }
    if data.has_remaining() {
        return Err(StorageError::Corrupt(format!("{what}: trailing bytes")));
    }
    Ok(CheckpointData { seq, model_version, wal_offset, blobs })
}

impl CheckpointStore {
    /// Opens the store at `dir`, validating whatever checkpoints survive
    /// there. `retain` (min 1) is how many recent checkpoints to keep.
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> Result<CheckpointStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create checkpoint dir", e))?;
        let mut entries = Vec::new();
        let mut max_named_seq = 0u64;
        for entry in fs::read_dir(&dir).map_err(|e| io_err("read checkpoint dir", e))? {
            let entry = entry.map_err(|e| io_err("read checkpoint dir entry", e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                // Crash debris from an interrupted save; never renamed, so
                // never authoritative.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            let Some(seq) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".ckpt"))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            max_named_seq = max_named_seq.max(seq);
            let Ok(buf) = fs::read(entry.path()) else { continue };
            if let Ok(data) = parse_checkpoint(&buf, &name) {
                entries.push(Entry {
                    seq: data.seq,
                    wal_offset: data.wal_offset,
                    path: entry.path(),
                });
            }
        }
        entries.sort_by_key(|e| e.seq);
        Ok(CheckpointStore { dir, retain: retain.max(1), next_seq: max_named_seq + 1, entries })
    }

    /// Number of retained (valid) checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no valid checkpoint exists.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The WAL offset below which *every* retained checkpoint is covered —
    /// the only safe WAL truncation point. Zero when no checkpoint exists.
    pub fn covered_offset(&self) -> u64 {
        self.entries.first().map(|e| e.wal_offset).unwrap_or(0)
    }

    /// Persists a new checkpoint and advances the manifest. Returns its
    /// sequence number. Prunes checkpoints beyond the retention window.
    pub fn save(&mut self, model_version: u64, wal_offset: u64, blobs: &[Bytes]) -> Result<u64> {
        let seq = self.next_seq;
        let mut body =
            Vec::with_capacity(36 + blobs.iter().map(|b| 8 + b.len()).sum::<usize>() + 4);
        body.extend_from_slice(&MAGIC_CKPT.to_be_bytes());
        body.extend_from_slice(&FORMAT.to_be_bytes());
        body.extend_from_slice(&seq.to_be_bytes());
        body.extend_from_slice(&model_version.to_be_bytes());
        body.extend_from_slice(&wal_offset.to_be_bytes());
        body.extend_from_slice(&(blobs.len() as u32).to_be_bytes());
        for b in blobs {
            body.extend_from_slice(&(b.len() as u64).to_be_bytes());
            body.extend_from_slice(b.as_slice());
        }
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_be_bytes());

        let path = ckpt_path(&self.dir, seq);
        write_atomically(&self.dir, &path, &body)?;
        self.next_seq = seq + 1;
        self.entries.push(Entry { seq, wal_offset, path });

        // Manifest: magic | format | latest seq | crc.
        let mut manifest = Vec::with_capacity(20);
        manifest.extend_from_slice(&MAGIC_MANIFEST.to_be_bytes());
        manifest.extend_from_slice(&FORMAT.to_be_bytes());
        manifest.extend_from_slice(&seq.to_be_bytes());
        let mcrc = crc32(&manifest);
        manifest.extend_from_slice(&mcrc.to_be_bytes());
        write_atomically(&self.dir, &self.dir.join("MANIFEST"), &manifest)?;

        let mut pruned = false;
        while self.entries.len() > self.retain {
            let old = self.entries.remove(0);
            let _ = fs::remove_file(&old.path);
            pruned = true;
        }
        if pruned {
            sync_dir(&self.dir);
        }
        Ok(seq)
    }

    fn manifest_seq(&self) -> Option<u64> {
        let buf = fs::read(self.dir.join("MANIFEST")).ok()?;
        if buf.len() != 20 {
            return None;
        }
        let (body, tail) = buf.split_at(16);
        if crc32(body) != u32::from_be_bytes(tail.try_into().ok()?) {
            return None;
        }
        if u32::from_be_bytes(body[0..4].try_into().ok()?) != MAGIC_MANIFEST {
            return None;
        }
        if u32::from_be_bytes(body[4..8].try_into().ok()?) != FORMAT {
            return None;
        }
        Some(u64::from_be_bytes(body[8..16].try_into().ok()?))
    }

    /// Loads the newest valid checkpoint: the manifest's pointer when it
    /// checks out, otherwise the newest file that passes its CRC. `None`
    /// when nothing valid is on disk. Never panics on corrupt input.
    pub fn load_latest(&self) -> Result<Option<CheckpointData>> {
        let manifest = self.manifest_seq();
        // Try the manifest's choice first, then every valid entry newest-first.
        let mut order: Vec<&Entry> = self.entries.iter().collect();
        order.sort_by_key(|e| std::cmp::Reverse((Some(e.seq) == manifest, e.seq)));
        for entry in order {
            let Ok(buf) = fs::read(&entry.path) else { continue };
            if let Ok(data) = parse_checkpoint(&buf, &entry.path.display().to_string()) {
                return Ok(Some(data));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tmp::ScratchDir;

    fn blobs(tag: u8, n: usize) -> Vec<Bytes> {
        (0..n).map(|i| Bytes::from(vec![tag, i as u8, 0xAB, tag])).collect()
    }

    #[test]
    fn save_load_round_trip() {
        let dir = ScratchDir::new("velox-ckpt");
        let mut store = CheckpointStore::open(dir.path(), 2).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        let seq = store.save(7, 123, &blobs(1, 4)).unwrap();
        assert_eq!(seq, 1);
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.seq, 1);
        assert_eq!(loaded.model_version, 7);
        assert_eq!(loaded.wal_offset, 123);
        assert_eq!(loaded.blobs, blobs(1, 4));
        // A fresh handle sees the same state.
        let reopened = CheckpointStore::open(dir.path(), 2).unwrap();
        assert_eq!(reopened.load_latest().unwrap().unwrap().wal_offset, 123);
        assert_eq!(reopened.len(), 1);
    }

    #[test]
    fn retention_prunes_oldest_and_tracks_covered_offset() {
        let dir = ScratchDir::new("velox-ckpt");
        let mut store = CheckpointStore::open(dir.path(), 2).unwrap();
        store.save(1, 10, &blobs(1, 1)).unwrap();
        store.save(1, 20, &blobs(2, 1)).unwrap();
        assert_eq!(store.covered_offset(), 10, "oldest retained bounds truncation");
        store.save(1, 30, &blobs(3, 1)).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.covered_offset(), 20);
        let files: Vec<_> = fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".ckpt"))
            .collect();
        assert_eq!(files.len(), 2, "pruned to retention window: {files:?}");
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = ScratchDir::new("velox-ckpt");
        let mut store = CheckpointStore::open(dir.path(), 3).unwrap();
        store.save(1, 10, &blobs(1, 2)).unwrap();
        store.save(2, 20, &blobs(2, 2)).unwrap();
        // Corrupt the newest file in place.
        let newest = ckpt_path(dir.path(), 2);
        let mut buf = fs::read(&newest).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        fs::write(&newest, &buf).unwrap();

        // An existing handle and a fresh open both fall back.
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.seq, 1);
        assert_eq!(loaded.wal_offset, 10);
        let reopened = CheckpointStore::open(dir.path(), 3).unwrap();
        assert_eq!(reopened.load_latest().unwrap().unwrap().seq, 1);
        // The next save does not collide with the corrupt file's name.
        let mut reopened = reopened;
        assert_eq!(reopened.save(3, 30, &blobs(3, 1)).unwrap(), 3);
    }

    #[test]
    fn torn_manifest_is_ignored() {
        let dir = ScratchDir::new("velox-ckpt");
        let mut store = CheckpointStore::open(dir.path(), 2).unwrap();
        store.save(1, 10, &blobs(1, 1)).unwrap();
        fs::write(dir.path().join("MANIFEST"), b"torn").unwrap();
        assert_eq!(store.load_latest().unwrap().unwrap().seq, 1);
        let reopened = CheckpointStore::open(dir.path(), 2).unwrap();
        assert_eq!(reopened.load_latest().unwrap().unwrap().seq, 1);
    }

    #[test]
    fn leftover_tmp_files_are_swept() {
        let dir = ScratchDir::new("velox-ckpt");
        fs::write(dir.join("ckpt-0000000005.tmp"), b"half-written").unwrap();
        let mut store = CheckpointStore::open(dir.path(), 2).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        assert!(!dir.join("ckpt-0000000005.tmp").exists());
        store.save(1, 1, &blobs(1, 1)).unwrap();
        assert_eq!(store.load_latest().unwrap().unwrap().seq, 1);
    }

    #[test]
    fn truncation_of_checkpoint_file_never_panics() {
        let dir = ScratchDir::new("velox-ckpt");
        let mut store = CheckpointStore::open(dir.path(), 2).unwrap();
        store.save(9, 99, &blobs(7, 3)).unwrap();
        let path = ckpt_path(dir.path(), 1);
        let full = fs::read(&path).unwrap();
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let reopened = CheckpointStore::open(dir.path(), 2).unwrap();
            assert!(reopened.load_latest().unwrap().is_none(), "cut={cut} accepted");
        }
    }
}
