//! File-backed, segmented write-ahead log for observations.
//!
//! The paper's Velox delegates durability to Tachyon — every `observe` is
//! "durably recorded for use by Spark when retraining" (§4.1). Our
//! in-memory substitute loses the online state on process crash, so this
//! module adds the missing half of the fault model: each acknowledged
//! observation is appended to an on-disk log *before* the ack, and startup
//! recovery replays the log tail over the latest checkpoint.
//!
//! ## On-disk format
//!
//! A log is a directory of segment files `wal-<start_ts>.log`, where
//! `start_ts` is the logical timestamp (== log offset) of the segment's
//! first record. Each segment starts with a 16-byte header:
//!
//! ```text
//! magic "VLW1" u32 | format u32 | start_ts u64          (big-endian)
//! ```
//!
//! followed by length-prefixed, CRC-checksummed records:
//!
//! ```text
//! len u32 | crc32(payload) u32 | payload
//! payload = ts u64 | uid u64 | item u64 | y f64          (32 bytes)
//! ```
//!
//! ## Crash consistency
//!
//! [`Wal::open`] scans every segment in order and stops at the first
//! invalid record (short header, short record, or CRC mismatch). A torn
//! *tail* — the expected result of a crash mid-append — is truncated away
//! so the log is immediately appendable again. Corruption in the *middle*
//! of the log (bit rot) also stops the scan; later segments are renamed to
//! `*.quarantined` rather than deleted, preserving the bytes for forensics
//! while keeping the live log free of gaps. Recovery never panics on any
//! byte sequence.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] trades durability for observe-path throughput:
//! `PerRecord` fsyncs before every ack (no acknowledged record can be
//! lost), `Batched { every }` bounds the loss window to `every` records,
//! and `Off` leaves flushing to the OS page cache. The cost of each is
//! quantified in EXPERIMENTS.md `RECOVERY-DURABILITY`.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use velox_obs::Counter;

use crate::crc::crc32;
use crate::obslog::Observation;
use crate::{Result, StorageError};

/// Magic prefix of every WAL segment file ("VLW1").
const MAGIC_WAL: u32 = 0x564C_5731;
/// Format version written into segment headers.
const FORMAT: u32 = 1;
/// Segment header: magic + format + start_ts.
const HEADER_LEN: usize = 16;
/// Fixed payload size of an observation record.
const PAYLOAD_LEN: usize = 32;
/// Full record size: len prefix + crc + payload.
pub(crate) const RECORD_LEN: usize = 8 + PAYLOAD_LEN;
/// Upper bound accepted for a record's claimed payload length; anything
/// larger is corruption (keeps a flipped length bit from causing a huge
/// read-ahead).
const MAX_PAYLOAD_LEN: u32 = 1 << 20;

/// When (relative to the append that was just acknowledged) the log file
/// is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record: an acknowledged observation is
    /// never lost, at the price of one disk round-trip per observe.
    PerRecord,
    /// `fdatasync` after every `every` records: bounds the loss window.
    Batched {
        /// Records between syncs (0 behaves like `Off`).
        every: u32,
    },
    /// Never explicitly synced; the OS flushes when it pleases. Fastest,
    /// loses up to the page-cache contents on power failure.
    Off,
}

impl FsyncPolicy {
    /// Short human-readable name (bench tables, logs).
    pub fn name(&self) -> String {
        match self {
            FsyncPolicy::PerRecord => "per-record".to_string(),
            FsyncPolicy::Batched { every } => format!("batched({every})"),
            FsyncPolicy::Off => "off".to_string(),
        }
    }
}

/// WAL tuning knobs.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Rotate to a new segment once the current one reaches this size.
    pub segment_max_bytes: u64,
    /// Flush policy (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
}

impl WalConfig {
    /// Defaults: 1 MiB segments, fsync per record.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig { dir: dir.into(), segment_max_bytes: 1 << 20, fsync: FsyncPolicy::PerRecord }
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Clone)]
pub struct WalRecovery {
    /// Every valid record, in log order (dense, ascending timestamps).
    pub records: Vec<Observation>,
    /// Why the scan stopped early, when it did (torn tail, CRC mismatch,
    /// bad header). `None` means every byte on disk was valid.
    pub torn: Option<String>,
    /// Segment files scanned.
    pub segments_scanned: usize,
    /// Segment files renamed to `*.quarantined` because they followed a
    /// corrupt segment (their contents can no longer be ordered safely).
    pub quarantined: usize,
}

/// Where one [`Wal::append_timed`] call spent its time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalAppendTiming {
    /// Serialize + buffered write (+ any segment rotation), nanoseconds.
    pub append_ns: u64,
    /// The fsync, when the policy issued one on this append; 0 otherwise.
    pub fsync_ns: u64,
}

/// Append/flush counters, shareable with a metrics registry.
#[derive(Clone)]
pub struct WalStats {
    /// Records appended.
    pub appends: Arc<Counter>,
    /// Explicit `fdatasync` calls issued.
    pub fsyncs: Arc<Counter>,
    /// Payload + framing bytes written.
    pub bytes_written: Arc<Counter>,
}

impl WalStats {
    fn new() -> Self {
        WalStats {
            appends: Arc::new(Counter::new()),
            fsyncs: Arc::new(Counter::new()),
            bytes_written: Arc::new(Counter::new()),
        }
    }
}

struct SegmentInfo {
    start_ts: u64,
    path: PathBuf,
}

struct OpenSegment {
    file: File,
    bytes: u64,
}

/// The write-ahead log handle. Not internally synchronized — callers
/// (`ObservationLog`) serialize appends behind their own lock so the
/// on-disk order matches the in-memory offset order.
pub struct Wal {
    config: WalConfig,
    /// All live segments in log order; the last one is the append target.
    segments: Vec<SegmentInfo>,
    current: Option<OpenSegment>,
    unsynced: u32,
    stats: WalStats,
}

fn io_err(ctx: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{ctx}: {e}"))
}

/// Best-effort directory fsync (makes renames/creates durable on Linux).
fn sync_dir(dir: &Path) {
    if let Ok(f) = File::open(dir) {
        let _ = f.sync_all();
    }
}

fn segment_path(dir: &Path, start_ts: u64) -> PathBuf {
    dir.join(format!("wal-{start_ts:020}.log"))
}

fn read_u32(buf: &[u8], pos: usize) -> u32 {
    u32::from_be_bytes(buf[pos..pos + 4].try_into().unwrap())
}

fn read_u64(buf: &[u8], pos: usize) -> u64 {
    u64::from_be_bytes(buf[pos..pos + 8].try_into().unwrap())
}

/// Result of scanning one segment's bytes.
struct SegmentScan {
    records: Vec<Observation>,
    /// Byte length of the valid prefix (everything before the first
    /// invalid record).
    valid_len: usize,
    /// Why the scan stopped early, if it did.
    stop: Option<String>,
}

fn scan_segment(buf: &[u8], path: &Path) -> SegmentScan {
    let name = path.display();
    if buf.len() < HEADER_LEN {
        return SegmentScan {
            records: Vec::new(),
            valid_len: 0,
            stop: Some(format!("{name}: truncated header ({} bytes)", buf.len())),
        };
    }
    if read_u32(buf, 0) != MAGIC_WAL {
        return SegmentScan {
            records: Vec::new(),
            valid_len: 0,
            stop: Some(format!("{name}: bad segment magic")),
        };
    }
    if read_u32(buf, 4) != FORMAT {
        return SegmentScan {
            records: Vec::new(),
            valid_len: 0,
            stop: Some(format!("{name}: unknown format {}", read_u32(buf, 4))),
        };
    }
    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        if pos == buf.len() {
            return SegmentScan { records, valid_len: pos, stop: None };
        }
        if buf.len() - pos < 8 {
            return SegmentScan {
                records,
                valid_len: pos,
                stop: Some(format!("{name}: torn record framing at byte {pos}")),
            };
        }
        let len = read_u32(buf, pos);
        if len != PAYLOAD_LEN as u32 && len > MAX_PAYLOAD_LEN {
            return SegmentScan {
                records,
                valid_len: pos,
                stop: Some(format!("{name}: implausible record length {len} at byte {pos}")),
            };
        }
        let len = len as usize;
        if buf.len() - pos - 8 < len {
            return SegmentScan {
                records,
                valid_len: pos,
                stop: Some(format!("{name}: torn record payload at byte {pos}")),
            };
        }
        let crc = read_u32(buf, pos + 4);
        let payload = &buf[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return SegmentScan {
                records,
                valid_len: pos,
                stop: Some(format!("{name}: crc mismatch at byte {pos}")),
            };
        }
        if len != PAYLOAD_LEN {
            // Checksummed but not a shape this version understands.
            return SegmentScan {
                records,
                valid_len: pos,
                stop: Some(format!("{name}: unknown record shape ({len} bytes) at byte {pos}")),
            };
        }
        records.push(Observation {
            timestamp: read_u64(payload, 0),
            uid: read_u64(payload, 8),
            item_id: read_u64(payload, 16),
            y: f64::from_be_bytes(payload[24..32].try_into().unwrap()),
        });
        pos += 8 + len;
    }
}

impl Wal {
    /// Opens (or initializes) the log at `config.dir`, scanning and
    /// repairing whatever a previous process left behind. Returns the
    /// handle positioned for appending plus everything recovered.
    pub fn open(config: WalConfig) -> Result<(Wal, WalRecovery)> {
        fs::create_dir_all(&config.dir).map_err(|e| io_err("create wal dir", e))?;
        let mut files: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(&config.dir).map_err(|e| io_err("read wal dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read wal dir entry", e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(ts) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                files.push((ts, entry.path()));
            }
        }
        files.sort_by_key(|(ts, _)| *ts);

        let mut records = Vec::new();
        let mut torn: Option<String> = None;
        let mut segments = Vec::new();
        let mut quarantined = 0usize;
        let mut scanned = 0usize;
        for (start_ts, path) in &files {
            if torn.is_some() {
                // Everything after the first corruption can no longer be
                // ordered against the live log; set it aside, don't delete.
                let mut q = path.clone();
                q.set_extension("log.quarantined");
                fs::rename(path, &q).map_err(|e| io_err("quarantine segment", e))?;
                quarantined += 1;
                continue;
            }
            scanned += 1;
            let buf = fs::read(path).map_err(|e| io_err("read wal segment", e))?;
            let scan = scan_segment(&buf, path);
            records.extend(scan.records);
            if let Some(reason) = scan.stop {
                torn = Some(reason);
                if scan.valid_len < HEADER_LEN {
                    // Not even a full header survived; the file holds
                    // nothing recoverable.
                    fs::remove_file(path).map_err(|e| io_err("remove torn segment", e))?;
                } else {
                    if scan.valid_len < buf.len() {
                        let f = OpenOptions::new()
                            .write(true)
                            .open(path)
                            .map_err(|e| io_err("open segment for repair", e))?;
                        f.set_len(scan.valid_len as u64)
                            .map_err(|e| io_err("truncate torn segment", e))?;
                        f.sync_all().map_err(|e| io_err("sync repaired segment", e))?;
                    }
                    segments.push(SegmentInfo { start_ts: *start_ts, path: path.clone() });
                }
            } else {
                segments.push(SegmentInfo { start_ts: *start_ts, path: path.clone() });
            }
        }
        sync_dir(&config.dir);

        // Reopen the last surviving segment for appending.
        let current = match segments.last() {
            Some(last) => {
                let mut file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&last.path)
                    .map_err(|e| io_err("open wal segment for append", e))?;
                let bytes =
                    file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek wal segment", e))?;
                Some(OpenSegment { file, bytes })
            }
            None => None,
        };

        let recovery = WalRecovery { records, torn, segments_scanned: scanned, quarantined };
        let wal = Wal { config, segments, current, unsynced: 0, stats: WalStats::new() };
        Ok((wal, recovery))
    }

    /// Shared counter handles (for registry adoption).
    pub fn stats(&self) -> WalStats {
        self.stats.clone()
    }

    /// Number of live segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The configured fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.config.fsync
    }

    fn rotate(&mut self, start_ts: u64) -> Result<()> {
        self.sync()?; // never abandon unsynced bytes in a closed segment
        let path = segment_path(&self.config.dir, start_ts);
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .read(true)
            .open(&path)
            .map_err(|e| io_err("create wal segment", e))?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC_WAL.to_be_bytes());
        header.extend_from_slice(&FORMAT.to_be_bytes());
        header.extend_from_slice(&start_ts.to_be_bytes());
        file.write_all(&header).map_err(|e| io_err("write segment header", e))?;
        sync_dir(&self.config.dir);
        self.segments.push(SegmentInfo { start_ts, path });
        self.current = Some(OpenSegment { file, bytes: HEADER_LEN as u64 });
        Ok(())
    }

    /// Appends one record, honoring the fsync policy. On return `Ok`, the
    /// record is on disk (modulo the policy's loss window).
    pub fn append(&mut self, obs: &Observation) -> Result<()> {
        self.append_timed(obs).map(|_| ())
    }

    /// [`Wal::append`] that also reports where the time went, so the
    /// serving layer can attribute the observe ack's tail to the buffered
    /// write vs the fsync (the two behave very differently under
    /// [`FsyncPolicy`]). Two extra `Instant` reads over plain `append` —
    /// noise next to the write syscall it times.
    pub fn append_timed(&mut self, obs: &Observation) -> Result<WalAppendTiming> {
        let append_started = std::time::Instant::now();
        let needs_rotation = match &self.current {
            None => true,
            Some(seg) => seg.bytes + RECORD_LEN as u64 > self.config.segment_max_bytes,
        };
        if needs_rotation {
            self.rotate(obs.timestamp)?;
        }

        let mut payload = [0u8; PAYLOAD_LEN];
        payload[0..8].copy_from_slice(&obs.timestamp.to_be_bytes());
        payload[8..16].copy_from_slice(&obs.uid.to_be_bytes());
        payload[16..24].copy_from_slice(&obs.item_id.to_be_bytes());
        payload[24..32].copy_from_slice(&obs.y.to_be_bytes());
        let mut rec = [0u8; RECORD_LEN];
        rec[0..4].copy_from_slice(&(PAYLOAD_LEN as u32).to_be_bytes());
        rec[4..8].copy_from_slice(&crc32(&payload).to_be_bytes());
        rec[8..].copy_from_slice(&payload);

        let seg = self.current.as_mut().expect("rotation ensured a segment");
        seg.file.write_all(&rec).map_err(|e| io_err("append wal record", e))?;
        seg.bytes += RECORD_LEN as u64;
        self.stats.appends.inc();
        self.stats.bytes_written.add(RECORD_LEN as u64);
        let append_ns = append_started.elapsed().as_nanos().min(u64::MAX as u128) as u64;

        let fsyncs_before = self.stats.fsyncs.get();
        let sync_started = std::time::Instant::now();
        match self.config.fsync {
            FsyncPolicy::PerRecord => self.sync()?,
            FsyncPolicy::Batched { every } => {
                self.unsynced += 1;
                if every > 0 && self.unsynced >= every {
                    self.sync()?;
                }
            }
            FsyncPolicy::Off => {}
        }
        let fsync_ns = if self.stats.fsyncs.get() > fsyncs_before {
            sync_started.elapsed().as_nanos().min(u64::MAX as u128) as u64
        } else {
            0
        };
        Ok(WalAppendTiming { append_ns, fsync_ns })
    }

    /// Flushes the current segment to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        if let Some(seg) = &mut self.current {
            if self.unsynced > 0 || matches!(self.config.fsync, FsyncPolicy::PerRecord) {
                seg.file.sync_data().map_err(|e| io_err("fsync wal segment", e))?;
                self.stats.fsyncs.inc();
            }
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Deletes segments wholly covered by a checkpoint: every segment
    /// whose successor starts at or before `covered_ts` (i.e. all of its
    /// records have timestamp `< covered_ts`). The newest segment is never
    /// deleted. Returns how many files were removed.
    pub fn truncate_covered(&mut self, covered_ts: u64) -> Result<usize> {
        let mut removed = 0usize;
        while self.segments.len() >= 2 && self.segments[1].start_ts <= covered_ts {
            let seg = self.segments.remove(0);
            fs::remove_file(&seg.path).map_err(|e| io_err("remove covered segment", e))?;
            removed += 1;
        }
        if removed > 0 {
            sync_dir(&self.config.dir);
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tmp::ScratchDir;

    fn obs(ts: u64) -> Observation {
        Observation { uid: ts * 7, item_id: ts * 13, y: ts as f64 * 0.5, timestamp: ts }
    }

    fn open(dir: &Path, fsync: FsyncPolicy, seg_bytes: u64) -> (Wal, WalRecovery) {
        let mut cfg = WalConfig::new(dir);
        cfg.fsync = fsync;
        cfg.segment_max_bytes = seg_bytes;
        Wal::open(cfg).unwrap()
    }

    #[test]
    fn append_and_recover_round_trip() {
        let dir = ScratchDir::new("velox-wal");
        {
            let (mut wal, rec) = open(dir.path(), FsyncPolicy::PerRecord, 1 << 20);
            assert!(rec.records.is_empty());
            for ts in 0..25 {
                wal.append(&obs(ts)).unwrap();
            }
        }
        let (_, rec) = open(dir.path(), FsyncPolicy::PerRecord, 1 << 20);
        assert_eq!(rec.records.len(), 25);
        assert!(rec.torn.is_none());
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(*r, obs(i as u64));
        }
    }

    #[test]
    fn rotation_spreads_records_across_segments() {
        let dir = ScratchDir::new("velox-wal");
        // Room for ~4 records per segment.
        let seg_bytes = (HEADER_LEN + 4 * RECORD_LEN) as u64;
        {
            let (mut wal, _) = open(dir.path(), FsyncPolicy::Off, seg_bytes);
            for ts in 0..10 {
                wal.append(&obs(ts)).unwrap();
            }
            assert_eq!(wal.segment_count(), 3);
        }
        let (wal, rec) = open(dir.path(), FsyncPolicy::Off, seg_bytes);
        assert_eq!(rec.segments_scanned, 3);
        assert_eq!(rec.records.len(), 10);
        assert_eq!(wal.segment_count(), 3);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_appendable() {
        let dir = ScratchDir::new("velox-wal");
        {
            let (mut wal, _) = open(dir.path(), FsyncPolicy::PerRecord, 1 << 20);
            for ts in 0..5 {
                wal.append(&obs(ts)).unwrap();
            }
        }
        // Tear the last record in half.
        let path = segment_path(dir.path(), 0);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - RECORD_LEN / 2]).unwrap();

        let (mut wal, rec) = open(dir.path(), FsyncPolicy::PerRecord, 1 << 20);
        assert_eq!(rec.records.len(), 4);
        assert!(rec.torn.is_some());
        // The tail is clean again: append continues where the log ended.
        wal.append(&obs(4)).unwrap();
        drop(wal);
        let (_, rec) = open(dir.path(), FsyncPolicy::PerRecord, 1 << 20);
        assert_eq!(rec.records.len(), 5);
        assert!(rec.torn.is_none());
    }

    #[test]
    fn mid_log_corruption_quarantines_later_segments() {
        let dir = ScratchDir::new("velox-wal");
        let seg_bytes = (HEADER_LEN + 2 * RECORD_LEN) as u64;
        {
            let (mut wal, _) = open(dir.path(), FsyncPolicy::PerRecord, seg_bytes);
            for ts in 0..6 {
                wal.append(&obs(ts)).unwrap();
            }
            assert_eq!(wal.segment_count(), 3);
        }
        // Flip a payload byte in the FIRST segment's second record.
        let path = segment_path(dir.path(), 0);
        let mut buf = fs::read(&path).unwrap();
        let idx = HEADER_LEN + RECORD_LEN + 8 + 3;
        buf[idx] ^= 0x40;
        fs::write(&path, &buf).unwrap();

        let (wal, rec) = open(dir.path(), FsyncPolicy::PerRecord, seg_bytes);
        assert_eq!(rec.records.len(), 1, "scan stops at the corrupt record");
        assert!(rec.torn.unwrap().contains("crc mismatch"));
        assert_eq!(rec.quarantined, 2);
        assert_eq!(wal.segment_count(), 1);
        let quarantined: Vec<_> = fs::read_dir(dir.path())
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().to_string_lossy().ends_with(".quarantined"))
            .collect();
        assert_eq!(quarantined.len(), 2);
    }

    #[test]
    fn truncate_covered_removes_only_fully_covered_segments() {
        let dir = ScratchDir::new("velox-wal");
        let seg_bytes = (HEADER_LEN + 2 * RECORD_LEN) as u64;
        let (mut wal, _) = open(dir.path(), FsyncPolicy::Off, seg_bytes);
        for ts in 0..6 {
            wal.append(&obs(ts)).unwrap();
        }
        // Segments start at ts 0, 2, 4. A checkpoint covering ts < 3
        // releases only the first.
        assert_eq!(wal.truncate_covered(3).unwrap(), 1);
        assert_eq!(wal.segment_count(), 2);
        // Covering everything still keeps the newest (append target).
        assert_eq!(wal.truncate_covered(6).unwrap(), 1);
        assert_eq!(wal.segment_count(), 1);
        drop(wal);
        let (_, rec) = open(dir.path(), FsyncPolicy::Off, seg_bytes);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[0].timestamp, 4);
    }

    #[test]
    fn batched_policy_syncs_every_n() {
        let dir = ScratchDir::new("velox-wal");
        let (mut wal, _) = open(dir.path(), FsyncPolicy::Batched { every: 4 }, 1 << 20);
        for ts in 0..9 {
            wal.append(&obs(ts)).unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.appends.get(), 9);
        assert_eq!(stats.fsyncs.get(), 2, "9 appends at every=4 → 2 syncs");
        wal.sync().unwrap();
        assert_eq!(wal.stats().fsyncs.get(), 3);
    }

    #[test]
    fn open_never_panics_on_garbage_files() {
        let dir = ScratchDir::new("velox-wal");
        fs::write(segment_path(dir.path(), 0), b"definitely not a wal segment").unwrap();
        let (_, rec) = open(dir.path(), FsyncPolicy::Off, 1 << 20);
        assert!(rec.records.is_empty());
        assert!(rec.torn.is_some());
    }
}
