//! Self-cleaning scratch directories for durability tests and benches.
//!
//! Every crash-injection test and the `abl_recovery` bench needs an
//! on-disk working directory that (a) never collides with a concurrent
//! test and (b) disappears afterwards, so the verification suite stays
//! hermetic. [`ScratchDir`] provides exactly that: a uniquely-named
//! directory under the system temp dir, removed recursively on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A uniquely-named temporary directory, deleted (recursively) on drop.
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Creates a fresh scratch directory whose name starts with `prefix`.
    ///
    /// # Panics
    /// Panics if the directory cannot be created — scratch space is a test
    /// precondition, not a recoverable error.
    pub fn new(prefix: &str) -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("{prefix}-{}-{nanos:09}-{id}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create scratch dir");
        ScratchDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path inside the scratch directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let kept;
        {
            let dir = ScratchDir::new("velox-scratch-test");
            kept = dir.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(dir.join("f.txt"), b"x").unwrap();
        }
        assert!(!kept.exists(), "scratch dir must be removed on drop");
    }

    #[test]
    fn two_dirs_never_collide() {
        let a = ScratchDir::new("velox-scratch-test");
        let b = ScratchDir::new("velox-scratch-test");
        assert_ne!(a.path(), b.path());
    }
}
