//! # velox-storage
//!
//! In-memory distributed-storage substrate — the Tachyon substitute.
//!
//! The paper deploys Velox's model manager and predictor co-located with
//! Tachyon workers and uses Tachyon as the system of record for user weight
//! vectors `W`, feature parameters `θ`, and the stream of observations used
//! for offline retraining (§3, Figure 2). This crate rebuilds that storage
//! layer with the same operational surface:
//!
//! - [`kv::KvStore`] / [`kv::Namespace`]: sharded, concurrently-accessible,
//!   **versioned** key–value tables. A namespace's contents can be swapped
//!   atomically for a retrained copy (the paper's "incrementing the version
//!   and transparently upgrading incoming requests").
//! - [`obslog::ObservationLog`]: an append-only log of `observe()` calls,
//!   readable from any offset, which is what the batch retraining jobs
//!   consume ("the observation is written to Tachyon for use by Spark when
//!   retraining the model offline", §4.1).
//! - [`lru::LruCache`]: a constant-time LRU with hit/miss instrumentation —
//!   the building block for the predictor's feature and prediction caches
//!   (§5) and for per-node hot-item caches in the cluster simulator.
//! - [`codec`]: a compact self-describing binary codec (on the in-repo
//!   [`bytes`] shim — the workspace is std-only) used to snapshot and
//!   restore tables, standing in for Tachyon's persistence. Every blob
//!   carries a CRC-32 footer ([`crc`]) so corruption is detected, never
//!   decoded.
//! - [`wal::Wal`] and [`checkpoint::CheckpointStore`]: the durable half of
//!   the Tachyon substitute — a segmented, CRC-checksummed write-ahead log
//!   of observations plus atomic-rename checkpoints of deployment
//!   snapshots, so a process crash loses nothing that was acknowledged
//!   (see DESIGN.md "Durability").
//!
//! Everything is in-process and thread-safe; the *distribution* of storage
//! across nodes (partitioning, routing, remote-read costs) is modelled one
//! level up in `velox-cluster`, which composes these primitives per node.

#![warn(missing_docs)]

pub mod bytes;
pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod kv;
pub mod lru;
pub mod obslog;
pub mod tmp;
pub mod wal;

pub use checkpoint::{CheckpointData, CheckpointStore};
pub use crc::{crc32, crc32_begin, crc32_feed, crc32_finish};
pub use kv::{KvStore, Namespace, VersionedValue};
pub use lru::LruCache;
pub use obslog::{Observation, ObservationLog};
pub use tmp::ScratchDir;
pub use wal::{FsyncPolicy, Wal, WalAppendTiming, WalConfig, WalRecovery};

/// Errors surfaced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A namespace was addressed that has not been created.
    NamespaceNotFound(String),
    /// A snapshot/restore payload failed to decode.
    Corrupt(String),
    /// An operation referenced a version that does not exist (e.g. rollback
    /// past the retained history).
    VersionNotFound(u64),
    /// A filesystem operation on the durable state (WAL, checkpoint)
    /// failed. Carries the formatted OS error — `std::io::Error` is not
    /// `Clone`/`Eq`, which this enum needs to stay.
    Io(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NamespaceNotFound(ns) => write!(f, "namespace not found: {ns}"),
            StorageError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
            StorageError::VersionNotFound(v) => write!(f, "version not found: {v}"),
            StorageError::Io(what) => write!(f, "durable-state io error: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
