//! Seeded corruption fuzz for `velox_storage::codec`.
//!
//! Snapshot blobs now live on disk inside checkpoints, so the codec is a
//! trust boundary against real hardware: torn writes (truncation) and bit
//! rot (flips). For every table type the codec encodes, this suite drives
//! the decoder through seeded random truncations, single-bit flips, and
//! plain garbage, asserting it always returns an error — never panics,
//! never decodes corrupted bytes into plausible-but-wrong data. The CRC-32
//! footer makes the single-bit-flip guarantee unconditional.

use velox_data::VeloxRng;
use velox_storage::bytes::Bytes;
use velox_storage::codec::{
    decode_observations, decode_vector_table, encode_observations, encode_vector_table,
};
use velox_storage::Observation;

const SEED: u64 = 0x5EED_C0DE;
const TRUNCATIONS: usize = 300;
const BIT_FLIPS: usize = 600;
const GARBAGE_BLOBS: usize = 200;

fn random_vector_table(rng: &mut VeloxRng) -> Bytes {
    let n = rng.below(20) as usize;
    let entries: Vec<(u64, Vec<f64>)> = (0..n)
        .map(|_| {
            let id = rng.next_u64();
            let d = rng.below(12) as usize;
            let v: Vec<f64> = (0..d).map(|_| rng.gaussian() * 3.0).collect();
            (id, v)
        })
        .collect();
    encode_vector_table(&entries)
}

fn random_observations(rng: &mut VeloxRng) -> Bytes {
    let n = rng.below(50) as usize;
    let obs: Vec<Observation> = (0..n)
        .map(|i| Observation {
            uid: rng.below(1000),
            item_id: rng.below(5000),
            y: rng.gaussian(),
            timestamp: i as u64,
        })
        .collect();
    encode_observations(&obs)
}

/// Runs the full corruption battery against one encoding, where `decode`
/// reports whether decoding *succeeded*.
fn fuzz_one(rng: &mut VeloxRng, encoded: Bytes, decode: &dyn Fn(Bytes) -> bool, what: &str) {
    assert!(decode(encoded.clone()), "{what}: pristine blob must decode");
    let raw = encoded.as_slice().to_vec();

    // Random truncations (plus the empty prefix) must all be rejected.
    for t in 0..TRUNCATIONS {
        let cut = if t == 0 { 0 } else { (rng.below(raw.len() as u64 - 1) + 1) as usize };
        if cut == raw.len() {
            continue;
        }
        assert!(
            !decode(Bytes::from(raw[..cut].to_vec())),
            "{what}: accepted a {cut}-byte truncation of {} bytes",
            raw.len()
        );
    }

    // Random single-bit flips must all be rejected (CRC-32 guarantees it).
    for _ in 0..BIT_FLIPS {
        let byte = rng.below(raw.len() as u64) as usize;
        let bit = rng.below(8) as u8;
        let mut flipped = raw.clone();
        flipped[byte] ^= 1 << bit;
        assert!(
            !decode(Bytes::from(flipped)),
            "{what}: accepted a bit flip at byte {byte} bit {bit}"
        );
    }
}

#[test]
fn vector_table_survives_corruption_battery() {
    let mut rng = VeloxRng::seed_from(SEED);
    for round in 0..4 {
        let encoded = random_vector_table(&mut rng);
        fuzz_one(
            &mut rng,
            encoded,
            &|b| decode_vector_table(b).is_ok(),
            &format!("vector_table round {round}"),
        );
    }
}

#[test]
fn observations_survive_corruption_battery() {
    let mut rng = VeloxRng::seed_from(SEED ^ 1);
    for round in 0..4 {
        let encoded = random_observations(&mut rng);
        fuzz_one(
            &mut rng,
            encoded,
            &|b| decode_observations(b).is_ok(),
            &format!("observations round {round}"),
        );
    }
}

#[test]
fn random_garbage_never_panics_or_decodes() {
    let mut rng = VeloxRng::seed_from(SEED ^ 2);
    for _ in 0..GARBAGE_BLOBS {
        let len = rng.below(256) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        // Both decoders must reject arbitrary bytes without panicking.
        assert!(decode_vector_table(Bytes::from(garbage.clone())).is_err());
        assert!(decode_observations(Bytes::from(garbage)).is_err());
    }
}

/// A flipped bit can never round-trip into *different but valid* data:
/// whenever the decoder accepts bytes, they must equal the original
/// encoding's content. (With the CRC footer, acceptance after a flip is
/// impossible; this pins the stronger "never wrong data" contract.)
#[test]
fn accepted_decodes_always_match_the_original() {
    let mut rng = VeloxRng::seed_from(SEED ^ 3);
    let obs: Vec<Observation> = (0..32)
        .map(|i| Observation {
            uid: rng.below(100),
            item_id: rng.below(100),
            y: rng.gaussian(),
            timestamp: i as u64,
        })
        .collect();
    let encoded = encode_observations(&obs);
    let raw = encoded.as_slice().to_vec();
    for byte in 0..raw.len() {
        for bit in 0..8 {
            let mut mutated = raw.clone();
            mutated[byte] ^= 1 << bit;
            if let Ok(decoded) = decode_observations(Bytes::from(mutated)) {
                assert_eq!(decoded, obs, "decoder accepted altered bytes as different data");
            }
        }
    }
}
