//! Property-based tests for the storage substrate: the LRU behaves like a
//! reference model, the codec round-trips arbitrary tables, and versioned
//! namespaces behave like a map with swap semantics.

use proptest::prelude::*;
use velox_storage::codec::{
    decode_observations, decode_vector_table, encode_observations, encode_vector_table,
};
use velox_storage::{LruCache, Namespace, Observation};

/// A reference (slow) LRU model: Vec ordered MRU-first.
struct ModelLru {
    cap: usize,
    entries: Vec<(u64, u64)>,
}

impl ModelLru {
    fn new(cap: usize) -> Self {
        ModelLru { cap, entries: Vec::new() }
    }
    fn get(&mut self, k: u64) -> Option<u64> {
        let pos = self.entries.iter().position(|(key, _)| *key == k)?;
        let e = self.entries.remove(pos);
        let v = e.1;
        self.entries.insert(0, e);
        Some(v)
    }
    fn put(&mut self, k: u64, v: u64) {
        if let Some(pos) = self.entries.iter().position(|(key, _)| *key == k) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.cap {
            self.entries.pop();
        }
        self.entries.insert(0, (k, v));
    }
    fn invalidate(&mut self, k: u64) -> Option<u64> {
        let pos = self.entries.iter().position(|(key, _)| *key == k)?;
        Some(self.entries.remove(pos).1)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Get(u64),
    Put(u64, u64),
    Invalidate(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..20).prop_map(Op::Get),
        (0u64..20, 0u64..1000).prop_map(|(k, v)| Op::Put(k, v)),
        (0u64..20).prop_map(Op::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The slab LRU agrees with the reference model under arbitrary op
    /// sequences, for several capacities.
    #[test]
    fn lru_matches_reference_model(cap in 1usize..9, ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut real: LruCache<u64, u64> = LruCache::new(cap);
        let mut model = ModelLru::new(cap);
        for op in ops {
            match op {
                Op::Get(k) => {
                    prop_assert_eq!(real.get(&k).copied(), model.get(k));
                }
                Op::Put(k, v) => {
                    real.put(k, v);
                    model.put(k, v);
                }
                Op::Invalidate(k) => {
                    prop_assert_eq!(real.invalidate(&k), model.invalidate(k));
                }
            }
            prop_assert_eq!(real.len(), model.entries.len());
            let order: Vec<u64> = model.entries.iter().map(|(k, _)| *k).collect();
            prop_assert_eq!(real.keys_mru_order(), order);
        }
    }

    /// Vector-table codec round-trips arbitrary contents bit-exactly.
    #[test]
    fn codec_vector_table_round_trip(
        entries in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(any::<f64>().prop_filter("no NaN", |x| !x.is_nan()), 0..20)),
            0..30,
        )
    ) {
        let decoded = decode_vector_table(encode_vector_table(&entries)).unwrap();
        prop_assert_eq!(decoded, entries);
    }

    /// Observation codec round-trips arbitrary logs.
    #[test]
    fn codec_observations_round_trip(
        raw in prop::collection::vec((any::<u64>(), any::<u64>(), -1e6f64..1e6, any::<u64>()), 0..50)
    ) {
        let obs: Vec<Observation> = raw
            .into_iter()
            .map(|(uid, item_id, y, timestamp)| Observation { uid, item_id, y, timestamp })
            .collect();
        let decoded = decode_observations(encode_observations(&obs)).unwrap();
        prop_assert_eq!(decoded, obs);
    }

    /// Namespace put/get behaves like HashMap, and publish_version replaces
    /// contents wholesale.
    #[test]
    fn namespace_matches_hashmap(
        puts in prop::collection::vec((0u64..50, any::<i64>()), 1..100),
        publish in prop::collection::vec((0u64..50, any::<i64>()), 0..20),
    ) {
        let ns: Namespace<i64> = Namespace::new("prop");
        let mut model = std::collections::HashMap::new();
        for (k, v) in &puts {
            ns.put(*k, *v);
            model.insert(*k, *v);
        }
        for (k, v) in &model {
            prop_assert_eq!(ns.get(*k), Some(*v));
        }
        prop_assert_eq!(ns.len(), model.len());

        let v_before = ns.version();
        ns.publish_version(publish.clone());
        prop_assert_eq!(ns.version(), v_before + 1);
        let mut pub_model = std::collections::HashMap::new();
        for (k, v) in publish {
            pub_model.insert(k, v);
        }
        prop_assert_eq!(ns.len(), pub_model.len());
        for (k, v) in &pub_model {
            prop_assert_eq!(ns.get(*k), Some(*v));
        }
    }
}
