//! Randomized-property tests for the storage substrate, driven by the
//! in-tree seeded generator (`VeloxRng`) so every case replays from the
//! seeds below: the LRU behaves like a reference model, the codec
//! round-trips arbitrary tables, and versioned namespaces behave like a
//! map with swap semantics.

use velox_data::VeloxRng;
use velox_storage::codec::{
    decode_observations, decode_vector_table, encode_observations, encode_vector_table,
};
use velox_storage::{LruCache, Namespace, Observation};

const CASES: usize = 256;

/// A reference (slow) LRU model: Vec ordered MRU-first.
struct ModelLru {
    cap: usize,
    entries: Vec<(u64, u64)>,
}

impl ModelLru {
    fn new(cap: usize) -> Self {
        ModelLru { cap, entries: Vec::new() }
    }
    fn get(&mut self, k: u64) -> Option<u64> {
        let pos = self.entries.iter().position(|(key, _)| *key == k)?;
        let e = self.entries.remove(pos);
        let v = e.1;
        self.entries.insert(0, e);
        Some(v)
    }
    fn put(&mut self, k: u64, v: u64) {
        if let Some(pos) = self.entries.iter().position(|(key, _)| *key == k) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.cap {
            self.entries.pop();
        }
        self.entries.insert(0, (k, v));
    }
    fn invalidate(&mut self, k: u64) -> Option<u64> {
        let pos = self.entries.iter().position(|(key, _)| *key == k)?;
        Some(self.entries.remove(pos).1)
    }
}

/// A finite f64 that is never NaN, spanning magnitudes from subnormal-ish
/// to huge (bit-exact codec round-trips must not depend on "nice" values).
fn finite_f64(rng: &mut VeloxRng) -> f64 {
    match rng.below(8) {
        0 => 0.0,
        1 => -0.0,
        2 => f64::MAX * rng.uniform(),
        3 => f64::MIN_POSITIVE * rng.uniform(),
        4 => f64::INFINITY,
        5 => f64::NEG_INFINITY,
        _ => rng.range(-1e9, 1e9),
    }
}

/// The slab LRU agrees with the reference model under arbitrary op
/// sequences, for several capacities.
#[test]
fn lru_matches_reference_model() {
    let mut rng = VeloxRng::seed_from(0x57_01);
    for _ in 0..CASES {
        let cap = 1 + rng.below(8) as usize;
        let n_ops = 1 + rng.below(199) as usize;
        let mut real: LruCache<u64, u64> = LruCache::new(cap);
        let mut model = ModelLru::new(cap);
        for _ in 0..n_ops {
            match rng.below(3) {
                0 => {
                    let k = rng.below(20);
                    assert_eq!(real.get(&k).copied(), model.get(k));
                }
                1 => {
                    let (k, v) = (rng.below(20), rng.below(1000));
                    real.put(k, v);
                    model.put(k, v);
                }
                _ => {
                    let k = rng.below(20);
                    assert_eq!(real.invalidate(&k), model.invalidate(k));
                }
            }
            assert_eq!(real.len(), model.entries.len());
            let order: Vec<u64> = model.entries.iter().map(|(k, _)| *k).collect();
            assert_eq!(real.keys_mru_order(), order);
        }
    }
}

/// Vector-table codec round-trips arbitrary contents bit-exactly.
#[test]
fn codec_vector_table_round_trip() {
    let mut rng = VeloxRng::seed_from(0x57_02);
    for _ in 0..CASES {
        let n = rng.below(30) as usize;
        let entries: Vec<(u64, Vec<f64>)> = (0..n)
            .map(|_| {
                let id = rng.next_u64();
                let len = rng.below(20) as usize;
                (id, (0..len).map(|_| finite_f64(&mut rng)).collect())
            })
            .collect();
        let decoded = decode_vector_table(encode_vector_table(&entries)).unwrap();
        assert_eq!(decoded.len(), entries.len());
        for ((id_a, v_a), (id_b, v_b)) in decoded.iter().zip(&entries) {
            assert_eq!(id_a, id_b);
            assert_eq!(v_a.len(), v_b.len());
            for (a, b) in v_a.iter().zip(v_b) {
                assert_eq!(a.to_bits(), b.to_bits(), "bit-exact round trip");
            }
        }
    }
}

/// Observation codec round-trips arbitrary logs.
#[test]
fn codec_observations_round_trip() {
    let mut rng = VeloxRng::seed_from(0x57_03);
    for _ in 0..CASES {
        let n = rng.below(50) as usize;
        let obs: Vec<Observation> = (0..n)
            .map(|_| Observation {
                uid: rng.next_u64(),
                item_id: rng.next_u64(),
                y: rng.range(-1e6, 1e6),
                timestamp: rng.next_u64(),
            })
            .collect();
        let decoded = decode_observations(encode_observations(&obs)).unwrap();
        assert_eq!(decoded, obs);
    }
}

/// Namespace put/get behaves like HashMap, and publish_version replaces
/// contents wholesale.
#[test]
fn namespace_matches_hashmap() {
    let mut rng = VeloxRng::seed_from(0x57_04);
    for _ in 0..CASES {
        let ns: Namespace<i64> = Namespace::new("prop");
        let mut model = std::collections::HashMap::new();
        let n_puts = 1 + rng.below(99) as usize;
        for _ in 0..n_puts {
            let (k, v) = (rng.below(50), rng.next_u64() as i64);
            ns.put(k, v);
            model.insert(k, v);
        }
        for (k, v) in &model {
            assert_eq!(ns.get(*k), Some(*v));
        }
        assert_eq!(ns.len(), model.len());

        let n_publish = rng.below(20) as usize;
        let publish: Vec<(u64, i64)> =
            (0..n_publish).map(|_| (rng.below(50), rng.next_u64() as i64)).collect();
        let v_before = ns.version();
        ns.publish_version(publish.clone());
        assert_eq!(ns.version(), v_before + 1);
        let mut pub_model = std::collections::HashMap::new();
        for (k, v) in publish {
            pub_model.insert(k, v);
        }
        assert_eq!(ns.len(), pub_model.len());
        for (k, v) in &pub_model {
            assert_eq!(ns.get(*k), Some(*v));
        }
    }
}
