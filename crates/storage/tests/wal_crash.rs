//! Crash-injection battery for the write-ahead log.
//!
//! A crash can stop the process between any two bytes reaching disk, so the
//! ground truth for "what must recover" is purely positional: a segment cut
//! at byte `t` holds exactly the records that fit entirely inside the
//! prefix. These tests simulate the crash deterministically — write a log,
//! copy a byte-prefix (or a bit-flipped copy) into a fresh directory,
//! reopen — and check three invariants at every cut point:
//!
//! 1. recovery yields *exactly* the fully-persisted records, in order;
//! 2. reopening never panics, whatever the damage;
//! 3. the reopened log accepts new appends that survive another cycle.

use std::fs;
use std::path::{Path, PathBuf};

use velox_data::VeloxRng;
use velox_storage::wal::{FsyncPolicy, Wal, WalConfig, WalRecovery};
use velox_storage::{Observation, ScratchDir};

/// Mirror of the on-disk framing constants (`wal.rs`); the tests compute
/// expected recovery counts from byte offsets, so they must agree.
const HEADER_LEN: usize = 16;
const RECORD_LEN: usize = 40;

fn obs(i: u64) -> Observation {
    Observation { uid: i % 7, item_id: i % 13, y: (i as f64) * 0.25 - 1.0, timestamp: i }
}

/// Writes `n` records through a fresh WAL and returns the raw bytes of its
/// segment files in log order, together with the file names.
fn build_segments(n: u64, segment_max_bytes: u64) -> Vec<(String, Vec<u8>)> {
    let scratch = ScratchDir::new("wal-crash-build");
    let mut config = WalConfig::new(scratch.join("wal"));
    config.segment_max_bytes = segment_max_bytes;
    config.fsync = FsyncPolicy::PerRecord;
    let (mut wal, recovery) = Wal::open(config).expect("open fresh");
    assert!(recovery.records.is_empty(), "fresh dir must be empty");
    for i in 0..n {
        wal.append(&obs(i)).expect("append");
    }
    drop(wal);

    let dir = scratch.join("wal");
    let mut paths: Vec<PathBuf> =
        fs::read_dir(&dir).expect("read dir").map(|e| e.expect("entry").path()).collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (name, fs::read(&p).expect("read segment"))
        })
        .collect()
}

/// Plants the given segment images in a fresh directory and reopens the WAL.
fn reopen(segments: &[(String, Vec<u8>)]) -> (ScratchDir, Wal, WalRecovery) {
    let scratch = ScratchDir::new("wal-crash-reopen");
    let dir = scratch.join("wal");
    fs::create_dir_all(&dir).expect("mkdir");
    for (name, bytes) in segments {
        fs::write(dir.join(name), bytes).expect("plant segment");
    }
    let (wal, recovery) = Wal::open(WalConfig::new(&dir)).expect("reopen never errors");
    (scratch, wal, recovery)
}

fn assert_is_prefix(records: &[Observation], context: &str) {
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r, &obs(i as u64), "{context}: record {i} diverges from what was written");
    }
}

fn count_quarantined(dir: &Path) -> usize {
    fs::read_dir(dir)
        .expect("read dir")
        .filter(|e| e.as_ref().unwrap().path().to_string_lossy().ends_with(".quarantined"))
        .count()
}

/// Kill-at-every-write-point: cut the segment at every byte offset and
/// check that exactly the fully-contained records come back. This is the
/// core durability claim — under fsync-per-record an acknowledged
/// observation is on disk in full, so no cut can lose it.
#[test]
fn kill_at_every_write_point_recovers_exactly_the_persisted_records() {
    const N: u64 = 8;
    let segments = build_segments(N, 1 << 20);
    assert_eq!(segments.len(), 1, "8 records fit one segment");
    let (name, full) = &segments[0];
    assert_eq!(full.len(), HEADER_LEN + N as usize * RECORD_LEN);

    for cut in 0..=full.len() {
        let prefix = vec![(name.clone(), full[..cut].to_vec())];
        let (scratch, mut wal, recovery) = reopen(&prefix);
        let expected = cut.saturating_sub(HEADER_LEN) / RECORD_LEN;
        assert_eq!(
            recovery.records.len(),
            expected,
            "cut at byte {cut}: expected {expected} whole records"
        );
        assert_is_prefix(&recovery.records, &format!("cut {cut}"));
        // An empty or sub-header file is itself damage worth reporting, so
        // only a full header followed by whole records counts as clean.
        let cleanly_aligned = cut >= HEADER_LEN && (cut - HEADER_LEN).is_multiple_of(RECORD_LEN);
        assert_eq!(
            recovery.torn.is_some(),
            !cleanly_aligned,
            "cut at byte {cut}: torn flag must mark partial bytes"
        );

        // The reopened log must keep working: append the next record in
        // sequence and confirm a second recovery sees it.
        wal.append(&obs(expected as u64)).expect("append after recovery");
        drop(wal);
        let (_, reread) = Wal::open(WalConfig::new(scratch.join("wal"))).expect("second reopen");
        assert_eq!(reread.records.len(), expected + 1, "cut {cut}: post-crash append survives");
        assert_is_prefix(&reread.records, &format!("cut {cut} after append"));
    }
}

/// Random single-bit corruption anywhere in the file: recovery must never
/// panic, never fabricate data, and always return a *prefix* of what was
/// written (damage at record `i` may only hide records `>= i`).
#[test]
fn seeded_bit_flips_never_panic_and_recover_a_prefix() {
    const N: u64 = 16;
    let segments = build_segments(N, 1 << 20);
    let (name, full) = &segments[0];
    let mut rng = VeloxRng::seed_from(0xBADD_C0DE);

    for trial in 0..300 {
        let byte = rng.below(full.len() as u64) as usize;
        let bit = rng.below(8) as u32;
        let mut mutated = full.clone();
        mutated[byte] ^= 1u8 << bit;

        let corrupted = vec![(name.clone(), mutated)];
        let (_scratch, wal, recovery) = reopen(&corrupted);
        assert!(
            recovery.records.len() <= N as usize,
            "trial {trial}: cannot recover more than was written"
        );
        assert_is_prefix(&recovery.records, &format!("trial {trial} (byte {byte} bit {bit})"));
        if byte >= HEADER_LEN {
            // Damage inside record `i` can only affect records >= i.
            let damaged_record = (byte - HEADER_LEN) / RECORD_LEN;
            assert!(
                recovery.records.len() >= damaged_record.min(N as usize),
                "trial {trial}: flip in record {damaged_record} lost earlier records"
            );
        }
        drop(wal);
    }
}

/// Double corruption: flip two independent bytes. The prefix property must
/// hold regardless of where the two hits land.
#[test]
fn double_bit_flips_still_recover_a_prefix() {
    const N: u64 = 12;
    let segments = build_segments(N, 1 << 20);
    let (name, full) = &segments[0];
    let mut rng = VeloxRng::seed_from(0x5EED_F00D);

    for trial in 0..150 {
        let mut mutated = full.clone();
        for _ in 0..2 {
            let byte = rng.below(full.len() as u64) as usize;
            mutated[byte] ^= 1u8 << rng.below(8);
        }
        let corrupted = vec![(name.clone(), mutated)];
        let (_scratch, _wal, recovery) = reopen(&corrupted);
        assert!(recovery.records.len() <= N as usize, "trial {trial}");
        assert_is_prefix(&recovery.records, &format!("double-flip trial {trial}"));
    }
}

/// Corruption in an *earlier* segment of a multi-segment log: the records
/// after the damage can no longer be ordered safely, so later segments are
/// quarantined (renamed aside), and recovery returns a clean prefix.
#[test]
fn corrupt_middle_segment_quarantines_the_tail() {
    const N: u64 = 12;
    // Four records per segment: header + 4 * record.
    let per_segment = (HEADER_LEN + 4 * RECORD_LEN) as u64;
    let segments = build_segments(N, per_segment);
    assert!(segments.len() >= 3, "expected >= 3 segments, got {}", segments.len());

    // Flip a payload byte in the middle of the second segment's first record.
    let mut damaged = segments.clone();
    let hit = HEADER_LEN + RECORD_LEN / 2;
    damaged[1].1[hit] ^= 0x40;

    let (scratch, wal, recovery) = reopen(&damaged);
    let seg0_records = (segments[0].1.len() - HEADER_LEN) / RECORD_LEN;
    assert_eq!(
        recovery.records.len(),
        seg0_records,
        "recovery stops at the corrupt record in segment 1"
    );
    assert_is_prefix(&recovery.records, "mid-segment corruption");
    assert!(recovery.torn.is_some(), "corruption is reported");
    assert!(recovery.quarantined >= 1, "segments after the damage are quarantined");
    assert_eq!(
        count_quarantined(&scratch.join("wal")),
        recovery.quarantined,
        "quarantined count matches renamed files"
    );
    assert!(recovery.segments_scanned >= 2);
    drop(wal);

    // A second open of the same directory is clean: the quarantined files
    // are ignored and what recovered once recovers again.
    let (_, reread) =
        Wal::open(WalConfig::new(scratch.join("wal"))).expect("reopen after quarantine");
    assert_eq!(reread.records.len(), seg0_records, "recovery is stable across reopens");
    assert!(reread.torn.is_none(), "the truncated log is now internally consistent");
}

/// A truncated header (fewer than 16 bytes) yields an empty, usable log.
#[test]
fn truncated_header_yields_empty_log_that_accepts_appends() {
    let segments = build_segments(4, 1 << 20);
    let (name, full) = &segments[0];
    for cut in 0..HEADER_LEN {
        let stub = vec![(name.clone(), full[..cut].to_vec())];
        let (scratch, mut wal, recovery) = reopen(&stub);
        assert!(recovery.records.is_empty(), "cut {cut}: no record fits inside a partial header");
        wal.append(&obs(0)).expect("append into recovered-empty log");
        drop(wal);
        let (_, reread) = Wal::open(WalConfig::new(scratch.join("wal"))).expect("reopen");
        assert_eq!(reread.records.len(), 1, "cut {cut}");
    }
}

/// Rotation bookkeeping: a multi-segment log with no damage recovers every
/// record across the segment boundary and reports every segment scanned.
#[test]
fn multi_segment_log_recovers_across_rotation_boundaries() {
    const N: u64 = 10;
    let per_segment = (HEADER_LEN + 3 * RECORD_LEN) as u64;
    let segments = build_segments(N, per_segment);
    assert!(segments.len() > 1, "rotation must have happened");

    let (_scratch, wal, recovery) = reopen(&segments);
    assert_eq!(recovery.records.len(), N as usize);
    assert_is_prefix(&recovery.records, "clean multi-segment");
    assert!(recovery.torn.is_none());
    assert_eq!(recovery.quarantined, 0);
    assert_eq!(recovery.segments_scanned, segments.len());
    assert_eq!(wal.segment_count(), segments.len());
}
