//! # velox-bench
//!
//! The experiment harness: shared fixtures and reporting utilities used by
//! the figure/table regeneration binaries (`src/bin/*`), including the
//! `microbench` binary that replaced the former Criterion suites.
//!
//! Every binary regenerates one artifact from the paper's evaluation (see
//! DESIGN.md's experiment index) and prints a self-describing table:
//! markdown rows with the same series the paper plots, so EXPERIMENTS.md
//! can record paper-vs-measured side by side.

#![warn(missing_docs)]

use std::time::Instant;

use velox_linalg::stats::LatencySummary;
use velox_linalg::Vector;

/// Deterministic pseudo-random vector generator for serving-scale fixtures
/// (building d=10000 factor tables through ALS would be absurd; the paper's
/// Figure 4 measures serving cost, which depends only on dimensions).
pub struct FixtureRng {
    state: u64,
}

impl FixtureRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        FixtureRng { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1 }
    }

    /// Next uniform in (-1, 1).
    pub fn next_f64(&mut self) -> f64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }

    /// A random vector of dimension `d`, scaled by `1/√d` so dot products
    /// stay O(1) regardless of dimension.
    pub fn vector(&mut self, d: usize) -> Vector {
        let scale = 1.0 / (d as f64).sqrt();
        Vector::from_vec((0..d).map(|_| self.next_f64() * scale).collect())
    }

    /// A raw `Vec<f64>` of dimension `d` (for factor tables).
    pub fn raw(&mut self, d: usize) -> Vec<f64> {
        let scale = 1.0 / (d as f64).sqrt();
        (0..d).map(|_| self.next_f64() * scale).collect()
    }
}

/// Times a closure once, in microseconds.
pub fn time_us<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e6
}

/// Runs `trials` timed iterations of `f` (after `warmup` untimed ones) and
/// summarizes the latency distribution in microseconds.
pub fn measure<F: FnMut()>(warmup: usize, trials: usize, mut f: F) -> LatencySummary {
    for _ in 0..warmup {
        f();
    }
    let samples: Vec<f64> = (0..trials).map(|_| time_us(&mut f)).collect();
    LatencySummary::from_samples(&samples).expect("trials > 0")
}

/// Prints a markdown table header.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("\n## {title}\n");
    println!("| {} |", columns.join(" | "));
    println!("|{}|", columns.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Prints one markdown row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats microseconds adaptively (µs / ms / s).
pub fn fmt_us(us: f64) -> String {
    if us < 1_000.0 {
        format!("{us:.1} µs")
    } else if us < 1_000_000.0 {
        format!("{:.2} ms", us / 1_000.0)
    } else {
        format!("{:.3} s", us / 1_000_000.0)
    }
}

/// Adaptive trial count for an O(d^k)-ish operation: keeps total bench time
/// bounded while retaining enough samples for a CI at small sizes.
pub fn adaptive_trials(cost_proxy: f64, budget: f64, min: usize, max: usize) -> usize {
    ((budget / cost_proxy.max(1.0)) as usize).clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_rng_is_deterministic_and_scaled() {
        let mut a = FixtureRng::new(1);
        let mut b = FixtureRng::new(1);
        assert_eq!(a.vector(16), b.vector(16));
        let v = a.vector(10_000);
        // 1/√d scaling keeps the norm O(1).
        assert!(v.norm2() < 2.0, "norm {}", v.norm2());
    }

    #[test]
    fn measure_returns_sane_summary() {
        let s = measure(2, 20, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert_eq!(s.n, 20);
        assert!(s.mean >= 0.0);
        assert!(s.p99 >= s.p50);
    }

    #[test]
    fn adaptive_trials_clamps() {
        assert_eq!(adaptive_trials(1.0, 1000.0, 5, 100), 100);
        assert_eq!(adaptive_trials(1e9, 1000.0, 5, 100), 5);
    }

    #[test]
    fn fmt_us_units() {
        assert!(fmt_us(12.3).contains("µs"));
        assert!(fmt_us(12_300.0).contains("ms"));
        assert!(fmt_us(12_300_000.0).contains(" s"));
    }
}
