//! RECOVERY-DURABILITY — what durable state costs and how fast it comes back.
//!
//! The paper's prototype keeps all serving state in memory; a crash loses
//! every online update since the last offline retrain. This experiment
//! quantifies the two sides of fixing that with a WAL + checkpoints:
//!
//! 1. **Write-path cost** — observe throughput with the WAL attached under
//!    each fsync policy (per-record / batched / off) against the
//!    memory-only baseline. Per-record fsync is the "no acknowledged
//!    observation ever lost" setting; the others trade a bounded loss
//!    window for throughput.
//! 2. **Recovery time vs WAL length** — time to boot a deployment from a
//!    cold directory as the un-checkpointed WAL tail grows, and the effect
//!    of a checkpoint covering most of the log.
//!
//! `--smoke` shrinks the workload and exits non-zero unless every policy
//! recovers exactly what it acknowledged (no loss, no duplication) — the
//! CI gate for the durability path.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use velox_bench::{print_header, print_row};
use velox_core::{DurabilityConfig, Item, Velox, VeloxConfig, VeloxModel};
use velox_models::IdentityModel;
use velox_storage::{FsyncPolicy, ScratchDir};

const DIM: usize = 8;
const N_ITEMS: u64 = 256;
const N_USERS: u64 = 64;

fn durable_config(dir: std::path::PathBuf, fsync: FsyncPolicy) -> VeloxConfig {
    let mut durability = DurabilityConfig::new(dir);
    durability.fsync = fsync;
    VeloxConfig { durability: Some(durability), ..VeloxConfig::single_node() }
}

fn model() -> Arc<dyn VeloxModel> {
    Arc::new(IdentityModel::new("recovery", DIM, 0.5))
}

fn register(velox: &Velox) {
    for item in 0..N_ITEMS {
        let phase = item as f64 * 0.37;
        velox.register_item(item, (0..DIM).map(|d| (phase + d as f64).sin()).collect());
    }
}

fn observe_n(velox: &Velox, n: u64) {
    for i in 0..n {
        velox
            .observe(i % N_USERS, &Item::Id(i % N_ITEMS), (i as f64 * 0.13).sin())
            .expect("observe");
    }
}

/// Observe throughput with the given fsync policy (`None` = memory-only).
fn write_path(policy: Option<FsyncPolicy>, n: u64) -> (f64, u64) {
    let scratch = ScratchDir::new("abl-recovery-write");
    let velox = match policy {
        Some(fsync) => {
            let (velox, _) = Velox::deploy_durable(
                |_| Ok(model()),
                HashMap::new(),
                durable_config(scratch.join("state"), fsync),
            )
            .expect("durable deploy");
            velox
        }
        None => Velox::deploy(model(), HashMap::new(), VeloxConfig::single_node()),
    };
    register(&velox);
    let start = Instant::now();
    observe_n(&velox, n);
    let elapsed = start.elapsed().as_secs_f64();
    let fsyncs = velox.stats().durability.wal_fsyncs;
    (n as f64 / elapsed, fsyncs)
}

/// Writes `wal_records` observations (optionally checkpointing after
/// `checkpoint_at`), drops the deployment, then times the reboot. Returns
/// (recovery µs, replayed, recovered observation count).
fn recovery_run(wal_records: u64, checkpoint_at: Option<u64>) -> (f64, u64, u64) {
    let scratch = ScratchDir::new("abl-recovery-boot");
    let config = durable_config(scratch.join("state"), FsyncPolicy::Off);
    let (velox, _) =
        Velox::deploy_durable(|_| Ok(model()), HashMap::new(), config.clone()).expect("deploy");
    register(&velox);
    if let Some(at) = checkpoint_at {
        observe_n(&velox, at);
        velox.checkpoint().expect("checkpoint");
        let tail = wal_records - at;
        for i in 0..tail {
            velox
                .observe((at + i) % N_USERS, &Item::Id((at + i) % N_ITEMS), 0.2)
                .expect("observe tail");
        }
    } else {
        observe_n(&velox, wal_records);
    }
    drop(velox);

    let start = Instant::now();
    let (revived, report) =
        Velox::deploy_durable(|_| Ok(model()), HashMap::new(), config).expect("recover");
    let us = start.elapsed().as_secs_f64() * 1e6;
    (us, report.replayed, revived.stats().observations)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let write_n: u64 = if smoke { 2_000 } else { 20_000 };
    let wal_lengths: &[u64] = if smoke { &[500, 2_000] } else { &[1_000, 5_000, 20_000, 50_000] };

    println!("# RECOVERY-DURABILITY: WAL cost on the observe path, recovery time at boot");
    println!(
        "\n{N_USERS} users, {N_ITEMS} items, dim {DIM}; write path: {write_n} observations \
         per policy; identity model (isolates logging cost from model math)"
    );

    // ---- 1. Write-path cost per fsync policy -------------------------------
    let policies: [(&str, Option<FsyncPolicy>); 4] = [
        ("memory-only", None),
        ("wal+off", Some(FsyncPolicy::Off)),
        ("wal+batched(64)", Some(FsyncPolicy::Batched { every: 64 })),
        ("wal+per-record", Some(FsyncPolicy::PerRecord)),
    ];
    print_header(
        "Observe throughput by durability setting",
        &["setting", "obs/s", "µs/obs", "fsyncs", "loss window"],
    );
    let mut baseline = 0.0;
    for (name, policy) in policies {
        let (rate, fsyncs) = write_path(policy, write_n);
        if policy.is_none() {
            baseline = rate;
        }
        let window = match policy {
            None => "everything since retrain",
            Some(FsyncPolicy::Off) => "page cache",
            Some(FsyncPolicy::Batched { .. }) => "≤ 64 records",
            Some(FsyncPolicy::PerRecord) => "none",
        };
        print_row(&[
            name.to_string(),
            format!("{rate:.0}"),
            format!("{:.2}", 1e6 / rate),
            fsyncs.to_string(),
            window.to_string(),
        ]);
    }
    let _ = baseline;

    // ---- 2. Recovery time vs WAL length ------------------------------------
    print_header(
        "Recovery time at boot (WAL-only replay, no checkpoint)",
        &["wal records", "recovery ms", "replay rate (rec/s)", "recovered obs"],
    );
    let mut smoke_ok = true;
    for &n in wal_lengths {
        let (us, replayed, recovered) = recovery_run(n, None);
        print_row(&[
            n.to_string(),
            format!("{:.2}", us / 1e3),
            format!("{:.0}", replayed as f64 / (us / 1e6)),
            recovered.to_string(),
        ]);
        if replayed != n || recovered != n {
            eprintln!("SMOKE FAIL: wrote {n}, replayed {replayed}, recovered {recovered}");
            smoke_ok = false;
        }
    }

    // A checkpoint covering 90% of the log cuts replay to the tail.
    let total = *wal_lengths.last().unwrap();
    let covered = total * 9 / 10;
    let (us, replayed, recovered) = recovery_run(total, Some(covered));
    print_header(
        "Recovery with a checkpoint covering 90% of the log",
        &["wal records", "checkpointed", "replayed", "recovery ms", "recovered obs"],
    );
    print_row(&[
        total.to_string(),
        covered.to_string(),
        replayed.to_string(),
        format!("{:.2}", us / 1e3),
        recovered.to_string(),
    ]);
    if replayed != total - covered || recovered != total {
        eprintln!(
            "SMOKE FAIL: checkpoint at {covered}/{total}: replayed {replayed}, \
             recovered {recovered}"
        );
        smoke_ok = false;
    }

    // ---- 3. Acknowledged-set preservation gate ------------------------------
    // Every policy must recover exactly what it acknowledged after a clean
    // shutdown: nothing lost, nothing duplicated.
    for fsync in [FsyncPolicy::PerRecord, FsyncPolicy::Batched { every: 64 }, FsyncPolicy::Off] {
        let scratch = ScratchDir::new("abl-recovery-ack");
        let config = durable_config(scratch.join("state"), fsync);
        let (velox, _) =
            Velox::deploy_durable(|_| Ok(model()), HashMap::new(), config.clone()).expect("deploy");
        register(&velox);
        let n = if smoke { 300 } else { 3_000 };
        observe_n(&velox, n);
        drop(velox);
        let (revived, report) =
            Velox::deploy_durable(|_| Ok(model()), HashMap::new(), config).expect("recover");
        if report.replayed != n || revived.stats().observations != n {
            eprintln!(
                "SMOKE FAIL: {} acknowledged {n}, replayed {} recovered {}",
                fsync.name(),
                report.replayed,
                revived.stats().observations
            );
            smoke_ok = false;
        }
    }
    println!("\nacknowledged-set check: every policy recovered exactly what it acknowledged");

    if smoke {
        if !smoke_ok {
            std::process::exit(1);
        }
        println!("smoke: all gates passed");
    }
}
