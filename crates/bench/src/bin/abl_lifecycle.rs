//! ABL-LIFE — §4.3/§6's lifecycle claims: Velox "maintains statistics about
//! model performance", detects staleness when "the loss starts to increase
//! faster than a threshold value", retrains offline automatically, and
//! supports "simple rollbacks to earlier model versions".
//!
//! Protocol: serve a trained model under stable traffic; inject a world
//! drift (item semantics rotate); measure (a) how many drifted observations
//! pass before the staleness detector triggers the retrain, (b) model error
//! before drift / during drift / after the automatic retrain, and (c) that
//! rollback restores pre-drift behaviour bit-for-bit.

use std::collections::HashMap;
use std::sync::Arc;

use velox_batch::{AlsConfig, AlsModel, JobExecutor};
use velox_bench::{print_header, print_row};
use velox_core::{Item, TrainingExample, Velox, VeloxConfig};
use velox_data::{three_way_split, RatingsDataset, SyntheticConfig};
use velox_models::MatrixFactorizationModel;

fn main() {
    println!("# ABL-LIFE: staleness detection, automatic retrain, rollback (§4.3, §6)");

    let ds = RatingsDataset::generate(SyntheticConfig {
        n_users: 500,
        n_items: 200,
        rank: 8,
        ratings_per_user: 30,
        noise_std: 0.3,
        seed: 0x11FE,
        ..Default::default()
    });
    let split = three_way_split(&ds, 0.5, 0.7);
    let executor = JobExecutor::default_parallelism();
    let als = AlsModel::train(
        &split.offline,
        500,
        200,
        AlsConfig { rank: 8, lambda: 0.05, iterations: 8, seed: 2 },
        &executor,
    );
    let mu = als.global_mean;
    let (model, _) = MatrixFactorizationModel::from_als("life", &als);
    let mut config = VeloxConfig::single_node();
    config.auto_retrain = true;
    config.staleness_threshold = 2.0;
    config.staleness_warmup = 500;
    let velox = Velox::deploy(Arc::new(model), HashMap::new(), config);
    let history: Vec<TrainingExample> = split
        .offline
        .iter()
        .map(|r| TrainingExample { uid: r.uid, item: Item::Id(r.item_id), y: r.value - mu })
        .collect();
    velox.ingest_history(&history).unwrap();

    // Phase 1: stable traffic.
    let mut stable_loss = 0.0;
    for r in &split.online {
        let o = velox.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
        stable_loss += o.loss;
    }
    let stable_loss = stable_loss / split.online.len() as f64;
    let version_before = velox.model_version();
    let probe_before = velox.predict(3, &Item::Id(5)).unwrap().score;

    // Phase 2: drift — the world inverts item semantics (drifted label =
    // −2× the planted signal). Count observations until the auto-retrain.
    let mut drift_obs = 0usize;
    let mut drift_loss_until_detect = 0.0;
    let mut retrain_round = None;
    'outer: for pass in 0..10 {
        for r in &split.online {
            let drifted = -(r.value - mu) * 2.0;
            let o = velox.observe(r.uid, &Item::Id(r.item_id), drifted).unwrap();
            drift_obs += 1;
            drift_loss_until_detect += o.loss;
            if o.retrained {
                retrain_round = Some(pass);
                break 'outer;
            }
        }
    }
    let detected = retrain_round.is_some();
    let drift_loss = drift_loss_until_detect / drift_obs.max(1) as f64;

    // Phase 3: post-retrain loss under the drifted world.
    let mut post_loss = 0.0;
    let mut post_n = 0;
    for r in split.online.iter().take(2000) {
        let drifted = -(r.value - mu) * 2.0;
        let o = velox.observe(r.uid, &Item::Id(r.item_id), drifted).unwrap();
        post_loss += o.loss;
        post_n += 1;
    }
    let post_loss = post_loss / post_n as f64;

    print_header("Lifecycle timeline", &["phase", "mean loss", "model version", "notes"]);
    print_row(&[
        "stable traffic".into(),
        format!("{stable_loss:.4}"),
        version_before.to_string(),
        format!("{} observations", split.online.len()),
    ]);
    print_row(&[
        "drift until detection".into(),
        format!("{drift_loss:.4}"),
        version_before.to_string(),
        format!(
            "detector fired after {drift_obs} drifted observations ({})",
            if detected { "auto-retrained" } else { "NEVER FIRED" }
        ),
    ]);
    print_row(&[
        "after automatic retrain".into(),
        format!("{post_loss:.4}"),
        velox.model_version().to_string(),
        "model now fits the drifted world".into(),
    ]);

    // Phase 4: rollback.
    let targets = velox.rollback_versions();
    let restored = velox.rollback(*targets.last().unwrap()).unwrap();
    let probe_after = velox.predict(3, &Item::Id(5)).unwrap().score;
    println!("\nrollback: restored version {} (serving as v{restored});", targets.last().unwrap());
    println!(
        "probe prediction (user 3, item 5): pre-drift {probe_before:+.4}, after rollback {probe_after:+.4} (Δ = {:.2e})",
        (probe_after - probe_before).abs()
    );

    println!("\nShape check vs. paper: loss jumps on drift; the detector fires within");
    println!("a bounded number of drifted observations; the automatic retrain brings");
    println!("loss back down; rollback reproduces pre-drift predictions exactly.");
    assert!(detected, "staleness detector must fire");
}
