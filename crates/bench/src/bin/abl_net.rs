//! NET-LAT — predict/observe latency over real sockets, local vs routed.
//!
//! The paper serves predictions "with low latency" over an RPC boundary
//! (§3, §8) and routes each request to the node holding the user's
//! weights. This experiment prices that boundary on a 3-node loopback TCP
//! cluster (`velox-net`): wall-clock p50/p99 for
//!
//! - `in-process`: the simulator behind the same `Transport` trait — the
//!   no-sockets floor;
//! - `net local`: client-side routing straight to the owning node (one
//!   RPC round trip);
//! - `net routed`: a deliberately mis-addressed request that a non-owner
//!   must forward one hop to the owner (two round trips);
//! - `net observe`: an acknowledged online update — WAL append plus
//!   synchronous log shipping to the replica before the ack.
//!
//! A second, fully traced phase (separate cluster with the WAL on and
//! `sample_all`) breaks each request down **per hop** from its span tree:
//! wire + serialize time (client RPC span minus server recv span), server
//! queue wait (recv span minus the work span), node compute, WAL append
//! and fsync, and the synchronous replica ship round trip. This is the
//! "where did the p99 go" table the histograms alone cannot produce.
//!
//! `--smoke` runs a smaller workload and exits non-zero unless every
//! request is served and routed answers are bit-identical to local ones —
//! the CI gate for the TCP serving path.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use velox_bench::{print_header, print_row};
use velox_cluster::{Cluster, ClusterConfig, SimTransport, Transport};
use velox_linalg::stats::LatencySummary;
use velox_net::{NetCluster, NetClusterConfig, Request, Response};
use velox_obs::{build_tree, SpanKind, TraceConfig, TraceNode};

const N_USERS: u64 = 64;
const N_ITEMS: u64 = 256;
const DIM: usize = 16;
const N_NODES: usize = 3;
const LR: f64 = 0.05;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 17) as f64 / 16.0).collect()
}

fn seeded_items() -> Vec<(u64, Vec<f64>)> {
    (0..N_ITEMS).map(|i| (i, item_features(i))).collect()
}

fn summary_row(name: &str, samples: &[f64]) {
    let s = LatencySummary::from_samples(samples).expect("samples");
    print_row(&[
        name.to_string(),
        s.n.to_string(),
        format!("{:.1}", s.p50),
        format!("{:.1}", s.p99),
        format!("{:.1}", s.mean),
        format!("{:.1}", s.max),
    ]);
}

fn timed_us(f: impl FnOnce()) -> f64 {
    let started = Instant::now();
    f();
    started.elapsed().as_secs_f64() * 1e6
}

/// Per-hop latency samples (µs), keyed by row label in display order.
#[derive(Default)]
struct HopAgg {
    rows: BTreeMap<&'static str, Vec<f64>>,
}

impl HopAgg {
    fn push(&mut self, row: &'static str, ns: u64) {
        self.rows.entry(row).or_default().push(ns as f64 / 1e3);
    }
}

fn child_of(node: &TraceNode, kind: SpanKind) -> Option<&TraceNode> {
    node.children.iter().find(|c| c.span.kind == kind)
}

/// Decomposes one predict trace along its known span chain:
/// `cluster_predict(route, rpc_call(server_recv(node_predict)))`.
fn predict_hops(agg: &mut HopAgg, root: &TraceNode) -> bool {
    let (Some(rpc), Some(route)) =
        (child_of(root, SpanKind::RpcCall), child_of(root, SpanKind::Route))
    else {
        return false;
    };
    let Some(sr) = child_of(rpc, SpanKind::ServerRecv) else { return false };
    let Some(work) = child_of(sr, SpanKind::NodePredict) else { return false };
    agg.push("p1 route decision", route.span.duration_ns());
    agg.push("p2 wire + serialize", rpc.span.duration_ns().saturating_sub(sr.span.duration_ns()));
    agg.push("p3 server queue wait", sr.span.duration_ns().saturating_sub(work.span.duration_ns()));
    agg.push("p4 node compute", work.span.duration_ns());
    true
}

/// Decomposes one observe trace: `cluster_observe(route,
/// rpc_call(server_recv(node_observe(wal_append, wal_fsync?,
/// ship_replica(server_recv(ship_apply))))))`. The fsync span only exists
/// on appends the WAL policy actually synced.
fn observe_hops(agg: &mut HopAgg, root: &TraceNode) -> bool {
    let Some(rpc) = child_of(root, SpanKind::RpcCall) else { return false };
    let Some(sr) = child_of(rpc, SpanKind::ServerRecv) else { return false };
    let Some(work) = child_of(sr, SpanKind::NodeObserve) else { return false };
    agg.push("o1 wire + serialize", rpc.span.duration_ns().saturating_sub(sr.span.duration_ns()));
    agg.push("o2 server queue wait", sr.span.duration_ns().saturating_sub(work.span.duration_ns()));
    let mut accounted = 0u64;
    if let Some(append) = child_of(work, SpanKind::WalAppend) {
        agg.push("o3 wal append", append.span.duration_ns());
        accounted += append.span.duration_ns();
    }
    if let Some(fsync) = child_of(work, SpanKind::WalFsync) {
        agg.push("o4 wal fsync", fsync.span.duration_ns());
        accounted += fsync.span.duration_ns();
    }
    let Some(ship) = child_of(work, SpanKind::ShipReplica) else { return false };
    accounted += ship.span.duration_ns();
    agg.push("o5 update compute", work.span.duration_ns().saturating_sub(accounted));
    agg.push("o6 replica ack (ship rt)", ship.span.duration_ns());
    if let Some(rsr) = child_of(ship, SpanKind::ServerRecv) {
        agg.push("o7 ship wire", ship.span.duration_ns().saturating_sub(rsr.span.duration_ns()));
        if let Some(apply) = child_of(rsr, SpanKind::ShipApply) {
            agg.push("o8 replica apply", apply.span.duration_ns());
        }
    }
    true
}

/// The traced phase: a separate durable cluster with `sample_all`, every
/// request's span tree decomposed into the per-hop table.
fn hop_breakdown(iters: usize, smoke: bool) {
    let wal_root = std::env::temp_dir().join(format!("velox-net-lat-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);
    std::fs::create_dir_all(&wal_root).expect("wal dir");
    let net = NetCluster::start(NetClusterConfig {
        n_nodes: N_NODES,
        user_replication: 2,
        lr: LR,
        wal_root: Some(wal_root.clone()),
        workers: 8,
        request_timeout: Duration::from_secs(5),
        trace: TraceConfig::sample_all(),
        ..Default::default()
    })
    .expect("start traced cluster");
    net.publish_item_features(seeded_items());
    let tracer = net.tracer();

    let mut agg = HopAgg::default();
    let mut undecomposed = 0usize;
    for i in 0..iters {
        let uid = i as u64 % N_USERS;
        let item = (i as u64 * 7) % N_ITEMS;
        let y = if i % 2 == 0 { 1.0 } else { 0.0 };
        // Collect immediately after each request: the span rings are
        // bounded, so a trace must be read before later ones evict it.
        let ack = net.observe_traced(uid, item, y, None).expect("traced observe");
        let tree = build_tree(&tracer.collect(ack.trace_id.expect("sampled")));
        if !(tree.len() == 1 && observe_hops(&mut agg, &tree[0])) {
            undecomposed += 1;
        }
        let p = net.predict_traced(uid, item, None).expect("traced predict");
        let tree = build_tree(&tracer.collect(p.trace_id.expect("sampled")));
        if !(tree.len() == 1 && predict_hops(&mut agg, &tree[0])) {
            undecomposed += 1;
        }
    }

    print_header(
        "Per-hop latency breakdown from spans (µs; p* = predict hops, o* = observe hops)",
        &["hop", "n", "p50", "p99", "mean", "max"],
    );
    for (row, samples) in &agg.rows {
        summary_row(row, samples);
    }
    println!(
        "\n{} spans recorded, {} dropped, {undecomposed}/{} traces undecomposed",
        tracer.spans_recorded(),
        tracer.spans_dropped(),
        iters * 2
    );
    let _ = std::fs::remove_dir_all(&wal_root);

    if smoke {
        let mut ok = true;
        if undecomposed != 0 {
            eprintln!("SMOKE FAIL: {undecomposed} traces did not match the canonical span chain");
            ok = false;
        }
        for row in
            ["p2 wire + serialize", "p4 node compute", "o3 wal append", "o6 replica ack (ship rt)"]
        {
            let n = agg.rows.get(row).map_or(0, Vec::len);
            if n != iters {
                eprintln!("SMOKE FAIL: hop row '{row}' has {n}/{iters} samples");
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!("smoke: per-hop breakdown gates passed");
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters: usize = if smoke { 2_000 } else { 20_000 };
    let warmup: u64 = 4;

    println!("# NET-LAT: serving latency over real sockets, local vs routed (§3, §8)");
    println!(
        "\n{N_NODES}-node loopback TCP cluster, 2x user replication, {N_USERS} users, \
         {N_ITEMS} items, dim {DIM}, {iters} requests per class"
    );

    // The two backends behind one trait: simulator floor + TCP runtime.
    let sim_cluster = Arc::new(Cluster::new(ClusterConfig {
        n_nodes: N_NODES,
        user_replication: 2,
        item_replication: N_NODES,
        ..Default::default()
    }));
    for (item, x) in seeded_items() {
        sim_cluster.put_item_features(item, x);
    }
    let sim = SimTransport::new(sim_cluster, LR);
    let net = NetCluster::start(NetClusterConfig {
        n_nodes: N_NODES,
        user_replication: 2,
        lr: LR,
        wal_root: None,
        workers: 8,
        request_timeout: Duration::from_secs(5),
        ..Default::default()
    })
    .expect("start loopback cluster");
    net.publish_item_features(seeded_items());

    // Warm every user on both backends so predicts are never cold and the
    // backends stay bit-identical.
    for uid in 0..N_USERS {
        for i in 0..warmup {
            let item = (uid + i) % N_ITEMS;
            let y = if (uid + i) % 3 == 0 { 1.0 } else { 0.0 };
            sim.observe(uid, item, y).expect("sim warm");
            net.observe(uid, item, y).expect("net warm");
        }
    }

    let mut lat_sim = Vec::with_capacity(iters);
    let mut lat_local = Vec::with_capacity(iters);
    let mut lat_routed = Vec::with_capacity(iters);
    let mut lat_observe = Vec::with_capacity(iters);
    let mut served = 0usize;
    let mut forwarded = 0usize;
    let mut mismatches = 0usize;

    for i in 0..iters {
        let uid = i as u64 % N_USERS;
        let item = (i as u64 * 7) % N_ITEMS;
        let owner = net.home_of_user(uid);
        let non_owner = net.client((owner + 1) % N_NODES).expect("live non-owner");

        let mut sim_score = f64::NAN;
        lat_sim.push(timed_us(|| sim_score = sim.predict(uid, item).expect("sim predict").score));

        let mut local_score = f64::NAN;
        lat_routed.push(timed_us(|| {
            match non_owner
                .call(&Request::Predict { uid, item_id: item, no_forward: false, epoch: 0 })
                .expect("routed predict")
            {
                Response::Predicted { score, forwarded: f, .. } => {
                    if f {
                        forwarded += 1;
                    }
                    local_score = score; // checked against the local path below
                }
                other => panic!("unexpected routed reply {other:?}"),
            }
        }));
        let routed_score = local_score;

        lat_local.push(timed_us(|| {
            let p = net.predict(uid, item).expect("local predict");
            local_score = p.score;
        }));
        served += 1;

        // The forwarded hop answers with the owner's exact floats; any
        // divergence from the local path (or the simulator) is a bug.
        if routed_score.to_bits() != local_score.to_bits()
            || sim_score.to_bits() != local_score.to_bits()
        {
            mismatches += 1;
        }

        let y = if i % 2 == 0 { 1.0 } else { 0.0 };
        lat_observe.push(timed_us(|| {
            net.observe(uid, item, y).expect("net observe");
        }));
        // Keep the simulator in lockstep (untimed) so scores stay
        // bit-identical next iteration.
        sim.observe(uid, item, y).expect("sim observe");
    }

    print_header(
        "Wall-clock latency per request class (µs)",
        &["class", "n", "p50", "p99", "mean", "max"],
    );
    summary_row("in-process (sim)", &lat_sim);
    summary_row("net local (1 hop)", &lat_local);
    summary_row("net routed (2 hops)", &lat_routed);
    summary_row("net observe (WAL+ship)", &lat_observe);

    println!("\nserved {served}/{iters} predict pairs; {forwarded} routed replies forwarded");
    println!("score mismatches across sim / local / routed paths: {mismatches}");

    hop_breakdown(if smoke { 400 } else { 4_000 }, smoke);

    if smoke {
        let mut ok = true;
        if served != iters {
            eprintln!("SMOKE FAIL: served {served}/{iters}");
            ok = false;
        }
        if forwarded != iters {
            eprintln!("SMOKE FAIL: only {forwarded}/{iters} mis-addressed requests forwarded");
            ok = false;
        }
        if mismatches != 0 {
            eprintln!("SMOKE FAIL: {mismatches} score mismatches between serving paths");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!("smoke: all gates passed");
    }
}
