//! NET-LAT — predict/observe latency over real sockets, local vs routed.
//!
//! The paper serves predictions "with low latency" over an RPC boundary
//! (§3, §8) and routes each request to the node holding the user's
//! weights. This experiment prices that boundary on a 3-node loopback TCP
//! cluster (`velox-net`): wall-clock p50/p99 for
//!
//! - `in-process`: the simulator behind the same `Transport` trait — the
//!   no-sockets floor;
//! - `net local`: client-side routing straight to the owning node (one
//!   RPC round trip);
//! - `net routed`: a deliberately mis-addressed request that a non-owner
//!   must forward one hop to the owner (two round trips);
//! - `net observe`: an acknowledged online update — WAL append plus
//!   synchronous log shipping to the replica before the ack.
//!
//! `--smoke` runs a smaller workload and exits non-zero unless every
//! request is served and routed answers are bit-identical to local ones —
//! the CI gate for the TCP serving path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use velox_bench::{print_header, print_row};
use velox_cluster::{Cluster, ClusterConfig, SimTransport, Transport};
use velox_linalg::stats::LatencySummary;
use velox_net::{NetCluster, NetClusterConfig, Request, Response};

const N_USERS: u64 = 64;
const N_ITEMS: u64 = 256;
const DIM: usize = 16;
const N_NODES: usize = 3;
const LR: f64 = 0.05;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 17) as f64 / 16.0).collect()
}

fn seeded_items() -> Vec<(u64, Vec<f64>)> {
    (0..N_ITEMS).map(|i| (i, item_features(i))).collect()
}

fn summary_row(name: &str, samples: &[f64]) {
    let s = LatencySummary::from_samples(samples).expect("samples");
    print_row(&[
        name.to_string(),
        s.n.to_string(),
        format!("{:.1}", s.p50),
        format!("{:.1}", s.p99),
        format!("{:.1}", s.mean),
        format!("{:.1}", s.max),
    ]);
}

fn timed_us(f: impl FnOnce()) -> f64 {
    let started = Instant::now();
    f();
    started.elapsed().as_secs_f64() * 1e6
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters: usize = if smoke { 2_000 } else { 20_000 };
    let warmup: u64 = 4;

    println!("# NET-LAT: serving latency over real sockets, local vs routed (§3, §8)");
    println!(
        "\n{N_NODES}-node loopback TCP cluster, 2x user replication, {N_USERS} users, \
         {N_ITEMS} items, dim {DIM}, {iters} requests per class"
    );

    // The two backends behind one trait: simulator floor + TCP runtime.
    let sim_cluster = Arc::new(Cluster::new(ClusterConfig {
        n_nodes: N_NODES,
        user_replication: 2,
        item_replication: N_NODES,
        ..Default::default()
    }));
    for (item, x) in seeded_items() {
        sim_cluster.put_item_features(item, x);
    }
    let sim = SimTransport::new(sim_cluster, LR);
    let net = NetCluster::start(NetClusterConfig {
        n_nodes: N_NODES,
        user_replication: 2,
        lr: LR,
        wal_root: None,
        workers: 8,
        request_timeout: Duration::from_secs(5),
    })
    .expect("start loopback cluster");
    net.publish_item_features(seeded_items());

    // Warm every user on both backends so predicts are never cold and the
    // backends stay bit-identical.
    for uid in 0..N_USERS {
        for i in 0..warmup {
            let item = (uid + i) % N_ITEMS;
            let y = if (uid + i) % 3 == 0 { 1.0 } else { 0.0 };
            sim.observe(uid, item, y).expect("sim warm");
            net.observe(uid, item, y).expect("net warm");
        }
    }

    let mut lat_sim = Vec::with_capacity(iters);
    let mut lat_local = Vec::with_capacity(iters);
    let mut lat_routed = Vec::with_capacity(iters);
    let mut lat_observe = Vec::with_capacity(iters);
    let mut served = 0usize;
    let mut forwarded = 0usize;
    let mut mismatches = 0usize;

    for i in 0..iters {
        let uid = i as u64 % N_USERS;
        let item = (i as u64 * 7) % N_ITEMS;
        let owner = net.home_of_user(uid);
        let non_owner = net.client((owner + 1) % N_NODES).expect("live non-owner");

        let mut sim_score = f64::NAN;
        lat_sim.push(timed_us(|| sim_score = sim.predict(uid, item).expect("sim predict").score));

        let mut local_score = f64::NAN;
        lat_routed.push(timed_us(|| {
            match non_owner
                .call(&Request::Predict { uid, item_id: item, no_forward: false })
                .expect("routed predict")
            {
                Response::Predicted { score, forwarded: f, .. } => {
                    if f {
                        forwarded += 1;
                    }
                    local_score = score; // checked against the local path below
                }
                other => panic!("unexpected routed reply {other:?}"),
            }
        }));
        let routed_score = local_score;

        lat_local.push(timed_us(|| {
            let p = net.predict(uid, item).expect("local predict");
            local_score = p.score;
        }));
        served += 1;

        // The forwarded hop answers with the owner's exact floats; any
        // divergence from the local path (or the simulator) is a bug.
        if routed_score.to_bits() != local_score.to_bits()
            || sim_score.to_bits() != local_score.to_bits()
        {
            mismatches += 1;
        }

        let y = if i % 2 == 0 { 1.0 } else { 0.0 };
        lat_observe.push(timed_us(|| {
            net.observe(uid, item, y).expect("net observe");
        }));
        // Keep the simulator in lockstep (untimed) so scores stay
        // bit-identical next iteration.
        sim.observe(uid, item, y).expect("sim observe");
    }

    print_header(
        "Wall-clock latency per request class (µs)",
        &["class", "n", "p50", "p99", "mean", "max"],
    );
    summary_row("in-process (sim)", &lat_sim);
    summary_row("net local (1 hop)", &lat_local);
    summary_row("net routed (2 hops)", &lat_routed);
    summary_row("net observe (WAL+ship)", &lat_observe);

    println!("\nserved {served}/{iters} predict pairs; {forwarded} routed replies forwarded");
    println!("score mismatches across sim / local / routed paths: {mismatches}");

    if smoke {
        let mut ok = true;
        if served != iters {
            eprintln!("SMOKE FAIL: served {served}/{iters}");
            ok = false;
        }
        if forwarded != iters {
            eprintln!("SMOKE FAIL: only {forwarded}/{iters} mis-addressed requests forwarded");
            ok = false;
        }
        if mismatches != 0 {
            eprintln!("SMOKE FAIL: {mismatches} score mismatches between serving paths");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!("smoke: all gates passed");
    }
}
