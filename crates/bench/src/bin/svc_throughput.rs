//! SVC-THROUGHPUT — the abstract's headline ("low latency, scalable model
//! management and serving") as a system number: sustained request
//! throughput of a deployed Velox under a concurrent mixed workload.
//!
//! Not a figure from the paper (its evaluation reports latency, not
//! throughput), but the number any adopter asks first. Drives T client
//! threads against one deployment — 80% point predictions with Zipfian item
//! popularity, 20% observes — and reports requests/second and scaling
//! across thread counts, for a small and a large model dimension.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use velox_batch::AlsConfig;
use velox_bench::{print_header, print_row, FixtureRng};
use velox_core::{Item, Velox, VeloxConfig};
use velox_data::{WorkloadConfig, ZipfGenerator};
use velox_models::MatrixFactorizationModel;

const N_USERS: u64 = 10_000;
const N_ITEMS: u64 = 5_000;
const RUN: Duration = Duration::from_millis(1500);

fn deploy(d: usize) -> Arc<Velox> {
    let mut rng = FixtureRng::new(0x7410 + d as u64);
    let mut table = HashMap::new();
    for item in 0..N_ITEMS {
        table.insert(item, rng.vector(d));
    }
    let model = MatrixFactorizationModel::from_table(
        "throughput",
        table,
        0.0,
        AlsConfig { rank: d, ..Default::default() },
    )
    .unwrap();
    let mut weights = HashMap::new();
    for uid in 0..N_USERS {
        weights.insert(uid, rng.vector(d));
    }
    Arc::new(Velox::deploy(Arc::new(model), weights, VeloxConfig::default()))
}

fn run(velox: &Arc<Velox>, threads: usize) -> (f64, f64) {
    let stop = Arc::new(AtomicBool::new(false));
    let predicts = Arc::new(AtomicU64::new(0));
    let observes = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..threads {
        let velox = Arc::clone(velox);
        let stop = Arc::clone(&stop);
        let predicts = Arc::clone(&predicts);
        let observes = Arc::clone(&observes);
        handles.push(std::thread::spawn(move || {
            let mut gen = ZipfGenerator::new(WorkloadConfig {
                n_users: N_USERS as usize,
                n_items: N_ITEMS as usize,
                item_skew: 1.0,
                topk_set_size: 1,
                seed: 0x1234 + t as u64,
            });
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (uid, item) = gen.next_point();
                if i % 5 == 4 {
                    velox.observe(uid, &Item::Id(item), 0.5).expect("observe");
                    observes.fetch_add(1, Ordering::Relaxed);
                } else {
                    velox.predict(uid, &Item::Id(item)).expect("predict");
                    predicts.fetch_add(1, Ordering::Relaxed);
                }
                i += 1;
            }
        }));
    }
    let start = Instant::now();
    std::thread::sleep(RUN);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    (predicts.load(Ordering::Relaxed) as f64 / secs, observes.load(Ordering::Relaxed) as f64 / secs)
}

fn main() {
    println!("# SVC-THROUGHPUT: sustained mixed-workload throughput");
    println!("\n{N_USERS} users, {N_ITEMS} items, Zipf(1.0) item popularity,");
    println!("80% predict / 20% observe, {}s measured per cell", RUN.as_secs_f64());

    for &d in &[50usize, 200] {
        let velox = deploy(d);
        print_header(
            &format!("model dimension d = {d}"),
            &["client threads", "predicts/s", "observes/s", "total req/s", "scaling"],
        );
        let mut base = 0.0;
        for &threads in &[1usize, 2, 4, 8] {
            // Warm caches briefly.
            let _ = run(&velox, threads.min(2));
            let (p, o) = run(&velox, threads);
            let total = p + o;
            if threads == 1 {
                base = total;
            }
            print_row(&[
                threads.to_string(),
                format!("{p:.0}"),
                format!("{o:.0}"),
                format!("{total:.0}"),
                format!("{:.1}x", total / base),
            ]);
        }
    }
    println!("\nObserves are the expensive op (O(d²) Sherman–Morrison update under");
    println!("the per-user lock); predicts ride the sharded prediction cache. At");
    println!("small d the quality-tracking mutexes on the observe path bound");
    println!("single-node scaling; at larger d the update math dominates and");
    println!("threads scale. The paper's answer to both is scale-out (more");
    println!("nodes, ByUser routing), which ABL-PART models.");
}
