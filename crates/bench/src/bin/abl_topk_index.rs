//! ABL-TOPK — §8's future work: "more efficient top-K support for our
//! linear modeling tasks".
//!
//! Compares catalog-wide top-K via full scan against the norm-pruned exact
//! MIPS index, across catalog sizes and norm distributions. Reports mean
//! query latency, the fraction of the catalog actually scanned, and
//! verifies exactness on every query.

use velox_bench::{fmt_us, measure, print_header, print_row, FixtureRng};
use velox_linalg::{MipsIndex, Vector};

const DIM: usize = 64;

/// Factor tables with controllable norm spread: `decay = 0` gives equal
/// norms (worst case for pruning), larger decay gives the long-tailed
/// norms of real trained factor tables.
fn build_items(n: usize, decay: f64, seed: u64) -> Vec<(u64, Vector)> {
    let mut rng = FixtureRng::new(seed);
    (0..n as u64)
        .map(|id| {
            let scale = 1.0 / (1.0 + id as f64 * decay);
            let mut v = rng.vector(DIM);
            v.scale(scale);
            (id, v)
        })
        .collect()
}

fn main() {
    println!("# ABL-TOPK: norm-pruned exact MIPS vs full scan (§8 future work)");
    println!("\ndimension {DIM}, top-10 queries, exactness verified per query");

    print_header(
        "Query latency and pruning",
        &["catalog", "norm profile", "full scan", "pruned index", "speedup", "scanned"],
    );
    for &n in &[10_000usize, 50_000, 200_000] {
        for (profile, decay) in [("equal norms", 0.0), ("long-tailed", 1e-3)] {
            let items = build_items(n, decay, 0x70BB + n as u64);
            let index = MipsIndex::build(items).expect("non-empty");
            let mut rng = FixtureRng::new(0x9999);
            let queries: Vec<Vector> = (0..32).map(|_| rng.vector(DIM)).collect();

            // Exactness check on every query before timing.
            let mut scan_fraction = 0.0;
            for q in &queries {
                let (pruned, stats) = index.top_k(q, 10).expect("query");
                let full = index.top_k_full_scan(q, 10).expect("query");
                for (p, f) in pruned.iter().zip(&full) {
                    assert!((p.score - f.score).abs() < 1e-12, "pruning broke exactness");
                }
                scan_fraction += stats.scan_fraction();
            }
            scan_fraction /= queries.len() as f64;

            let mut qi = 0usize;
            let full = measure(2, 30, || {
                index.top_k_full_scan(&queries[qi % queries.len()], 10).expect("query");
                qi += 1;
            });
            let mut qi = 0usize;
            let pruned = measure(2, 30, || {
                index.top_k(&queries[qi % queries.len()], 10).expect("query");
                qi += 1;
            });
            print_row(&[
                n.to_string(),
                profile.into(),
                fmt_us(full.mean),
                fmt_us(pruned.mean),
                format!("{:.1}x", full.mean / pruned.mean),
                format!("{:.1}%", scan_fraction * 100.0),
            ]);
        }
    }
    println!("\nShape check: with long-tailed norms (the shape of real trained factor");
    println!("tables) the pruned index answers exactly while scanning a small slice");
    println!("of the catalog; with equal norms it degrades gracefully to ~full scan.");
}
