//! ABL-PART — §5's partitioning claim: partitioning the user-weight table
//! by uid with request routing "ensures that lookups into W can always be
//! satisfied locally, and it provides a natural load-balancing scheme",
//! with the side effect that "all writes ... are local".
//!
//! Sweep: cluster size N ∈ {2, 4, 8, 16} × routing ∈ {ByUser, RoundRobin}.
//! Drives a mixed predict/observe workload through a deployed Velox and
//! reports the fraction of local reads, the load imbalance, and the mean
//! virtual read cost per request.

use std::collections::HashMap;
use std::sync::Arc;

use velox_batch::AlsConfig;
use velox_bench::{print_header, print_row, FixtureRng};
use velox_cluster::{ClusterConfig, RoutingPolicy};
use velox_core::{Item, Velox, VeloxConfig};
use velox_models::MatrixFactorizationModel;

const N_USERS: u64 = 2000;
const N_ITEMS: u64 = 1000;
const DIM: usize = 32;
const REQUESTS: usize = 50_000;

fn deploy_replicated(n_nodes: usize, routing: RoutingPolicy, replication: usize) -> Velox {
    let mut rng = FixtureRng::new(0xAB22);
    let mut table = HashMap::new();
    for item in 0..N_ITEMS {
        table.insert(item, rng.vector(DIM));
    }
    let model = MatrixFactorizationModel::from_table(
        "part",
        table,
        0.0,
        AlsConfig { rank: DIM, ..Default::default() },
    )
    .unwrap();
    let mut weights = HashMap::new();
    for uid in 0..N_USERS {
        weights.insert(uid, rng.vector(DIM));
    }
    let config = VeloxConfig {
        cluster: ClusterConfig {
            n_nodes,
            routing,
            item_cache_capacity: 64, // small so remote item traffic is visible
            item_replication: replication,
            ..Default::default()
        },
        prediction_cache_capacity: 1, // isolate storage behaviour
        ..Default::default()
    };
    Velox::deploy(Arc::new(model), weights, config)
}

fn deploy(n_nodes: usize, routing: RoutingPolicy) -> Velox {
    deploy_replicated(n_nodes, routing, 1)
}

fn main() {
    println!("# ABL-PART: uid-hash partitioning + routing vs random routing (§5)");
    println!("\n{N_USERS} users, {N_ITEMS} items, {REQUESTS} requests (80% predict / 20% observe)");

    print_header(
        "Locality and balance",
        &[
            "nodes",
            "routing",
            "local read fraction",
            "load imbalance (max/mean)",
            "mean virtual read cost",
        ],
    );
    for &n_nodes in &[2usize, 4, 8, 16] {
        for routing in [RoutingPolicy::ByUser, RoutingPolicy::RoundRobin] {
            let velox = deploy(n_nodes, routing);
            velox.cluster().reset_stats();
            let mut rng = FixtureRng::new(0x77 + n_nodes as u64);
            for i in 0..REQUESTS {
                let uid = (rng.next_f64().abs() * N_USERS as f64) as u64 % N_USERS;
                let item = (rng.next_f64().abs() * N_ITEMS as f64) as u64 % N_ITEMS;
                if i % 5 == 0 {
                    velox.observe(uid, &Item::Id(item), 0.5).expect("observes");
                } else {
                    velox.predict(uid, &Item::Id(item)).expect("serves");
                }
            }
            let stats = velox.cluster().stats();
            let reads: u64 = stats.nodes.iter().map(|n| n.local_reads + n.remote_reads).sum();
            print_row(&[
                n_nodes.to_string(),
                format!("{routing:?}"),
                format!("{:.3}", stats.local_fraction()),
                format!("{:.2}", stats.load_imbalance()),
                format!("{:.1} µs", stats.virtual_read_us / reads as f64),
            ]);
        }
    }
    // Replication sweep (§3/§8: "partitioning and replicating the
    // materialized feature tables"): replicas convert remote item reads
    // into local ones.
    print_header(
        "Item-table replication at 8 nodes, ByUser routing",
        &["replication", "local read fraction", "mean virtual read cost"],
    );
    for replication in [1usize, 2, 4, 8] {
        let velox = deploy_replicated(8, RoutingPolicy::ByUser, replication);
        velox.cluster().reset_stats();
        let mut rng = FixtureRng::new(0xA1 + replication as u64);
        for i in 0..REQUESTS {
            let uid = (rng.next_f64().abs() * N_USERS as f64) as u64 % N_USERS;
            let item = (rng.next_f64().abs() * N_ITEMS as f64) as u64 % N_ITEMS;
            if i % 5 == 0 {
                velox.observe(uid, &Item::Id(item), 0.5).expect("observes");
            } else {
                velox.predict(uid, &Item::Id(item)).expect("serves");
            }
        }
        let stats = velox.cluster().stats();
        let reads: u64 = stats.nodes.iter().map(|n| n.local_reads + n.remote_reads).sum();
        print_row(&[
            format!("{replication}x"),
            format!("{:.3}", stats.local_fraction()),
            format!("{:.1} µs", stats.virtual_read_us / reads as f64),
        ]);
    }

    println!("\nShape check vs. paper: ByUser routing keeps the user-weight half of");
    println!("traffic fully local at every cluster size (only cold item fetches go");
    println!("remote), while RoundRobin degrades toward 1/N locality; both balance");
    println!("load, but only routing preserves the all-writes-local property.");
}
