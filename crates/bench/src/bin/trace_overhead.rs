//! TRACE-OVERHEAD — what end-to-end tracing costs the hot serving path.
//!
//! Tracing is only free to leave on if the instrumented path — span mint,
//! clock reads, the frame-header trace TLV on every RPC, ring writes on
//! both ends — stays within noise of the untraced path. This experiment
//! prices it directly: two identical 3-node loopback TCP clusters, one
//! with tracing off (legacy frames, zero span writes) and one with the
//! production sampling policy (head 1-in-64 plus tail capture, which
//! records spans for *every* request and indexes the slow ones), driven
//! pairwise: each request runs on the untraced cluster and immediately
//! after on the traced one, so clock drift and scheduler noise hit both
//! sides of every pair. The reported overhead is the median of per-pair
//! latency deltas over the median untraced latency — the paired-sample
//! estimator, far tighter than comparing two independent medians because
//! the noise common to a pair cancels inside its delta.
//!
//! `--smoke` runs a smaller workload and gates what tracing actually
//! costs: the **absolute median paired delta** (predict < 1.2 µs,
//! observe < 1.6 µs — roughly 2× the measured ~0.6 / ~0.8 µs, tight
//! enough to catch the +1.3 µs/predict first cut this experiment
//! originally shaved down), plus a loose 10% ratio bound as a sanity
//! check. The gate moved off a pure ratio (originally 5%) deliberately:
//! the delta is what tracing adds and is stable run to run, while the
//! ratio's denominator shifts every time the serving path itself gains
//! or sheds work (the membership layer's epoch stamping alone moved it
//! ~0.5 pp with tracing unchanged) — a ratio gate near its margin
//! measures the rest of the system, not tracing. `--control` runs the
//! "traced" cluster with tracing off too; its overhead should read ~0,
//! which validates the estimator itself (it exposes any ordering bias in
//! the pairing).

use std::time::{Duration, Instant};

use velox_bench::{print_header, print_row};
use velox_cluster::Transport;
use velox_net::{NetCluster, NetClusterConfig};
use velox_obs::TraceConfig;

const N_USERS: u64 = 64;
const N_ITEMS: u64 = 256;
const DIM: usize = 16;
const N_NODES: usize = 3;
const LR: f64 = 0.05;
/// Sanity ceiling on the overhead ratio — far above the measured ~5%,
/// it only trips if tracing becomes a different kind of expensive.
const OVERHEAD_GATE_PCT: f64 = 10.0;
/// Regression gates on the absolute traced delta per class (µs): what
/// one traced request pays over its untraced twin, ~2× current cost.
const PREDICT_DELTA_GATE_US: f64 = 1.2;
const OBSERVE_DELTA_GATE_US: f64 = 1.6;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 17) as f64 / 16.0).collect()
}

fn start_cluster(trace: TraceConfig) -> NetCluster {
    let net = NetCluster::start(NetClusterConfig {
        n_nodes: N_NODES,
        user_replication: 2,
        lr: LR,
        wal_root: None,
        workers: 8,
        request_timeout: Duration::from_secs(5),
        trace,
        ..Default::default()
    })
    .expect("start loopback cluster");
    net.publish_item_features((0..N_ITEMS).map(|i| (i, item_features(i))).collect());
    net
}

/// Per-request latency samples for one class, untraced and traced sides
/// of each pair kept in lockstep so `deltas` can difference them.
#[derive(Default)]
struct Paired {
    untraced: Vec<f64>,
    traced: Vec<f64>,
}

impl Paired {
    fn push(&mut self, untraced_us: f64, traced_us: f64) {
        self.untraced.push(untraced_us);
        self.traced.push(traced_us);
    }

    /// (median untraced µs, median traced µs, median delta µs,
    /// overhead %). The overhead is median(traced − untraced) /
    /// median(untraced): each pair ran back-to-back, so the delta
    /// cancels noise the two sides share.
    fn summarize(&mut self) -> (f64, f64, f64, f64) {
        let mut deltas: Vec<f64> =
            self.untraced.iter().zip(&self.traced).map(|(u, t)| t - u).collect();
        let d = median(&mut deltas);
        let u = median(&mut self.untraced);
        let t = median(&mut self.traced);
        (u, t, d, d / u * 100.0)
    }
}

fn run_pairs(
    untraced: &NetCluster,
    traced: &NetCluster,
    base: usize,
    reqs: usize,
    predict: &mut Paired,
    observe: &mut Paired,
) {
    for i in base..base + reqs {
        let uid = i as u64 % N_USERS;
        let item = (i as u64 * 7) % N_ITEMS;
        let y = if i % 2 == 0 { 1.0 } else { 0.0 };
        let mut p = [0.0f64; 2];
        let mut o = [0.0f64; 2];
        for (k, net) in [untraced, traced].into_iter().enumerate() {
            let started = Instant::now();
            net.predict(uid, item).expect("predict");
            p[k] = started.elapsed().as_secs_f64() * 1e6;
            let started = Instant::now();
            net.observe(uid, item, y).expect("observe");
            o[k] = started.elapsed().as_secs_f64() * 1e6;
        }
        predict.push(p[0], p[1]);
        observe.push(o[0], o[1]);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The smoke sample must be large enough that the median-delta
    // estimator's run-to-run spread stays well inside the gate's margin
    // (~±0.5 pp at 16k pairs vs ~±1 pp at 6k, measured); a too-small
    // sample makes the gate flaky near the boundary, not strict.
    let pairs: usize = if smoke { 16_000 } else { 32_000 };

    println!("# TRACE-OVERHEAD: tracing cost on the hot TCP serving path");
    println!(
        "\n{N_NODES}-node loopback clusters (untraced vs head-1-in-64 + tail capture), \
         {pairs} back-to-back predict+observe pairs"
    );

    let untraced = start_cluster(TraceConfig::off());
    let control = std::env::args().any(|a| a == "--control");
    let traced = start_cluster(if control { TraceConfig::off() } else { TraceConfig::default() });

    // Warm both clusters (weights, socket buffers, branch predictors)
    // before any measured pair.
    let (mut sink_p, mut sink_o) = (Paired::default(), Paired::default());
    run_pairs(&untraced, &traced, 0, pairs / 8, &mut sink_p, &mut sink_o);

    let (mut predict, mut observe) = (Paired::default(), Paired::default());
    run_pairs(&untraced, &traced, 0, pairs, &mut predict, &mut observe);

    let (pb, pt, p_delta, p_pct) = predict.summarize();
    let (ob, ot, o_delta, o_pct) = observe.summarize();

    print_header(
        "Median per-request latency (µs); delta = median paired delta",
        &["class", "untraced", "traced", "delta µs", "overhead %"],
    );
    print_row(&[
        "predict".into(),
        format!("{pb:.2}"),
        format!("{pt:.2}"),
        format!("{p_delta:+.2}"),
        format!("{p_pct:+.2}"),
    ]);
    print_row(&[
        "observe".into(),
        format!("{ob:.2}"),
        format!("{ot:.2}"),
        format!("{o_delta:+.2}"),
        format!("{o_pct:+.2}"),
    ]);

    let tracer = traced.tracer();
    println!(
        "\ntraced cluster: {} spans recorded, {} dropped, {} traces kept",
        tracer.spans_recorded(),
        tracer.spans_dropped(),
        tracer.kept().len()
    );

    if smoke {
        let mut ok = true;
        if p_delta >= PREDICT_DELTA_GATE_US || o_delta >= OBSERVE_DELTA_GATE_US {
            eprintln!(
                "SMOKE FAIL: traced delta predict {p_delta:+.2} µs / observe {o_delta:+.2} µs \
                 (gates {PREDICT_DELTA_GATE_US} / {OBSERVE_DELTA_GATE_US} µs)"
            );
            ok = false;
        }
        if p_pct >= OVERHEAD_GATE_PCT || o_pct >= OVERHEAD_GATE_PCT {
            eprintln!(
                "SMOKE FAIL: tracing overhead predict {p_pct:+.2}% / observe {o_pct:+.2}% \
                 (sanity bound {OVERHEAD_GATE_PCT}%)"
            );
            ok = false;
        }
        if !control && tracer.spans_recorded() == 0 {
            eprintln!("SMOKE FAIL: traced cluster recorded no spans — the comparison is vacuous");
            ok = false;
        }
        if !control && tracer.kept().is_empty() {
            eprintln!("SMOKE FAIL: head sampling kept no traces over the whole run");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "smoke: traced deltas within gates \
             ({PREDICT_DELTA_GATE_US} µs predict / {OBSERVE_DELTA_GATE_US} µs observe, \
             {OVERHEAD_GATE_PCT}% sanity bound)"
        );
    }
}
