//! ABL-BANDIT — §5's feedback-loop claim: "a music recommendation service
//! that only plays the current Top40 songs will never receive feedback from
//! users indicating that other songs are preferable. To escape these
//! feedback loops we rely on a form of the contextual bandits algorithm."
//!
//! Full serving-loop simulation through the Velox topK API: a population of
//! users with planted preferences, four serving policies, 40k serve/observe
//! rounds each. Reports cumulative regret (vs. the oracle serve) and
//! catalog coverage. Expected shape: greedy locks onto early favourites
//! (low coverage, linear regret); LinUCB/Thompson explore and converge.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use velox_bench::{print_header, print_row};
use velox_core::config::BanditChoice;
use velox_core::{Item, Velox, VeloxConfig};
use velox_linalg::Vector;
use velox_models::IdentityModel;

const N_USERS: u64 = 100;
const N_ITEMS: u64 = 60;
const DIM: usize = 8;
const ROUNDS: usize = 40_000;
const CANDIDATES: usize = 30;

fn item_attrs(item: u64) -> Vec<f64> {
    (0..DIM).map(|k| ((item as f64 + 1.0) * (k as f64 + 1.3) * 0.61).sin()).collect()
}

fn user_pref(uid: u64) -> Vector {
    Vector::from_vec(
        (0..DIM).map(|k| ((uid as f64 + 2.0) * (k as f64 + 0.7) * 0.39).cos() * 0.5).collect(),
    )
}

fn reward(uid: u64, item: u64) -> f64 {
    user_pref(uid).dot(&Vector::from_vec(item_attrs(item))).unwrap()
}

struct Outcome {
    policy: &'static str,
    regret: f64,
    coverage: usize,
    final_quarter_regret: f64,
}

fn run(policy_name: &'static str, bandit: BanditChoice) -> Outcome {
    let model = IdentityModel::new("bandit", DIM, 1.0);
    let mut config = VeloxConfig::single_node();
    config.bandit = bandit;
    config.seed = 0xBA0D17;
    let velox = Arc::new(Velox::deploy(Arc::new(model), HashMap::new(), config));
    for item in 0..N_ITEMS {
        velox.register_item(item, item_attrs(item));
    }

    // Noise stream, deterministic.
    let mut nstate = 0x5015Eu64;
    let mut noise = move || {
        nstate ^= nstate << 13;
        nstate ^= nstate >> 7;
        nstate ^= nstate << 17;
        ((nstate >> 11) as f64 / (1u64 << 52) as f64 - 1.0) * 0.15
    };

    let mut regret = 0.0;
    let mut final_quarter_regret = 0.0;
    let mut shown: HashSet<u64> = HashSet::new();
    for round in 0..ROUNDS {
        let uid = (round as u64 * 13) % N_USERS;
        // Candidate set: a deterministic rotating window of the catalog.
        let base = (round as u64 * 7) % N_ITEMS;
        let items: Vec<Item> =
            (0..CANDIDATES as u64).map(|i| Item::Id((base + i) % N_ITEMS)).collect();
        let resp = velox.top_k(uid, &items).expect("serves");
        let served = items[resp.served].id().unwrap();
        shown.insert(served);
        let best =
            items.iter().map(|it| reward(uid, it.id().unwrap())).fold(f64::NEG_INFINITY, f64::max);
        let r = best - reward(uid, served);
        regret += r;
        if round >= ROUNDS * 3 / 4 {
            final_quarter_regret += r;
        }
        velox.observe(uid, &items[resp.served], reward(uid, served) + noise()).expect("observes");
    }
    Outcome { policy: policy_name, regret, coverage: shown.len(), final_quarter_regret }
}

fn main() {
    println!("# ABL-BANDIT: serving policies vs the feedback loop (§5)");
    println!("\n{N_USERS} users, {N_ITEMS} items, {ROUNDS} serve/observe rounds, {CANDIDATES}-item candidate sets");

    let outcomes = vec![
        run("greedy", BanditChoice::Greedy),
        run("epsilon-greedy(0.1)", BanditChoice::EpsilonGreedy(0.1)),
        run("linucb(1.5)", BanditChoice::LinUcb(1.5)),
        run("thompson(1.0)", BanditChoice::Thompson(1.0)),
    ];

    print_header(
        "Cumulative regret and catalog coverage",
        &[
            "policy",
            "total regret",
            "mean regret/round",
            "last-quarter regret/round",
            "catalog coverage",
        ],
    );
    for o in &outcomes {
        print_row(&[
            o.policy.into(),
            format!("{:.0}", o.regret),
            format!("{:.4}", o.regret / ROUNDS as f64),
            format!("{:.4}", o.final_quarter_regret / (ROUNDS / 4) as f64),
            format!("{}/{}", o.coverage, N_ITEMS),
        ]);
    }
    let greedy = &outcomes[0];
    let linucb = &outcomes[2];
    println!(
        "\nlinucb total regret is {:.1}% of greedy's; its last-quarter per-round regret",
        linucb.regret / greedy.regret * 100.0
    );
    println!("shows whether learning has converged (flat ⇒ sublinear regret).");
    println!("\nShape check vs. paper: greedy exhibits the Top-40 feedback loop (low");
    println!("coverage, persistent regret); the bandit policies explore the catalog");
    println!("and their regret flattens.");
}
