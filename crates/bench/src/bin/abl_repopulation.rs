//! ABL-REPOP — §4.2's cache-repopulation strategy: "the offline phase ...
//! invalidates both prediction and feature caches. To alleviate some of the
//! performance degradation ... the batch analytics system also computes all
//! predictions and feature transformations that were cached at the time the
//! batch computation was triggered. These are used to repopulate the caches
//! when switching to the newly trained model."
//!
//! Measures the prediction-cache hit rate on the first post-swap traffic
//! window, with repopulation (Velox's retrain path) vs. a plain cold swap
//! (rollback's path, which restores versions but does not repopulate).
//! Expected shape: repopulated swaps keep most of the hit rate for the
//! still-hot working set; cold swaps pay a full miss storm.

use std::sync::Arc;

use velox_batch::{AlsConfig, AlsModel, JobExecutor};
use velox_bench::{print_header, print_row};
use velox_core::{Item, TrainingExample, Velox, VeloxConfig};
use velox_data::{RatingsDataset, SyntheticConfig, WorkloadConfig, ZipfGenerator};
use velox_models::MatrixFactorizationModel;

const N_USERS: usize = 50;
const N_ITEMS: usize = 200;
const WINDOW: usize = 5_000;

fn hit_rate_over_window(velox: &Velox, gen: &mut ZipfGenerator) -> f64 {
    let before = velox.stats().prediction_cache;
    for _ in 0..WINDOW {
        let (uid, item) = gen.next_point();
        velox.predict(uid, &Item::Id(item)).expect("serves");
    }
    let after = velox.stats().prediction_cache;
    let hits = after.0 - before.0;
    let misses = after.1 - before.1;
    hits as f64 / (hits + misses) as f64
}

fn main() {
    println!("# ABL-REPOP: prediction-cache repopulation at version swaps (§4.2)");
    println!("\n{N_USERS} users x {N_ITEMS} items, Zipf(1.1) traffic, {WINDOW}-request windows");

    let ds = RatingsDataset::generate(SyntheticConfig {
        n_users: N_USERS,
        n_items: N_ITEMS,
        rank: 8,
        ratings_per_user: 20,
        popularity_skew: 1.1,
        seed: 0x4E90,
        ..Default::default()
    });
    let executor = JobExecutor::default_parallelism();
    let als = AlsModel::train(
        &ds.ratings,
        N_USERS,
        N_ITEMS,
        AlsConfig { rank: 8, lambda: 0.05, iterations: 6, seed: 1 },
        &executor,
    );
    let mu = als.global_mean;
    let (model, weights) = MatrixFactorizationModel::from_als("repop", &als);
    // Cache sized to hold the whole working set, so the steady-state hit
    // rate is high and swap effects are visible.
    let mut config = VeloxConfig::single_node();
    config.prediction_cache_capacity = 64 * 1024;
    let velox = Arc::new(Velox::deploy(Arc::new(model), weights, config));
    // History so retrains have data.
    let history: Vec<TrainingExample> = ds
        .ratings
        .iter()
        .map(|r| TrainingExample { uid: r.uid, item: Item::Id(r.item_id), y: r.value - mu })
        .collect();
    velox.ingest_history(&history).unwrap();

    let mut gen = ZipfGenerator::new(WorkloadConfig {
        n_users: N_USERS,
        n_items: N_ITEMS,
        item_skew: 1.1,
        topk_set_size: 1,
        seed: 0x99,
    });

    print_header(
        "Prediction-cache hit rate in the first post-event window",
        &["event", "hit rate", "notes"],
    );

    // Steady state (several warm windows so the working set is resident).
    for _ in 0..6 {
        let _ = hit_rate_over_window(&velox, &mut gen);
    }
    let steady = hit_rate_over_window(&velox, &mut gen);
    print_row(&["steady state".into(), format!("{steady:.3}"), "warm working set".into()]);

    // Retrain → repopulated swap.
    velox.retrain_offline().unwrap();
    let repop = hit_rate_over_window(&velox, &mut gen);
    print_row(&[
        "retrain (repopulated swap)".into(),
        format!("{repop:.3}"),
        "hot keys recomputed under the new model at swap time".into(),
    ]);
    for _ in 0..6 {
        let _ = hit_rate_over_window(&velox, &mut gen); // re-warm
    }

    // Rollback → cold swap (restores versions but does not repopulate).
    let targets = velox.rollback_versions();
    velox.rollback(*targets.last().unwrap()).unwrap();
    let cold = hit_rate_over_window(&velox, &mut gen);
    print_row(&[
        "rollback (cold swap)".into(),
        format!("{cold:.3}"),
        "full miss storm while the cache refills".into(),
    ]);

    println!("\nShape check vs. paper: repopulation preserves most of the steady-state");
    println!(
        "hit rate across a version swap ({:.0}% of steady vs {:.0}% for a cold",
        repop / steady * 100.0,
        cold / steady * 100.0
    );
    println!("swap), which is exactly why §4.2 has the batch job recompute the cached");
    println!("entries it is about to invalidate.");
}
