//! CHAOS-NET — serving availability and tail latency through network
//! faults, on the real-socket backend.
//!
//! The paper's serving tier must stay available and lose no acknowledged
//! update while the network misbehaves (§3, §8). This experiment drives
//! one 3-node loopback TCP cluster (`velox-net`) through five phases of
//! deterministic, seeded link chaos (`LinkChaos`):
//!
//! - `baseline`: clean links — the floor for availability and latency;
//! - `flaky 2% drop`: every front → node link drops 2% of request
//!   frames; budgeted retries must absorb the loss;
//! - `partition replica link`: the owner → replica ship link is cut; the
//!   owner keeps acking (degraded, `shipped_to = 0`) while records queue
//!   in its bounded ship backlog, then the link heals and the backlog
//!   drains;
//! - `slow link + hedging`: injected delays push the primary past the
//!   p99-derived hedge delay, so predicts race a replica and the hedge's
//!   answer wins the tail back;
//! - `finale`: duplicated frames (exactly-once via the observation-id
//!   dedupe window), then the owner is killed *and loses its disk*; the
//!   cluster serves through the outage and the reborn owner recovers
//!   every acknowledged record from its replica's shipped log.
//!
//! `--smoke` runs shorter phases and exits non-zero unless: predict
//! availability ≥ 99.9% in every phase, zero acknowledged observations
//! lost through the kill + recovery, the dedupe window absorbed at least
//! one duplicate, and the backlog drained to zero after heal.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use velox_bench::{print_header, print_row};
use velox_cluster::transport::Transport;
use velox_cluster::{ChaosControl, LinkFaultPlan, RetryPolicy};
use velox_linalg::stats::LatencySummary;
use velox_net::{NetClientConfig, NetCluster, NetClusterConfig, Request, Response};
use velox_storage::ScratchDir;

const N_USERS: u64 = 32;
const N_ITEMS: u64 = 64;
const DIM: usize = 8;
const N_NODES: usize = 3;
const LR: f64 = 0.05;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 17) as f64 / 16.0).collect()
}

/// One phase's availability + latency ledger.
#[derive(Default)]
struct Ledger {
    predict_us: Vec<f64>,
    predict_errors: u64,
    observe_us: Vec<f64>,
    observe_errors: u64,
}

impl Ledger {
    fn predict(&mut self, net: &NetCluster, uid: u64, item: u64) {
        let t = Instant::now();
        match net.predict(uid, item) {
            Ok(_) => self.predict_us.push(t.elapsed().as_secs_f64() * 1e6),
            Err(_) => self.predict_errors += 1,
        }
    }

    fn observe(&mut self, net: &NetCluster, acked: &mut Vec<(u64, u64)>, uid: u64, item: u64) {
        let t = Instant::now();
        match net.observe(uid, item, if (uid + item).is_multiple_of(2) { 1.0 } else { 0.0 }) {
            Ok(ack) => {
                self.observe_us.push(t.elapsed().as_secs_f64() * 1e6);
                acked.push((uid, ack.ts));
            }
            Err(_) => self.observe_errors += 1,
        }
    }

    fn availability(&self) -> f64 {
        let ok = (self.predict_us.len() + self.observe_us.len()) as f64;
        let all = ok + (self.predict_errors + self.observe_errors) as f64;
        if all == 0.0 {
            1.0
        } else {
            ok / all
        }
    }

    fn row(&self, phase: &str) {
        let p = LatencySummary::from_samples(&self.predict_us);
        let (p50, p99) = p.map(|s| (s.p50, s.p99)).unwrap_or((0.0, 0.0));
        print_row(&[
            phase.to_string(),
            format!("{}", self.predict_us.len() + self.observe_us.len()),
            format!("{}", self.predict_errors + self.observe_errors),
            format!("{:.4}%", self.availability() * 100.0),
            format!("{p50:.0}"),
            format!("{p99:.0}"),
        ]);
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 1 } else { 5 };
    let partition_for = Duration::from_secs(if smoke { 2 } else { 10 });

    println!("# CHAOS-NET: availability and zero acked loss through link faults (§3, §8)");
    println!(
        "\n{N_NODES}-node loopback TCP cluster, 2x user replication, {N_USERS} users, \
         {N_ITEMS} items, dim {DIM}; deterministic seeded chaos"
    );

    let scratch = ScratchDir::new("velox-chaos-net");
    let net = NetCluster::start(NetClusterConfig {
        n_nodes: N_NODES,
        user_replication: 2,
        lr: LR,
        wal_root: Some(scratch.path().to_path_buf()),
        workers: 8,
        request_timeout: Duration::from_secs(2),
        heartbeat_interval: Some(Duration::from_millis(20)),
        hedge_predicts: true,
        client: NetClientConfig {
            per_try_timeout: Some(Duration::from_millis(100)),
            retry: RetryPolicy {
                max_attempts: 4,
                backoff_base: Duration::from_millis(20),
                backoff_max: Duration::from_millis(60),
                jitter: 0.2,
            },
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("start loopback cluster");
    net.publish_item_features((0..N_ITEMS).map(|i| (i, item_features(i))).collect());

    // Every acknowledged observation: (uid, ts). The finale proves each
    // one survives the owner losing its disk.
    let mut acked: Vec<(u64, u64)> = Vec::new();
    let victim_uid = 4u64;
    let victim = net.home_of_user(victim_uid);
    let replica = net.replica_nodes_of_user(victim_uid)[1];

    print_header(
        "Availability and predict latency per phase",
        &["phase", "ok", "errors", "availability", "predict p50 µs", "predict p99 µs"],
    );

    // -- Phase 1: baseline ------------------------------------------------
    let mut base = Ledger::default();
    for i in 0..(100 * scale) as u64 {
        base.observe(&net, &mut acked, i % N_USERS, i % N_ITEMS);
        base.predict(&net, i % N_USERS, (i * 3) % N_ITEMS);
    }
    base.row("baseline");

    // -- Phase 2: flaky link, 2% request drop -----------------------------
    net.install_link_faults(LinkFaultPlan { drop_prob: 0.02, seed: 0xF1A2, ..Default::default() });
    let mut flaky = Ledger::default();
    for i in 0..(100 * scale) as u64 {
        flaky.observe(&net, &mut acked, i % N_USERS, i % N_ITEMS);
        flaky.predict(&net, i % N_USERS, (i * 3) % N_ITEMS);
    }
    net.clear_link_faults();
    let drops = net.link_chaos().counters().drops.get();
    flaky.row("flaky 2% drop");

    // -- Phase 3: partition the owner → replica ship link -----------------
    net.link_chaos().partition(victim as u32, replica as u32);
    let mut part = Ledger::default();
    let partition_started = Instant::now();
    let mut i = 0u64;
    while partition_started.elapsed() < partition_for {
        part.observe(&net, &mut acked, victim_uid, i % N_ITEMS);
        part.predict(&net, victim_uid, (i * 3) % N_ITEMS);
        i += 1;
    }
    let queued = net.node_state(victim).map(|s| s.ship_backlog_len()).unwrap_or(0);
    net.link_chaos().heal(victim as u32, replica as u32);
    // The next observe settles the backlog before its own ship.
    part.observe(&net, &mut acked, victim_uid, 0);
    let after_heal = net.node_state(victim).map(|s| s.ship_backlog_len()).unwrap_or(usize::MAX);
    let caught_up = net.node_metrics(victim).ship_catch_up_records.get();
    part.row("partition+heal");
    println!(
        "\npartition: {queued} records queued at owner, {caught_up} caught up on heal, \
         {after_heal} left in backlog"
    );

    // -- Phase 4: slow link; hedged predicts win the tail back ------------
    net.install_link_faults(LinkFaultPlan {
        delay_prob: 0.3,
        delay_us: 5_000,
        seed: 0x51011,
        ..Default::default()
    });
    let mut slow = Ledger::default();
    for i in 0..(60 * scale) as u64 {
        slow.predict(&net, i % N_USERS, (i * 3) % N_ITEMS);
    }
    net.clear_link_faults();
    let (hedged, hedge_wins) = net.hedge_counts();
    slow.row("slow link+hedge");
    println!("\nhedging: {hedged} predicts hedged, {hedge_wins} hedge wins");

    // -- Phase 5 (finale): duplication, then owner kill + disk loss -------
    net.install_link_faults(LinkFaultPlan {
        dup_prob: 0.3,
        drop_prob: 0.05,
        seed: 0xD0B1,
        ..Default::default()
    });
    let mut finale = Ledger::default();
    for i in 0..(40 * scale) as u64 {
        finale.observe(&net, &mut acked, victim_uid, i % N_ITEMS);
    }
    net.clear_link_faults();
    let dedupe_hits: u64 = (0..N_NODES).map(|n| net.node_metrics(n).duplicate_observes.get()).sum();

    net.kill_node_lose_disk(victim);
    for i in 0..(20 * scale) as u64 {
        finale.predict(&net, victim_uid, (i * 3) % N_ITEMS);
        finale.observe(&net, &mut acked, victim_uid, i % N_ITEMS);
    }
    let pulled = net.recover_node(victim).expect("recovery");
    finale.predict(&net, victim_uid, 1);
    finale.row("dup+kill+recover");
    println!("\nfinale: {dedupe_hits} duplicates absorbed by dedupe, {pulled} records re-pulled");

    // Zero acked loss: every acknowledged (uid, ts) with the victim as
    // home must be in the reborn owner's log; and no ts twice.
    let client = net.client(victim).expect("reborn owner client");
    let mut have: HashMap<u64, HashSet<u64>> = HashMap::new();
    let mut lost = 0u64;
    let mut doubled = 0u64;
    match client.call(&Request::PullLog { from_ts: 0 }).expect("pull log") {
        Response::Log { records } => {
            let mut seen = HashSet::new();
            for r in &records {
                if !seen.insert((r.uid, r.timestamp)) {
                    doubled += 1;
                }
                have.entry(r.uid).or_default().insert(r.timestamp);
            }
        }
        other => panic!("unexpected reply {other:?}"),
    }
    for (uid, ts) in &acked {
        if net.home_of_user(*uid) != victim {
            continue;
        }
        if !have.get(uid).is_some_and(|s| s.contains(ts)) {
            lost += 1;
        }
    }
    let acked_at_victim = acked.iter().filter(|(u, _)| net.home_of_user(*u) == victim).count();
    println!(
        "zero-acked-loss: {acked_at_victim} acked at victim, {lost} lost, {doubled} applied twice"
    );

    net.shutdown();

    if smoke {
        let mut failures: Vec<String> = Vec::new();
        for (phase, l) in [
            ("baseline", &base),
            ("flaky", &flaky),
            ("partition", &part),
            ("slow", &slow),
            ("finale", &finale),
        ] {
            if l.availability() < 0.999 {
                failures.push(format!(
                    "{phase}: availability {:.4}% < 99.9%",
                    l.availability() * 100.0
                ));
            }
        }
        if drops == 0 {
            failures.push("flaky phase never dropped a frame (adversary absent)".into());
        }
        if queued == 0 {
            failures.push("partition phase never queued a record".into());
        }
        if after_heal != 0 {
            failures.push(format!("{after_heal} records stuck in backlog after heal"));
        }
        if dedupe_hits == 0 {
            failures.push("no duplicate was absorbed by the dedupe window".into());
        }
        if lost > 0 {
            failures.push(format!("{lost} acknowledged observations lost"));
        }
        if doubled > 0 {
            failures.push(format!("{doubled} records applied twice"));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("smoke FAIL: {f}");
            }
            std::process::exit(1);
        }
        println!("\nsmoke: all chaos-net gates passed");
    }
}
