//! FIG3 — Figure 3 of the paper: "Update latency vs model complexity".
//!
//! Paper setup: "Average time to perform an online update to a user model
//! as a function of the number of factors in the model. The results are
//! averaged over 5000 updates of randomly selected users and items from the
//! MovieLens 10M rating data set. Error bars represent 95% confidence
//! intervals." The paper's prototype uses the *naive* normal-equations
//! implementation; its curve rises superlinearly to ~1.5 s at d = 1000.
//!
//! Here: the same protocol on the synthetic MovieLens substitute, with both
//! the naive strategy (the paper's measured curve) and the Sherman–Morrison
//! strategy (the optimization the paper says brings updates to O(d²)).
//! Trial counts adapt to dimension so the full sweep stays tractable; CIs
//! are still reported per point.

use velox_bench::{adaptive_trials, fmt_us, print_header, print_row, FixtureRng};
use velox_linalg::stats::RunningStats;
use velox_online::{UpdateStrategy, UserOnlineModel};

/// Updates per user before rotating to a fresh user (the paper draws 5000
/// random user/item pairs; per-user history length stays MovieLens-like).
const OBS_PER_USER: usize = 20;

fn run_strategy(d: usize, strategy: UpdateStrategy, target_updates: usize) -> RunningStats {
    let mut rng = FixtureRng::new(0xF163 + d as u64);
    // Pre-generate item feature vectors (the paper's random items).
    let items: Vec<velox_linalg::Vector> = (0..256).map(|_| rng.vector(d)).collect();
    let mut stats = RunningStats::new();
    let mut done = 0;
    while done < target_updates {
        let mut user = UserOnlineModel::new(d, 1.0, strategy);
        for k in 0..OBS_PER_USER.min(target_updates - done) {
            let x = &items[(done + k * 31) % items.len()];
            let y = rng.next_f64();
            let start = std::time::Instant::now();
            user.observe(x, y).expect("update succeeds");
            stats.push(start.elapsed().as_secs_f64() * 1e6);
        }
        done += OBS_PER_USER;
    }
    stats
}

fn main() {
    println!("# FIG3: online update latency vs. model dimension");
    println!("\nPaper reference (Figure 3): naive updates averaged over 5000 updates,");
    println!("rising superlinearly to ~1.5 s at d=1000 on the authors' testbed.");

    let dims = [10usize, 25, 50, 100, 200, 400, 600, 800, 1000];
    print_header(
        "Measured (this implementation)",
        &[
            "d",
            "naive mean",
            "naive 95% CI",
            "sherman-morrison mean",
            "SM 95% CI",
            "naive/SM ratio",
            "updates",
        ],
    );
    for &d in &dims {
        // Naive updates are O(d³); budget ~2e9 flop-equivalents per point.
        let naive_updates = adaptive_trials((d as f64).powi(3), 5e9, 30, 5000);
        let sm_updates = adaptive_trials((d as f64).powi(2), 5e8, 100, 5000);
        let naive = run_strategy(d, UpdateStrategy::Naive, naive_updates);
        let sm = run_strategy(d, UpdateStrategy::ShermanMorrison, sm_updates);
        print_row(&[
            d.to_string(),
            fmt_us(naive.mean()),
            format!("± {}", fmt_us(naive.ci95_half_width())),
            fmt_us(sm.mean()),
            format!("± {}", fmt_us(sm.ci95_half_width())),
            format!("{:.1}x", naive.mean() / sm.mean().max(1e-9)),
            format!("{}/{}", naive.count(), sm.count()),
        ]);
    }
    println!("\nShape check vs. paper: the naive curve grows superlinearly in d");
    println!("(O(d³) solve per update) and stays sub-second through d=1000 in Rust;");
    println!("Sherman–Morrison grows ~quadratically, separating further as d rises.");
}
