//! ABL-SM — §4.2's complexity claim: the online update "has cubic time
//! complexity in the feature dimension d ... \[but\] can be maintained in
//! time quadratic in d using the Sherman–Morrison formula for rank-one
//! updates."
//!
//! Measures per-update latency for both strategies across d, fits the
//! empirical growth exponents, and reports the speedup. Complements FIG3
//! (which reports the paper's exact protocol) with the scaling analysis.

use velox_bench::{adaptive_trials, fmt_us, print_header, print_row, FixtureRng};
use velox_linalg::stats::RunningStats;
use velox_online::{UpdateStrategy, UserOnlineModel};

fn mean_update_us(d: usize, strategy: UpdateStrategy, updates: usize) -> f64 {
    let mut rng = FixtureRng::new(0xAB15 + d as u64);
    let items: Vec<velox_linalg::Vector> = (0..128).map(|_| rng.vector(d)).collect();
    let mut stats = RunningStats::new();
    let mut model = UserOnlineModel::new(d, 1.0, strategy);
    for k in 0..updates {
        if k % 32 == 0 {
            model = UserOnlineModel::new(d, 1.0, strategy);
        }
        let x = &items[k % items.len()];
        let start = std::time::Instant::now();
        model.observe(x, 0.25).expect("update succeeds");
        stats.push(start.elapsed().as_secs_f64() * 1e6);
    }
    stats.mean()
}

/// Least-squares slope of log(y) on log(x): the empirical growth exponent.
fn growth_exponent(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn main() {
    println!("# ABL-SM: naive O(d³) vs Sherman–Morrison O(d²) online updates (§4.2)");

    let dims = [50usize, 100, 200, 400, 800];
    let mut naive_pts = Vec::new();
    let mut sm_pts = Vec::new();

    print_header("Per-update latency", &["d", "naive", "sherman-morrison", "speedup"]);
    for &d in &dims {
        let naive_updates = adaptive_trials((d as f64).powi(3), 4e9, 30, 2000);
        let sm_updates = adaptive_trials((d as f64).powi(2), 4e8, 100, 4000);
        let naive = mean_update_us(d, UpdateStrategy::Naive, naive_updates);
        let sm = mean_update_us(d, UpdateStrategy::ShermanMorrison, sm_updates);
        naive_pts.push((d as f64, naive));
        sm_pts.push((d as f64, sm));
        print_row(&[d.to_string(), fmt_us(naive), fmt_us(sm), format!("{:.1}x", naive / sm)]);
    }

    // Fit exponents over the upper half of the sweep where fixed overheads
    // are negligible.
    let k_naive = growth_exponent(&naive_pts[1..]);
    let k_sm = growth_exponent(&sm_pts[1..]);
    println!("\nempirical growth exponents: naive d^{k_naive:.2} (theory 3), sherman-morrison d^{k_sm:.2} (theory 2)");
    println!("\nShape check vs. paper: the naive strategy's exponent is ~3, the");
    println!("incremental strategy's ~2, and the gap widens with d exactly as the");
    println!("paper's complexity argument predicts.");
}
