//! ABL-CACHE — §5's caching claim: "item popularity often follows a
//! Zipfian distribution ... caching the hot items on each machine using a
//! simple cache eviction strategy like LRU will tend to have a high hit
//! rate."
//!
//! Sweep: Zipf skew s ∈ {0.6, 0.8, 1.0, 1.2} × LRU capacity ∈ {1%, 5%, 10%}
//! of a 100k-item catalog. Reports the LRU hit rate on a 500k-request
//! stream and the mean per-request read cost under the cluster's virtual
//! cost model (local 1 µs, remote 300 µs), versus the no-cache baseline.

use velox_bench::{print_header, print_row};
use velox_data::{WorkloadConfig, ZipfGenerator};
use velox_storage::LruCache;

const CATALOG: usize = 100_000;
const REQUESTS: usize = 500_000;
const LOCAL_US: f64 = 1.0;
const REMOTE_US: f64 = 300.0;

fn main() {
    println!("# ABL-CACHE: LRU hit rate under Zipfian item popularity (§5)");
    println!("\ncatalog {CATALOG} items, {REQUESTS} requests, remote read {REMOTE_US} µs vs local {LOCAL_US} µs");

    print_header(
        "Hit rate and mean read cost",
        &["zipf s", "LRU capacity", "hit rate", "mean read cost", "vs no-cache (300 µs)"],
    );
    for &skew in &[0.6f64, 0.8, 1.0, 1.2] {
        for &cap_pct in &[1usize, 5, 10] {
            let capacity = CATALOG * cap_pct / 100;
            let mut gen = ZipfGenerator::new(WorkloadConfig {
                n_users: 1,
                n_items: CATALOG,
                item_skew: skew,
                topk_set_size: 1,
                seed: 0xCAFE + (skew * 10.0) as u64,
            });
            let mut cache: LruCache<u64, ()> = LruCache::new(capacity);
            let mut cost = 0.0;
            for _ in 0..REQUESTS {
                let item = gen.next_item();
                if cache.get(&item).is_some() {
                    cost += LOCAL_US;
                } else {
                    cost += REMOTE_US;
                    cache.put(item, ());
                }
            }
            let (hits, misses, _) = cache.stats();
            let hit_rate = hits as f64 / (hits + misses) as f64;
            let mean_cost = cost / REQUESTS as f64;
            print_row(&[
                format!("{skew:.1}"),
                format!("{cap_pct}%"),
                format!("{hit_rate:.3}"),
                format!("{mean_cost:.1} µs"),
                format!("{:.1}x cheaper", REMOTE_US / mean_cost),
            ]);
        }
    }
    println!("\nShape check vs. paper: hit rate rises steeply with skew; at s ≥ 1.0 a");
    println!("cache holding a few percent of the catalog already absorbs most reads,");
    println!("which is the premise of Velox's per-node hot-item feature caches.");
}
