//! TAB-ACC — the §4.2 in-text accuracy experiment.
//!
//! Paper protocol, verbatim: "We first used offline training to initialize
//! the feature parameters θ on half of the data and then evaluated the
//! prediction error of the proposed strategy on the remaining data. By
//! using the Velox's incremental online updates to train on 70% of the
//! remaining data, we were able to achieve a held out prediction error
//! that is only slightly worse than complete retraining." Headline numbers:
//! +1.6% accuracy from the online strategy vs. +2.3% from full offline
//! retraining — online recovers ≈70% of the full-retrain gain.
//!
//! Here: the same protocol at MovieLens-10M-like *shape* (item-dense:
//! hundreds of ratings per item, so θ is well-estimated offline) on the
//! synthetic planted-factor substitute, comparing three strategies on
//! held-out RMSE: static, online (Velox hybrid), full retrain.

use std::collections::HashMap;
use std::sync::Arc;

use velox_batch::{AlsConfig, AlsModel, JobExecutor};
use velox_bench::{print_header, print_row};
use velox_core::{Item, TrainingExample, Velox, VeloxConfig};
use velox_data::{three_way_split, RatingsDataset, SyntheticConfig};
use velox_models::MatrixFactorizationModel;

fn main() {
    println!("# TAB-ACC: hybrid online+offline accuracy (§4.2)");
    println!("\nPaper reference: online +1.6% vs full retrain +2.3% over static");
    println!("(online recovers ~70% of the full-retrain improvement).");

    let ds = RatingsDataset::generate(SyntheticConfig {
        n_users: 4000,
        n_items: 250,
        rank: 10,
        ratings_per_user: 34, // 17 post-offline ratings/user, like the paper's 10+7 regime
        noise_std: 0.3,
        seed: 0xACC,
        ..Default::default()
    });
    let split = three_way_split(&ds, 0.5, 0.7);
    println!(
        "\ndataset: {} users x {} items, {} ratings ({} offline / {} online / {} held out)",
        ds.config.n_users,
        ds.config.n_items,
        ds.len(),
        split.offline.len(),
        split.online.len(),
        split.heldout.len()
    );

    let executor = JobExecutor::default_parallelism();
    let als_cfg = AlsConfig { rank: 10, lambda: 0.05, iterations: 10, seed: 21 };
    let als = AlsModel::train(
        &split.offline,
        ds.config.n_users,
        ds.config.n_items,
        als_cfg.clone(),
        &executor,
    );
    let mu = als.global_mean;

    let heldout_rmse = |velox: &Velox, mu: f64| -> f64 {
        let mut sse = 0.0;
        for r in &split.heldout {
            let p = velox.predict(r.uid, &Item::Id(r.item_id)).unwrap().score + mu;
            sse += (p - r.value) * (p - r.value);
        }
        (sse / split.heldout.len() as f64).sqrt()
    };
    let history: Vec<TrainingExample> = split
        .offline
        .iter()
        .map(|r| TrainingExample { uid: r.uid, item: Item::Id(r.item_id), y: r.value - mu })
        .collect();
    let deploy = || {
        let (model, _) = MatrixFactorizationModel::from_als("acc", &als);
        let v = Velox::deploy(Arc::new(model), HashMap::new(), VeloxConfig::single_node());
        v.ingest_history(&history).unwrap();
        v
    };

    // Static.
    let velox_static = deploy();
    let rmse_static = heldout_rmse(&velox_static, mu);

    // Online (Velox hybrid).
    let velox_online = deploy();
    for r in &split.online {
        velox_online.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
    }
    let rmse_online = heldout_rmse(&velox_online, mu);

    // Full retrain.
    let mut full_train = split.offline.clone();
    full_train.extend(split.online.iter().cloned());
    let als_full =
        AlsModel::train(&full_train, ds.config.n_users, ds.config.n_items, als_cfg, &executor);
    let (model_full, weights_full) = MatrixFactorizationModel::from_als("acc-full", &als_full);
    let velox_full = Velox::deploy(Arc::new(model_full), weights_full, VeloxConfig::single_node());
    let rmse_full = heldout_rmse(&velox_full, als_full.global_mean);

    let imp = |rmse: f64| (1.0 - rmse / rmse_static) * 100.0;
    print_header(
        "Held-out prediction error",
        &["strategy", "held-out RMSE", "improvement vs static", "paper"],
    );
    print_row(&[
        "static (no updates)".into(),
        format!("{rmse_static:.4}"),
        "—".into(),
        "baseline".into(),
    ]);
    print_row(&[
        "online incremental (Velox)".into(),
        format!("{rmse_online:.4}"),
        format!("{:+.2}%", imp(rmse_online)),
        "+1.6%".into(),
    ]);
    print_row(&[
        "full offline retrain".into(),
        format!("{rmse_full:.4}"),
        format!("{:+.2}%", imp(rmse_full)),
        "+2.3%".into(),
    ]);
    let recovery = imp(rmse_online) / imp(rmse_full) * 100.0;
    println!("\nonline strategy recovers {recovery:.0}% of the full-retrain gain (paper: ~70%).");
}
