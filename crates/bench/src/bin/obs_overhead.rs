//! Measures the cost of the observability layer itself: the raw price of
//! each instrumentation primitive, and the end-to-end latency of the
//! fully-cached topK hot path (the most metrics-sensitive route in the
//! system — a SpanTimer plus two counter adds per call). Run with:
//!
//! ```text
//! cargo run --release -p velox-bench --bin obs_overhead
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use velox_batch::AlsConfig;
use velox_bench::{fmt_us, measure, print_header, print_row, FixtureRng};
use velox_core::{Item, Velox, VeloxConfig};
use velox_models::MatrixFactorizationModel;
use velox_obs::{Counter, Histogram, SpanTimer, TimerMode};

/// Times `iters` repetitions of `f` and returns ns per op.
fn ns_per_op<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn primitives() {
    print_header("instrumentation primitives", &["primitive", "ns/op"]);
    let counter = Counter::new();
    print_row(&["Counter::inc".into(), format!("{:.1}", ns_per_op(5_000_000, || counter.inc()))]);
    print_row(&[
        "Counter::add(17)".into(),
        format!("{:.1}", ns_per_op(5_000_000, || counter.add(17))),
    ]);
    let hist = Histogram::new();
    let mut x = 1u64;
    print_row(&[
        "Histogram::record".into(),
        format!(
            "{:.1}",
            ns_per_op(5_000_000, || {
                hist.record(x);
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493) >> 32;
            })
        ),
    ]);
    let hist = Arc::new(Histogram::new());
    print_row(&[
        "SpanTimer new+drop (precise)".into(),
        format!(
            "{:.1}",
            ns_per_op(2_000_000, || {
                let _span = SpanTimer::new(&hist);
            })
        ),
    ]);
    print_row(&[
        "SpanTimer new+drop (coarse)".into(),
        format!(
            "{:.1}",
            ns_per_op(2_000_000, || {
                let _span = SpanTimer::with_mode(&hist, TimerMode::Coarse);
            })
        ),
    ]);
    std::hint::black_box(counter.get());
}

/// End-to-end effect of the timer mode on the most timer-sensitive route:
/// a fully-cached predict is two map lookups plus a SpanTimer, so the
/// clock-read cost is a visible fraction of the whole call.
fn timer_modes() {
    print_header("cached predict by timer mode (d = 64)", &["timer mode", "ns/op"]);
    for (name, mode) in [("precise", TimerMode::Precise), ("coarse", TimerMode::Coarse)] {
        let d = 64usize;
        let mut rng = FixtureRng::new(11);
        let mut table = HashMap::new();
        for item in 0..256u64 {
            table.insert(item, rng.vector(d));
        }
        let model = MatrixFactorizationModel::from_table(
            "bench",
            table,
            0.0,
            AlsConfig { rank: d, ..Default::default() },
        )
        .unwrap();
        let mut weights = HashMap::new();
        weights.insert(0u64, rng.vector(d));
        let mut config = VeloxConfig::single_node();
        config.obs.timer_mode = mode;
        let velox = Velox::deploy(Arc::new(model), weights, config);
        velox.predict(0, &Item::Id(1)).unwrap(); // warm the prediction cache
        print_row(&[
            name.to_string(),
            format!(
                "{:.1}",
                ns_per_op(1_000_000, || {
                    std::hint::black_box(velox.predict(0, &Item::Id(1)).unwrap());
                })
            ),
        ]);
    }
}

fn cached_topk() {
    let d = 10_000usize;
    let mut rng = FixtureRng::new(7 + d as u64);
    let mut table = HashMap::new();
    for item in 0..2048u64 {
        table.insert(item, rng.vector(d));
    }
    let model = MatrixFactorizationModel::from_table(
        "bench",
        table,
        0.0,
        AlsConfig { rank: d, ..Default::default() },
    )
    .unwrap();
    let mut weights = HashMap::new();
    weights.insert(0u64, rng.vector(d));
    let mut config = VeloxConfig::single_node();
    config.prediction_cache_capacity = 64 * 1024;
    let velox = Velox::deploy(Arc::new(model), weights, config);

    print_header(
        "fully-cached topK (d = 10000, high trial count)",
        &["itemset size", "mean", "p50", "p99"],
    );
    for &n in &[10usize, 100, 1000] {
        let items: Vec<Item> = (0..n as u64).map(Item::Id).collect();
        velox.top_k(0, &items).unwrap(); // warm the cache
        let trials = (2_000_000 / n).clamp(500, 50_000);
        let s = measure(50, trials, || {
            std::hint::black_box(velox.top_k(0, &items).unwrap());
        });
        print_row(&[n.to_string(), fmt_us(s.mean), fmt_us(s.p50), fmt_us(s.p99)]);
    }
}

fn main() {
    println!("# obs_overhead: cost of the metrics layer");
    primitives();
    timer_modes();
    cached_topk();
}
