//! Micro-benchmarks for the serving hot paths, ported from the former
//! Criterion suites (prediction_latency, sherman_morrison,
//! storage_primitives, update_latency) onto the in-tree harness so the
//! build stays hermetic. Run with:
//!
//! ```text
//! cargo run --release -p velox-bench --bin microbench
//! ```
//!
//! Each section prints a markdown table of mean / p50 / p99 latencies.

use std::collections::HashMap;
use std::sync::Arc;

use velox_batch::AlsConfig;
use velox_bench::{fmt_us, measure, print_header, print_row, FixtureRng};
use velox_core::{Item, Velox, VeloxConfig};
use velox_linalg::{IncrementalRidge, RidgeProblem, Vector};
use velox_models::MatrixFactorizationModel;
use velox_online::{UpdateStrategy, UserOnlineModel};
use velox_storage::codec::{decode_vector_table, encode_vector_table};
use velox_storage::{LruCache, Namespace, ObservationLog};

const ROW_COLUMNS: &[&str] = &["benchmark", "mean", "p50", "p99"];

fn row(name: &str, summary: &velox_linalg::stats::LatencySummary) -> Vec<String> {
    vec![name.to_string(), fmt_us(summary.mean), fmt_us(summary.p50), fmt_us(summary.p99)]
}

/// FIG4-shaped: topK serving latency, cached vs uncached, for
/// representative dimensions and itemset sizes.
fn deploy(d: usize, cache_capacity: usize) -> Velox {
    let mut rng = FixtureRng::new(7 + d as u64);
    let mut table = HashMap::new();
    for item in 0..512u64 {
        table.insert(item, rng.vector(d));
    }
    let model = MatrixFactorizationModel::from_table(
        "bench",
        table,
        0.0,
        AlsConfig { rank: d, ..Default::default() },
    )
    .unwrap();
    let mut weights = HashMap::new();
    weights.insert(0u64, rng.vector(d));
    let mut config = VeloxConfig::single_node();
    config.prediction_cache_capacity = cache_capacity;
    Velox::deploy(Arc::new(model), weights, config)
}

fn bench_prediction_latency() {
    print_header("topk serving latency (former prediction_latency bench)", ROW_COLUMNS);
    for &d in &[2000usize, 5000] {
        let uncached = deploy(d, 1);
        let cached = deploy(d, 64 * 1024);
        for &n in &[100usize, 400] {
            let items: Vec<Item> = (0..n as u64).map(Item::Id).collect();
            let s = measure(3, 20, || {
                uncached.top_k(0, &items).unwrap();
            });
            print_row(&row(&format!("topk/uncached_d{d}/{n}"), &s));
            cached.top_k(0, &items).unwrap(); // warm
            let s = measure(3, 20, || {
                cached.top_k(0, &items).unwrap();
            });
            print_row(&row(&format!("topk/cached_d{d}/{n}"), &s));
        }
    }
}

/// ABL-SM-shaped: the raw linear-algebra kernels — a Sherman–Morrison
/// rank-one update vs. a fresh Cholesky solve, plus the dot-product kernel
/// every prediction bottoms out in.
fn bench_kernels() {
    print_header("linear-algebra kernels (former sherman_morrison bench)", ROW_COLUMNS);
    for &d in &[100usize, 300, 600] {
        let mut rng = FixtureRng::new(d as u64);
        let xs: Vec<Vector> = (0..32).map(|_| rng.vector(d)).collect();

        let mut inc = IncrementalRidge::new(d, 1.0);
        let mut i = 0;
        let s = measure(5, 100, || {
            inc.observe(&xs[i % xs.len()], 1.0).unwrap();
            i += 1;
        });
        print_row(&row(&format!("kernels/sm_rank_one_update/{d}"), &s));

        let mut prob = RidgeProblem::new(d, 1.0);
        for x in &xs {
            prob.observe(x, 1.0).unwrap();
        }
        let s = measure(3, 30, || {
            std::hint::black_box(prob.solve().unwrap());
        });
        print_row(&row(&format!("kernels/cholesky_solve/{d}"), &s));

        let (a, b) = (&xs[0], &xs[1]);
        let s = measure(10, 200, || {
            std::hint::black_box(a.dot(b).unwrap());
        });
        print_row(&row(&format!("kernels/dot_product/{d}"), &s));
    }
}

/// Storage substrate on the serving hot path: namespace point reads/writes,
/// LRU hits, observation-log appends, and snapshot codec throughput.
fn bench_storage() {
    print_header("storage primitives (former storage_primitives bench)", ROW_COLUMNS);

    let ns: Namespace<Vec<f64>> = Namespace::new("bench");
    for k in 0..10_000u64 {
        ns.put(k, vec![k as f64; 16]);
    }
    let mut k = 0u64;
    let s = measure(10, 200, || {
        std::hint::black_box(ns.get(k % 10_000));
        k += 1;
    });
    print_row(&row("storage/namespace_get", &s));

    let mut k = 0u64;
    let s = measure(10, 200, || {
        ns.put(k % 10_000, vec![1.0; 16]);
        k += 1;
    });
    print_row(&row("storage/namespace_put", &s));

    let mut lru: LruCache<u64, f64> = LruCache::new(1024);
    for k in 0..1024u64 {
        lru.put(k, k as f64);
    }
    let mut k = 0u64;
    let s = measure(10, 200, || {
        std::hint::black_box(lru.get(&(k % 1024)).copied());
        k += 1;
    });
    print_row(&row("storage/lru_hit", &s));

    let log = ObservationLog::new();
    let mut k = 0u64;
    let s = measure(10, 200, || {
        log.append(k % 1000, k % 500, 1.0);
        k += 1;
    });
    print_row(&row("storage/obslog_append", &s));

    let entries: Vec<(u64, Vec<f64>)> = (0..500u64).map(|k| (k, vec![0.5; 64])).collect();
    let s = measure(3, 30, || {
        std::hint::black_box(encode_vector_table(&entries));
    });
    print_row(&row("storage/codec_encode_500x64", &s));
    let encoded = encode_vector_table(&entries);
    let s = measure(3, 30, || {
        std::hint::black_box(decode_vector_table(encoded.clone()).unwrap());
    });
    print_row(&row("storage/codec_decode_500x64", &s));
}

/// FIG3-shaped: one online user-weight update at various model dimensions,
/// naive vs. Sherman–Morrison.
fn bench_updates() {
    print_header("online update latency (former update_latency bench)", ROW_COLUMNS);
    for &d in &[50usize, 100, 200, 400] {
        let mut rng = FixtureRng::new(42 + d as u64);
        let xs: Vec<Vector> = (0..64).map(|_| rng.vector(d)).collect();
        for strategy in [UpdateStrategy::Naive, UpdateStrategy::ShermanMorrison] {
            let name = match strategy {
                UpdateStrategy::Naive => "naive",
                UpdateStrategy::ShermanMorrison => "sherman_morrison",
            };
            let mut model = UserOnlineModel::new(d, 1.0, strategy);
            let mut i = 0;
            let s = measure(5, 60, || {
                model.observe(&xs[i % xs.len()], 0.5).unwrap();
                i += 1;
            });
            print_row(&row(&format!("online_update/{name}/{d}"), &s));
        }
    }
}

fn main() {
    println!("# microbench — hermetic micro-benchmark suite");
    bench_kernels();
    bench_updates();
    bench_storage();
    bench_prediction_latency();
}
