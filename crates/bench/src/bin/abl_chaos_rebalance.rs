//! CHAOS-REBALANCE — migration under fire: chunked resumable checkpoint
//! streaming, abort/rollback, and hardened membership, on both backends.
//!
//! REBALANCE (`abl_rebalance`) proves elastic membership works when every
//! migration is *allowed to finish*. This experiment attacks the
//! migrations themselves: Zipf traffic keeps flowing while the transfer
//! path is partitioned, the source or destination node is killed
//! mid-plan, the wall-clock deadline expires, and the operator cancels —
//! on **both** transport backends (loopback TCP `velox-net` and the
//! in-process `SimTransport`) behind the shared `Transport` trait.
//!
//! The scenarios, each run against live traffic:
//!
//! - `abort: dst death` — the destination dies before the checkpoint
//!   commits; the migration aborts, the source stays authoritative, the
//!   epoch does not move.
//! - `abort: src death` — the source dies; same rollback property, and
//!   traffic keeps flowing off replicas through the outage.
//! - `partition mid-stream` — the checkpoint link is cut *during* the
//!   chunk stream. The TCP runtime's cursor-resumable pulls retry at the
//!   same cursor until the link heals, then the migration commits
//!   (resumes observed > 0); the simulator's synchronous transfer
//!   instead aborts with `checkpoint link partitioned`.
//! - `deadline abort` — a zero wall-clock budget aborts every attempt
//!   with `deadline exceeded` before any map install.
//! - `operator cancel` (sim) — a pre-armed cancel lands at the first
//!   chunk boundary.
//!
//! After the fire drill, the planned `rebalance_join` handoff commits
//! cleanly on the same cluster — aborts must not poison later attempts.
//!
//! Verification is the strongest available: the acked `(uid, item, y)`
//! stream replays locally through the shared [`lms_update`] and every
//! user's weights must match the cluster **bit-for-bit** (zero acked
//! loss, zero double-applies); every backend runs **twice** with the
//! same seed and the two runs' final `(epoch, weights)` must be
//! identical (abort rollback is deterministic, not best-effort); and on
//! the TCP backend no checkpoint frame may exceed the configured chunk
//! budget (the `checkpoint_frame_max` gauge).
//!
//! `--smoke` runs shorter phases and exits non-zero unless, on both
//! backends: **100%** availability in every phase, bit-exact replay,
//! every abort left the epoch untouched with the source authoritative,
//! the resumable stream resumed at least once through the link fault,
//! the ledger's terminal outcomes match the script, and the max
//! checkpoint frame honours the chunk budget.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use velox_bench::{print_header, print_row};
use velox_cluster::transport::{SimTransport, Transport};
use velox_cluster::{
    lms_update, ChaosControl, Cluster, ClusterConfig, LinkChaos, LinkFaultPlan, MembershipError,
    MigrationOutcome, NodeId, RetryPolicy, FRONT_PEER,
};
use velox_data::{WorkloadConfig, ZipfGenerator};
use velox_linalg::stats::LatencySummary;
use velox_net::{NetClientConfig, NetCluster, NetClusterConfig};

const N_USERS: u64 = 24;
const N_ITEMS: u64 = 48;
const DIM: usize = 8;
const N_NODES: usize = 3;
const MAX_NODES: usize = 4;
const LR: f64 = 0.05;
const ZIPF_SKEW: f64 = 1.0;
/// Checkpoint chunk budget on the TCP backend: small enough that a
/// partition's snapshot needs several frames, so the resume cursor and
/// the frame-size gauge are actually exercised.
const CHUNK_BYTES: u32 = 4096;
/// Simulator chunk granularity (users per chunk): several abort-trigger
/// boundary checks per migration.
const CHUNK_USERS: usize = 4;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 17) as f64 / 16.0).collect()
}

fn seeded_items() -> Vec<(u64, Vec<f64>)> {
    (0..N_ITEMS).map(|i| (i, item_features(i))).collect()
}

fn zipf_stream(seed: u64) -> ZipfGenerator {
    ZipfGenerator::new(WorkloadConfig {
        n_users: N_USERS as usize,
        n_items: N_ITEMS as usize,
        item_skew: ZIPF_SKEW,
        topk_set_size: 1,
        seed,
    })
}

/// Final cluster state a twin run must reproduce bit-for-bit.
type Fingerprint = (u64, Vec<(u64, Option<Vec<f64>>)>);

fn fingerprint(t: &dyn Transport, epoch: u64) -> Fingerprint {
    let weights = (0..N_USERS).map(|uid| (uid, t.fetch_weights(uid).ok().flatten())).collect();
    (epoch, weights)
}

/// One phase's availability + latency ledger, transport-agnostic.
#[derive(Default)]
struct Ledger {
    predict_us: Vec<f64>,
    predict_errors: u64,
    observe_us: Vec<f64>,
    observe_errors: u64,
}

impl Ledger {
    fn predict(&mut self, t: &dyn Transport, uid: u64, item: u64) {
        let start = Instant::now();
        match t.predict(uid, item) {
            Ok(_) => self.predict_us.push(start.elapsed().as_secs_f64() * 1e6),
            Err(_) => self.predict_errors += 1,
        }
    }

    fn observe(
        &mut self,
        t: &dyn Transport,
        acked: &mut Vec<(u64, u64, f64)>,
        uid: u64,
        item: u64,
    ) {
        let y = if (uid + item).is_multiple_of(2) { 1.0 } else { 0.0 };
        let start = Instant::now();
        match t.observe(uid, item, y) {
            Ok(_) => {
                self.observe_us.push(start.elapsed().as_secs_f64() * 1e6);
                acked.push((uid, item, y));
            }
            Err(_) => self.observe_errors += 1,
        }
    }

    fn errors(&self) -> u64 {
        self.predict_errors + self.observe_errors
    }

    fn row(&self, phase: &str) {
        let p = LatencySummary::from_samples(&self.predict_us);
        let (p50, p99) = p.map(|s| (s.p50, s.p99)).unwrap_or((0.0, 0.0));
        print_row(&[
            phase.to_string(),
            format!("{}", self.predict_us.len() + self.observe_us.len()),
            format!("{}", self.errors()),
            format!("{p50:.0}"),
            format!("{p99:.0}"),
        ]);
    }
}

/// Replays the acked stream locally and counts users whose cluster
/// weights diverge from the bit-exact expectation (lost or
/// double-applied acked records).
fn replay_divergence(t: &dyn Transport, acked: &[(u64, u64, f64)]) -> u64 {
    let mut replay: HashMap<u64, Vec<f64>> = HashMap::new();
    for &(uid, item, y) in acked {
        lms_update(replay.entry(uid).or_default(), &item_features(item), y, LR);
    }
    let mut diverged = 0u64;
    for (uid, expect) in &replay {
        match t.fetch_weights(*uid) {
            Ok(Some(got)) if &got == expect => {}
            _ => diverged += 1,
        }
    }
    diverged
}

/// First partition owned by `node` under `map`.
fn partition_owned_by(map: &velox_cluster::PartitionMap, node: NodeId) -> u32 {
    (0..map.n_partitions())
        .find(|&p| map.owner_of_partition(p) == node)
        .expect("every founding member owns at least one partition")
}

// ---------------------------------------------------------------------
// TCP backend
// ---------------------------------------------------------------------

fn start_net() -> Arc<NetCluster> {
    let net = NetCluster::start(NetClusterConfig {
        n_nodes: N_NODES,
        max_nodes: MAX_NODES,
        user_replication: 2,
        lr: LR,
        workers: 4,
        request_timeout: Duration::from_secs(2),
        checkpoint_chunk_bytes: CHUNK_BYTES,
        migration_deadline: Duration::from_secs(30),
        client: NetClientConfig {
            per_try_timeout: Some(Duration::from_millis(100)),
            retry: RetryPolicy {
                max_attempts: 4,
                backoff_base: Duration::from_millis(20),
                backoff_max: Duration::from_millis(60),
                jitter: 0.2,
            },
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("start loopback cluster");
    net.publish_item_features(seeded_items());
    Arc::new(net)
}

/// Asserts a migration attempt aborted for `want`, without an epoch bump
/// and with `src` still the owner; failures accumulate instead of
/// panicking so the smoke report names every broken gate.
fn expect_net_abort(
    failures: &mut Vec<String>,
    net: &NetCluster,
    scenario: &str,
    p: u32,
    src: NodeId,
    dst: NodeId,
    want: &str,
) {
    let epoch0 = net.map_epoch();
    match net.migrate_partition(p, dst) {
        Err(e) if e.to_string().contains(want) => {}
        Err(e) => failures.push(format!("net/{scenario}: wrong abort reason: {e}")),
        Ok(s) => failures.push(format!("net/{scenario}: migration committed ({s:?})")),
    }
    if net.map_epoch() != epoch0 {
        failures.push(format!("net/{scenario}: abort bumped the epoch"));
    }
    if net.map().owner_of_partition(p) != src {
        failures.push(format!("net/{scenario}: source lost ownership on abort"));
    }
    match net.migrations().last() {
        Some(m) if m.phase == "aborted" && m.epoch_end == 0 => {}
        other => failures.push(format!("net/{scenario}: ledger tail not aborted: {other:?}")),
    }
}

fn run_net(scale: u64, verbose: bool) -> (Vec<String>, Fingerprint) {
    let net = start_net();
    let t: &dyn Transport = net.as_ref();
    let mut gen = zipf_stream(0x5EBA1B);
    let mut acked: Vec<(u64, u64, f64)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    if verbose {
        print_header(
            "[net] availability per phase (migrations under fire)",
            &["phase", "ok", "errors", "predict p50 µs", "predict p99 µs"],
        );
    }

    // -- baseline ----------------------------------------------------------
    let mut base = Ledger::default();
    for _ in 0..(80 * scale) {
        let (uid, item) = gen.next_point();
        base.observe(t, &mut acked, uid, item);
        base.predict(t, uid, (item * 3) % N_ITEMS);
    }

    let dst = net.join_node().expect("join 4th node");
    let src: NodeId = 0;
    let p = partition_owned_by(&net.map(), src);
    let epoch_join = net.map_epoch();

    // -- abort: destination dies before the checkpoint commits -------------
    let mut ld_dst = Ledger::default();
    net.kill_node(dst);
    expect_net_abort(&mut failures, &net, "dst-death", p, src, dst, "destination death");
    net.recover_node(dst).expect("recover destination");
    for _ in 0..(30 * scale) {
        let (uid, item) = gen.next_point();
        ld_dst.observe(t, &mut acked, uid, item);
        ld_dst.predict(t, uid, (item * 3) % N_ITEMS);
    }

    // -- abort: source dies; traffic rides the replicas --------------------
    let mut ld_src = Ledger::default();
    net.kill_node(src);
    expect_net_abort(&mut failures, &net, "src-death", p, src, dst, "source death");
    for _ in 0..(30 * scale) {
        let (uid, item) = gen.next_point();
        ld_src.observe(t, &mut acked, uid, item);
        ld_src.predict(t, uid, (item * 3) % N_ITEMS);
    }
    net.recover_node(src).expect("recover source");
    for _ in 0..(20 * scale) {
        let (uid, item) = gen.next_point();
        ld_src.observe(t, &mut acked, uid, item);
        ld_src.predict(t, uid, (item * 3) % N_ITEMS);
    }

    // -- partition mid-stream: cursor-resume, then commit ------------------
    // The checkpoint pulls flow front → src; cutting that link stalls the
    // stream. The migration must not abort (the deadline is generous) —
    // it retries at the same cursor, and commits once the link heals.
    let mut ld_part = Ledger::default();
    let (_, aborts_before, resumes_before) = net.migration_chunk_stats();
    net.link_chaos().partition(FRONT_PEER, src as u32);
    let migrator = {
        let net = Arc::clone(&net);
        std::thread::spawn(move || net.migrate_partition(p, dst))
    };
    // Keep serving while the stream is jammed — a *fixed* number of
    // requests, so the twin run acks an identical stream. Users homed at
    // `src` are skipped here: with heartbeats off, nothing re-routes
    // around the severed front→src link, and the availability gate is
    // 100%, not best-effort. Everyone else must be answered.
    for _ in 0..(30 * scale) {
        let (uid, item) = gen.next_point();
        if net.home_of_user(uid) == src {
            continue;
        }
        ld_part.observe(t, &mut acked, uid, item);
        ld_part.predict(t, uid, (item * 3) % N_ITEMS);
    }
    // Hold the fault until the stream has demonstrably retried a cursor.
    let jam_started = Instant::now();
    while net.migration_chunk_stats().2 == resumes_before
        && jam_started.elapsed() < Duration::from_secs(10)
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    let resumed = net.migration_chunk_stats().2 > resumes_before;
    net.link_chaos().heal(FRONT_PEER, src as u32);
    match migrator.join().expect("migrator thread") {
        Ok(status) => {
            if !matches!(status.outcome, MigrationOutcome::Committed) {
                failures.push(format!("net/partition: outcome {:?}", status.outcome));
            }
            if status.chunks_streamed == 0 {
                failures.push("net/partition: committed without streaming a chunk".into());
            }
        }
        Err(e) => failures.push(format!("net/partition: resumable migration died: {e}")),
    }
    if !resumed {
        failures.push("net/partition: the chunk stream never resumed through the fault".into());
    }
    if net.migration_chunk_stats().1 != aborts_before {
        failures.push("net/partition: a resumable fault was turned into an abort".into());
    }
    if net.map_epoch() != epoch_join + 2 {
        failures.push(format!(
            "net/partition: commit epoch {} != {}",
            net.map_epoch(),
            epoch_join + 2
        ));
    }
    if net.map().owner_of_partition(p) != dst {
        failures.push("net/partition: committed migration left ownership at the source".into());
    }
    for _ in 0..(30 * scale) {
        let (uid, item) = gen.next_point();
        ld_part.observe(t, &mut acked, uid, item);
        ld_part.predict(t, uid, (item * 3) % N_ITEMS);
    }

    // -- aborts must not poison the planned handoff ------------------------
    let mut ld_fin = Ledger::default();
    let plan = net.rebalance_join(dst).expect("planned handoff commits after the fire drill");
    for _ in 0..(40 * scale) {
        let (uid, item) = gen.next_point();
        ld_fin.observe(t, &mut acked, uid, item);
        ld_fin.predict(t, uid, (item * 3) % N_ITEMS);
    }

    // -- verification ------------------------------------------------------
    let diverged = replay_divergence(t, &acked);
    let (chunks, aborts, resumes) = net.migration_chunk_stats();
    let frame_max = net.checkpoint_frame_max_bytes();
    let epoch = net.map_epoch();
    let ledger = net.migrations();
    let committed =
        ledger.iter().filter(|m| matches!(m.outcome, MigrationOutcome::Committed)).count();
    let aborted =
        ledger.iter().filter(|m| matches!(m.outcome, MigrationOutcome::Aborted(_))).count();

    let phases = [
        ("baseline", &base),
        ("abort: dst death", &ld_dst),
        ("abort: src death", &ld_src),
        ("partition mid-stream", &ld_part),
        ("rebalance+final", &ld_fin),
    ];
    if verbose {
        for (name, l) in &phases {
            l.row(name);
        }
        println!(
            "\n[net] {} chunks streamed, {aborts} aborts, {resumes} resumes, max frame \
             {frame_max} B (budget {CHUNK_BYTES}); epoch {epoch}, {committed} committed / \
             {aborted} aborted migrations; {} acked records, {diverged} users diverged",
            chunks,
            acked.len(),
        );
    }

    for (name, l) in &phases {
        if l.errors() > 0 {
            failures.push(format!("net/{name}: {} requests failed (want 100%)", l.errors()));
        }
    }
    if diverged > 0 {
        failures.push(format!(
            "net: {diverged} users diverged from the acked-stream replay \
             (lost or double-applied records)"
        ));
    }
    if aborted != 2 {
        failures.push(format!("net: ledger has {aborted} aborted migrations, want 2"));
    }
    if committed != 1 + plan.len() {
        failures.push(format!(
            "net: ledger has {committed} committed migrations, want {}",
            1 + plan.len()
        ));
    }
    if epoch != epoch_join + 2 * (1 + plan.len() as u64) {
        failures.push(format!(
            "net: epoch arithmetic broken — {epoch} != {epoch_join} + 2·{}",
            1 + plan.len()
        ));
    }
    if frame_max <= 0 || frame_max > CHUNK_BYTES as i64 {
        failures.push(format!(
            "net: max checkpoint frame {frame_max} B violates the {CHUNK_BYTES} B chunk budget"
        ));
    }

    let fp = fingerprint(t, epoch);
    net.shutdown();
    (failures, fp)
}

/// Deadline abort on the TCP backend: a zero wall-clock budget dooms the
/// migration before any map install, and serving is untouched.
fn net_deadline_abort(failures: &mut Vec<String>) {
    let net = NetCluster::start(NetClusterConfig {
        n_nodes: N_NODES,
        max_nodes: MAX_NODES,
        user_replication: 2,
        lr: LR,
        workers: 4,
        request_timeout: Duration::from_secs(2),
        checkpoint_chunk_bytes: CHUNK_BYTES,
        migration_deadline: Duration::ZERO,
        ..Default::default()
    })
    .expect("start deadline cluster");
    net.publish_item_features(seeded_items());
    let t: &dyn Transport = &net;
    let mut acked = Vec::new();
    let mut ld = Ledger::default();
    for i in 0..40u64 {
        ld.observe(t, &mut acked, i % N_USERS, i % N_ITEMS);
    }
    let dst = net.join_node().expect("join");
    let p = partition_owned_by(&net.map(), 0);
    expect_net_abort(failures, &net, "deadline", p, 0, dst, "deadline exceeded");
    for i in 0..40u64 {
        ld.predict(t, i % N_USERS, i % N_ITEMS);
    }
    if ld.errors() > 0 {
        failures.push(format!("net/deadline: {} requests failed (want 100%)", ld.errors()));
    }
    if replay_divergence(t, &acked) > 0 {
        failures.push("net/deadline: replay diverged after the abort".into());
    }
    println!("[net] deadline abort: rollback clean, serving untouched");
    net.shutdown();
}

// ---------------------------------------------------------------------
// Simulator backend
// ---------------------------------------------------------------------

fn expect_sim_abort(
    failures: &mut Vec<String>,
    cluster: &Cluster,
    scenario: &str,
    p: u32,
    src: NodeId,
    dst: NodeId,
    want: &str,
) {
    let epoch0 = cluster.map_epoch();
    match cluster.migrate_partition(p, dst) {
        Err(MembershipError::Aborted(reason)) if reason.contains(want) => {}
        Err(e) => failures.push(format!("sim/{scenario}: wrong abort error: {e}")),
        Ok(n) => failures.push(format!("sim/{scenario}: migration committed ({n} users)")),
    }
    if cluster.map_epoch() != epoch0 {
        failures.push(format!("sim/{scenario}: abort bumped the epoch"));
    }
    if cluster.map().owner_of_partition(p) != src {
        failures.push(format!("sim/{scenario}: source lost ownership on abort"));
    }
    match cluster.migrations().last() {
        Some(m) if m.phase == "aborted" && m.epoch_end == 0 => {}
        other => failures.push(format!("sim/{scenario}: ledger tail not aborted: {other:?}")),
    }
}

fn run_sim(scale: u64, verbose: bool) -> (Vec<String>, Fingerprint) {
    let cluster = Arc::new(Cluster::new(ClusterConfig {
        n_nodes: N_NODES,
        max_nodes: MAX_NODES,
        user_replication: 2,
        item_replication: N_NODES,
        checkpoint_chunk_users: CHUNK_USERS,
        ..Default::default()
    }));
    for (item, x) in seeded_items() {
        cluster.put_item_features(item, x);
    }
    let sim = SimTransport::new(Arc::clone(&cluster), LR);
    let t: &dyn Transport = &sim;
    let mut gen = zipf_stream(0x5EBA1B);
    let mut acked: Vec<(u64, u64, f64)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    if verbose {
        print_header(
            "[sim] availability per phase (migrations under fire)",
            &["phase", "ok", "errors", "predict p50 µs", "predict p99 µs"],
        );
    }

    let mut base = Ledger::default();
    for _ in 0..(80 * scale) {
        let (uid, item) = gen.next_point();
        base.observe(t, &mut acked, uid, item);
        base.predict(t, uid, (item * 3) % N_ITEMS);
    }

    let dst = cluster.join_node().expect("join 4th node");
    let src: NodeId = 0;
    let p = partition_owned_by(&cluster.map(), src);
    let epoch_join = cluster.map_epoch();

    // -- abort: destination death ------------------------------------------
    let mut ld_dst = Ledger::default();
    cluster.kill_node(dst);
    expect_sim_abort(&mut failures, &cluster, "dst-death", p, src, dst, "destination death");
    cluster.recover_node(dst);
    for _ in 0..(30 * scale) {
        let (uid, item) = gen.next_point();
        ld_dst.observe(t, &mut acked, uid, item);
        ld_dst.predict(t, uid, (item * 3) % N_ITEMS);
    }

    // -- abort: source death; replicas carry the traffic -------------------
    let mut ld_src = Ledger::default();
    cluster.kill_node(src);
    expect_sim_abort(&mut failures, &cluster, "src-death", p, src, dst, "source death");
    for _ in 0..(30 * scale) {
        let (uid, item) = gen.next_point();
        ld_src.observe(t, &mut acked, uid, item);
        ld_src.predict(t, uid, (item * 3) % N_ITEMS);
    }
    cluster.recover_node(src);
    for _ in 0..(20 * scale) {
        let (uid, item) = gen.next_point();
        ld_src.observe(t, &mut acked, uid, item);
        ld_src.predict(t, uid, (item * 3) % N_ITEMS);
    }

    // -- abort: checkpoint link partitioned --------------------------------
    // The simulator's transfer is synchronous, so a partitioned src↔dst
    // link is an abort trigger, not a stall it could wait out.
    let mut ld_part = Ledger::default();
    let chaos = Arc::new(LinkChaos::new(LinkFaultPlan::scripted(Vec::new())));
    chaos.partition_both(src as u32, dst as u32);
    cluster.set_migration_link_chaos(Arc::clone(&chaos));
    expect_sim_abort(&mut failures, &cluster, "partition", p, src, dst, "link partitioned");
    chaos.heal_all();
    for _ in 0..(30 * scale) {
        let (uid, item) = gen.next_point();
        ld_part.observe(t, &mut acked, uid, item);
        ld_part.predict(t, uid, (item * 3) % N_ITEMS);
    }

    // -- abort: deadline exceeded, then operator cancel --------------------
    cluster.set_migration_deadline(Some(Duration::ZERO));
    expect_sim_abort(&mut failures, &cluster, "deadline", p, src, dst, "deadline exceeded");
    cluster.set_migration_deadline(None);
    if cluster.request_migration_cancel() {
        failures.push("sim/cancel: no migration should be in flight".into());
    }
    expect_sim_abort(&mut failures, &cluster, "cancel", p, src, dst, "operator cancel");

    // -- aborts must not poison the planned handoff ------------------------
    let mut ld_fin = Ledger::default();
    let plan = cluster.rebalance_join(dst).expect("planned handoff commits after the fire drill");
    for _ in 0..(40 * scale) {
        let (uid, item) = gen.next_point();
        ld_fin.observe(t, &mut acked, uid, item);
        ld_fin.predict(t, uid, (item * 3) % N_ITEMS);
    }

    // -- verification ------------------------------------------------------
    let diverged = replay_divergence(t, &acked);
    let epoch = cluster.map_epoch();
    let ledger = cluster.migrations();
    let committed =
        ledger.iter().filter(|m| matches!(m.outcome, MigrationOutcome::Committed)).count();
    let aborted =
        ledger.iter().filter(|m| matches!(m.outcome, MigrationOutcome::Aborted(_))).count();
    let chunks: u64 = ledger.iter().map(|m| m.chunks_streamed).sum();

    let phases = [
        ("baseline", &base),
        ("abort: dst death", &ld_dst),
        ("abort: src death", &ld_src),
        ("abort: partition", &ld_part),
        ("rebalance+final", &ld_fin),
    ];
    if verbose {
        for (name, l) in &phases {
            l.row(name);
        }
        println!(
            "\n[sim] {chunks} chunks streamed; epoch {epoch}, {committed} committed / {aborted} \
             aborted migrations; {} acked records, {diverged} users diverged",
            acked.len(),
        );
    }

    for (name, l) in &phases {
        if l.errors() > 0 {
            failures.push(format!("sim/{name}: {} requests failed (want 100%)", l.errors()));
        }
    }
    if diverged > 0 {
        failures.push(format!(
            "sim: {diverged} users diverged from the acked-stream replay \
             (lost or double-applied records)"
        ));
    }
    if aborted != 5 {
        failures.push(format!("sim: ledger has {aborted} aborted migrations, want 5"));
    }
    if committed != plan.len() {
        failures
            .push(format!("sim: ledger has {committed} committed migrations, want {}", plan.len()));
    }
    if epoch != epoch_join + 2 * plan.len() as u64 {
        failures.push(format!(
            "sim: epoch arithmetic broken — {epoch} != {epoch_join} + 2·{}",
            plan.len()
        ));
    }
    if plan.is_empty() {
        failures.push("sim: the planned handoff moved no partition".into());
    }

    (failures, fingerprint(t, epoch))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 1 } else { 5 };

    println!("# CHAOS-REBALANCE: migrations under fire — abort/rollback + resumable streams (§3)");
    println!(
        "\n{N_NODES}→{MAX_NODES} nodes, 2x user replication, {N_USERS} users, {N_ITEMS} items, \
         dim {DIM}, Zipf(s={ZIPF_SKEW}) traffic; kill-source, kill-destination, \
         partition-during-checkpoint, deadline and operator-cancel aborts; zero-loss checked by \
         bit-exact replay, rollback determinism by twin runs"
    );

    let (mut failures, net_a) = run_net(scale, true);
    let (more, net_b) = run_net(scale, false);
    failures.extend(more);
    if net_a != net_b {
        failures.push("net: twin runs diverged — rollback is not deterministic".into());
    } else {
        println!("[net] twin runs bit-identical (epoch {})", net_a.0);
    }
    net_deadline_abort(&mut failures);

    println!();
    let (more, sim_a) = run_sim(scale, true);
    failures.extend(more);
    let (more, sim_b) = run_sim(scale, false);
    failures.extend(more);
    if sim_a != sim_b {
        failures.push("sim: twin runs diverged — rollback is not deterministic".into());
    } else {
        println!("[sim] twin runs bit-identical (epoch {})", sim_a.0);
    }

    if smoke {
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("smoke FAIL: {f}");
            }
            std::process::exit(1);
        }
        println!("\nsmoke: all chaos-rebalance gates passed on both transports");
    } else if failures.is_empty() {
        println!("\nall chaos-rebalance invariants held on both transports");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
