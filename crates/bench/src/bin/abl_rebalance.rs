//! REBALANCE — availability and zero acked loss through elastic
//! membership: node join, live partition migration, and chaos fail-over.
//!
//! The paper's serving tier must keep answering while the cluster
//! *changes shape* (§3): a new node joins and takes partitions over
//! live, and a dead node is failed out of the map with its partitions
//! re-owned by surviving replicas. This experiment drives the same
//! Zipf-skewed workload through three phases on **both** transport
//! backends — the loopback TCP runtime (`velox-net`) and the in-process
//! simulator (`SimTransport`) — behind the shared `Transport` trait:
//!
//! - `baseline`: the 3-node steady state — the availability and
//!   latency floor;
//! - `join+rebalance`: a 4th node joins mid-traffic and the planned
//!   handoff migrates partitions onto it (dual-write → checkpoint →
//!   catch-up → cut-over → tail-replay), each migration bumping the
//!   map epoch twice;
//! - `kill+failover`: a founding member is killed *and loses its disk*;
//!   traffic keeps flowing off replicas until `fail_over_dead` removes
//!   it from the map and backfills depleted replica sets.
//!
//! The zero-loss check is the strongest one available: the acked
//! `(uid, item, y)` stream is replayed locally with the shared
//! [`lms_update`] routine and every user's final weights must match the
//! cluster **bit-for-bit** — a lost acked record or a double-applied
//! one diverges the floats.
//!
//! `--smoke` runs shorter phases and exits non-zero unless, on both
//! backends: availability ≥ 99.9% in every phase, zero acked records
//! lost and zero double-applied (bit-exact replay), the rebalance moved
//! at least one partition, the map epoch advanced, every migration in
//! the ledger reached `done`, and the dead node left the map.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use velox_bench::{print_header, print_row};
use velox_cluster::transport::{SimTransport, Transport};
use velox_cluster::{lms_update, Cluster, ClusterConfig, NodeId};
use velox_data::{WorkloadConfig, ZipfGenerator};
use velox_linalg::stats::LatencySummary;
use velox_net::{NetCluster, NetClusterConfig};
use velox_storage::ScratchDir;

const N_USERS: u64 = 24;
const N_ITEMS: u64 = 48;
const DIM: usize = 8;
const N_NODES: usize = 3;
const MAX_NODES: usize = 4;
const LR: f64 = 0.05;
const ZIPF_SKEW: f64 = 1.0;

fn item_features(item: u64) -> Vec<f64> {
    (0..DIM).map(|d| ((item * 31 + d as u64 * 7) % 17) as f64 / 16.0).collect()
}

fn seeded_items() -> Vec<(u64, Vec<f64>)> {
    (0..N_ITEMS).map(|i| (i, item_features(i))).collect()
}

fn zipf_stream(seed: u64) -> ZipfGenerator {
    ZipfGenerator::new(WorkloadConfig {
        n_users: N_USERS as usize,
        n_items: N_ITEMS as usize,
        item_skew: ZIPF_SKEW,
        topk_set_size: 1,
        seed,
    })
}

/// One phase's availability + latency ledger, transport-agnostic.
#[derive(Default)]
struct Ledger {
    predict_us: Vec<f64>,
    predict_errors: u64,
    observe_us: Vec<f64>,
    observe_errors: u64,
}

impl Ledger {
    fn predict(&mut self, t: &dyn Transport, uid: u64, item: u64) {
        let start = Instant::now();
        match t.predict(uid, item) {
            Ok(_) => self.predict_us.push(start.elapsed().as_secs_f64() * 1e6),
            Err(_) => self.predict_errors += 1,
        }
    }

    fn observe(
        &mut self,
        t: &dyn Transport,
        acked: &mut Vec<(u64, u64, f64)>,
        uid: u64,
        item: u64,
    ) {
        let y = if (uid + item).is_multiple_of(2) { 1.0 } else { 0.0 };
        let start = Instant::now();
        match t.observe(uid, item, y) {
            Ok(_) => {
                self.observe_us.push(start.elapsed().as_secs_f64() * 1e6);
                acked.push((uid, item, y));
            }
            Err(_) => self.observe_errors += 1,
        }
    }

    fn availability(&self) -> f64 {
        let ok = (self.predict_us.len() + self.observe_us.len()) as f64;
        let all = ok + (self.predict_errors + self.observe_errors) as f64;
        if all == 0.0 {
            1.0
        } else {
            ok / all
        }
    }

    fn row(&self, phase: &str) {
        let p = LatencySummary::from_samples(&self.predict_us);
        let (p50, p99) = p.map(|s| (s.p50, s.p99)).unwrap_or((0.0, 0.0));
        print_row(&[
            phase.to_string(),
            format!("{}", self.predict_us.len() + self.observe_us.len()),
            format!("{}", self.predict_errors + self.observe_errors),
            format!("{:.4}%", self.availability() * 100.0),
            format!("{p50:.0}"),
            format!("{p99:.0}"),
        ]);
    }
}

/// Membership control plane: the part of each backend the `Transport`
/// trait does not cover (operator actions, not serving-path requests).
struct MembershipOps<'a> {
    join: Box<dyn Fn() -> Result<NodeId, String> + 'a>,
    rebalance: Box<dyn Fn(NodeId) -> Result<Vec<u32>, String> + 'a>,
    kill_lose_disk: Box<dyn Fn(NodeId) + 'a>,
    fail_over: Box<dyn Fn(NodeId) -> Result<u64, String> + 'a>,
}

/// Drives the three phases over one backend and returns its smoke-gate
/// failures (empty = all gates green).
fn run_backend(name: &str, t: &dyn Transport, ops: &MembershipOps<'_>, scale: u64) -> Vec<String> {
    let mut gen = zipf_stream(0x5EBA1A);
    let mut acked: Vec<(u64, u64, f64)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    print_header(
        &format!("[{name}] availability and predict latency per phase"),
        &["phase", "ok", "errors", "availability", "predict p50 µs", "predict p99 µs"],
    );

    // -- Phase 1: baseline, 3 nodes ---------------------------------------
    let mut base = Ledger::default();
    for _ in 0..(120 * scale) {
        let (uid, item) = gen.next_point();
        base.observe(t, &mut acked, uid, item);
        base.predict(t, uid, (item * 3) % N_ITEMS);
    }
    base.row("baseline");

    // -- Phase 2: node joins mid-traffic, planned handoff ------------------
    let mut join = Ledger::default();
    for _ in 0..(30 * scale) {
        let (uid, item) = gen.next_point();
        join.observe(t, &mut acked, uid, item);
        join.predict(t, uid, (item * 3) % N_ITEMS);
    }
    let joined = match (ops.join)() {
        Ok(n) => n,
        Err(e) => {
            failures.push(format!("{name}: join failed: {e}"));
            return failures;
        }
    };
    for _ in 0..(30 * scale) {
        let (uid, item) = gen.next_point();
        join.observe(t, &mut acked, uid, item);
        join.predict(t, uid, (item * 3) % N_ITEMS);
    }
    let moved = match (ops.rebalance)(joined) {
        Ok(plan) => plan,
        Err(e) => {
            failures.push(format!("{name}: rebalance failed: {e}"));
            return failures;
        }
    };
    for _ in 0..(60 * scale) {
        let (uid, item) = gen.next_point();
        join.observe(t, &mut acked, uid, item);
        join.predict(t, uid, (item * 3) % N_ITEMS);
    }
    join.row("join+rebalance");

    // -- Phase 3: founding member dies, disk gone, failed out of the map --
    let victim: NodeId = 0;
    let mut fail = Ledger::default();
    (ops.kill_lose_disk)(victim);
    for _ in 0..(40 * scale) {
        let (uid, item) = gen.next_point();
        fail.observe(t, &mut acked, uid, item);
        fail.predict(t, uid, (item * 3) % N_ITEMS);
    }
    let backfilled = match (ops.fail_over)(victim) {
        Ok(n) => n,
        Err(e) => {
            failures.push(format!("{name}: fail-over failed: {e}"));
            return failures;
        }
    };
    for _ in 0..(60 * scale) {
        let (uid, item) = gen.next_point();
        fail.observe(t, &mut acked, uid, item);
        fail.predict(t, uid, (item * 3) % N_ITEMS);
    }
    fail.row("kill+failover");

    // -- Verification ------------------------------------------------------
    // Bit-exact replay of the acked stream: any lost acked record or any
    // double-applied one diverges the weights.
    let mut replay: HashMap<u64, Vec<f64>> = HashMap::new();
    for &(uid, item, y) in &acked {
        lms_update(replay.entry(uid).or_default(), &item_features(item), y, LR);
    }
    let mut diverged = 0u64;
    for (uid, expect) in &replay {
        match t.fetch_weights(*uid) {
            Ok(Some(got)) if &got == expect => {}
            _ => diverged += 1,
        }
    }
    let view = t.membership();
    let (epoch, members, n_migrations, done) = view
        .as_ref()
        .map(|v| {
            (
                v.epoch,
                v.members.clone(),
                v.migrations.len(),
                v.migrations.iter().filter(|m| m.phase == "done").count(),
            )
        })
        .unwrap_or((0, Vec::new(), 0, 0));
    println!(
        "\n[{name}] joined node {joined}, moved {} partitions, backfilled {backfilled} after \
         fail-over; epoch {epoch}, members {members:?}, {done}/{n_migrations} migrations done; \
         {} acked records, {diverged} users diverged from replay",
        moved.len(),
        acked.len(),
    );

    for (phase, l) in [("baseline", &base), ("join+rebalance", &join), ("kill+failover", &fail)] {
        if l.availability() < 0.999 {
            failures.push(format!(
                "{name}/{phase}: availability {:.4}% < 99.9%",
                l.availability() * 100.0
            ));
        }
    }
    if moved.is_empty() {
        failures.push(format!("{name}: 3→4 rebalance moved no partition"));
    }
    if diverged > 0 {
        failures.push(format!(
            "{name}: {diverged} users diverged from the acked-stream replay \
             (lost or double-applied records)"
        ));
    }
    if epoch <= 1 {
        failures.push(format!("{name}: map epoch never advanced past bootstrap"));
    }
    if !members.contains(&joined) || members.contains(&victim) {
        failures.push(format!(
            "{name}: membership wrong — want joined {joined} in and victim {victim} out of \
             {members:?}"
        ));
    }
    if n_migrations == 0 || done != n_migrations {
        failures.push(format!("{name}: migration ledger has {done}/{n_migrations} done"));
    }
    failures
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 1 } else { 5 };

    println!("# REBALANCE: availability and zero acked loss through elastic membership (§3)");
    println!(
        "\n{N_NODES}→{MAX_NODES} nodes, 2x user replication, {N_USERS} users, {N_ITEMS} items, \
         dim {DIM}, Zipf(s={ZIPF_SKEW}) traffic; join + live migration, then owner death with \
         disk loss + fail-over; zero-loss checked by bit-exact replay of the acked stream"
    );

    // -- Backend 1: the loopback TCP runtime -------------------------------
    let scratch = ScratchDir::new("velox-rebalance");
    let net = NetCluster::start(NetClusterConfig {
        n_nodes: N_NODES,
        max_nodes: MAX_NODES,
        user_replication: 2,
        lr: LR,
        wal_root: Some(scratch.path().to_path_buf()),
        workers: 8,
        request_timeout: Duration::from_secs(2),
        ..Default::default()
    })
    .expect("start loopback cluster");
    net.publish_item_features(seeded_items());
    let net_ops = MembershipOps {
        join: Box::new(|| net.join_node().map_err(|e| e.to_string())),
        rebalance: Box::new(|dst| net.rebalance_join(dst).map_err(|e| e.to_string())),
        kill_lose_disk: Box::new(|n| net.kill_node_lose_disk(n)),
        fail_over: Box::new(|n| net.fail_over_dead(n).map_err(|e| e.to_string())),
    };
    let mut failures = run_backend("net", &net, &net_ops, scale);
    net.shutdown();

    // -- Backend 2: the in-process simulator -------------------------------
    println!();
    let cluster = Arc::new(Cluster::new(ClusterConfig {
        n_nodes: N_NODES,
        max_nodes: MAX_NODES,
        user_replication: 2,
        item_replication: N_NODES,
        ..Default::default()
    }));
    for (item, x) in seeded_items() {
        cluster.put_item_features(item, x);
    }
    let sim = SimTransport::new(Arc::clone(&cluster), LR);
    let sim_ops = MembershipOps {
        join: Box::new(|| cluster.join_node().map_err(|e| e.to_string())),
        rebalance: Box::new(|dst| cluster.rebalance_join(dst).map_err(|e| e.to_string())),
        // The simulator holds no disk; a kill already forgets the node's
        // local state for fail-over purposes.
        kill_lose_disk: Box::new(|n| cluster.kill_node(n)),
        fail_over: Box::new(|n| cluster.fail_over_dead(n).map_err(|e| e.to_string())),
    };
    failures.extend(run_backend("sim", &sim, &sim_ops, scale));

    if smoke {
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("smoke FAIL: {f}");
            }
            std::process::exit(1);
        }
        println!("\nsmoke: all rebalance gates passed on both transports");
    }
}
