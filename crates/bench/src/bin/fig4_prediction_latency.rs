//! FIG4 — Figure 4 of the paper: "Prediction latency vs model complexity".
//!
//! Paper setup: "Single-node topK prediction latency for both cached and
//! non-cached predictions for the MovieLens 10M rating dataset, varying
//! size of input set and dimension (d, or, factor). Results are averaged
//! over 10,000 trials." Series: d ∈ {2000, 5000, 10000} plus a fully-cached
//! curve; latency grows linearly in itemset size, steeper for larger d,
//! with the cached curve flat and far below.
//!
//! Here: the same sweep against a deployed Velox instance (single node,
//! materialized factor tables of the stated dimensions, generated directly —
//! Figure 4 measures serving cost, which depends only on the dimensions).
//! The "non-cached" series runs with a minimal prediction cache so every
//! candidate is computed; "cached" repeats one warm request (100% hits).

use std::collections::HashMap;
use std::sync::Arc;

use velox_batch::AlsConfig;
use velox_bench::{fmt_us, measure, print_header, print_row, FixtureRng};
use velox_core::{Item, Velox, VeloxConfig};
use velox_models::MatrixFactorizationModel;

const CATALOG: usize = 1200;

fn deploy(d: usize, prediction_cache_capacity: usize) -> Velox {
    let mut rng = FixtureRng::new(0xF1640 + d as u64);
    let mut table = HashMap::new();
    for item in 0..CATALOG as u64 {
        table.insert(item, rng.vector(d));
    }
    let model = MatrixFactorizationModel::from_table(
        "fig4",
        table,
        0.0,
        AlsConfig { rank: d, ..Default::default() },
    )
    .expect("consistent table");
    let mut weights = HashMap::new();
    weights.insert(0u64, rng.vector(d));
    let mut config = VeloxConfig::single_node();
    config.prediction_cache_capacity = prediction_cache_capacity;
    Velox::deploy(Arc::new(model), weights, config)
}

fn main() {
    println!("# FIG4: single-node topK prediction latency vs. itemset size");
    println!("\nPaper reference (Figure 4): latency linear in itemset size, slope");
    println!("growing with d; the fully-cached curve is flat and far below the");
    println!("10000-factor curve (~0.3 s at 1000 items on the authors' testbed).");

    let itemset_sizes = [10usize, 50, 100, 200, 400, 600, 800, 1000];
    let dims = [2000usize, 5000, 10000];

    // Uncached: a 1-entry prediction cache evicts immediately, so every
    // candidate is featurized and scored on every call.
    for &d in &dims {
        let velox = deploy(d, 1);
        print_header(
            &format!("{d} factors (uncached)"),
            &["itemset size", "mean latency", "p99", "cache hit fraction"],
        );
        for &n in &itemset_sizes {
            let items: Vec<Item> = (0..n as u64).map(Item::Id).collect();
            let trials = (400_000_000 / (d * n)).clamp(30, 3000);
            let mut hit_fraction = 0.0;
            let summary = measure(3, trials, || {
                let resp = velox.top_k(0, &items).expect("serves");
                hit_fraction = resp.cached_fraction;
            });
            print_row(&[
                n.to_string(),
                fmt_us(summary.mean),
                fmt_us(summary.p99),
                format!("{hit_fraction:.2}"),
            ]);
        }
    }

    // Cached: ample cache, same request repeatedly after a warmup.
    {
        let velox = deploy(10_000, 64 * 1024);
        print_header(
            "fully cached (d = 10000; 100% prediction-cache hits)",
            &["itemset size", "mean latency", "p99", "cache hit fraction"],
        );
        for &n in &itemset_sizes {
            let items: Vec<Item> = (0..n as u64).map(Item::Id).collect();
            velox.top_k(0, &items).expect("warms");
            let mut hit_fraction = 0.0;
            let summary = measure(3, 2000, || {
                let resp = velox.top_k(0, &items).expect("serves");
                hit_fraction = resp.cached_fraction;
            });
            print_row(&[
                n.to_string(),
                fmt_us(summary.mean),
                fmt_us(summary.p99),
                format!("{hit_fraction:.2}"),
            ]);
        }
    }

    println!("\nShape check vs. paper: latency is linear in itemset size; the slope");
    println!("grows with d; the cached curve is orders of magnitude lower and flat");
    println!("in d (a hash lookup per item).");
}
