//! SERVE-BATCH — the adaptive-batching throughput/latency frontier of the
//! serving tier (`velox-serve`), the Clipper-style layer from ROADMAP open
//! item 4.
//!
//! Drives T concurrent client threads against one backend served three
//! ways:
//!
//! - `direct`: `ServeTier::predict_direct` — the model-abstraction layer
//!   without the queue (one manager snapshot per request, no coalescing);
//! - `tier max_batch=1`: the full serving tier with batching disabled —
//!   every request pays its own queue hand-off, manager snapshot, trace
//!   span, metrics pass, and its own backend call. The classic "serving
//!   system without batching" baseline;
//! - `tier adaptive`: the same tier with AIMD batch sizing against the
//!   latency SLO — concurrent predicts coalesce into batched passes.
//!
//! The headline (gated) table serves a 3-node loopback TCP cluster
//! through `TransportBackend`: a coalesced batch becomes ONE
//! `PredictBatch` RPC per owning node instead of one round trip per
//! request, which is where Clipper-style batching pays — the RPC
//! round trip is the per-call overhead being amortized. A second table
//! (full runs only) serves an in-process Velox deployment, where the
//! amortized costs are the queue hand-off and per-user weight reads —
//! a much smaller win, reported for contrast.
//!
//! `--smoke` runs a shortened sweep and exits non-zero unless, at the top
//! concurrency: adaptive throughput ≥ 2× the unbatched tier, client p99
//! stays within the configured SLO, the lane's SLO-violation rate is
//! below 1%, the learned mean batch size is ≥ 2, and the exported
//! batch-size histogram agrees with the lane's batch counter.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use velox_batch::AlsConfig;
use velox_bench::{fmt_us, print_header, print_row, FixtureRng};
use velox_cluster::{ChaosControl, LinkFaultPlan, Transport};
use velox_core::{Item, Velox, VeloxConfig};
use velox_linalg::stats::LatencySummary;
use velox_models::MatrixFactorizationModel;
use velox_net::{NetCluster, NetClusterConfig};
use velox_serve::{
    BatchConfig, LaneStats, PredictBackend, ServeConfig, ServeTier, TransportBackend, VeloxBackend,
};

const DIM: usize = 16;
const N_USERS: u64 = 64;
const N_ITEMS: u64 = 256;
const BACKEND: &str = "bench";
const SLO: Duration = Duration::from_millis(5);
/// Emulated one-way link latency. Single-core loopback answers an RPC in
/// ~10µs, which no real deployment sees; a deterministic injected delay
/// (the chaos layer's latency knob at probability 1.0) restores a
/// realistic same-datacenter round trip, which is exactly the per-call
/// overhead adaptive batching exists to amortize.
const LINK_DELAY: Duration = Duration::from_micros(150);

fn rpc_backend() -> (Arc<dyn PredictBackend>, Arc<NetCluster>) {
    let cluster = NetCluster::start(NetClusterConfig {
        n_nodes: 3,
        user_replication: 2,
        lr: 0.05,
        wal_root: None,
        workers: 8,
        request_timeout: Duration::from_secs(2),
        ..Default::default()
    })
    .expect("start loopback cluster");
    let mut rng = FixtureRng::new(0x5E7E);
    cluster.publish_item_features((0..N_ITEMS).map(|i| (i, rng.raw(DIM))).collect());
    for uid in 0..N_USERS {
        for i in 0..4u64 {
            cluster.observe(uid, (uid + i * 17) % N_ITEMS, 0.5).expect("seed observe");
        }
    }
    // Seed first (fast, fault-free), then emulate the network link.
    cluster.install_link_faults(LinkFaultPlan {
        delay_prob: 1.0,
        delay_us: LINK_DELAY.as_micros() as u64,
        seed: 0x11A7,
        ..Default::default()
    });
    let cluster = Arc::new(cluster);
    let transport: Arc<dyn Transport + Send + Sync> = Arc::clone(&cluster) as _;
    (Arc::new(TransportBackend::new(transport)), cluster)
}

fn inproc_backend() -> Arc<dyn PredictBackend> {
    let mut rng = FixtureRng::new(0x5E7F);
    let mut table = HashMap::new();
    for item in 0..N_ITEMS {
        table.insert(item, rng.vector(DIM));
    }
    let model = MatrixFactorizationModel::from_table(
        "serve-batch",
        table,
        0.0,
        AlsConfig { rank: DIM, ..Default::default() },
    )
    .unwrap();
    let mut weights = HashMap::new();
    for uid in 0..N_USERS {
        weights.insert(uid, rng.vector(DIM));
    }
    let velox = Arc::new(Velox::deploy(Arc::new(model), weights, VeloxConfig::default()));
    Arc::new(VeloxBackend::new(velox))
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Direct,
    Unbatched,
    Adaptive,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Direct => "direct (no queue)",
            Mode::Unbatched => "tier max_batch=1",
            Mode::Adaptive => "tier adaptive",
        }
    }

    fn batch_config(self, flush: Duration) -> BatchConfig {
        match self {
            // `initial_batch: 1` with `max_batch: 1` pins the lane to one
            // request per pass; the AIMD controller has nowhere to go.
            Mode::Direct | Mode::Unbatched => {
                BatchConfig { slo: SLO, max_batch: 1, initial_batch: 1, ..Default::default() }
            }
            Mode::Adaptive => BatchConfig { slo: SLO, flush_timeout: flush, ..Default::default() },
        }
    }
}

struct Cell {
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
    lane: LaneStats,
    hist_batches: u64,
}

fn run_cell(
    backend: &Arc<dyn PredictBackend>,
    mode: Mode,
    flush: Duration,
    threads: usize,
    run: Duration,
) -> Cell {
    let tier = ServeTier::with_config(ServeConfig {
        batch: mode.batch_config(flush),
        ..Default::default()
    });
    tier.register(BACKEND, Arc::clone(backend)).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..threads {
        let tier = Arc::clone(&tier);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = FixtureRng::new(0xC11E + t as u64);
            let mut samples = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let uid = (rng.next_f64().abs() * N_USERS as f64) as u64 % N_USERS;
                let item = (rng.next_f64().abs() * N_ITEMS as f64) as u64 % N_ITEMS;
                let start = Instant::now();
                let served = match mode {
                    Mode::Direct => tier.predict_direct(BACKEND, uid, &Item::Id(item)),
                    _ => tier.predict(BACKEND, uid, &Item::Id(item)),
                };
                served.expect("serve predict");
                samples.push(start.elapsed().as_secs_f64() * 1e6);
            }
            samples
        }));
    }
    let start = Instant::now();
    std::thread::sleep(run);
    stop.store(true, Ordering::Relaxed);
    let mut samples = Vec::new();
    for h in handles {
        samples.extend(h.join().unwrap());
    }
    let secs = start.elapsed().as_secs_f64();

    let status = tier.backends().into_iter().find(|b| b.name == BACKEND).expect("backend listed");
    let hist_batches =
        tier.registry().snapshot().histogram("velox_serve_batch_size").map_or(0, |h| h.count);
    tier.shutdown();
    let summary = LatencySummary::from_samples(&samples).expect("served requests");
    Cell {
        throughput: samples.len() as f64 / secs,
        p50_us: summary.p50,
        p99_us: summary.p99,
        lane: status.lane,
        hist_batches,
    }
}

/// Sweeps one backend across modes and concurrency; returns the cells of
/// the top concurrency level keyed by mode label.
fn sweep(
    title: &str,
    backend: &Arc<dyn PredictBackend>,
    flush: Duration,
    levels: &[usize],
    run: Duration,
) -> HashMap<&'static str, Cell> {
    let mut at_top = HashMap::new();
    let top = *levels.last().unwrap();
    for &threads in levels {
        print_header(
            &format!("{title}, {threads} concurrent clients"),
            &["serving path", "req/s", "p50", "p99", "mean batch", "SLO violations"],
        );
        // Warm connection pools and caches at this concurrency level.
        let _ = run_cell(backend, Mode::Direct, flush, threads.min(4), Duration::from_millis(80));
        for mode in [Mode::Direct, Mode::Unbatched, Mode::Adaptive] {
            let cell = run_cell(backend, mode, flush, threads, run);
            let (batch, violations) = if mode == Mode::Direct {
                ("—".to_string(), "—".to_string())
            } else {
                (
                    format!("{:.1}", cell.lane.mean_batch),
                    format!("{}/{}", cell.lane.slo_violations, cell.lane.requests),
                )
            };
            print_row(&[
                mode.label().to_string(),
                format!("{:.0}", cell.throughput),
                fmt_us(cell.p50_us),
                fmt_us(cell.p99_us),
                batch,
                violations,
            ]);
            if threads == top {
                at_top.insert(mode.label(), cell);
            }
        }
    }
    at_top
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let run = if smoke { Duration::from_millis(300) } else { Duration::from_millis(1000) };
    let levels: &[usize] = if smoke { &[8, 32] } else { &[1, 8, 32, 64] };

    println!("# SERVE-BATCH: adaptive batching throughput/latency frontier");
    println!(
        "\nd={DIM}, {N_USERS} users x {N_ITEMS} items, SLO {} ms, {} ms measured per cell.",
        SLO.as_millis(),
        run.as_millis()
    );
    println!("Headline backend: 3-node loopback TCP cluster via `TransportBackend`");
    println!("(a coalesced batch is one `PredictBatch` RPC per owning node),");
    println!(
        "with a {}µs emulated one-way link so the round trip matches a",
        LINK_DELAY.as_micros()
    );
    println!("realistic same-datacenter deployment instead of same-core loopback.");

    let (rpc, cluster) = rpc_backend();
    // The default 200µs flush timeout is tuned for RPC-backed lanes: it
    // is small against the ~tens-of-µs round trip it coalesces over.
    let at_top = sweep("TCP cluster backend", &rpc, Duration::from_micros(200), levels, run);

    if !smoke {
        // In-process contrast: the batch amortizes only the queue
        // hand-off and per-user weight reads, so the flush window must
        // shrink with the µs-scale service time.
        let inproc = inproc_backend();
        sweep("in-process Velox backend", &inproc, Duration::from_micros(5), levels, run);
    }

    println!("\nWith batching disabled every request pays its own queue hand-off,");
    println!("manager snapshot, trace/metrics pass, and its own RPC round trip; the");
    println!("adaptive lane amortizes all of it across the coalesced batch, so");
    println!("throughput grows with concurrency while p99 stays under the SLO.");

    let top = *levels.last().unwrap();
    let unbatched = &at_top[Mode::Unbatched.label()];
    let adaptive = &at_top[Mode::Adaptive.label()];
    let ratio = adaptive.throughput / unbatched.throughput;
    let violation_rate = adaptive.lane.slo_violations as f64 / adaptive.lane.requests.max(1) as f64;
    println!(
        "\nAt {top} clients: adaptive {:.0} req/s vs unbatched {:.0} req/s ({ratio:.1}x), \
         mean batch {:.1}, p99 {}, SLO violations {:.2}%.",
        adaptive.throughput,
        unbatched.throughput,
        adaptive.lane.mean_batch,
        fmt_us(adaptive.p99_us),
        violation_rate * 100.0
    );

    if smoke {
        let mut ok = true;
        if ratio < 2.0 {
            eprintln!(
                "SMOKE FAIL: adaptive/unbatched throughput {ratio:.2}x < 2x at {top} clients"
            );
            ok = false;
        }
        if adaptive.p99_us > SLO.as_secs_f64() * 1e6 {
            eprintln!(
                "SMOKE FAIL: adaptive p99 {} exceeds the {} ms SLO",
                fmt_us(adaptive.p99_us),
                SLO.as_millis()
            );
            ok = false;
        }
        if violation_rate >= 0.01 {
            eprintln!(
                "SMOKE FAIL: SLO violation rate {:.2}% >= 1% ({}/{})",
                violation_rate * 100.0,
                adaptive.lane.slo_violations,
                adaptive.lane.requests
            );
            ok = false;
        }
        if adaptive.lane.mean_batch < 2.0 {
            eprintln!(
                "SMOKE FAIL: mean batch {:.2} < 2 at {top} clients",
                adaptive.lane.mean_batch
            );
            ok = false;
        }
        if adaptive.hist_batches != adaptive.lane.batches {
            eprintln!(
                "SMOKE FAIL: batch-size histogram count {} != lane batches {}",
                adaptive.hist_batches, adaptive.lane.batches
            );
            ok = false;
        }
        if !ok {
            cluster.shutdown();
            std::process::exit(1);
        }
        println!("\nsmoke: all gates passed");
    }
    cluster.shutdown();
}
