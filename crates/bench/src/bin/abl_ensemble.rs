//! ABL-ENSEMBLE — the abstract's "online model maintenance and selection
//! (i.e., dynamic weighting)".
//!
//! Two models of the same task with different inductive biases — the
//! latent-factor (matrix factorization) model and a content-based
//! identity-feature model — are combined by the Hedge-weighted
//! [`EnsembleSelector`]. Mid-stream, the MF deployment is corrupted (a bad
//! deploy). Reports held-out RMSE of each member, the ensemble, and the
//! weight trajectory: the ensemble should track the best member before the
//! incident and shift weight away from the corrupted member within a few
//! observations after it.

use std::collections::HashMap;
use std::sync::Arc;

use velox_batch::{AlsConfig, AlsModel, JobExecutor};
use velox_bench::{print_header, print_row};
use velox_core::{EnsembleSelector, Item, TrainingExample, Velox, VeloxConfig, WeightScope};
use velox_data::{three_way_split, RatingsDataset, SyntheticConfig};
use velox_models::{IdentityModel, MatrixFactorizationModel};

fn main() {
    println!("# ABL-ENSEMBLE: dynamic model weighting (abstract, §2)");

    let ds = RatingsDataset::generate(SyntheticConfig {
        n_users: 300,
        n_items: 150,
        rank: 6,
        ratings_per_user: 30,
        noise_std: 0.3,
        seed: 0xE25,
        ..Default::default()
    });
    let split = three_way_split(&ds, 0.5, 0.7);
    let executor = JobExecutor::default_parallelism();
    let als = AlsModel::train(
        &split.offline,
        300,
        150,
        AlsConfig { rank: 6, lambda: 0.05, iterations: 8, seed: 3 },
        &executor,
    );
    let mu = als.global_mean;

    // Member A: the trained MF model.
    let (mf_model, _) = MatrixFactorizationModel::from_als("mf", &als);
    let mf =
        Arc::new(Velox::deploy(Arc::new(mf_model), HashMap::new(), VeloxConfig::single_node()));
    let history: Vec<TrainingExample> = split
        .offline
        .iter()
        .map(|r| TrainingExample { uid: r.uid, item: Item::Id(r.item_id), y: r.value - mu })
        .collect();
    mf.ingest_history(&history).unwrap();

    // Member B: content-based — items described by a *partial* view of
    // their planted factors (4 of 6 dimensions), identity feature function,
    // per-user ridge. Decent but structurally weaker than the MF member,
    // the way real content features approximate collaborative signal.
    let content_model = IdentityModel::new("content", 4, 1.0);
    let content = Arc::new(Velox::deploy(
        Arc::new(content_model),
        HashMap::new(),
        VeloxConfig::single_node(),
    ));
    for (item, factors) in ds.true_item_factors.iter().enumerate() {
        content.register_item(item as u64, factors.as_slice()[..4].to_vec());
    }
    content.ingest_history(&history).unwrap();

    let ensemble = EnsembleSelector::new(
        vec![("mf".into(), Arc::clone(&mf)), ("content".into(), Arc::clone(&content))],
        1.0,
        WeightScope::Global,
    );

    let heldout_rmse = |f: &dyn Fn(u64, u64) -> f64| -> f64 {
        let mut sse = 0.0;
        for r in &split.heldout {
            let p = f(r.uid, r.item_id);
            sse += (p - (r.value - mu)) * (p - (r.value - mu));
        }
        (sse / split.heldout.len() as f64).sqrt()
    };

    // Phase 1: honest online stream through the ensemble.
    let mid = split.online.len() / 2;
    for r in &split.online[..mid] {
        ensemble.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
    }
    let w_phase1 = ensemble.weights(0);
    let rmse_mf = heldout_rmse(&|u, i| mf.predict(u, &Item::Id(i)).unwrap().score);
    let rmse_content = heldout_rmse(&|u, i| content.predict(u, &Item::Id(i)).unwrap().score);
    let rmse_ens = heldout_rmse(&|u, i| ensemble.predict(u, &Item::Id(i)).unwrap().score);

    print_header(
        "Phase 1: honest traffic (first half of the online stream)",
        &["predictor", "held-out RMSE", "ensemble weight"],
    );
    print_row(&["mf member".into(), format!("{rmse_mf:.4}"), format!("{:.3}", w_phase1[0])]);
    print_row(&[
        "content member".into(),
        format!("{rmse_content:.4}"),
        format!("{:.3}", w_phase1[1]),
    ]);
    print_row(&["ensemble".into(), format!("{rmse_ens:.4}"), "—".into()]);

    // Phase 2: incident — the MF member ingests garbage out-of-band.
    for r in split.online[..500.min(mid)].iter() {
        mf.observe(r.uid, &Item::Id(r.item_id), 50.0).unwrap();
    }
    // Honest traffic resumes through the ensemble; track weight recovery.
    let mut switch_after = None;
    for (i, r) in split.online[mid..].iter().enumerate() {
        ensemble.observe(r.uid, &Item::Id(r.item_id), r.value - mu).unwrap();
        if switch_after.is_none() && ensemble.dominant_model(0).0 == "content" {
            switch_after = Some(i + 1);
        }
    }
    let w_phase2 = ensemble.weights(0);
    let rmse_mf2 = heldout_rmse(&|u, i| mf.predict(u, &Item::Id(i)).unwrap().score);
    let rmse_ens2 = heldout_rmse(&|u, i| ensemble.predict(u, &Item::Id(i)).unwrap().score);

    print_header(
        "Phase 2: after corrupting the mf member",
        &["predictor", "held-out RMSE", "ensemble weight"],
    );
    print_row(&[
        "mf member (corrupted)".into(),
        format!("{rmse_mf2:.4}"),
        format!("{:.3}", w_phase2[0]),
    ]);
    print_row(&[
        "content member".into(),
        format!("{:.4}", heldout_rmse(&|u, i| content.predict(u, &Item::Id(i)).unwrap().score)),
        format!("{:.3}", w_phase2[1]),
    ]);
    print_row(&["ensemble".into(), format!("{rmse_ens2:.4}"), "—".into()]);

    match switch_after {
        Some(n) => {
            println!("\nweight majority switched to the healthy member after {n} observations.")
        }
        None => println!("\nWARNING: dominant member never switched."),
    }
    println!("\nShape check: the ensemble tracks its best member under honest traffic");
    println!("and automatically de-weights a corrupted member — dynamic model");
    println!("selection without operator intervention.");
}
