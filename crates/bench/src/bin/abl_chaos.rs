//! CHAOS-AVAIL — fault-tolerant serving under a scripted outage.
//!
//! The paper keeps the materialized tables replicated "for fault tolerance"
//! (§3) but never quantifies what a node loss costs the serving tier. This
//! experiment does: a 4-node deployment with 2× replication of both the
//! item-feature table and the user-weight table serves a Zipfian 80/20
//! predict/observe workload while a fault plan kills one node a quarter of
//! the way in and recovers it at three quarters, with low-rate injected
//! read failures and latency spikes throughout.
//!
//! Reported per phase (pre-kill / outage / post-recovery): availability
//! (answered / issued), the degradation-ladder mix, and the virtual read
//! cost (mean + p99). `--smoke` runs a smaller workload and exits non-zero
//! unless availability stays ≥ 99% with zero panics — the CI gate for the
//! failover path.

use std::collections::HashMap;
use std::sync::Arc;

use velox_batch::AlsConfig;
use velox_bench::{print_header, print_row, FixtureRng};
use velox_cluster::{ClusterConfig, FaultAction, FaultEvent, FaultPlan};
use velox_core::{DegradationLevel, Item, Velox, VeloxConfig};
use velox_data::{VeloxRng, WorkloadConfig, ZipfGenerator};
use velox_linalg::stats::LatencySummary;
use velox_models::MatrixFactorizationModel;

const N_USERS: usize = 1000;
const N_ITEMS: usize = 800;
const DIM: usize = 16;
const N_NODES: usize = 4;
const REPLICATION: usize = 2;
const VICTIM: usize = 2;

/// Per-phase accounting.
#[derive(Default)]
struct Phase {
    issued: u64,
    answered: u64,
    full: u64,
    replica: u64,
    stale_cache: u64,
    bootstrap: u64,
    deferred: u64,
    costs: Vec<f64>,
}

impl Phase {
    fn availability(&self) -> f64 {
        if self.issued == 0 {
            1.0
        } else {
            self.answered as f64 / self.issued as f64
        }
    }

    fn count(&mut self, level: DegradationLevel) {
        match level {
            DegradationLevel::Full => self.full += 1,
            DegradationLevel::Replica => self.replica += 1,
            DegradationLevel::StaleCache => self.stale_cache += 1,
            DegradationLevel::Bootstrap => self.bootstrap += 1,
        }
    }
}

fn deploy() -> Velox {
    let mut rng = FixtureRng::new(0xC4A05);
    let mut table = HashMap::new();
    for item in 0..N_ITEMS as u64 {
        table.insert(item, rng.vector(DIM));
    }
    let model = MatrixFactorizationModel::from_table(
        "chaos",
        table,
        0.0,
        AlsConfig { rank: DIM, ..Default::default() },
    )
    .unwrap();
    let mut weights = HashMap::new();
    for uid in 0..N_USERS as u64 {
        weights.insert(uid, rng.vector(DIM));
    }
    let config = VeloxConfig {
        cluster: ClusterConfig {
            n_nodes: N_NODES,
            item_replication: REPLICATION,
            user_replication: REPLICATION,
            ..Default::default()
        },
        ..Default::default()
    };
    Velox::deploy(Arc::new(model), weights, config)
}

/// Runs the scripted outage over `requests` requests; returns the three
/// phases plus the deployment for counter inspection.
fn run(requests: u64) -> ([Phase; 3], Velox) {
    let velox = deploy();
    let kill_at = requests / 4;
    let recover_at = 3 * requests / 4;
    velox.install_fault_plan(FaultPlan {
        events: vec![
            FaultEvent { at_request: kill_at, node: VICTIM, action: FaultAction::Kill },
            FaultEvent { at_request: recover_at, node: VICTIM, action: FaultAction::Recover },
        ],
        read_failure_prob: 0.01,
        latency_spike_prob: 0.005,
        latency_spike_us: 5_000.0,
        seed: 0xFA_17,
    });

    let mut workload = ZipfGenerator::new(WorkloadConfig {
        n_users: N_USERS,
        n_items: N_ITEMS,
        item_skew: 0.8,
        seed: 0x5EED,
        ..Default::default()
    });
    let mut mix = VeloxRng::seed_from(0xD1CE);
    let mut phases = [Phase::default(), Phase::default(), Phase::default()];

    for i in 0..requests {
        let phase = if i < kill_at {
            0
        } else if i < recover_at {
            1
        } else {
            2
        };
        let phase = &mut phases[phase];
        let (uid, item) = workload.next_point();
        phase.issued += 1;
        if mix.uniform() < 0.8 {
            if let Ok(resp) = velox.predict(uid, &Item::Id(item)) {
                phase.answered += 1;
                phase.count(resp.degradation);
                phase.costs.push(resp.virtual_cost_us);
            }
        } else if let Ok(outcome) = velox.observe(uid, &Item::Id(item), mix.gaussian()) {
            phase.answered += 1;
            if outcome.deferred {
                phase.deferred += 1;
            }
        }
    }
    (phases, velox)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let requests: u64 = if smoke { 4_000 } else { 40_000 };

    println!("# CHAOS-AVAIL: availability through node loss and recovery (§3 replication)");
    println!(
        "\n{N_USERS} users, {N_ITEMS} items, {N_NODES} nodes, {REPLICATION}x replication, \
         {requests} requests (80% predict / 20% observe)"
    );
    println!(
        "fault plan: kill node {VICTIM} at 25%, recover at 75%; 1% injected read \
         failures, 0.5% latency spikes"
    );

    let (phases, velox) = run(requests);

    print_header(
        "Availability and degradation by phase",
        &[
            "phase",
            "availability",
            "full",
            "replica",
            "stale-cache",
            "bootstrap",
            "deferred obs",
            "mean cost (virtual µs)",
            "p99 cost (virtual µs)",
        ],
    );
    let names = ["pre-kill", "outage", "post-recovery"];
    for (name, phase) in names.iter().zip(&phases) {
        let summary = LatencySummary::from_samples(&phase.costs);
        let (mean, p99) = summary.map_or((0.0, 0.0), |s| (s.mean, s.p99));
        print_row(&[
            name.to_string(),
            format!("{:.4}", phase.availability()),
            phase.full.to_string(),
            phase.replica.to_string(),
            phase.stale_cache.to_string(),
            phase.bootstrap.to_string(),
            phase.deferred.to_string(),
            format!("{mean:.1}"),
            format!("{p99:.1}"),
        ]);
    }

    let stats = velox.stats();
    println!("\ncluster counters:");
    println!("  unavailable reads        {}", stats.cluster.unavailable_reads);
    println!("  failover reads           {}", stats.cluster.failover_reads());
    println!("  catch-up entries         {}", stats.cluster.catch_up_entries);
    println!("  injected read failures   {}", stats.cluster.injected_read_failures);
    println!("  injected latency spikes  {}", stats.cluster.injected_latency_spikes);
    println!(
        "  redo queue               buffered {} / drained {} / shed {} / pending {}",
        stats.redo.buffered, stats.redo.drained, stats.redo.shed, stats.redo.pending
    );
    println!("  degradation counters     {:?} (total {})", stats.degraded, stats.degraded.total());

    let issued: u64 = phases.iter().map(|p| p.issued).sum();
    let answered: u64 = phases.iter().map(|p| p.answered).sum();
    let availability = answered as f64 / issued as f64;
    println!("\noverall availability: {answered}/{issued} = {availability:.4}");

    if smoke {
        // CI gate: the outage must cost less than 1% of requests, the
        // ladder must account for every answered predict, and the redo
        // queue must be fully drained after recovery.
        let predicts_answered: u64 =
            phases.iter().map(|p| p.full + p.replica + p.stale_cache + p.bootstrap).sum();
        let mut ok = true;
        if availability < 0.99 {
            eprintln!("SMOKE FAIL: availability {availability:.4} < 0.99");
            ok = false;
        }
        if stats.degraded.total() != predicts_answered {
            eprintln!(
                "SMOKE FAIL: degradation counters {} != answered predicts {predicts_answered}",
                stats.degraded.total()
            );
            ok = false;
        }
        if stats.redo.pending != 0 {
            eprintln!("SMOKE FAIL: {} observations still pending redo", stats.redo.pending);
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!("smoke: all gates passed");
    }
}
