//! ABL-BOOT — §5's cold-start claim: "new users are assigned a recent
//! estimate of the average of the existing user weight vectors", which
//! "corresponds to predicting the average score for all users".
//!
//! Protocol: train offline on an established population; then new users
//! arrive and rate items one at a time. Measures prediction error on each
//! new user's k-th interaction for k = 1..10, comparing the mean-weight
//! bootstrap against a zero-initialized prior. Expected shape: the
//! bootstrap wins at k = 1 (before any feedback) and the curves converge
//! as personal data accumulates.

use std::collections::HashMap;
use std::sync::Arc;

use velox_batch::{AlsConfig, AlsModel, JobExecutor};
use velox_bench::{print_header, print_row};
use velox_core::{Item, TrainingExample, Velox, VeloxConfig};
use velox_data::{RatingsDataset, SyntheticConfig};
use velox_models::MatrixFactorizationModel;

const ESTABLISHED: usize = 1000;
const NEW_USERS: usize = 300;
const INTERACTIONS: usize = 10;

fn main() {
    println!("# ABL-BOOT: mean-weight bootstrap for new users (§5)");

    // One generator for both populations so new users share the planted
    // factor distribution; the first ESTABLISHED users train offline.
    let ds = RatingsDataset::generate(SyntheticConfig {
        n_users: ESTABLISHED + NEW_USERS,
        n_items: 200,
        rank: 8,
        ratings_per_user: 20,
        noise_std: 0.3,
        // Real populations share taste (it is why hit items are hits); the
        // mean-weight bootstrap's value comes precisely from that shared
        // component. Zero shared taste would make the population mean
        // carry almost no signal.
        shared_taste: 0.6,
        seed: 0xB007,
        ..Default::default()
    });
    let established_ratings: Vec<_> =
        ds.ratings.iter().filter(|r| (r.uid as usize) < ESTABLISHED).cloned().collect();
    let executor = JobExecutor::default_parallelism();
    let als = AlsModel::train(
        &established_ratings,
        ESTABLISHED + NEW_USERS,
        200,
        AlsConfig { rank: 8, lambda: 0.05, iterations: 8, seed: 9 },
        &executor,
    );
    let mu = als.global_mean;

    // Two deployments: with the established population (bootstrap = mean
    // of 1000 trained users) and without (bootstrap = zero vector).
    let build = |with_population: bool| -> Velox {
        let (model, weights) = MatrixFactorizationModel::from_als("boot", &als);
        let weights: HashMap<_, _> = if with_population {
            weights.into_iter().filter(|(uid, _)| (*uid as usize) < ESTABLISHED).collect()
        } else {
            HashMap::new()
        };
        let v = Velox::deploy(Arc::new(model), weights, VeloxConfig::single_node());
        if with_population {
            // Seed per-user histories so the mean reflects real usage.
            let history: Vec<TrainingExample> = established_ratings
                .iter()
                .map(|r| TrainingExample { uid: r.uid, item: Item::Id(r.item_id), y: r.value - mu })
                .collect();
            v.ingest_history(&history).unwrap();
        }
        v
    };
    let velox_boot = build(true);
    let velox_zero = build(false);

    // Each new user's ratings, replayed one at a time; error measured
    // *before* each observe (prequential).
    let mut err_boot = [0.0f64; INTERACTIONS];
    let mut err_zero = [0.0f64; INTERACTIONS];
    let mut counts = [0u64; INTERACTIONS];
    for uid in ESTABLISHED as u64..(ESTABLISHED + NEW_USERS) as u64 {
        let user_ratings: Vec<_> = ds.ratings.iter().filter(|r| r.uid == uid).collect();
        for (k, r) in user_ratings.iter().take(INTERACTIONS).enumerate() {
            let y = r.value - mu;
            let p_boot = velox_boot.predict(uid, &Item::Id(r.item_id)).unwrap().score;
            let p_zero = velox_zero.predict(uid, &Item::Id(r.item_id)).unwrap().score;
            err_boot[k] += (p_boot - y) * (p_boot - y);
            err_zero[k] += (p_zero - y) * (p_zero - y);
            counts[k] += 1;
            velox_boot.observe(uid, &Item::Id(r.item_id), y).unwrap();
            velox_zero.observe(uid, &Item::Id(r.item_id), y).unwrap();
        }
    }

    print_header(
        "RMSE on a new user's k-th interaction",
        &["k", "zero-init prior", "mean-weight bootstrap", "bootstrap advantage"],
    );
    for k in 0..INTERACTIONS {
        let rb = (err_boot[k] / counts[k] as f64).sqrt();
        let rz = (err_zero[k] / counts[k] as f64).sqrt();
        print_row(&[
            (k + 1).to_string(),
            format!("{rz:.4}"),
            format!("{rb:.4}"),
            format!("{:+.1}%", (1.0 - rb / rz) * 100.0),
        ]);
    }
    println!("\nShape check vs. paper: the mean-weight bootstrap predicts the average");
    println!("user's score before any feedback exists, beating a zero prior on the");
    println!("first interactions; the gap closes as per-user data accumulates.");
}
